//! Golden-vector conformance suite.
//!
//! Seeded input frames and their expected fixed-point outputs are checked
//! in under `tests/golden/` as f64 *bit patterns* (hex), so the assertions
//! are exact to the last mantissa bit — any numeric drift in the firmware
//! interpreter (quantizer rounding, accumulation order, activation tables)
//! fails loudly, and so does any divergence between the sequential,
//! batched, and multi-threaded inference paths.
//!
//! The vectors are built from *untrained but seeded* models run through
//! the real profile → convert pipeline: training is deliberately excluded
//! so the suite pins interpreter semantics, not optimizer trajectories.
//! Each file also records the firmware's content digest; a digest mismatch
//! means conversion itself changed and the vectors need review.
//!
//! Sparse fixtures (`density < 1.0`) prune the converted firmware with a
//! deterministic post-quantization zero mask before generating vectors, so
//! the compiled engine's CSR kernels — not just the dense families — are
//! pinned bit-for-bit, on both the forced-scalar and detected-SIMD plans.
//!
//! Regenerate after an intentional change with:
//!
//! ```sh
//! REGEN_GOLDEN=1 cargo test --test golden_vectors
//! ```

use reads_hls4ml::{
    convert, profile_model, sparsify_firmware, CompiledFirmware, Firmware, HlsConfig, PlanConfig,
    SimdPref,
};
use reads_nn::models;
use serde::{Deserialize, Serialize};
use std::path::PathBuf;

/// Seed salt for the deterministic prune mask of sparse golden builds.
/// `tests/netserve_loopback.rs` derives the same mask to serve the pinned
/// sparse firmware end-to-end.
const SPARSE_MASK_SALT: u64 = 0x5EED;

#[derive(Debug, Serialize, Deserialize)]
struct GoldenFile {
    /// `"mlp"` or `"unet"`.
    model: String,
    /// Model seed.
    seed: u64,
    /// Weight density: 1.0 for the dense build; below 1.0 the firmware is
    /// pruned with `sparsify_firmware(seed ^ SPARSE_MASK_SALT)` before the
    /// vectors are generated, so the fixture pins the sparse lowering.
    density: f64,
    /// `Firmware::content_digest()` as hex.
    digest: String,
    /// Input frames, each value an f64 bit pattern in hex.
    inputs: Vec<Vec<String>>,
    /// Expected outputs per frame, f64 bit patterns in hex.
    outputs: Vec<Vec<String>>,
}

fn hex(v: f64) -> String {
    format!("{:016x}", v.to_bits())
}

fn unhex(s: &str) -> f64 {
    f64::from_bits(u64::from_str_radix(s, 16).expect("hex f64 bit pattern"))
}

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden")
}

/// Deterministic synthetic frame in the standardized-input regime
/// (zero-mean, few-sigma range — the values the IP actually sees).
fn synth_frame(len: usize, frame: usize) -> Vec<f64> {
    (0..len)
        .map(|j| {
            let phase = (j as f64).mul_add(0.173, frame as f64 * 1.37);
            2.5 * phase.sin() + 0.25 * ((j % 17) as f64 - 8.0) / 8.0
        })
        .collect()
}

fn build_firmware(model: &str, seed: u64, density: f64) -> Firmware {
    let m = match model {
        "mlp" => models::reads_mlp(seed),
        "unet" => models::reads_unet(seed),
        other => panic!("unknown golden model {other}"),
    };
    let (input_len, _) = m.input_shape();
    let calib: Vec<Vec<f64>> = (0..6).map(|f| synth_frame(input_len, f + 100)).collect();
    let profile = profile_model(&m, &calib);
    let fw = convert(&m, &profile, &HlsConfig::paper_default());
    if density < 1.0 {
        sparsify_firmware(&fw, density, seed ^ SPARSE_MASK_SALT)
    } else {
        fw
    }
}

fn cases() -> Vec<(&'static str, u64, usize, f64)> {
    // (model, seed, frame count, weight density)
    vec![
        ("mlp", 3, 6, 1.0),
        ("mlp", 17, 4, 1.0),
        ("unet", 7, 4, 1.0),
        // Pruned profiles: the planner's density threshold is 0.5, so these
        // lower to CSR sparse kernels under the default (Auto) plan.
        ("mlp", 3, 6, 0.35),
        ("unet", 7, 4, 0.35),
    ]
}

fn file_name(model: &str, seed: u64, density: f64) -> String {
    if density < 1.0 {
        let pct = (density * 100.0).round() as u32;
        format!("{model}_seed{seed}_d{pct}.json")
    } else {
        format!("{model}_seed{seed}.json")
    }
}

fn generate(model: &str, seed: u64, frames: usize, density: f64) -> GoldenFile {
    let fw = build_firmware(model, seed, density);
    let n_in = fw.input_len * fw.input_channels;
    let inputs: Vec<Vec<f64>> = (0..frames).map(|f| synth_frame(n_in, f)).collect();
    let outputs: Vec<Vec<f64>> = inputs.iter().map(|x| fw.infer(x).0).collect();
    GoldenFile {
        model: model.to_string(),
        seed,
        density,
        digest: format!("{:016x}", fw.content_digest()),
        inputs: inputs
            .iter()
            .map(|x| x.iter().copied().map(hex).collect())
            .collect(),
        outputs: outputs
            .iter()
            .map(|x| x.iter().copied().map(hex).collect())
            .collect(),
    }
}

#[test]
fn golden_vectors_hold_bit_exactly() {
    let regen = std::env::var("REGEN_GOLDEN").is_ok_and(|v| v == "1");
    for (model, seed, frames, density) in cases() {
        let path = golden_dir().join(file_name(model, seed, density));
        if regen {
            let gf = generate(model, seed, frames, density);
            std::fs::create_dir_all(golden_dir()).expect("create tests/golden");
            std::fs::write(&path, serde_json::to_string_pretty(&gf).unwrap())
                .expect("write golden file");
            continue;
        }
        let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            panic!(
                "missing golden file {} ({e}); run REGEN_GOLDEN=1 cargo test --test golden_vectors",
                path.display()
            )
        });
        let gf: GoldenFile = serde_json::from_str(&text).expect("parse golden file");
        assert_eq!(gf.model, model);
        assert_eq!(gf.seed, seed);
        assert!((gf.density - density).abs() < 1e-12);
        assert_eq!(gf.inputs.len(), frames, "{model} seed {seed} frame count");

        let fw = build_firmware(model, seed, density);
        assert_eq!(
            format!("{:016x}", fw.content_digest()),
            gf.digest,
            "{model} seed {seed}: conversion pipeline changed — regenerate and review"
        );

        let inputs: Vec<Vec<f64>> = gf
            .inputs
            .iter()
            .map(|x| x.iter().map(|s| unhex(s)).collect())
            .collect();
        for (f, (x, want_hex)) in inputs.iter().zip(&gf.outputs).enumerate() {
            let (got, _) = fw.infer(x);
            assert_eq!(got.len(), want_hex.len(), "{model} seed {seed} frame {f}");
            for (j, (g, w)) in got.iter().zip(want_hex).enumerate() {
                assert_eq!(
                    hex(*g),
                    *w,
                    "{model} seed {seed} frame {f} output {j}: {} != {}",
                    g,
                    unhex(w)
                );
            }
        }
    }
}

#[test]
fn compiled_engine_matches_golden_vectors_bit_exactly() {
    // The lowered integer-quanta engine must reproduce the checked-in
    // vectors to the last mantissa bit, carry the source firmware's digest,
    // and report identical overflow statistics — through one reused scratch
    // arena, the way the production engine runs it. Every case is asserted
    // on the forced-scalar plan and the host's detected SIMD plan; the
    // sparse fixtures additionally prove the default plan actually selects
    // CSR kernels (they would pass vacuously on a dense-only planner).
    if std::env::var("REGEN_GOLDEN").is_ok_and(|v| v == "1") {
        // Regen runs write the fixtures in a parallel test; don't race them.
        return;
    }
    for (model, seed, _, density) in cases() {
        let path = golden_dir().join(file_name(model, seed, density));
        let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            panic!(
                "missing golden file {} ({e}); run REGEN_GOLDEN=1 cargo test --test golden_vectors",
                path.display()
            )
        });
        let gf: GoldenFile = serde_json::from_str(&text).expect("parse golden file");

        let fw = build_firmware(model, seed, density);
        for simd in [SimdPref::Scalar, SimdPref::Auto] {
            let cfg = PlanConfig {
                simd,
                ..PlanConfig::default()
            };
            let engine = CompiledFirmware::lower_with(&fw, &cfg);
            assert_eq!(
                format!("{:016x}", engine.content_digest()),
                gf.digest,
                "{model} seed {seed} d={density}: compiled digest must pin the source firmware"
            );
            if density < 1.0 && simd == SimdPref::Auto {
                assert!(
                    engine.kernel_mix().sparse > 0,
                    "{model} seed {seed} d={density}: sparse fixture must lower to CSR kernels"
                );
            }

            let mut scratch = engine.scratch();
            for (f, (x_hex, want_hex)) in gf.inputs.iter().zip(&gf.outputs).enumerate() {
                let x: Vec<f64> = x_hex.iter().map(|s| unhex(s)).collect();
                let (want_ref, want_stats) = fw.infer(&x);
                let (got, got_stats) = engine.infer_into(&x, &mut scratch);
                for (j, (g, w)) in got.iter().zip(want_hex).enumerate() {
                    assert_eq!(
                        hex(*g),
                        *w,
                        "{model} seed {seed} d={density} frame {f} output {j} ({simd:?}): \
                         compiled {} != golden {}",
                        g,
                        unhex(w)
                    );
                }
                assert_eq!(got.len(), want_ref.len());
                assert_eq!(
                    *got_stats, want_stats,
                    "{model} seed {seed} d={density} frame {f} ({simd:?}): overflow statistics \
                     diverge"
                );
            }
        }
    }
}

#[test]
fn batched_path_is_bit_identical_to_sequential() {
    for (model, seed, frames, density) in cases() {
        let fw = build_firmware(model, seed, density);
        let n_in = fw.input_len * fw.input_channels;
        let inputs: Vec<Vec<f64>> = (0..frames).map(|f| synth_frame(n_in, f)).collect();
        let sequential: Vec<Vec<f64>> = inputs.iter().map(|x| fw.infer(x).0).collect();
        let (batched, _) = fw.infer_batch(&inputs);
        assert_eq!(batched.len(), sequential.len());
        for (f, (b, s)) in batched.iter().zip(&sequential).enumerate() {
            let b_bits: Vec<u64> = b.iter().map(|v| v.to_bits()).collect();
            let s_bits: Vec<u64> = s.iter().map(|v| v.to_bits()).collect();
            assert_eq!(b_bits, s_bits, "{model} seed {seed} frame {f}");
        }
    }
}

#[test]
fn parallel_workers_with_cloned_firmware_are_bit_identical() {
    // The engine's parallelism is cloned firmware on worker threads; prove
    // the clone+thread combination cannot perturb a single bit.
    let fw = build_firmware("mlp", 3, 1.0);
    let n_in = fw.input_len * fw.input_channels;
    let inputs: Vec<Vec<f64>> = (0..16).map(|f| synth_frame(n_in, f)).collect();
    let sequential: Vec<Vec<f64>> = inputs.iter().map(|x| fw.infer(x).0).collect();

    let workers = 4;
    let chunk = inputs.len().div_ceil(workers);
    let parallel: Vec<Vec<f64>> = std::thread::scope(|s| {
        let handles: Vec<_> = inputs
            .chunks(chunk)
            .map(|part| {
                let worker_fw = fw.clone();
                s.spawn(move || {
                    part.iter()
                        .map(|x| worker_fw.infer(x).0)
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("worker"))
            .collect()
    });
    assert_eq!(parallel.len(), sequential.len());
    for (f, (p, s)) in parallel.iter().zip(&sequential).enumerate() {
        let p_bits: Vec<u64> = p.iter().map(|v| v.to_bits()).collect();
        let s_bits: Vec<u64> = s.iter().map(|v| v.to_bits()).collect();
        assert_eq!(p_bits, s_bits, "frame {f}");
    }
}
