//! Concurrency tests for the sharded inference engine.
//!
//! The contracts under test:
//!
//! * worker count is unobservable in the *outputs* — an N-worker run
//!   produces the same verdicts, bit for bit, as a 1-worker run of the
//!   same deterministic stream;
//! * shutdown drains: every accepted frame is accounted processed, lost,
//!   or dropped — nothing vanishes, under either drop policy;
//! * backpressure edges are exact: a full shard queue under `DropNewest`
//!   sheds precisely the overflow (proved with a barrier-held worker, not
//!   sleeps);
//! * one wedged shard degrades only itself — the other shards' frames all
//!   complete (the PR 1 watchdog isolation property, now per shard).

use reads::blm::hubs::MultiChainSource;
use reads::blm::Standardizer;
use reads::central::engine::{
    BatchOutcome, DropPolicy, EngineConfig, NativeExecutor, ShardExecutor, ShardedEngine,
    SocExecutor,
};
use reads::central::resilience::{HealthState, WatchdogPolicy};
use reads::hls4ml::{convert, profile_model, Firmware, HlsConfig};
use reads::nn::models;
use reads::sim::SimDuration;
use reads::soc::node::FrameTiming;
use reads::soc::HpsModel;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Barrier};

fn mlp_firmware(seed: u64) -> Firmware {
    let m = models::reads_mlp(seed);
    let calib = vec![vec![0.3; 259], vec![-0.4; 259]];
    let profile = profile_model(&m, &calib);
    convert(&m, &profile, &HlsConfig::paper_default())
}

fn standardizer() -> Standardizer {
    Standardizer {
        mean: 112_000.0,
        std: 3_500.0,
    }
}

#[test]
fn worker_count_does_not_change_outputs() {
    let fw = mlp_firmware(21);
    let std = standardizer();
    let stream = MultiChainSource::new(6, 77).ticks(10);
    let run = |workers: usize| {
        ShardedEngine::run_stream(
            &EngineConfig {
                workers,
                batch: 4,
                ..EngineConfig::default()
            },
            &std,
            |_| Box::new(NativeExecutor::new(fw.clone(), &HpsModel::default())),
            stream.clone(),
        )
        .0
    };
    let one = run(1);
    for workers in [2, 4, 6] {
        let many = run(workers);
        assert_eq!(one.len(), many.len(), "{workers} workers");
        for (a, b) in one.iter().zip(&many) {
            assert_eq!((a.chain, a.sequence), (b.chain, b.sequence));
            // DeblendVerdict compares f64 vectors exactly — worker count
            // must be invisible down to the last bit.
            assert_eq!(a.verdict, b.verdict, "chain {} seq {}", a.chain, a.sequence);
        }
    }
}

/// Executor that parks on a barrier inside its first batch, signalling the
/// test when the worker is inside `run_batch` (so queue-fill assertions
/// race nothing).
struct BarrierExecutor {
    barrier: Arc<Barrier>,
    entered: mpsc::Sender<()>,
    held_once: AtomicBool,
    out_len: usize,
}

impl ShardExecutor for BarrierExecutor {
    fn input_len(&self) -> usize {
        260
    }

    fn run_batch(&mut self, inputs: &[Vec<f64>]) -> BatchOutcome {
        if !self.held_once.swap(true, Ordering::SeqCst) {
            let _ = self.entered.send(());
            self.barrier.wait();
        }
        let timing = FrameTiming {
            write: SimDuration::ZERO,
            control: SimDuration::ZERO,
            compute: SimDuration::from_cycles(100),
            irq: SimDuration::ZERO,
            read: SimDuration::ZERO,
            misc: SimDuration::ZERO,
            preempted: false,
            total: SimDuration::from_cycles(100),
        };
        BatchOutcome {
            outputs: inputs
                .iter()
                .map(|_| Some(vec![0.0; self.out_len]))
                .collect(),
            timings: vec![timing; inputs.len()],
            stats: Default::default(),
            busy: SimDuration::from_cycles(100 * inputs.len() as u64),
        }
    }
}

#[test]
fn drop_newest_sheds_exactly_the_overflow() {
    let barrier = Arc::new(Barrier::new(2));
    let (entered_tx, entered_rx) = mpsc::channel();
    let cfg = EngineConfig {
        workers: 1,
        batch: 1,
        queue_depth: 2,
        drop_policy: DropPolicy::DropNewest,
        deadline: None,
        ..EngineConfig::default()
    };
    let worker_barrier = barrier.clone();
    let mut engine = ShardedEngine::start(&cfg, &standardizer(), move |_| {
        Box::new(BarrierExecutor {
            barrier: worker_barrier.clone(),
            entered: entered_tx.clone(),
            held_once: AtomicBool::new(false),
            out_len: 520,
        })
    });

    let stream = MultiChainSource::new(1, 5).ticks(8);
    let mut accepted = 0;
    let mut it = stream.into_iter();

    // First frame: the worker dequeues it and parks inside run_batch.
    assert!(engine.submit(it.next().unwrap()));
    accepted += 1;
    entered_rx.recv().expect("worker entered run_batch");

    // Queue (depth 2) now fills; everything beyond sheds.
    let mut shed = 0;
    for frame in it {
        if engine.submit(frame) {
            accepted += 1;
        } else {
            shed += 1;
        }
    }
    assert_eq!(accepted, 3, "held frame + queue depth 2");
    assert_eq!(shed, 5, "8 submitted - 3 capacity");

    barrier.wait(); // release the worker
    let (results, report) = engine.finish();
    assert_eq!(results.len(), 3, "every accepted frame drained");
    assert_eq!(report.submitted, 3);
    assert_eq!(report.dropped_backpressure, 5);
    assert_eq!(report.processed(), 3);
}

#[test]
fn block_policy_is_lossless() {
    let fw = mlp_firmware(33);
    let stream = MultiChainSource::new(4, 13).ticks(12);
    let total = stream.len();
    let (results, report) = ShardedEngine::run_stream(
        &EngineConfig {
            workers: 2,
            batch: 8,
            queue_depth: 2, // tiny queue: submitters must block, not drop
            drop_policy: DropPolicy::Block,
            deadline: None,
            ..EngineConfig::default()
        },
        &standardizer(),
        |_| Box::new(NativeExecutor::new(fw.clone(), &HpsModel::default())),
        stream,
    );
    assert_eq!(results.len(), total);
    assert_eq!(report.dropped_backpressure, 0);
    assert_eq!(report.processed() as usize, total);
}

#[test]
fn wedged_shard_degrades_only_itself() {
    let fw = mlp_firmware(44);
    let hps = HpsModel::default();
    let stream = MultiChainSource::new(2, 91).ticks(6);
    let (results, report) = ShardedEngine::run_stream(
        &EngineConfig {
            workers: 2,
            ..EngineConfig::default()
        },
        &standardizer(),
        |shard| {
            let mut exec = SocExecutor::new(
                fw.clone(),
                &hps,
                2,
                WatchdogPolicy::default(),
                7 ^ shard as u64,
            );
            if shard == 0 {
                // Both of shard 0's IPs start wedged: every chain-0 frame
                // is lost, but nothing else about the fleet changes.
                exec.array_mut().mark_wedged(0);
                exec.array_mut().mark_wedged(1);
            }
            Box::new(exec)
        },
        stream,
    );
    assert_eq!(report.shards[0].processed, 0);
    assert_eq!(report.shards[0].lost, 6);
    assert_eq!(report.shards[1].processed, 6);
    assert_eq!(report.shards[1].lost, 0);
    assert_eq!(report.shards[1].health, HealthState::Healthy);
    assert_eq!(results.len(), 6);
    assert!(
        results.iter().all(|r| r.chain == 1),
        "only chain 1 survives"
    );
}
