//! The closed adaptation loop over a **live** engine: drift injection →
//! detection → background retrain → guarded promotion, plus the loop's
//! failure ladder and the hot-path guarantees of the frame reservoir.
//!
//! The contracts under test:
//!
//! * under an injected gain/offset campaign the supervisor detects the
//!   shift through the engine's drift monitors, retrains in the
//!   background and promotes a candidate through the live shadow canary
//!   — while the producer never pauses and no accepted frame is lost;
//! * a sabotaged pipeline (2-bit candidates that cannot track their own
//!   float model) rolls back every attempt offline, backs off, and trips
//!   the loop to `Degraded` after the configured strike count — with the
//!   incumbent serving untouched throughout;
//! * `reset_degraded` re-arms the loop and the kill switch halts it;
//! * a wedged retrainer holding the reservoir lock can never block the
//!   engine's hot path: offers shed instead of waiting;
//! * the reservoir is a pure function of (seed, offer sequence) and its
//!   memory is bounded by its capacity, whatever the stream length.

use proptest::prelude::*;
use reads::blm::hubs::MultiChainSource;
use reads::blm::{DriftCampaign, FrameGenerator, Standardizer};
use reads::central::adapt::{AdaptConfig, AdaptState, AdaptSupervisor, FrameTap, Reservoir};
use reads::central::engine::{DropPolicy, EngineConfig, ShardedEngine};
use reads::central::{ModelRegistry, PlacementPlanner, ShadowGate, ShardBudget};
use reads::hls4ml::{convert, profile_model, Firmware, HlsConfig};
use reads::nn::{models, Model};
use reads::soc::HpsModel;
use std::time::{Duration, Instant};

const SEED: u64 = 31;
const CHAINS: usize = 2;

fn standardizer() -> Standardizer {
    Standardizer {
        mean: 112_000.0,
        std: 3_500.0,
    }
}

fn mlp() -> Model {
    models::reads_mlp(SEED)
}

fn mlp_firmware(model: &Model) -> Firmware {
    let calib = vec![vec![0.3; 259], vec![-0.4; 259]];
    let profile = profile_model(model, &calib);
    convert(model, &profile, &HlsConfig::paper_default())
}

/// The bench's campaign shape: immediate full-strength gain/offset shift
/// (~2.7σ in the raw stream), strong enough that a 32-frame monitor
/// window flags `Retrain` on its first completion.
fn campaign() -> DriftCampaign {
    DriftCampaign {
        seed: SEED,
        start_frame: 0,
        ramp_frames: 0,
        gain: 1.07,
        offset: 1_700.0,
        decal_monitors: 0,
        decal_spread: 0.0,
        step_frame: u64::MAX,
        step_offset: 0.0,
    }
}

fn wide_open_budget() -> ShardBudget {
    ShardBudget {
        ip_aluts: u64::MAX / 4,
        dsps: u64::MAX / 4,
        m20k_blocks: u64::MAX / 4,
    }
}

/// Engine + registry + supervisor over the drifted stream; returns the
/// supervisor's final report and the engine's served/accepted accounting.
fn run_loop(
    quant_width: u32,
    settle: impl Fn(&AdaptSupervisor) -> bool,
) -> (reads::central::adapt::AdaptReport, u64, u64) {
    let model = mlp();
    let std = standardizer();
    let incumbent = mlp_firmware(&model);

    let mut registry = ModelRegistry::new();
    registry.add_tenant(1, "blm-adaptive", 1, None).unwrap();
    registry.register_live(1, incumbent).unwrap();
    let plan = PlacementPlanner::new(wide_open_budget(), 2)
        .plan(&registry)
        .unwrap();
    let cfg = EngineConfig {
        workers: 2,
        batch: 2,
        queue_depth: 128,
        drop_policy: DropPolicy::Block,
        drift_window: 32,
        drift_campaign: Some(campaign()),
        ..EngineConfig::default()
    };
    let mut engine =
        ShardedEngine::start_multi(&cfg, &std, &registry, &plan, &HpsModel::default()).unwrap();

    let acfg = AdaptConfig {
        reservoir_capacity: 64,
        min_snapshot: 24,
        min_labeled: 24,
        max_epochs: 2,
        retrain_budget: Duration::from_millis(800),
        quant_width,
        poll_interval: Duration::from_millis(5),
        cooldown: Duration::from_millis(20),
        backoff_base: Duration::from_millis(10),
        backoff_max: Duration::from_millis(40),
        gate: ShadowGate {
            tolerance: 0.20,
            min_accuracy: 0.0,
            min_frames: 8,
        },
        ..AdaptConfig::paper_default(1)
    };
    let supervisor = AdaptSupervisor::start(
        acfg,
        model,
        std,
        engine.controller(),
        registry,
        HpsModel::default(),
    )
    .unwrap();
    let tap = supervisor.tap();

    // The producer: paced ticks that never pause for the retrainer. The
    // test labels the drifted stream the way replay studies do.
    let c = campaign();
    let truth = FrameGenerator::with_defaults(SEED);
    let mut src = MultiChainSource::new(CHAINS, SEED);
    let mut accepted = 0u64;
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let seq = u64::from(src.next_sequence());
        for frame in src.tick() {
            assert!(engine.submit_for(1, frame).unwrap(), "tenant vanished");
            accepted += 1;
        }
        let t = truth.frame(seq);
        let mut drifted = t.readings.clone();
        c.apply(seq, &mut drifted);
        let mut targets = Vec::with_capacity(518);
        targets.extend_from_slice(&t.frac_mi[..259]);
        targets.extend_from_slice(&t.frac_rr[..259]);
        tap.offer_labeled(&drifted, &targets);
        if settle(&supervisor) {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "loop never settled: state {:?} counters {:?}",
            supervisor.state(),
            supervisor.counters()
        );
        std::thread::sleep(Duration::from_micros(200));
    }
    let report = supervisor.stop();
    let (results, fleet) = engine.finish();
    assert_eq!(
        fleet.dropped_backpressure, 0,
        "Block policy must never drop accepted frames"
    );
    (report, accepted, results.len() as u64)
}

#[test]
fn closed_loop_promotes_under_injected_drift() {
    let (report, accepted, served) = run_loop(16, |sup| sup.counters().promoted > 0);
    assert_eq!(served, accepted, "every accepted frame must be served");
    assert!(report.counters.retrains >= 1, "a retrain must have fired");
    assert_eq!(report.counters.promoted, 1, "exactly one promotion");
    assert_eq!(
        report.counters.rolled_back, 0,
        "an honest candidate never rolls back"
    );
    assert!(
        report
            .events
            .iter()
            .any(|e| matches!(e, reads::central::adapt::AdaptEvent::Promoted { .. })),
        "promotion must be recorded as an event: {:?}",
        report.events
    );
}

#[test]
fn sabotaged_candidates_strike_out_to_degraded() {
    // 2-bit candidates cannot track their own float model within the
    // offline fidelity gate; each attempt is a strike.
    let (report, accepted, served) = run_loop(2, |sup| sup.state() == AdaptState::Degraded);
    assert_eq!(served, accepted);
    assert_eq!(
        report.counters.promoted, 0,
        "no sabotaged candidate may ship"
    );
    assert_eq!(
        report.counters.rolled_back, 3,
        "each strike is a rollback: {:?}",
        report.counters
    );
    assert!(
        report.counters.backoffs >= 1,
        "strikes before the trip must back off"
    );
    assert!(
        report.events.iter().any(|e| matches!(
            e,
            reads::central::adapt::AdaptEvent::Degraded { consecutive: 3 }
        )),
        "the trip must be recorded: {:?}",
        report.events
    );
}

#[test]
fn kill_switch_halts_the_loop() {
    let model = mlp();
    let std = standardizer();
    let incumbent = mlp_firmware(&model);
    let mut registry = ModelRegistry::new();
    registry.add_tenant(1, "blm-adaptive", 1, None).unwrap();
    registry.register_live(1, incumbent).unwrap();
    let plan = PlacementPlanner::new(wide_open_budget(), 1)
        .plan(&registry)
        .unwrap();
    let cfg = EngineConfig {
        workers: 1,
        ..EngineConfig::default()
    };
    let engine =
        ShardedEngine::start_multi(&cfg, &std, &registry, &plan, &HpsModel::default()).unwrap();
    let supervisor = AdaptSupervisor::start(
        AdaptConfig {
            poll_interval: Duration::from_millis(2),
            ..AdaptConfig::paper_default(1)
        },
        model,
        std,
        engine.controller(),
        registry,
        HpsModel::default(),
    )
    .unwrap();
    supervisor.kill();
    let deadline = Instant::now() + Duration::from_secs(10);
    while supervisor.state() != AdaptState::Killed {
        assert!(Instant::now() < deadline, "kill switch never landed");
        std::thread::sleep(Duration::from_millis(2));
    }
    let report = supervisor.stop();
    assert_eq!(report.state, AdaptState::Killed);
    assert_eq!(report.counters.promoted, 0);
    drop(engine.finish());
}

#[test]
fn wedged_retrainer_never_blocks_the_engine() {
    let model = mlp();
    let std = standardizer();
    let incumbent = mlp_firmware(&model);
    let mut registry = ModelRegistry::new();
    registry.add_tenant(1, "blm-adaptive", 1, None).unwrap();
    registry.register_live(1, incumbent).unwrap();
    let plan = PlacementPlanner::new(wide_open_budget(), 2)
        .plan(&registry)
        .unwrap();
    let cfg = EngineConfig {
        workers: 2,
        batch: 2,
        drop_policy: DropPolicy::Block,
        ..EngineConfig::default()
    };
    let mut engine =
        ShardedEngine::start_multi(&cfg, &std, &registry, &plan, &HpsModel::default()).unwrap();

    let tap = FrameTap::new(32, SEED);
    engine.controller().attach_frame_tap(&tap).unwrap();

    // Wedge: the "retrainer" goes to lunch holding the reservoir.
    let guard = tap.reservoir();
    let mut src = MultiChainSource::new(CHAINS, SEED);
    let mut accepted = 0u64;
    let t0 = Instant::now();
    for _ in 0..200 {
        for frame in src.tick() {
            assert!(engine.submit_for(1, frame).unwrap());
            accepted += 1;
        }
    }
    let (results, fleet) = engine.finish();
    drop(guard);
    assert!(
        t0.elapsed() < Duration::from_secs(30),
        "hot path stalled behind the wedged reservoir"
    );
    assert_eq!(fleet.dropped_backpressure, 0);
    assert_eq!(
        results.len() as u64,
        accepted,
        "all frames served while wedged"
    );
    assert_eq!(
        tap.offers(),
        accepted,
        "every served frame offered exactly once"
    );
    assert_eq!(
        tap.sheds(),
        accepted,
        "every offer against the held reservoir must shed, not queue"
    );
    assert_eq!(tap.reservoir().seen(), 0, "nothing may land while wedged");
}

proptest! {
    /// The reservoir is a pure function of (seed, offer sequence): two
    /// instances fed identically are bit-identical, and memory stays
    /// bounded by capacity no matter how long the stream runs.
    #[test]
    fn reservoir_is_deterministic_and_bounded(
        seed in any::<u64>(),
        capacity in 1usize..48,
        offers in 1u64..600,
    ) {
        let mut a = Reservoir::new(capacity, seed);
        let mut b = Reservoir::new(capacity, seed);
        for i in 0..offers {
            let frame = [i as f64, (i * 7) as f64, -(i as f64)];
            a.offer(&frame, None);
            b.offer(&frame, None);
            prop_assert!(a.len() <= capacity, "capacity breached");
        }
        prop_assert_eq!(a.seen(), offers);
        prop_assert_eq!(a.len(), capacity.min(offers as usize));
        let (sa, sb) = (a.snapshot(), b.snapshot());
        for (x, y) in sa.iter().zip(&sb) {
            prop_assert_eq!(&x.readings, &y.readings);
            prop_assert_eq!(x.stamp, y.stamp);
        }
    }
}
