//! The Sec. IV-D flexibility claim: "the U-Net IP can be easily replaced by
//! other IP cores as well, leveraging the general purpose interface
//! wrapper". This test swaps an anomaly-detection autoencoder into the same
//! hls4ml flow and SoC template and shows it (a) deploys unchanged, (b)
//! meets the 3 ms budget, and (c) does its job — abort-level beam
//! conditions score far above nominal ones.

use reads::blm::{FrameGenerator, Scenario, Standardizer};
use reads::hls4ml::{convert, profile_model, HlsConfig};
use reads::nn::models::{reads_autoencoder, reconstruction_error};
use reads::nn::train::{train, Dataset, TrainConfig};
use reads::nn::{Adam, Loss};
use reads::soc::hps::HpsModel;
use reads::soc::node::CentralNodeSim;

#[test]
fn autoencoder_ip_drops_into_the_same_template() {
    // Train the AE to reconstruct nominal (mixed-operations) frames.
    let gen = FrameGenerator::with_defaults(61);
    let frames = gen.batch(0, 160);
    let std = Standardizer::fit(&frames);
    let mut data = Dataset::default();
    for f in &frames {
        let x = std.apply_frame(&f.readings);
        data.inputs.push(x.clone());
        data.targets.push(x);
    }
    let mut ae = reads_autoencoder(61);
    let mut opt = Adam::new(0.003);
    let report = train(
        &mut ae,
        &data,
        &TrainConfig {
            epochs: 16,
            batch_size: 16,
            loss: Loss::Mse,
            seed: 2,
            grad_clip: Some(5.0),
        },
        &mut opt,
    );
    assert!(
        report.final_loss() < report.epoch_loss[0],
        "AE must learn to reconstruct"
    );

    // Same hls4ml flow, same interface wrapper, same SoC template.
    let calib: Vec<Vec<f64>> = gen
        .batch(200, 16)
        .iter()
        .map(|f| std.apply_frame(&f.readings))
        .collect();
    let profile = profile_model(&ae, &calib);
    let firmware = convert(&ae, &profile, &HlsConfig::paper_default());
    let mut node = CentralNodeSim::new(firmware, HpsModel::default(), 3);

    // Deploys and meets the deadline.
    let nominal = std.apply_frame(&gen.frame(300).readings);
    let (recon, timing) = node.run_frame(&nominal);
    assert_eq!(recon.len(), 260);
    assert!(
        timing.total.as_millis_f64() < 3.0,
        "AE IP latency {} must meet the 3 ms budget",
        timing.total
    );

    // Anomaly detection: abort-level frames score far above nominal. The
    // abort scenario draws Poisson event counts, so only frames that truly
    // contain an abort-scale loss (ground-truth MI mass present) count.
    let abort_gen = FrameGenerator::new(62, Scenario::AbortLevel.workload());
    let nominal_scores: Vec<f64> = (0..12)
        .map(|i| reconstruction_error(&ae, &std.apply_frame(&gen.frame(400 + i).readings)))
        .collect();
    let abort_scores: Vec<f64> = (0..24)
        .filter_map(|i| {
            let f = abort_gen.frame(i);
            (f.frac_mi.iter().sum::<f64>() > 10.0)
                .then(|| reconstruction_error(&ae, &std.apply_frame(&f.readings)))
        })
        .collect();
    assert!(abort_scores.len() >= 8, "need enough true abort frames");
    let nominal_max = nominal_scores.iter().fold(0.0f64, |m, &x| m.max(x));
    let abort_min = abort_scores.iter().fold(f64::INFINITY, |m, &x| m.min(x));
    assert!(
        abort_min > 2.0 * nominal_max,
        "abort frames must stand out: min abort {abort_min:.3} vs max nominal {nominal_max:.3}"
    );
}
