//! Zero-downtime hot-swap and resource-aware placement, end to end over
//! a **live** engine.
//!
//! The contracts under test:
//!
//! * staging → shadow-scoring → promotion happens under continuous load
//!   with zero accepted-frame loss, and every verdict emitted while the
//!   candidate was still shadowing is bit-identical to the incumbent's —
//!   a chain's stream is an incumbent-prefix / candidate-suffix with one
//!   switch point, never an interleaving;
//! * an out-of-tolerance candidate (the |q − float| ≤ 0.20 gate from the
//!   differential-quantization suite) is auto-rolled-back: the registry
//!   keeps the incumbent live, ticks `rolled_back`, and the **entire**
//!   verdict stream stays bit-identical to the incumbent — the candidate
//!   never leaks a single output;
//! * the placement planner is deterministic and never packs a shard past
//!   its budget, and rejects over-budget tenants with the typed resource
//!   that ran out.

use reads::blm::acnet::DeblendVerdict;
use reads::blm::hubs::{assemble_frame, ChainFrame, MultiChainSource};
use reads::blm::Standardizer;
use reads::central::engine::{EngineConfig, ShardedEngine};
use reads::central::{
    run_hot_swap, ModelRegistry, PlacementError, PlacementPlanner, ShadowGate, ShardBudget,
    SwapOutcome, TenantDemand,
};
use reads::hls4ml::config::PrecisionStrategy;
use reads::hls4ml::{convert, profile_model, Firmware, HlsConfig};
use reads::nn::models;
use reads::soc::HpsModel;
use std::time::Duration;

fn mlp_firmware(seed: u64, cfg: &HlsConfig) -> Firmware {
    let m = models::reads_mlp(seed);
    let calib = vec![vec![0.3; 259], vec![-0.4; 259]];
    let profile = profile_model(&m, &calib);
    convert(&m, &profile, cfg)
}

fn standardizer() -> Standardizer {
    Standardizer {
        mean: 112_000.0,
        std: 3_500.0,
    }
}

fn wide_open_budget() -> ShardBudget {
    ShardBudget {
        ip_aluts: u64::MAX / 4,
        dsps: u64::MAX / 4,
        m20k_blocks: u64::MAX / 4,
    }
}

/// Golden verdict for one frame under one firmware, computed sequentially
/// outside the engine.
fn golden(fw: &Firmware, std: &Standardizer, frame: &ChainFrame) -> DeblendVerdict {
    let readings = assemble_frame(&frame.packets).unwrap();
    let n_in = fw.input_len * fw.input_channels;
    let (out, _) = fw.infer(&std.apply_frame(&readings[..n_in]));
    DeblendVerdict::from_split_halves(frame.sequence, &out)
}

/// Drives one swap attempt under live load: tenant 1 serves `incumbent`,
/// `candidate` is registered and hot-swapped while frames stream in.
/// Returns everything needed for the per-case assertions.
fn swap_under_load(
    incumbent: &Firmware,
    candidate: &Firmware,
    frames: &[ChainFrame],
) -> (
    ModelRegistry,
    reads::central::SwapReport,
    Vec<reads::central::engine::FrameResult>,
    reads::central::engine::FleetReport,
    u64,
    u64,
) {
    let std = standardizer();
    let mut registry = ModelRegistry::new();
    registry.add_tenant(1, "blm-mlp", 1, None).unwrap();
    let dig_live = registry.register_live(1, incumbent.clone()).unwrap();
    let dig_cand = registry.register(1, candidate.clone()).unwrap();
    assert_ne!(dig_live, dig_cand, "candidate must be a different build");

    let plan = PlacementPlanner::new(wide_open_budget(), 2)
        .plan(&registry)
        .unwrap();
    let cfg = EngineConfig {
        workers: 2,
        batch: 2,
        ..EngineConfig::default()
    };
    let mut engine =
        ShardedEngine::start_multi(&cfg, &std, &registry, &plan, &HpsModel::default()).unwrap();
    let controller = engine.controller();

    // The swap drives itself on a side thread; the main thread is the
    // producer that never stops feeding — that is the "zero downtime".
    let gate = ShadowGate::paper_default(6);
    let hps = HpsModel::default();
    let swapper = std::thread::spawn(move || {
        let report = run_hot_swap(
            &controller,
            &mut registry,
            1,
            dig_cand,
            &gate,
            &hps,
            Duration::from_secs(30),
        )
        .expect("hot swap drives to a verdict");
        (registry, report)
    });

    let mut accepted = 0u64;
    let mut it = frames.iter().cycle();
    // Feed until the swap resolves, then a tail so post-decision routing
    // is observable; Block policy means every submit is accepted.
    while !swapper.is_finished() {
        assert!(engine.submit_for(1, it.next().unwrap().clone()).unwrap());
        accepted += 1;
        std::thread::sleep(Duration::from_micros(300));
    }
    for _ in 0..20 {
        assert!(engine.submit_for(1, it.next().unwrap().clone()).unwrap());
        accepted += 1;
    }
    let (registry, swap_report) = swapper.join().expect("swap thread");
    let (results, fleet) = engine.finish();
    (registry, swap_report, results, fleet, accepted, dig_cand)
}

/// Every accepted frame must come back, and per chain the verdict stream
/// must be an incumbent-prefix followed by a candidate-suffix (possibly
/// empty) — one switch point, no interleaving, no third value.
fn assert_prefix_switch(
    results: &[reads::central::engine::FrameResult],
    frames: &[ChainFrame],
    incumbent: &Firmware,
    candidate: &Firmware,
) -> (u64, u64) {
    let std = standardizer();
    let mut from_incumbent = 0u64;
    let mut from_candidate = 0u64;
    let chains: std::collections::BTreeSet<u32> = results.iter().map(|r| r.chain).collect();
    for chain in chains {
        // `finish()` sorts by (chain, sequence) and the producer cycles the
        // frame set, so the same sequence appears many times, grouped. The
        // sort is stable and the engine is FIFO per chain, so occurrences
        // within a group are chronological — and the producer walks
        // sequences in ascending order each cycle, so (occurrence, seq)
        // recovers the chain's true chronological stream.
        let mut seen: std::collections::HashMap<u32, u32> = std::collections::HashMap::new();
        let mut chrono: Vec<(u32, &reads::central::engine::FrameResult)> = results
            .iter()
            .filter(|r| r.chain == chain)
            .map(|r| {
                let occ = seen.entry(r.sequence).or_insert(0);
                let key = *occ;
                *occ += 1;
                (key, r)
            })
            .collect();
        chrono.sort_by_key(|(occ, r)| (*occ, r.sequence));
        let mut switched = false;
        for (_, r) in chrono {
            let frame = frames
                .iter()
                .find(|f| f.chain == r.chain && f.sequence == r.sequence)
                .unwrap();
            let inc = golden(incumbent, &std, frame);
            let cand = golden(candidate, &std, frame);
            if r.verdict == inc && !switched {
                from_incumbent += 1;
            } else if r.verdict == cand {
                switched = true;
                from_candidate += 1;
            } else {
                panic!(
                    "chain {chain} seq {}: verdict matches neither build \
                     (or reverted after the switch)",
                    r.sequence
                );
            }
        }
    }
    (from_incumbent, from_candidate)
}

#[test]
fn hot_swap_promotes_within_tolerance_candidate_under_live_load() {
    // Same trained model at two more bits of precision: a genuinely
    // different build (different digest, every verdict distinguishable
    // from the incumbent's) that tracks it well inside the paper
    // tolerance — the realistic "refined firmware update".
    let incumbent = mlp_firmware(3, &HlsConfig::paper_default());
    let candidate = mlp_firmware(
        3,
        &HlsConfig::with_strategy(PrecisionStrategy::LayerBased {
            width: 18,
            int_margin: 0,
        }),
    );
    let frames = MultiChainSource::new(2, 7).ticks(40);
    let (registry, swap, results, fleet, accepted, dig_cand) =
        swap_under_load(&incumbent, &candidate, &frames);

    assert_eq!(swap.outcome, SwapOutcome::Promoted);
    assert!(swap.shadow.frames >= 6, "gate saw its minimum window");
    assert!(swap.shadow.accuracy() >= 0.98);
    assert!(swap.promotion_latency_ms.is_some());
    assert_eq!(registry.live(1).unwrap().digest, dig_cand);
    assert_eq!(registry.counters().rolled_back, 0);
    // register_live's bootstrap is itself a promotion, hence 2.
    assert_eq!(registry.counters().promoted, 2);

    // Zero accepted-frame loss across the swap.
    assert_eq!(results.len() as u64, accepted, "no accepted frame lost");
    let lost: u64 = fleet.shards.iter().map(|s| s.lost).sum();
    assert_eq!(lost, 0);

    // Incumbent-prefix / candidate-suffix per chain, bit-exact both sides.
    let (from_inc, from_cand) = assert_prefix_switch(&results, &frames, &incumbent, &candidate);
    assert!(from_inc > 0, "some frames served by the incumbent");
    assert!(
        from_cand > 0,
        "the promoted candidate served the tail (inc {from_inc} / cand {from_cand})"
    );

    // The engine's own books agree the candidate is live everywhere.
    for shard in &fleet.shards {
        for t in shard.tenants.iter().filter(|t| t.tenant == 1) {
            assert_eq!(t.live_digest, dig_cand);
            assert!(t.shadow_digest.is_none(), "shadow resolved");
        }
    }
}

#[test]
fn hot_swap_rolls_back_out_of_tolerance_candidate_and_incumbent_is_untouched() {
    // A 3-bit build of the same model: catastrophic quantization error,
    // far outside the |q − float| ≤ 0.20 gate.
    let incumbent = mlp_firmware(3, &HlsConfig::paper_default());
    let candidate = mlp_firmware(
        3,
        &HlsConfig::with_strategy(PrecisionStrategy::LayerBased {
            width: 3,
            int_margin: 0,
        }),
    );
    let frames = MultiChainSource::new(2, 11).ticks(40);
    let (registry, swap, results, fleet, accepted, dig_cand) =
        swap_under_load(&incumbent, &candidate, &frames);

    assert_eq!(swap.outcome, SwapOutcome::RolledBack);
    assert!(swap.shadow.frames >= 6);
    assert!(swap.shadow.accuracy() < 0.98, "the gate had cause");
    assert!(swap.promotion_latency_ms.is_none());
    let live = registry.live(1).unwrap();
    assert_ne!(live.digest, dig_cand, "incumbent still live");
    assert_eq!(registry.counters().rolled_back, 1);
    assert_eq!(registry.counters().promoted, 1, "bootstrap only");

    // Zero loss, and the WHOLE stream is bit-identical to the incumbent:
    // the rejected candidate never emitted one verdict.
    assert_eq!(results.len() as u64, accepted);
    let lost: u64 = fleet.shards.iter().map(|s| s.lost).sum();
    assert_eq!(lost, 0);
    let std = standardizer();
    for r in &results {
        let frame = frames
            .iter()
            .find(|f| f.chain == r.chain && f.sequence == r.sequence)
            .unwrap();
        assert_eq!(
            r.verdict,
            golden(&incumbent, &std, frame),
            "chain {} seq {} diverged from the incumbent",
            r.chain,
            r.sequence
        );
    }
    for shard in &fleet.shards {
        for t in shard.tenants.iter().filter(|t| t.tenant == 1) {
            assert_eq!(t.live_digest, live.digest);
            assert!(t.shadow_digest.is_none(), "shadow dropped on rollback");
        }
    }
}

#[test]
fn placement_planner_is_deterministic_and_never_exceeds_budget() {
    // Deterministic pseudo-random demands (LCG — no RNG dependency).
    let mut state = 0x2545_F491_4F6C_DD1Du64;
    let mut next = move |range: u64| {
        state = state
            .wrapping_mul(6_364_136_223_846_793_005)
            .wrapping_add(1_442_695_040_888_963_407);
        (state >> 33) % range
    };
    let budget = ShardBudget {
        ip_aluts: 10_000,
        dsps: 600,
        m20k_blocks: 800,
    };
    let demands: Vec<TenantDemand> = (0..24)
        .map(|i| TenantDemand {
            tenant: i + 1,
            ip_aluts: 500 + next(2_000),
            dsps: 10 + next(100),
            m20k_blocks: 20 + next(120),
        })
        .collect();
    let planner = PlacementPlanner::new(budget, 6);
    let a = planner.plan_demands(&demands).unwrap();
    let b = planner.plan_demands(&demands).unwrap();
    assert_eq!(format!("{a:?}"), format!("{b:?}"), "same input, same plan");
    // Invariant: per-shard usage never exceeds any budget dimension, and
    // the usage is exactly the sum of what was assigned there.
    for (shard, used) in a.usage.iter().enumerate() {
        assert!(used.ip_aluts <= budget.ip_aluts, "shard {shard} aluts");
        assert!(used.dsps <= budget.dsps, "shard {shard} dsps");
        assert!(used.m20k_blocks <= budget.m20k_blocks, "shard {shard} m20k");
        let mut sum = (0u64, 0u64, 0u64);
        for d in &demands {
            if a.shards_of(d.tenant).contains(&shard) {
                sum.0 += d.ip_aluts;
                sum.1 += d.dsps;
                sum.2 += d.m20k_blocks;
            }
        }
        assert_eq!((used.ip_aluts, used.dsps, used.m20k_blocks), sum);
    }
    // Every tenant landed somewhere, exactly once.
    for d in &demands {
        assert_eq!(a.shards_of(d.tenant).len(), 1, "tenant {}", d.tenant);
    }
    // An impossible tenant is a typed rejection naming the resource.
    let mut impossible = demands.clone();
    impossible.push(TenantDemand {
        tenant: 99,
        ip_aluts: budget.ip_aluts + 1,
        dsps: 1,
        m20k_blocks: 1,
    });
    match planner.plan_demands(&impossible) {
        Err(PlacementError::OverBudget {
            tenant, resource, ..
        }) => {
            assert_eq!(tenant, 99);
            assert_eq!(resource, "aluts");
        }
        other => panic!("expected OverBudget, got {other:?}"),
    }
}
