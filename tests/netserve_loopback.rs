//! Loopback conformance for the TCP serving plane.
//!
//! A real `HubGateway` binds on 127.0.0.1 and the golden-vector firmware
//! (digest-pinned against `tests/golden/mlp_seed3.json`, exactly like
//! `tests/golden_vectors.rs`) serves frames pushed through real sockets.
//! The verdicts that come back over TCP must be **bit-identical** to
//! running the same firmware in-process — the wire carries f64 bit
//! patterns, so a single flipped mantissa bit anywhere in codec, gateway
//! or engine fails loudly.
//!
//! The shutdown test then proves the gateway's lossless contract: a
//! graceful shutdown under live load may refuse late frames, but every
//! frame that was accepted-and-acked produces a verdict that reaches the
//! subscriber before the socket closes.

use reads::blm::acnet::DeblendVerdict;
use reads::blm::dataset::Standardizer;
use reads::blm::hubs::{assemble_frame, MultiChainSource};
use reads::central::engine::{EngineConfig, ShardedEngine};
use reads::hls4ml::{convert, profile_model, sparsify_firmware, Firmware, HlsConfig};
use reads::net::wire::{Msg, Role};
use reads::net::{GatewayClient, GatewayConfig, HubGateway, SlowConsumerPolicy};
use reads::nn::models;
use reads::soc::HpsModel;
use std::collections::BTreeMap;
use std::time::Duration;

/// Same synthetic calibration regime as `tests/golden_vectors.rs` — the
/// firmware this builds must carry the digest checked in there.
fn synth_frame(len: usize, frame: usize) -> Vec<f64> {
    (0..len)
        .map(|j| {
            let phase = (j as f64).mul_add(0.173, frame as f64 * 1.37);
            2.5 * phase.sin() + 0.25 * ((j % 17) as f64 - 8.0) / 8.0
        })
        .collect()
}

fn build_firmware() -> Firmware {
    let m = models::reads_mlp(3);
    let (input_len, _) = m.input_shape();
    let calib: Vec<Vec<f64>> = (0..6).map(|f| synth_frame(input_len, f + 100)).collect();
    let profile = profile_model(&m, &calib);
    convert(&m, &profile, &HlsConfig::paper_default())
}

/// The pruned serving build: same model and mask as the
/// `mlp_seed3_d35.json` sparse golden fixture (density 0.35, mask seed
/// `seed ^ 0x5EED`), so the gateway serves the planner's CSR kernels.
fn build_sparse_firmware() -> Firmware {
    sparsify_firmware(&build_firmware(), 0.35, 3 ^ 0x5EED)
}

fn pinned_digest_in(file: &str) -> String {
    let path = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(file);
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("golden file {file}: {e}"));
    let tail = text
        .split("\"digest\"")
        .nth(1)
        .expect("digest field present");
    let mut quotes = tail.split('"');
    quotes.next(); // text between ':' and the opening quote
    quotes.next().expect("digest value").to_string()
}

fn pinned_digest() -> String {
    pinned_digest_in("mlp_seed3.json")
}

fn standardizer() -> Standardizer {
    Standardizer {
        mean: 112_000.0,
        std: 3_500.0,
    }
}

fn bits(xs: &[f64]) -> Vec<u64> {
    xs.iter().map(|x| x.to_bits()).collect()
}

#[test]
fn loopback_verdicts_bit_identical_to_in_process() {
    loopback_conformance(build_firmware(), &pinned_digest());
}

/// The sparse serving path: the pruned firmware (pinned against the sparse
/// golden fixture) rides the same gateway, so the planner's CSR kernels are
/// exercised end-to-end through real sockets — and must still be
/// bit-identical to in-process interpretation.
#[test]
fn sparse_loopback_verdicts_bit_identical_to_in_process() {
    loopback_conformance(
        build_sparse_firmware(),
        &pinned_digest_in("mlp_seed3_d35.json"),
    );
}

fn loopback_conformance(fw: Firmware, want_digest: &str) {
    assert_eq!(
        format!("{:016x}", fw.content_digest()),
        want_digest,
        "serving-plane firmware must be the digest-pinned golden build"
    );
    let std = standardizer();
    let chains = 4usize;
    let ticks = 6usize;

    // In-process reference: sequential inference over the same frames.
    let frames = MultiChainSource::new(chains, 3).ticks(ticks);
    let n_in = fw.input_len * fw.input_channels;
    let mut expect: BTreeMap<(u32, u32), Vec<f64>> = BTreeMap::new();
    for cf in &frames {
        let readings = assemble_frame(&cf.packets).expect("synthetic frame assembles");
        let (out, _) = fw.infer(&std.apply_frame(&readings[..n_in]));
        // Same output-layout dispatch as the engine's shard worker.
        let verdict = if out.len() == 2 * reads::blm::N_BLM {
            DeblendVerdict::from_interleaved(cf.sequence, &out)
        } else {
            DeblendVerdict::from_split_halves(cf.sequence, &out)
        };
        let mut flat = verdict.mi.clone();
        flat.extend_from_slice(&verdict.rr);
        expect.insert((cf.chain, cf.sequence), flat);
    }

    // The served path: same firmware, through real sockets.
    let engine = ShardedEngine::native(&EngineConfig::default(), &fw, &HpsModel::default(), &std);
    let handle = HubGateway::start("127.0.0.1:0", GatewayConfig::default(), engine)
        .expect("bind loopback gateway");
    let addr = handle.local_addr();

    let mut subscriber =
        GatewayClient::connect(addr, Role::Subscriber).expect("subscriber connects");
    // Let the subscriber's registration reach the hub before verdicts flow.
    while handle.sessions() < 1 {
        std::thread::sleep(Duration::from_millis(2));
    }
    std::thread::sleep(Duration::from_millis(25));

    let mut producer = GatewayClient::connect(addr, Role::Producer).expect("producer connects");
    for cf in &frames {
        producer.send_frame(cf).expect("send frame");
    }

    let total = chains * ticks;
    let mut got: BTreeMap<(u32, u32), Vec<f64>> = BTreeMap::new();
    while got.len() < total {
        let v = subscriber
            .recv_verdict(Duration::from_secs(10))
            .expect("subscriber stream healthy")
            .expect("verdict before timeout");
        let mut flat = Vec::with_capacity(v.verdict.mi.len() + v.verdict.rr.len());
        flat.extend_from_slice(&v.verdict.mi);
        flat.extend_from_slice(&v.verdict.rr);
        got.insert((v.chain, v.verdict.sequence), flat);
    }

    // Producer got an ack for every frame.
    let mut acks = 0;
    while let Some(msg) = producer.recv(Duration::from_millis(200)).expect("acks") {
        if matches!(msg, Msg::FrameAck { .. }) {
            acks += 1;
        }
        if acks == total {
            break;
        }
    }
    assert_eq!(acks, total, "every assembled frame is acked");

    drop(producer);
    drop(subscriber);
    let report = handle.shutdown();
    assert_eq!(report.fleet.processed() as usize, total);
    assert_eq!(report.net.frames_assembled as usize, total);
    assert_eq!(report.net.decode_errors, 0);
    assert_eq!(report.net.sequence_gaps, 0);
    assert_eq!(report.net.backpressure_drops, 0);
    assert!(report.sim_ingest.as_millis_f64() > 0.0, "ingest is priced");
    assert!(
        report.console.contains("network"),
        "final console carries the network-health line:\n{}",
        report.console
    );

    // Bit-for-bit: the TCP round trip must not perturb a single mantissa.
    assert_eq!(got.len(), expect.len());
    for (key, want) in &expect {
        let served = got.get(key).unwrap_or_else(|| panic!("missing {key:?}"));
        assert_eq!(
            bits(served),
            bits(want),
            "verdict for chain {} seq {} drifted across the wire",
            key.0,
            key.1
        );
    }
}

#[test]
fn shutdown_under_load_loses_no_acked_frames() {
    let fw = build_firmware();
    let std = standardizer();
    let engine = ShardedEngine::native(&EngineConfig::default(), &fw, &HpsModel::default(), &std);
    let cfg = GatewayConfig {
        outbound_queue: 8192,
        slow_consumer: SlowConsumerPolicy::DropNewest,
        ..GatewayConfig::default()
    };
    let handle = HubGateway::start("127.0.0.1:0", cfg, engine).expect("bind loopback gateway");
    let addr = handle.local_addr();

    let mut subscriber =
        GatewayClient::connect(addr, Role::Subscriber).expect("subscriber connects");
    while handle.sessions() < 1 {
        std::thread::sleep(Duration::from_millis(2));
    }
    std::thread::sleep(Duration::from_millis(25));

    // Producer pushes frames continuously until the socket dies under it,
    // tracking which frames were acked.
    let producer = std::thread::spawn(move || {
        let mut client = GatewayClient::connect(addr, Role::Producer).expect("producer connects");
        let mut source = MultiChainSource::new(4, 11);
        let mut acked: Vec<(u32, u32)> = Vec::new();
        'send: for _ in 0..500 {
            for cf in source.tick() {
                if client.send_frame(&cf).is_err() {
                    break 'send; // gateway is shutting down — expected
                }
            }
            loop {
                match client.recv(Duration::ZERO) {
                    Ok(Some(Msg::FrameAck { chain, sequence })) => acked.push((chain, sequence)),
                    Ok(Some(_)) => {}
                    Ok(None) | Err(_) => break,
                }
            }
        }
        // Collect straggler acks until the gateway closes the connection.
        loop {
            match client.recv(Duration::from_millis(250)) {
                Ok(Some(Msg::FrameAck { chain, sequence })) => acked.push((chain, sequence)),
                Ok(Some(_)) => {}
                Ok(None) | Err(_) => break,
            }
        }
        acked
    });

    // Let real load build up, then pull the plug mid-stream.
    std::thread::sleep(Duration::from_millis(150));
    let flag = handle.shutdown_flag();
    flag.store(true, std::sync::atomic::Ordering::SeqCst);

    // The subscriber keeps reading until the gateway closes its socket;
    // everything queued at shutdown must still arrive.
    let mut verdicts: Vec<(u32, u32)> = Vec::new();
    while let Ok(Some(v)) = subscriber.recv_verdict(Duration::from_secs(5)) {
        verdicts.push((v.chain, v.verdict.sequence));
    }

    let acked = producer.join().expect("producer thread");
    let report = handle.shutdown();

    assert!(!acked.is_empty(), "load ran long enough to ack frames");
    let have: std::collections::BTreeSet<(u32, u32)> = verdicts.iter().copied().collect();
    for key in &acked {
        assert!(
            have.contains(key),
            "frame {key:?} was accepted-and-acked but its verdict never reached the subscriber \
             ({} acked, {} verdicts, report: {:?})",
            acked.len(),
            verdicts.len(),
            report.net
        );
    }
    // And the engine's own accounting agrees: nothing accepted was lost.
    assert_eq!(
        report.net.frames_accepted,
        report.fleet.processed(),
        "accepted frames and processed verdicts diverge"
    );
    assert_eq!(report.net.slow_consumer_drops, 0, "queue was deep enough");
}

/// Counter audit: a subscriber severed by `SlowConsumerPolicy::Disconnect`
/// is accounted exactly once — as a slow-consumer disconnect — and must
/// not *also* show up in `disconnects`, which counts peer-initiated
/// closes. (Under the old thread-per-connection gateway the dying reader
/// thread reported the hub's own sever back as a clean close, double
/// counting it; the reactor only emits `Closed` for peer-initiated
/// deaths, and the hub ignores `Closed` for connections it already
/// dropped.)
#[test]
fn slow_consumer_disconnect_is_not_double_counted() {
    let fw = build_firmware();
    let std = standardizer();
    let engine = ShardedEngine::native(&EngineConfig::default(), &fw, &HpsModel::default(), &std);
    let cfg = GatewayConfig {
        // One queued verdict of headroom: the ring backs up as soon as
        // the subscriber's socket buffers fill.
        outbound_queue: 1,
        slow_consumer: SlowConsumerPolicy::Disconnect,
        ..GatewayConfig::default()
    };
    let handle = HubGateway::start("127.0.0.1:0", cfg, engine).expect("bind loopback gateway");
    let addr = handle.local_addr();

    // A subscriber that never reads: verdicts pile into its kernel
    // buffers, then into the depth-1 ring, then trip the policy.
    let subscriber = GatewayClient::connect(addr, Role::Subscriber).expect("subscriber connects");
    while handle.sessions() < 1 {
        std::thread::sleep(Duration::from_millis(2));
    }
    std::thread::sleep(Duration::from_millis(25));

    let mut producer = GatewayClient::connect(addr, Role::Producer).expect("producer connects");
    let mut source = MultiChainSource::new(4, 11);
    let mut tripped = false;
    'feed: for _ in 0..4000 {
        for cf in source.tick() {
            producer.send_frame(&cf).expect("send frame");
        }
        // Drain acks so producer-side buffers never interfere.
        while let Ok(Some(_)) = producer.recv(Duration::ZERO) {}
        if handle.counters().slow_consumer_disconnects >= 1 {
            tripped = true;
            break 'feed;
        }
    }
    assert!(tripped, "subscriber never tripped the Disconnect policy");

    // The producer's close *is* a peer-initiated disconnect; wait until
    // the hub has seen it so the comparison below is race-free.
    drop(producer);
    drop(subscriber);
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    while handle.counters().disconnects < 1 && std::time::Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(5));
    }

    let report = handle.shutdown();
    assert_eq!(
        report.net.slow_consumer_disconnects, 1,
        "exactly one policy disconnect"
    );
    assert_eq!(
        report.net.disconnects, 1,
        "only the producer's close counts as a disconnect — the \
         policy-severed subscriber must not be double counted"
    );
}
