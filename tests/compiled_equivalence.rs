//! Differential property test: the lowered integer-quanta engine
//! ([`CompiledFirmware`]) against the firmware interpreter.
//!
//! The compiled engine's contract is *bit identity*, not closeness: for any
//! converted model — every node type (dense, pointwise, conv, maxpool,
//! upsample, concat, batchnorm), any precision strategy and width, any
//! rounding/overflow mode, and inputs hot enough to force saturation or
//! wraparound — both `infer` and `infer_batch` must return the same f64 bit
//! patterns *and* the same per-layer overflow statistics as the
//! interpreter. Bundles are cached per configuration so proptest explores
//! the input space cheaply.

use proptest::prelude::*;
use reads::fixed::{Overflow, QFormat, Rounding};
use reads::hls4ml::{
    convert, profile_model, CompiledFirmware, Firmware, HlsConfig, PrecisionStrategy,
};
use reads::nn::{models, Model};
use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

const N_MODELS: usize = 5;
const N_STRATEGIES: usize = 5;
const N_MODES: usize = 4;

fn model(idx: usize) -> Model {
    let seed = 31 + idx as u64 * 7;
    match idx {
        0 => models::reads_mlp(seed),
        1 => models::reads_unet(seed),
        2 => models::reads_mlp_input_bn(seed, 0.3, 2.0),
        3 => models::reads_unet_input_bn(seed, -0.1, 1.5),
        _ => models::reads_autoencoder(seed),
    }
}

fn strategy(idx: usize) -> PrecisionStrategy {
    match idx {
        0 => PrecisionStrategy::Uniform(QFormat::signed(18, 10)),
        1 => PrecisionStrategy::Uniform(QFormat::signed(16, 7)),
        // Narrow format: guarantees overflow events under hot inputs, so
        // the statistics comparison is not vacuous.
        2 => PrecisionStrategy::Uniform(QFormat::signed(10, 3)),
        3 => PrecisionStrategy::LayerBased {
            width: 16,
            int_margin: 0,
        },
        _ => PrecisionStrategy::LayerBased {
            width: 12,
            int_margin: 1,
        },
    }
}

fn modes(idx: usize) -> (Rounding, Overflow) {
    match idx {
        0 => (Rounding::Truncate, Overflow::Saturate),
        1 => (Rounding::Nearest, Overflow::Saturate),
        2 => (Rounding::Truncate, Overflow::Wrap),
        _ => (Rounding::Nearest, Overflow::Wrap),
    }
}

fn deterministic_frame(len: usize, salt: u64, amp: f64) -> Vec<f64> {
    (0..len)
        .map(|j| {
            let phase = (j as f64).mul_add(0.271, salt as f64 * 0.613);
            amp * phase.sin() + 0.1 * ((j % 13) as f64 - 6.0)
        })
        .collect()
}

type Bundle = Arc<(Firmware, CompiledFirmware)>;
type BundleCache = Mutex<HashMap<(usize, usize, usize), Bundle>>;

/// Build (or fetch) the firmware + lowered engine for one configuration.
fn bundle(model_idx: usize, strat_idx: usize, mode_idx: usize) -> Bundle {
    static CACHE: OnceLock<BundleCache> = OnceLock::new();
    let cache = CACHE.get_or_init(|| Mutex::new(HashMap::new()));
    let mut map = cache.lock().expect("bundle cache");
    map.entry((model_idx, strat_idx, mode_idx))
        .or_insert_with(|| {
            let m = model(model_idx);
            let (len, ch) = m.input_shape();
            let calib: Vec<Vec<f64>> = (0..4)
                .map(|f| deterministic_frame(len * ch, f + 90, 2.0))
                .collect();
            let profile = profile_model(&m, &calib);
            let (rounding, overflow) = modes(mode_idx);
            let cfg = HlsConfig {
                strategy: strategy(strat_idx),
                rounding,
                overflow,
                ..HlsConfig::paper_default()
            };
            let fw = convert(&m, &profile, &cfg);
            let engine = CompiledFirmware::lower(&fw);
            Arc::new((fw, engine))
        })
        .clone()
}

fn bits(xs: &[f64]) -> Vec<u64> {
    xs.iter().map(|v| v.to_bits()).collect()
}

proptest! {
    /// `infer` and `infer_batch` agree bit-for-bit — outputs and overflow
    /// statistics — between the interpreter and the lowered engine, across
    /// random configurations and input regimes (amplitudes up to 40 drive
    /// the narrow formats deep into saturation/wrap territory).
    #[test]
    fn compiled_engine_is_bit_identical_to_interpreter(
        model_idx in 0usize..N_MODELS,
        strat_idx in 0usize..N_STRATEGIES,
        mode_idx in 0usize..N_MODES,
        salt in 0u64..100_000,
        amp in 0.05f64..40.0,
        batch in 1usize..4,
    ) {
        let b = bundle(model_idx, strat_idx, mode_idx);
        let (fw, engine) = &*b;
        let n_in = fw.input_len * fw.input_channels;
        let frames: Vec<Vec<f64>> = (0..batch)
            .map(|i| deterministic_frame(n_in, salt.wrapping_add(i as u64), amp))
            .collect();

        for (f, x) in frames.iter().enumerate() {
            let (want, want_stats) = fw.infer(x);
            let (got, got_stats) = engine.infer(x);
            prop_assert_eq!(
                bits(&want), bits(&got),
                "cfg ({}, {}, {}) frame {}: outputs diverge",
                model_idx, strat_idx, mode_idx, f
            );
            prop_assert_eq!(
                want_stats, got_stats,
                "cfg ({}, {}, {}) frame {}: stats diverge",
                model_idx, strat_idx, mode_idx, f
            );
        }

        let (want_b, want_bs) = fw.infer_batch(&frames);
        let (got_b, got_bs) = engine.infer_batch(&frames);
        prop_assert_eq!(want_b.len(), got_b.len());
        for (f, (w, g)) in want_b.iter().zip(&got_b).enumerate() {
            prop_assert_eq!(
                bits(w), bits(g),
                "cfg ({}, {}, {}) batched frame {}: outputs diverge",
                model_idx, strat_idx, mode_idx, f
            );
        }
        prop_assert_eq!(
            want_bs, got_bs,
            "cfg ({}, {}, {}): merged batch stats diverge",
            model_idx, strat_idx, mode_idx
        );
    }

    /// One scratch arena reused across wildly different frames leaks no
    /// state: results equal a fresh-scratch run, bit for bit.
    #[test]
    fn reused_scratch_is_stateless(
        salts in proptest::collection::vec(0u64..100_000, 2..5),
        amp in 0.05f64..40.0,
    ) {
        let b = bundle(1, 2, 1);
        let (_, engine) = &*b;
        let n_in = engine.input_elems();
        let mut scratch = engine.scratch();
        for salt in salts {
            let x = deterministic_frame(n_in, salt, amp);
            let (fresh, fresh_stats) = engine.infer(&x);
            let (reused, reused_stats) = engine.infer_into(&x, &mut scratch);
            prop_assert_eq!(bits(&fresh), bits(reused), "salt {}", salt);
            prop_assert_eq!(&fresh_stats, reused_stats, "salt {}", salt);
        }
    }
}
