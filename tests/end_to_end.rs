//! Cross-crate integration: workload → training → hls4ml conversion → SoC
//! deployment → ACNET verdicts, plus the paper's deployment claims.

use reads::blm::hubs::split_frame;
use reads::blm::FrameGenerator;
use reads::central::system::DeblendingSystem;
use reads::central::trained::{TrainedBundle, TrainingTier};
use reads::hls4ml::{convert, profile_model, HlsConfig};
use reads::nn::ModelSpec;
use reads::sim::SimDuration;

fn deployed_unet() -> (DeblendingSystem, FrameGenerator) {
    let bundle = TrainedBundle::get_or_train(ModelSpec::UNet, TrainingTier::Fast, 31);
    let calibration = bundle.calibration_inputs(24);
    let profile = profile_model(&bundle.model, &calibration);
    let firmware = convert(&bundle.model, &profile, &HlsConfig::paper_default());
    let gen = FrameGenerator::with_defaults(bundle.workload_seed);
    (
        DeblendingSystem::new(firmware, bundle.standardizer.clone(), Default::default(), 5),
        gen,
    )
}

#[test]
fn full_pipeline_produces_sane_verdicts() {
    let (mut system, gen) = deployed_unet();
    let mut trips = 0;
    for seq in 0..30u32 {
        let sample = gen.frame(u64::from(seq) + 40_000);
        let packets = split_frame(&sample.readings, seq);
        let (verdict, timing) = system.process_tick(&packets, seq).expect("tick");
        assert_eq!(verdict.sequence, seq);
        assert!(verdict.mi.iter().all(|&p| (0.0..=1.0).contains(&p)));
        assert!(verdict.rr.iter().all(|&p| (0.0..=1.0).contains(&p)));
        assert!(
            timing.core.total < SimDuration::from_millis(3),
            "3 ms deadline"
        );
        trips += usize::from(verdict.trip_decision(5.0).is_some());
    }
    assert_eq!(system.frames_processed(), 30);
    // The workload has RR-dominated losses on most frames; some trips must
    // have been issued.
    assert!(trips > 10, "only {trips} trips over 30 busy frames");
}

#[test]
fn deployment_claim_320fps_3ms() {
    // Abstract: "The practical deployed system is required to operate at
    // 320 fps, with a 3 ms latency requirement, which has been met."
    let (mut system, _) = deployed_unet();
    assert!(system.admission_check(320.0, SimDuration::from_millis(3), 64));
}

#[test]
fn quantized_system_tracks_float_model_through_the_whole_stack() {
    let bundle = TrainedBundle::get_or_train(ModelSpec::UNet, TrainingTier::Fast, 31);
    let calibration = bundle.calibration_inputs(24);
    let profile = profile_model(&bundle.model, &calibration);
    let firmware = convert(&bundle.model, &profile, &HlsConfig::paper_default());
    let mut system =
        DeblendingSystem::new(firmware, bundle.standardizer.clone(), Default::default(), 6);
    let gen = FrameGenerator::with_defaults(bundle.workload_seed);

    let mut worst = 0.0f64;
    for seq in 0..10u32 {
        let sample = gen.frame(u64::from(seq) + 60_000);
        let std_input = bundle.standardizer.apply_frame(&sample.readings);
        let yf = bundle.model.predict(&std_input);
        let packets = split_frame(&sample.readings, seq);
        let (verdict, _) = system.process_tick(&packets, seq).expect("tick");
        for j in 0..260 {
            worst = worst.max((verdict.mi[j] - yf[2 * j]).abs());
            worst = worst.max((verdict.rr[j] - yf[2 * j + 1]).abs());
        }
    }
    assert!(
        worst <= reads::nn::metrics::PAPER_TOLERANCE,
        "whole-stack quantization error {worst} exceeds the paper's 0.20 criterion"
    );
}
