//! Chaos conformance for the serving plane: session resume, frame
//! replay, and shard supervision under deterministic connection cuts.
//!
//! A supervised gateway (one shard born fully wedged, restarted by the
//! supervisor on its first batch) serves the digest-pinned golden
//! firmware behind a [`ChaosProxy`]. Resilient clients stream frames
//! through the proxy while the test severs every connection at fixed
//! points in the stream — at least four disconnect/reconnect cycles. The
//! delivered verdict stream must come out **bit-identical** to an
//! uninterrupted in-process run, every frame must be acked, no acked
//! frame may be lost, and replayed duplicates must be re-acked at most
//! once per connection.

use reads::blm::acnet::DeblendVerdict;
use reads::blm::dataset::Standardizer;
use reads::blm::hubs::{assemble_frame, ChainFrame, MultiChainSource};
use reads::central::engine::{DropPolicy, EngineConfig, ShardedEngine, SocExecutor};
use reads::central::resilience::{HealthState, SupervisorPolicy, WatchdogPolicy};
use reads::hls4ml::{convert, profile_model, Firmware, HlsConfig};
use reads::net::chaos::{ChaosConfig, ChaosProxy};
use reads::net::resilient::{ResilienceConfig, ResilientClient};
use reads::net::wire::{Msg, Role};
use reads::net::{GatewayClient, GatewayConfig, HubGateway, SlowConsumerPolicy};
use reads::nn::models;
use reads::soc::HpsModel;
use std::collections::BTreeMap;
use std::time::{Duration, Instant};

fn synth_frame(len: usize, frame: usize) -> Vec<f64> {
    (0..len)
        .map(|j| {
            let phase = (j as f64).mul_add(0.173, frame as f64 * 1.37);
            2.5 * phase.sin() + 0.25 * ((j % 17) as f64 - 8.0) / 8.0
        })
        .collect()
}

fn build_firmware() -> Firmware {
    let m = models::reads_mlp(3);
    let (input_len, _) = m.input_shape();
    let calib: Vec<Vec<f64>> = (0..6).map(|f| synth_frame(input_len, f + 100)).collect();
    let profile = profile_model(&m, &calib);
    convert(&m, &profile, &HlsConfig::paper_default())
}

fn standardizer() -> Standardizer {
    Standardizer {
        mean: 112_000.0,
        std: 3_500.0,
    }
}

fn bits(xs: &[f64]) -> Vec<u64> {
    xs.iter().map(|x| x.to_bits()).collect()
}

/// In-process golden run of `frames` — the bit-exact reference.
fn golden(
    fw: &Firmware,
    std: &Standardizer,
    frames: &[ChainFrame],
) -> BTreeMap<(u32, u32), Vec<f64>> {
    let n_in = fw.input_len * fw.input_channels;
    let mut expect = BTreeMap::new();
    for cf in frames {
        let readings = assemble_frame(&cf.packets).expect("synthetic frame assembles");
        let (out, _) = fw.infer(&std.apply_frame(&readings[..n_in]));
        let verdict = if out.len() == 2 * reads::blm::N_BLM {
            DeblendVerdict::from_interleaved(cf.sequence, &out)
        } else {
            DeblendVerdict::from_split_halves(cf.sequence, &out)
        };
        let mut flat = verdict.mi.clone();
        flat.extend_from_slice(&verdict.rr);
        expect.insert((cf.chain, cf.sequence), flat);
    }
    expect
}

/// Drains whatever the producer has queued, folding acks into
/// `ack_counts`. Transport faults reconnect inside the client.
fn pump_producer(
    producer: &mut ResilientClient,
    ack_counts: &mut BTreeMap<(u32, u32), u32>,
    budget: Duration,
) {
    let deadline = Instant::now() + budget;
    while Instant::now() < deadline {
        match producer.recv(Duration::from_millis(25)) {
            Ok(Some(Msg::FrameAck { chain, sequence })) => {
                *ack_counts.entry((chain, sequence)).or_insert(0) += 1;
            }
            Ok(Some(_)) => {}
            Ok(None) => {
                if producer.unacked_len() == 0 {
                    return;
                }
            }
            Err(e) => panic!("producer pump failed: {e}"),
        }
    }
}

/// Collects verdicts from the subscriber into `got`.
fn pump_subscriber(
    subscriber: &mut ResilientClient,
    got: &mut BTreeMap<(u32, u32), Vec<f64>>,
    want: usize,
    budget: Duration,
) {
    let deadline = Instant::now() + budget;
    while got.len() < want && Instant::now() < deadline {
        match subscriber.recv(Duration::from_millis(25)) {
            Ok(Some(Msg::Verdict(v))) => {
                let mut flat = Vec::with_capacity(v.verdict.mi.len() + v.verdict.rr.len());
                flat.extend_from_slice(&v.verdict.mi);
                flat.extend_from_slice(&v.verdict.rr);
                got.insert((v.chain, v.verdict.sequence), flat);
            }
            Ok(_) => {}
            Err(e) => panic!("subscriber pump failed: {e}"),
        }
    }
}

#[test]
fn resumed_sessions_survive_forced_cuts_bit_identically() {
    let fw = build_firmware();
    let std = standardizer();
    let hps = HpsModel::default();
    let chains = 4usize;
    let ticks = 10usize;
    let frames = MultiChainSource::new(chains, 3).ticks(ticks);
    let total = frames.len();
    let expect = golden(&fw, &std, &frames);

    // Supervised engine: shard 1's first incarnation is born with every
    // replica wedged, so its first batch forces a supervised restart and
    // the requeued frames are re-served by the clean respawn.
    let fw_engine = fw.clone();
    let mut first_build_of_shard_1 = true;
    let engine = ShardedEngine::start_supervised(
        &EngineConfig {
            workers: 2,
            drop_policy: DropPolicy::Block,
            ..EngineConfig::default()
        },
        &std,
        move |shard| {
            let mut exec = SocExecutor::new(
                fw_engine.clone(),
                &hps,
                2,
                WatchdogPolicy::default(),
                11 ^ shard as u64,
            );
            if shard == 1 && first_build_of_shard_1 {
                first_build_of_shard_1 = false;
                exec.array_mut().mark_wedged(0);
                exec.array_mut().mark_wedged(1);
            }
            Box::new(exec)
        },
        SupervisorPolicy {
            max_restarts: 3,
            base_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(5),
        },
    );
    let gw_cfg = GatewayConfig {
        outbound_queue: 8192,
        slow_consumer: SlowConsumerPolicy::DropNewest,
        ..GatewayConfig::default()
    };
    let handle = HubGateway::start("127.0.0.1:0", gw_cfg, engine).expect("bind gateway");

    // All traffic rides through the chaos proxy; random rates stay zero
    // so every cut is a deterministic `cut_now` at a fixed stream point.
    let proxy =
        ChaosProxy::start(handle.local_addr(), ChaosConfig::default()).expect("bind chaos proxy");
    let addr = proxy.local_addr();

    let client_cfg = |seed: u64| ResilienceConfig {
        max_reconnect_attempts: 20,
        base_backoff: Duration::from_millis(5),
        max_backoff: Duration::from_millis(100),
        seed,
        ..ResilienceConfig::default()
    };
    let mut subscriber = ResilientClient::connect(addr, Role::Subscriber, client_cfg(202))
        .expect("subscriber connects");
    while handle.sessions() < 1 {
        std::thread::sleep(Duration::from_millis(2));
    }
    std::thread::sleep(Duration::from_millis(25));
    let mut producer =
        ResilientClient::connect(addr, Role::Producer, client_cfg(101)).expect("producer connects");

    let mut ack_counts: BTreeMap<(u32, u32), u32> = BTreeMap::new();
    let mut got: BTreeMap<(u32, u32), Vec<f64>> = BTreeMap::new();

    // Five phases of two ticks each; a forced cut of every connection
    // after each of the first four phases = four disconnect/reconnect
    // cycles at deterministic stream positions.
    for (phase, tick_pair) in frames.chunks(2 * chains).enumerate() {
        for frame in tick_pair {
            producer.send_frame(frame).expect("send survives chaos");
        }
        pump_producer(&mut producer, &mut ack_counts, Duration::from_millis(400));
        pump_subscriber(&mut subscriber, &mut got, total, Duration::from_millis(150));
        if phase < 4 {
            proxy.cut_now();
            std::thread::sleep(Duration::from_millis(30));
        }
    }

    // Final drain: keep pumping (and nudging unacked replays) until every
    // verdict arrived and every frame acked.
    let deadline = Instant::now() + Duration::from_secs(30);
    while (got.len() < total || producer.unacked_len() > 0) && Instant::now() < deadline {
        pump_producer(&mut producer, &mut ack_counts, Duration::from_millis(200));
        if producer.unacked_len() > 0 {
            let _ = producer.replay_unacked().expect("replay nudge");
        }
        pump_subscriber(&mut subscriber, &mut got, total, Duration::from_millis(300));
    }

    let producer_stats = producer.stats();
    let subscriber_stats = subscriber.stats();
    let producer_unacked = producer.unacked_len();
    drop(producer);
    drop(subscriber);
    let chaos = proxy.shutdown();
    let report = handle.shutdown();

    // ≥ 4 forced cut cycles actually happened and both clients resumed
    // through them (never falling back to a fresh session).
    assert!(chaos.cuts >= 4, "forced cuts landed: {chaos:?}");
    assert!(
        producer_stats.resumed >= 3,
        "producer resumed through ≥ 3 cuts: {producer_stats:?}"
    );
    assert!(
        subscriber_stats.resumed >= 3,
        "subscriber resumed through ≥ 3 cuts: {subscriber_stats:?}"
    );
    assert_eq!(
        producer_stats.fresh_sessions + subscriber_stats.fresh_sessions,
        0,
        "every reconnect resumed its session"
    );
    assert!(report.net.resumes >= 6, "gateway resumed both sessions");

    // Zero frame loss, zero acked-frame loss, bit-identical verdicts.
    assert_eq!(producer_unacked, 0, "every frame was acked before shutdown");
    assert_eq!(got.len(), total, "every verdict was delivered");
    assert_eq!(report.fleet.processed() as usize, total);
    for (key, count) in &ack_counts {
        assert!(
            *count as u64 <= 1 + producer_stats.resumed,
            "frame {key:?} over-acked ({count})"
        );
    }
    assert_eq!(ack_counts.len(), total, "every frame was acked");
    for key in ack_counts.keys() {
        assert!(
            got.contains_key(key),
            "acked frame {key:?} lost its verdict"
        );
    }
    for (key, want) in &expect {
        let served = got.get(key).unwrap_or_else(|| panic!("missing {key:?}"));
        assert_eq!(
            bits(served),
            bits(want),
            "verdict for chain {} seq {} drifted across chaos",
            key.0,
            key.1
        );
    }

    // The supervised restart happened and is visible fleet-wide.
    let merged = report.fleet.merged_counters();
    assert_eq!(merged.shard_restarts, 1, "exactly one supervised restart");
    assert_eq!(merged.restarts_denied, 0);
    assert_eq!(
        report.fleet.worst_health(),
        HealthState::Degraded,
        "the restarted shard reports Degraded, the rest stay healthy"
    );
    assert_eq!(
        report.fleet.shards.iter().map(|s| s.lost).sum::<u64>(),
        0,
        "supervision re-serves, never loses"
    );
}

/// The re-ack path is exactly-once per connection: replaying an already
/// accepted-and-acked frame any number of times on one connection earns
/// exactly one further ack.
#[test]
fn replayed_frames_are_reacked_exactly_once_per_connection() {
    let fw = build_firmware();
    let std = standardizer();
    let engine = ShardedEngine::native(&EngineConfig::default(), &fw, &HpsModel::default(), &std);
    let handle =
        HubGateway::start("127.0.0.1:0", GatewayConfig::default(), engine).expect("bind gateway");
    let addr = handle.local_addr();

    let mut producer = GatewayClient::connect(addr, Role::Producer).expect("producer connects");
    let frames = MultiChainSource::new(1, 9).ticks(1);
    let frame = &frames[0];
    producer.send_frame(frame).expect("first send");

    let mut acks = 0u32;
    let deadline = Instant::now() + Duration::from_secs(5);
    while acks < 1 && Instant::now() < deadline {
        if let Some(Msg::FrameAck { .. }) = producer.recv(Duration::from_millis(50)).expect("recv")
        {
            acks += 1;
        }
    }
    assert_eq!(acks, 1, "the original frame acks once");

    // Replay the identical frame three times on the SAME connection: its
    // 21 hub packets all land behind the watermark (stale), and the
    // re-ack dedupe pays out exactly one more ack.
    for _ in 0..3 {
        producer.send_frame(frame).expect("replay send");
    }
    let deadline = Instant::now() + Duration::from_millis(1500);
    while Instant::now() < deadline {
        if let Some(Msg::FrameAck { .. }) = producer.recv(Duration::from_millis(50)).expect("recv")
        {
            acks += 1;
        }
    }
    assert_eq!(acks, 2, "replays on one connection re-ack exactly once");

    drop(producer);
    let report = handle.shutdown();
    assert_eq!(report.net.replayed_frames, 1);
    assert_eq!(report.net.stale_drops, 21, "three replays × seven hubs");
    assert_eq!(report.fleet.processed(), 1, "the frame ran exactly once");
}
