//! Cross-crate property tests: wire-format robustness and serialization
//! fidelity of the deployable artifacts.

use proptest::prelude::*;
use reads::blm::hubs::{assemble_frame, split_frame, HubPacket};
use reads::hls4ml::{convert, profile_model, Firmware, HlsConfig};
use reads::nn::{models, Model};

proptest! {
    /// The hub-packet decoder is total: arbitrary bytes never panic, and
    /// anything it accepts re-encodes to the same bytes.
    #[test]
    fn hub_decoder_is_total_and_faithful(bytes in prop::collection::vec(any::<u8>(), 0..600)) {
        if let Ok(packet) = HubPacket::decode(&bytes) {
            prop_assert_eq!(packet.encode(), bytes);
        }
    }

    /// Encode → decode round trip for arbitrary valid packets.
    #[test]
    fn hub_roundtrip(hub in 0u8..7, seq in any::<u32>(), first in 0u16..260,
                     counts in prop::collection::vec(any::<u32>(), 1..60)) {
        let p = HubPacket { hub, sequence: seq, first_monitor: first, counts };
        prop_assert_eq!(HubPacket::decode(&p.encode()).unwrap(), p);
    }

    /// Single-bit corruption anywhere in a packet is always detected (the
    /// checksum catches it, or a header field check rejects it) — the frame
    /// never silently decodes to different readings.
    #[test]
    fn single_bitflip_never_silently_accepted(
        seed in 0u64..1000, byte_idx in 0usize..100, bit in 0u8..8
    ) {
        let readings: Vec<f64> = (0..260).map(|j| 110_000.0 + (seed as f64) + j as f64).collect();
        let packets = split_frame(&readings, seed as u32);
        let mut bytes = packets[(seed % 7) as usize].encode();
        let idx = byte_idx % bytes.len();
        bytes[idx] ^= 1 << bit;
        match HubPacket::decode(&bytes) {
            Err(_) => {} // rejected: fine
            Ok(p) => {
                // Accepted despite corruption would require a checksum
                // collision from a single bit flip — Fletcher-16 detects
                // all single-bit errors.
                prop_assert_eq!(p.encode(), bytes);
                prop_assert!(false, "single bit flip accepted at byte {idx}");
            }
        }
    }

    /// Frame split/assemble is lossless for arbitrary digitizer counts.
    #[test]
    fn frame_split_assemble_lossless(
        counts in prop::collection::vec(0u32..2_000_000, 260)
    ) {
        let readings: Vec<f64> = counts.iter().map(|&c| f64::from(c)).collect();
        let packets = split_frame(&readings, 7);
        prop_assert_eq!(assemble_frame(&packets).unwrap(), readings);
    }
}

fn tiny_trained_pair() -> (Model, Firmware) {
    let model = models::reads_mlp(77);
    let frames: Vec<Vec<f64>> = (0..4)
        .map(|f| {
            (0..259)
                .map(|j| ((j + f * 11) as f64 * 0.1).sin())
                .collect()
        })
        .collect();
    let profile = profile_model(&model, &frames);
    let firmware = convert(&model, &profile, &HlsConfig::paper_default());
    (model, firmware)
}

#[test]
fn model_serde_preserves_predictions() {
    let (model, _) = tiny_trained_pair();
    let json = serde_json::to_string(&model).expect("serialize model");
    let back: Model = serde_json::from_str(&json).expect("deserialize model");
    let input = vec![0.37; 259];
    assert_eq!(model.predict(&input), back.predict(&input));
}

#[test]
fn firmware_serde_preserves_bit_exact_inference() {
    let (_, firmware) = tiny_trained_pair();
    let json = serde_json::to_string(&firmware).expect("serialize firmware");
    let back: Firmware = serde_json::from_str(&json).expect("deserialize firmware");
    let input = vec![0.37; 259];
    let (a, _) = firmware.infer(&input);
    let (b, _) = back.infer(&input);
    assert_eq!(a, b, "firmware must be bit-exact across serialization");
}
