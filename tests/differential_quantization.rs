//! Differential test: the fixed-point firmware interpreter against the
//! float reference model in `reads-nn`.
//!
//! Table II's accuracy criterion (DESIGN.md) counts an output as correct
//! when `|quantized − float| ≤ 0.20`; the paper's deployable builds sit at
//! 98.8–99.9 % under it. The property here is the conformance version of
//! that row: for *any* frame in the standardized input regime, the
//! interpreter built by the profile → convert pipeline must keep nearly
//! every output inside the bound — quantization noise, not functional
//! divergence. A second property pins determinism: the interpreter is a
//! pure function of its input, bit for bit, run to run.

use proptest::prelude::*;
use reads::hls4ml::{
    convert, profile_model, sparsify_firmware, CompiledFirmware, Firmware, HlsConfig, PlanConfig,
    SparsityPolicy,
};
use reads::nn::{metrics, models, Model};
use std::sync::OnceLock;

/// Table II's closeness bound.
const TOLERANCE: f64 = metrics::PAPER_TOLERANCE;
/// Minimum in-bound fraction per frame. The paper's worst deployable row
/// (uniform ⟨18,10⟩) holds 98.8 % on trained weights; untrained seeded
/// weights are the same arithmetic, so the floor transfers.
const MIN_ACCURACY: f64 = 0.98;

fn deterministic_frame(len: usize, salt: u64, amp: f64) -> Vec<f64> {
    (0..len)
        .map(|j| {
            let phase = (j as f64).mul_add(0.211, salt as f64 * 0.731);
            amp * phase.sin()
        })
        .collect()
}

fn bundles() -> &'static Vec<(Model, Firmware)> {
    static CELL: OnceLock<Vec<(Model, Firmware)>> = OnceLock::new();
    CELL.get_or_init(|| {
        [models::reads_mlp(5), models::reads_unet(11)]
            .into_iter()
            .map(|m| {
                let (len, _) = m.input_shape();
                let calib: Vec<Vec<f64>> = (0..6)
                    .map(|f| deterministic_frame(len, f + 50, 2.5))
                    .collect();
                let profile = profile_model(&m, &calib);
                let fw = convert(&m, &profile, &HlsConfig::paper_default());
                (m, fw)
            })
            .collect()
    })
}

proptest! {
    /// Quantized vs float outputs stay within the Table II bound across
    /// the standardized input regime (amplitudes up to the profiled range
    /// and beyond the calibration salt space).
    #[test]
    fn firmware_tracks_float_reference(
        which in 0usize..2,
        salt in 0u64..10_000,
        amp in 0.1f64..2.5,
    ) {
        let (model, fw) = &bundles()[which];
        let (len, _) = model.input_shape();
        let x = deterministic_frame(len, salt, amp);
        let float_out = model.predict(&x);
        let (quant_out, _) = fw.infer(&x);
        prop_assert_eq!(float_out.len(), quant_out.len());
        let acc = metrics::accuracy_within(&quant_out, &float_out, TOLERANCE);
        prop_assert!(
            acc >= MIN_ACCURACY,
            "model {} salt {} amp {:.2}: only {:.4} of outputs within {}",
            which, salt, amp, acc, TOLERANCE
        );
    }

    /// The interpreter is bit-deterministic: the same frame yields the
    /// same bits on repeated runs (no hidden state survives `infer`).
    #[test]
    fn firmware_inference_is_bit_deterministic(which in 0usize..2, salt in 0u64..10_000) {
        let (model, fw) = &bundles()[which];
        let (len, _) = model.input_shape();
        let x = deterministic_frame(len, salt, 1.7);
        let (a, _) = fw.infer(&x);
        let (b, _) = fw.infer(&x);
        let a_bits: Vec<u64> = a.iter().map(|v| v.to_bits()).collect();
        let b_bits: Vec<u64> = b.iter().map(|v| v.to_bits()).collect();
        prop_assert_eq!(a_bits, b_bits);
    }

    /// Random post-quantization zero masks (the prune-only-exact-zeros
    /// invariant): a pruned firmware run through the compiled engine —
    /// under every sparsity policy, so both the CSR kernels and the dense
    /// fallback see the same zeros — reproduces the dense interpreter of
    /// that same firmware bit for bit, outputs and overflow stats alike.
    /// Kernel selection is an execution detail, so `content_digest` must
    /// be identical across all plans and equal to the source firmware's.
    #[test]
    fn pruned_firmware_is_bit_identical_across_kernel_plans(
        which in 0usize..2,
        salt in 0u64..10_000,
        density_pct in 0u32..=100,
    ) {
        let (model, fw) = &bundles()[which];
        let pruned = sparsify_firmware(fw, f64::from(density_pct) / 100.0, salt ^ 0xD1CE);
        let (len, _) = model.input_shape();
        let x = deterministic_frame(len, salt, 1.9);
        let (want, want_stats) = pruned.infer(&x);
        let want_bits: Vec<u64> = want.iter().map(|v| v.to_bits()).collect();
        for sparsity in [
            SparsityPolicy::ForceSparse,
            SparsityPolicy::ForceDense,
            SparsityPolicy::Auto,
        ] {
            let cfg = PlanConfig { sparsity, ..PlanConfig::default() };
            let engine = CompiledFirmware::lower_with(&pruned, &cfg);
            prop_assert_eq!(
                engine.content_digest(),
                pruned.content_digest(),
                "digest must be invariant to kernel selection ({:?})",
                sparsity
            );
            let (got, got_stats) = engine.infer(&x);
            let got_bits: Vec<u64> = got.iter().map(|v| v.to_bits()).collect();
            prop_assert_eq!(
                &got_bits,
                &want_bits,
                "model {} density {}% {:?}: pruned outputs diverge",
                which,
                density_pct,
                sparsity
            );
            prop_assert_eq!(
                &got_stats,
                &want_stats,
                "model {} density {}% {:?}: overflow stats diverge",
                which,
                density_pct,
                sparsity
            );
        }
    }
}
