//! Integration checks that the *shapes* of the paper's headline results
//! hold on the fast tier: who wins, by roughly what factor, and where the
//! crossovers fall. The full-magnitude reproduction runs in the
//! `reads-bench` repro binaries.

use reads::central::campaign::run_latency_campaign;
use reads::central::experiments::{bit_sweep, table2_journey};
use reads::central::trained::{BnBundle, TrainedBundle, TrainingTier};
use reads::hls4ml::{convert, profile_model, HlsConfig};
use reads::nn::ModelSpec;
use reads::soc::hps::HpsModel;

#[test]
fn unet_is_slower_than_mlp_by_the_papers_factor() {
    // Paper: 1.74 ms vs 0.31 ms -> factor ≈ 5.6.
    let mut means = Vec::new();
    for spec in [ModelSpec::Mlp, ModelSpec::UNet] {
        let bundle = TrainedBundle::get_or_train(spec, TrainingTier::Fast, 41);
        let calib = bundle.calibration_inputs(8);
        let profile = profile_model(&bundle.model, &calib);
        let fw = convert(&bundle.model, &profile, &HlsConfig::paper_default());
        let input = vec![0.1; spec.input_len()];
        let c = run_latency_campaign(&fw, &HpsModel::default(), &input, 400, 4, 1);
        means.push(c.mean_ms);
    }
    let factor = means[1] / means[0];
    assert!(
        (4.0..=8.5).contains(&factor),
        "U-Net/MLP latency factor {factor} vs paper ~5.6"
    );
}

#[test]
fn table2_shape_on_fast_tier() {
    // Shape: row 1 accurate but over budget; row 2 collapses; row 3
    // accurate, fits, costs more ALUTs than row 2's format would.
    let std_bundle = TrainedBundle::get_or_train(ModelSpec::UNet, TrainingTier::Fast, 41);
    let bn_bundle = BnBundle::get_or_train(ModelSpec::UNet, TrainingTier::Fast, 41);
    let std_calib = std_bundle.calibration_inputs(16);
    let std_eval = std_bundle.eval_frames(24, 0).inputs;
    let raw_calib = bn_bundle.eval_frames(16, 5_000).inputs;
    let raw_eval = bn_bundle.eval_frames(24, 0).inputs;
    let rows = table2_journey(
        &std_bundle.model,
        &bn_bundle.model,
        ModelSpec::UNet,
        &std_calib,
        &std_eval,
        &raw_calib,
        &raw_eval,
    );
    assert!(
        rows[0].accuracy_mi > 0.9 && !rows[0].fits,
        "row 1: accurate, too big"
    );
    assert!(
        rows[1].accuracy_mi < 0.6 && rows[1].accuracy_rr < 0.6,
        "row 2 must collapse: {} / {}",
        rows[1].accuracy_mi,
        rows[1].accuracy_rr
    );
    assert!(
        rows[2].accuracy_mi > 0.9 && rows[2].fits,
        "row 3: accurate and fits"
    );
    assert!(
        rows[2].alut_pct < 50.0,
        "layer-based stays far below budget"
    );
}

#[test]
fn fig5_shapes_on_fast_tier() {
    let bundle = TrainedBundle::get_or_train(ModelSpec::UNet, TrainingTier::Fast, 41);
    let calib = bundle.calibration_inputs(16);
    let eval = bundle.eval_frames(40, 0).inputs;
    let pts = bit_sweep(
        &bundle.model,
        ModelSpec::UNet,
        &calib,
        &eval,
        &[8, 12, 16],
        &[0],
    );
    // Fig. 5a: monotone error decrease with width.
    assert!(pts[0].mean_abs_diff_mi > pts[1].mean_abs_diff_mi);
    assert!(pts[1].mean_abs_diff_mi > pts[2].mean_abs_diff_mi);
    assert!(pts[0].mean_abs_diff_rr > pts[2].mean_abs_diff_rr);
    // Fig. 5b: outliers collapse by orders of magnitude from 8 to 16 bits.
    assert!(
        pts[2].outliers * 10 <= pts[0].outliers.max(10),
        "outliers {} -> {}",
        pts[0].outliers,
        pts[2].outliers
    );
}

#[test]
fn trained_vs_randomized_dynamic_ranges_differ() {
    // Sec. V: "even for the same ML model architecture, the implementation
    // of trained and untrained models can be very different."
    let bundle = TrainedBundle::get_or_train(ModelSpec::UNet, TrainingTier::Fast, 41);
    let calib = bundle.calibration_inputs(16);
    let trained_profile = profile_model(&bundle.model, &calib);

    let random = reads::nn::models::reads_unet_randomized(41);
    // The randomized pre-test drives the IP with inputs in [0,1] (Sec. IV-D).
    let random_inputs: Vec<Vec<f64>> = (0..16)
        .map(|i| {
            (0..260)
                .map(|j| (((i * 37 + j) % 100) as f64) / 100.0)
                .collect()
        })
        .collect();
    let random_profile = profile_model(&random, &random_inputs);

    let max_of =
        |p: &reads::hls4ml::ModelProfile| p.activation_max.iter().copied().fold(0.0f64, f64::max);
    // All-positive uniform weights make the randomized model's activations
    // blow up combinatorially; the trained model stays moderate. The two
    // regimes demand very different integer-bit budgets.
    assert!(
        max_of(&random_profile) > 10.0 * max_of(&trained_profile),
        "randomized {} vs trained {}",
        max_of(&random_profile),
        max_of(&trained_profile)
    );
}
