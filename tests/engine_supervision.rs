//! Shard-supervision contracts.
//!
//! PR 1 proved the watchdog ladder inside one SoC; PR 2 proved a wedged
//! shard degrades only itself. The supervisor closes the loop: a shard
//! whose *every* replica wedges is restarted with a fresh executor built
//! from the same digest-pinned firmware, its in-flight frames are
//! re-served, and the episode is visible in the counters — while a shard
//! that keeps wedging past its restart budget **trips** (it never
//! panics, and it never stalls a `Block`-policy submitter).

use reads::blm::hubs::MultiChainSource;
use reads::blm::Standardizer;
use reads::central::engine::{
    DropPolicy, EngineConfig, NativeExecutor, ShardedEngine, SocExecutor,
};
use reads::central::resilience::{HealthState, SupervisorPolicy, WatchdogPolicy};
use reads::hls4ml::{convert, profile_model, Firmware, HlsConfig};
use reads::nn::models;
use reads::soc::faults::FaultPlan;
use reads::soc::HpsModel;
use std::time::Duration;

fn mlp_firmware(seed: u64) -> Firmware {
    let m = models::reads_mlp(seed);
    let calib = vec![vec![0.3; 259], vec![-0.4; 259]];
    let profile = profile_model(&m, &calib);
    convert(&m, &profile, &HlsConfig::paper_default())
}

fn standardizer() -> Standardizer {
    Standardizer {
        mean: 112_000.0,
        std: 3_500.0,
    }
}

fn fast_policy(max_restarts: u32) -> SupervisorPolicy {
    SupervisorPolicy {
        max_restarts,
        base_backoff: Duration::from_millis(1),
        max_backoff: Duration::from_millis(5),
    }
}

/// A stuck-FSM fault plan wedges every replica of the shard; the
/// supervisor restarts it within budget with a clean executor and the
/// in-flight frames are re-served — nothing lost, restart visible in the
/// counters, shard health lands on Degraded (it *did* wedge once).
#[test]
fn supervisor_restarts_wedged_shard_and_reserves_in_flight_frames() {
    let fw = mlp_firmware(44);
    let hps = HpsModel::default();
    let std = standardizer();
    let stream = MultiChainSource::new(2, 91).ticks(6);
    let total = stream.len();

    // Reference: the same stream through a never-faulted native engine.
    let (want, _) = ShardedEngine::run_stream(
        &EngineConfig::default(),
        &std,
        |_| Box::new(NativeExecutor::new(fw.clone(), &HpsModel::default())),
        stream.clone(),
    );

    let mut incarnation = 0u32;
    let fw_factory = fw.clone();
    let mut engine = ShardedEngine::start_supervised(
        &EngineConfig {
            workers: 1,
            ..EngineConfig::default()
        },
        &std,
        move |shard| {
            let mut exec = SocExecutor::new(
                fw_factory.clone(),
                &hps,
                2,
                WatchdogPolicy::default(),
                7 ^ shard as u64,
            );
            if incarnation == 0 {
                // First incarnation: every replica runs a stuck-FSM plan
                // that defeats the whole watchdog ladder, wedging the
                // array on the first batch.
                for ip in 0..2 {
                    exec.array_mut()
                        .set_fault_plan_on(ip, Some(FaultPlan::stuck_fsm(1.0, 5)));
                }
            }
            incarnation += 1;
            Box::new(exec)
        },
        fast_policy(3),
    );
    for f in stream {
        engine.submit(f);
    }
    let (results, report) = engine.finish();

    assert_eq!(results.len(), total, "every in-flight frame was re-served");
    assert_eq!(report.processed() as usize, total);
    let shard = &report.shards[0];
    assert_eq!(shard.lost, 0, "restart means re-serve, not loss");
    assert_eq!(shard.counters.shard_restarts, 1, "exactly one restart");
    assert_eq!(shard.counters.restarts_denied, 0);
    assert_eq!(
        shard.health,
        HealthState::Degraded,
        "a restarted shard is degraded, not healthy and not tripped"
    );
    // The re-served verdicts are bit-identical to the unfaulted run.
    assert_eq!(want.len(), results.len());
    for (a, b) in want.iter().zip(&results) {
        assert_eq!((a.chain, a.sequence), (b.chain, b.sequence));
        assert_eq!(
            a.verdict, b.verdict,
            "chain {} seq {} drifted across the restart",
            a.chain, a.sequence
        );
    }
}

/// A shard that wedges on every incarnation exhausts its budget and
/// trips. `finish` still returns (no panic, no stall — the `Block`
/// policy would deadlock here if the dead shard stopped draining), all
/// frames are accounted lost, and the denial is counted.
#[test]
fn shard_exceeding_restart_budget_trips_without_stalling() {
    let fw = mlp_firmware(44);
    let hps = HpsModel::default();
    let std = standardizer();
    let stream = MultiChainSource::new(1, 13).ticks(8);
    let total = stream.len();

    let fw_factory = fw.clone();
    let mut engine = ShardedEngine::start_supervised(
        &EngineConfig {
            workers: 1,
            queue_depth: 4, // small queue: Block backpressure is exercised
            drop_policy: DropPolicy::Block,
            ..EngineConfig::default()
        },
        &std,
        move |shard| {
            let mut exec = SocExecutor::new(
                fw_factory.clone(),
                &hps,
                2,
                WatchdogPolicy::default(),
                3 ^ shard as u64,
            );
            // Every incarnation is born wedged — the fault is persistent,
            // so no restart budget can save this shard.
            exec.array_mut().mark_wedged(0);
            exec.array_mut().mark_wedged(1);
            Box::new(exec)
        },
        fast_policy(2),
    );
    for f in stream {
        engine.submit(f); // Block policy: this would deadlock on a stall
    }
    let (results, report) = engine.finish();

    assert!(results.is_empty(), "a tripped shard produces nothing");
    let shard = &report.shards[0];
    assert_eq!(shard.processed, 0);
    assert_eq!(shard.lost as usize, total, "every frame is accounted lost");
    assert_eq!(shard.counters.shard_restarts, 2, "budget fully spent");
    assert_eq!(shard.counters.restarts_denied, 1, "the denial is counted");
    assert_eq!(
        shard.health,
        HealthState::Tripped,
        "past-budget shard trips loudly"
    );
    assert_eq!(report.worst_health(), HealthState::Tripped);
}
