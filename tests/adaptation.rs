//! The adaptation loop the paper's platform choice exists for (Sec. I:
//! "the operating environment and data behavior can vary significantly
//! over time, necessitating adaptation"): detect the regime change,
//! retrain on representative data, redeploy the reconfigurable IP — and
//! verify the failure is fixed.
//!
//! This closes the loop on the out-of-distribution limitation recorded in
//! EXPERIMENTS.md: a U-Net trained on the RR-dominant mix misattributes
//! MI-injection transients (0 % trip-decision accuracy); retraining on
//! scenario-balanced data recovers it while keeping in-distribution
//! accuracy.

use reads::blm::dataset::build_unet_dataset;
use reads::blm::{FrameGenerator, Scenario, Standardizer};
use reads::central::ablations::scenario_robustness;
use reads::central::drift::{DriftMonitor, DriftStatus};
use reads::nn::train::{train, TrainConfig};
use reads::nn::{models, Adam, Loss, Model};

fn train_unet(frames: &[reads::blm::DeblendSample], std: &Standardizer, seed: u64) -> Model {
    let mut model = models::reads_unet(101);
    let cfg = TrainConfig {
        epochs: 5,
        batch_size: 16,
        loss: Loss::Bce,
        seed,
        grad_clip: Some(5.0),
    };
    let mut opt = Adam::new(0.002);
    let _ = train(&mut model, &build_unet_dataset(frames, std), &cfg, &mut opt);
    model
}

#[test]
fn retraining_on_balanced_data_fixes_mi_misattribution() {
    let mixed = FrameGenerator::with_defaults(101);
    let mixed_frames = mixed.batch(0, 160);
    let std = Standardizer::fit(&mixed_frames);

    // Baseline: RR-dominant training only.
    let baseline = train_unet(&mixed_frames, &std, 102);
    // Adapted: same budget, injection frames mixed in.
    let inj = FrameGenerator::new(101, Scenario::MiInjection.workload());
    let mut balanced = mixed.batch(0, 100);
    balanced.extend(inj.batch(0, 60));
    let adapted = train_unet(&balanced, &std, 102);

    let row = |m: &Model, name: &str| {
        scenario_robustness(m, &std, 100, 555)
            .into_iter()
            .find(|r| r.scenario == name)
            .expect("scenario row")
    };
    let before = row(&baseline, "MI injection transient");
    let after = row(&adapted, "MI injection transient");
    assert!(
        before.decision_accuracy < 0.3,
        "baseline must exhibit the failure: {:.2}",
        before.decision_accuracy
    );
    assert!(
        after.decision_accuracy > 0.7,
        "retraining must fix MI attribution: {:.2} -> {:.2}",
        before.decision_accuracy,
        after.decision_accuracy
    );
    // In-distribution competence is preserved.
    let in_dist = row(&adapted, "mixed operations");
    assert!(
        in_dist.decision_accuracy > 0.9,
        "adaptation must not break nominal operation: {:.2}",
        in_dist.decision_accuracy
    );
}

#[test]
fn drift_monitors_flag_the_regime_changes() {
    let mixed = FrameGenerator::with_defaults(103);
    let commissioning = mixed.batch(0, 60);
    let std = Standardizer::fit(&commissioning);

    // Input-moment drift catches gross distribution changes (abort-level
    // losses blow up the window variance).
    let mut input_mon = DriftMonitor::new(&std, 15);
    let abort = FrameGenerator::new(104, Scenario::AbortLevel.workload());
    let mut verdict = DriftStatus::Nominal;
    for i in 0..15 {
        if let Some(v) = input_mon.observe(&abort.frame(i).readings) {
            verdict = v;
        }
    }
    assert_ne!(
        verdict,
        DriftStatus::Nominal,
        "abort-level regime must register as input drift"
    );

    // The MI-injection regime preserves the bulk input distribution (the
    // first/second moments barely move), so the plain monitor misses it —
    // but the loss-event *shape* changes (narrow scraping), which the
    // roughness-aware monitor catches.
    let commissioning_readings: Vec<Vec<f64>> =
        commissioning.iter().map(|f| f.readings.clone()).collect();
    let mut shape_mon = DriftMonitor::with_shape_baseline(&std, &commissioning_readings, 15);

    // Nominal traffic stays quiet.
    let mut nominal_flags = 0;
    for f in &mixed.batch(300, 15) {
        if let Some(v) = shape_mon.observe(&f.readings) {
            nominal_flags += i32::from(v != DriftStatus::Nominal);
        }
    }
    assert_eq!(nominal_flags, 0, "nominal traffic must not flag");

    // Injection traffic flags via the shape statistic.
    let inj = FrameGenerator::new(106, Scenario::MiInjection.workload());
    let mut shape_verdict = DriftStatus::Nominal;
    for i in 0..15 {
        if let Some(v) = shape_mon.observe(&inj.frame(i).readings) {
            shape_verdict = v;
        }
    }
    assert_ne!(
        shape_verdict,
        DriftStatus::Nominal,
        "injection regime must flag on the shape monitor"
    );
}
