//! Federation conformance: kill a chain's owning gateway mid-stream and
//! prove the fleet hands the work over without losing an acked frame or
//! drifting a verdict bit.
//!
//! A three-gateway fleet (rendezvous-hash placement, heartbeat
//! supervisor, gossiped session digests) serves three hub chains. A
//! [`FleetProducer`] pins one resilient client per chain to the chain's
//! owner; a [`FleetSubscriber`] holds one session per gateway and merges
//! the verdict streams behind a `(chain, sequence)` dedupe set. Midway
//! through the stream the gateway owning chain 0 is killed
//! SIGKILL-style — sockets severed, engine state gone, no goodbye. The
//! supervisor must detect the death by heartbeat timeout, placement must
//! move only the dead member's chains, the orphaned sessions must be
//! adopted by survivors from gossip, and the merged verdict stream must
//! come out **bit-identical** to an uninterrupted in-process run — every
//! frame acked, every acked frame's verdict delivered exactly once.

use reads::blm::acnet::DeblendVerdict;
use reads::blm::dataset::Standardizer;
use reads::blm::hubs::{assemble_frame, ChainFrame, MultiChainSource};
use reads::central::engine::{EngineConfig, ShardedEngine};
use reads::hls4ml::{convert, profile_model, Firmware, HlsConfig};
use reads::net::fleet::{FleetConfig, FleetProducer, FleetSubscriber, GatewayFleet};
use reads::net::resilient::ResilienceConfig;
use reads::net::GatewayConfig;
use reads::nn::models;
use reads::soc::HpsModel;
use std::collections::BTreeMap;
use std::time::{Duration, Instant};

fn synth_frame(len: usize, frame: usize) -> Vec<f64> {
    (0..len)
        .map(|j| {
            let phase = (j as f64).mul_add(0.173, frame as f64 * 1.37);
            2.5 * phase.sin() + 0.25 * ((j % 17) as f64 - 8.0) / 8.0
        })
        .collect()
}

fn build_firmware() -> Firmware {
    let m = models::reads_mlp(3);
    let (input_len, _) = m.input_shape();
    let calib: Vec<Vec<f64>> = (0..6).map(|f| synth_frame(input_len, f + 100)).collect();
    let profile = profile_model(&m, &calib);
    convert(&m, &profile, &HlsConfig::paper_default())
}

fn standardizer() -> Standardizer {
    Standardizer {
        mean: 112_000.0,
        std: 3_500.0,
    }
}

fn bits(xs: &[f64]) -> Vec<u64> {
    xs.iter().map(|x| x.to_bits()).collect()
}

/// In-process golden run of `frames` — the bit-exact reference a fleet of
/// any size must reproduce.
fn golden(
    fw: &Firmware,
    std: &Standardizer,
    frames: &[ChainFrame],
) -> BTreeMap<(u32, u32), Vec<f64>> {
    let n_in = fw.input_len * fw.input_channels;
    let mut expect = BTreeMap::new();
    for cf in frames {
        let readings = assemble_frame(&cf.packets).expect("synthetic frame assembles");
        let (out, _) = fw.infer(&std.apply_frame(&readings[..n_in]));
        let verdict = if out.len() == 2 * reads::blm::N_BLM {
            DeblendVerdict::from_interleaved(cf.sequence, &out)
        } else {
            DeblendVerdict::from_split_halves(cf.sequence, &out)
        };
        let mut flat = verdict.mi.clone();
        flat.extend_from_slice(&verdict.rr);
        expect.insert((cf.chain, cf.sequence), flat);
    }
    expect
}

#[test]
fn killing_a_chain_owner_hands_off_without_losing_an_acked_frame() {
    let fw = build_firmware();
    let std = standardizer();
    let hps = HpsModel::default();
    let chains = 3usize;
    let ticks = 12usize;
    let frames = MultiChainSource::new(chains, 3).ticks(ticks);
    let total = frames.len();
    let expect = golden(&fw, &std, &frames);

    let fleet_cfg = FleetConfig {
        gateways: 3,
        heartbeat_interval: Duration::from_millis(10),
        heartbeat_timeout: Duration::from_millis(80),
        gossip_interval: Duration::from_millis(15),
        gateway: GatewayConfig {
            outbound_queue: 8192,
            ..GatewayConfig::default()
        },
        chains_hint: chains as u32,
    };
    let engine_cfg = EngineConfig::default();
    let mut fleet = GatewayFleet::start_local(
        fleet_cfg,
        ShardedEngine::native_factory(&engine_cfg, &fw, &hps, &std),
    )
    .expect("fleet starts");
    let addrs = fleet.addrs();
    let state = fleet.state();
    let victim = state.owner_of(0).expect("chain 0 has an owner");
    let placement_before: Vec<_> = (0..chains as u32)
        .map(|c| state.owner_of(c).expect("owned"))
        .collect();

    let client_cfg = |seed: u64| ResilienceConfig {
        max_reconnect_attempts: 30,
        base_backoff: Duration::from_millis(10),
        max_backoff: Duration::from_millis(200),
        seed,
        insist_resume: 8,
        acked_retention: 1024,
        ..ResilienceConfig::default()
    };
    let mut subscriber =
        FleetSubscriber::connect(&addrs, &client_cfg(202)).expect("subscribers connect");
    // Subscribers must be attached before the first verdict computes, or
    // the head of the stream has no audience.
    while (0..3).map(|i| fleet.sessions(i)).sum::<u64>() < 3 {
        std::thread::sleep(Duration::from_millis(2));
    }
    std::thread::sleep(Duration::from_millis(30));
    let mut producer = FleetProducer::new(&addrs, client_cfg(101));

    let mut got: BTreeMap<(u32, u32), Vec<f64>> = BTreeMap::new();
    let collect = |sub: &mut FleetSubscriber, got: &mut BTreeMap<(u32, u32), Vec<f64>>| {
        for v in sub.poll(Duration::from_millis(25)) {
            let mut flat = Vec::with_capacity(v.verdict.mi.len() + v.verdict.rr.len());
            flat.extend_from_slice(&v.verdict.mi);
            flat.extend_from_slice(&v.verdict.rr);
            got.insert((v.chain, v.verdict.sequence), flat);
        }
    };

    // Stream tick by tick; kill chain 0's owner halfway through — after
    // its frames were acked, before the stream ends.
    let kill_after_tick = ticks / 2;
    for (tick, tick_frames) in frames.chunks(chains).enumerate() {
        for frame in tick_frames {
            producer.send_frame(frame).expect("send survives the kill");
        }
        producer
            .drain_acks(Duration::from_millis(25))
            .expect("ack pump");
        collect(&mut subscriber, &mut got);
        if tick + 1 == kill_after_tick {
            let _pre_kill_report = fleet.kill_gateway(victim);
        }
    }

    // Final drain: keep pumping until every frame is acked and every
    // verdict arrived (the chain-0 client re-routes, re-feeds its
    // retained acked frames, and the successor recomputes).
    let deadline = Instant::now() + Duration::from_secs(60);
    while (got.len() < total || producer.unacked_total() > 0) && Instant::now() < deadline {
        producer
            .drain_acks(Duration::from_millis(50))
            .expect("final ack pump");
        collect(&mut subscriber, &mut got);
    }

    let producer_stats = producer.stats();
    let subscriber_stats = subscriber.stats();
    let duplicates = subscriber.duplicates();
    let unacked = producer.unacked_total();
    drop(producer);
    drop(subscriber);
    let report = fleet.shutdown();

    // The supervisor detected the kill by heartbeat timeout, and
    // placement moved only the dead member's chains.
    assert_eq!(report.killed, vec![victim]);
    assert!(
        report.deaths_detected >= 1,
        "supervisor missed the kill: {report:?}"
    );
    assert_eq!(report.detection_ms.len(), 1, "one logged kill, one sample");
    assert!(
        report.detection_ms[0] < 2_000.0,
        "detection latency unbounded: {} ms",
        report.detection_ms[0]
    );
    for (c, &old) in placement_before.iter().enumerate() {
        let now = state.owner_of(c as u32).expect("survivors own everything");
        if old == victim {
            assert_ne!(now, victim, "chain {c} still placed on the corpse");
        } else {
            assert_eq!(now, old, "chain {c} moved although its owner survived");
        }
    }

    // Orphaned sessions were adopted from gossip by survivors, and the
    // clients actually failed over (not fresh-started).
    let handoffs: u64 = report.gateways.iter().map(|(_, r)| r.net.handoffs).sum();
    assert!(handoffs >= 1, "no survivor imported a session: {report:?}");
    assert!(
        producer_stats.failovers >= 1,
        "chain-0 producer never moved gateway: {producer_stats:?}"
    );
    assert!(
        subscriber_stats.resumed + producer_stats.resumed >= 1,
        "nothing resumed through the kill"
    );

    // Zero acked-frame loss, exactly-once delivery, bit-identical stream.
    assert_eq!(unacked, 0, "every frame was acked before shutdown");
    assert_eq!(got.len(), total, "every verdict was delivered exactly once");
    assert!(
        duplicates >= 1,
        "failover redelivery never happened — the dedupe set saw no duplicates"
    );
    for (key, want) in &expect {
        let served = got.get(key).unwrap_or_else(|| panic!("missing {key:?}"));
        assert_eq!(
            bits(served),
            bits(want),
            "verdict for chain {} seq {} drifted across the handoff",
            key.0,
            key.1
        );
    }

    // The fleet console reports every survivor with its owned chains.
    for (id, _) in &report.gateways {
        assert!(
            report.fleet_console.contains(&format!("gw[{id}]:")),
            "console missing gw[{id}]: {}",
            report.fleet_console
        );
    }
    assert!(
        !report.fleet_console.contains(&format!("gw[{victim}]:")),
        "killed gateway still rendered: {}",
        report.fleet_console
    );
}

/// Placement answers and redirects are consistent: every gateway names
/// the same owner for a chain, and a producer pinned to that chain lands
/// on it without manual routing.
#[test]
fn routing_converges_on_one_owner_per_chain() {
    let fw = build_firmware();
    let std = standardizer();
    let hps = HpsModel::default();
    let cfg = FleetConfig {
        gateways: 3,
        chains_hint: 4,
        ..FleetConfig::default()
    };
    let engine_cfg = EngineConfig::default();
    let fleet = GatewayFleet::start_local(
        cfg,
        ShardedEngine::native_factory(&engine_cfg, &fw, &hps, &std),
    )
    .expect("fleet starts");
    let addrs = fleet.addrs();
    let state = fleet.state();

    let mut producer = FleetProducer::new(
        &addrs,
        ResilienceConfig {
            seed: 41,
            ..ResilienceConfig::default()
        },
    );
    let frames = MultiChainSource::new(4, 7).ticks(2);
    for frame in &frames {
        producer.send_frame(frame).expect("routed send");
    }
    let deadline = Instant::now() + Duration::from_secs(20);
    while producer.unacked_total() > 0 && Instant::now() < deadline {
        producer
            .drain_acks(Duration::from_millis(25))
            .expect("ack pump");
    }
    assert_eq!(producer.unacked_total(), 0, "all routed frames acked");
    assert_eq!(producer.chains(), 4, "one pinned client per chain");
    drop(producer);

    // Each chain's frames were assembled only on its owner: a gateway
    // that owns nothing in 0..4 saw no hub data, and no gateway counted a
    // misroute redirect (routing was learned before the first frame).
    let per_gw: Vec<(u32, u64)> = (0..3).map(|id| (id, fleet.counters(id).handoffs)).collect();
    for (id, handoffs) in per_gw {
        assert_eq!(handoffs, 0, "no handoff in a healthy fleet (gw {id})");
    }
    let report = fleet.shutdown();
    let mut frames_per_gw = BTreeMap::new();
    for (id, gw_report) in &report.gateways {
        frames_per_gw.insert(*id, gw_report.fleet.processed());
    }
    let owned_counts: BTreeMap<u32, u64> = (0..3)
        .map(|id| {
            let owned = state.owned_chains(id, 4).len() as u64;
            (id, owned * 2) // two ticks per chain
        })
        .collect();
    assert_eq!(
        frames_per_gw, owned_counts,
        "every frame ran on its chain's owner and nowhere else"
    );
}
