//! Kernel conformance suite: every specialised kernel the planner can
//! select — monomorphised dense (const widths 1–17), runtime-width dense,
//! wide-i64 dense, CSR sparse, and the fused conv→pool / upsample→concat
//! kernels — against the interpreter's i64 scalar reference, at every
//! SIMD level the host can reach.
//!
//! The contract under test is the engine's foundation: every kernel
//! computes the *identical* integer sum (pruning skips only exact zeros;
//! lane and row reordering only reassociates integer addition, which is
//! exact), so outputs **and overflow counters** must match the
//! interpreter bit-for-bit on every plan. The matrix crosses:
//!
//! * in/out widths 1–17 (every monomorphised width plus the runtime
//!   fallback via the hidden layer),
//! * weight density 0 / 25 / 50 / 100 % (post-quantization zero masks;
//!   density 0 is the bias-only degenerate network),
//! * batch 1 / 7 / 8 / 9 (pure remainder, exactly one 8-frame lane pass,
//!   and lane pass + remainder),
//! * `SimdPref` Scalar / Avx2 / Avx512 / Auto × `SparsityPolicy`
//!   ForceDense / ForceSparse / Auto (preferences above the host's
//!   capability degrade to the detected level, so every row is runnable
//!   everywhere; under `-Ctarget-cpu=x86-64` CI this same suite pins the
//!   scalar instantiations),
//! * amplitudes inside and far outside the calibrated range, so the
//!   overflow counters under comparison are non-trivially non-zero.
//!
//! The deterministic tests sweep the full width × density × batch × plan
//! matrix; the proptest layer then fuzzes random corners of the same
//! space with seeded shrinking.

use proptest::prelude::*;
use reads::hls4ml::{
    convert, profile_model, CompiledFirmware, Firmware, HlsConfig, InferenceStats, PlanConfig,
    SimdPref, SparsityPolicy,
};
use reads::nn::{DenseParams, Layer, Model};
use reads::tensor::{Activation, Mat};

/// Deterministic weight matrix with an exact zero mask: entry `(r, c)` is
/// zero unless its hash beats `density_pct`, otherwise a value in
/// ±[0.25, 1.0] that survives quantization (so post-quantization density
/// tracks the mask).
fn masked_weights(rows: usize, cols: usize, density_pct: u32, seed: u64) -> Mat {
    let mut data = Vec::with_capacity(rows * cols);
    for r in 0..rows {
        for c in 0..cols {
            let mut h = seed ^ (r as u64) << 32 ^ c as u64;
            h = h.wrapping_mul(0x9E37_79B9_7F4A_7C15);
            h ^= h >> 29;
            h = h.wrapping_mul(0xBF58_476D_1CE4_E5B9);
            h ^= h >> 32;
            if (h % 100) as u32 >= density_pct {
                data.push(0.0);
            } else {
                let mag = 0.25 + 0.75 * ((h >> 8) % 1000) as f64 / 1000.0;
                let sign = if h & (1 << 40) == 0 { 1.0 } else { -1.0 };
                data.push(sign * mag);
            }
        }
    }
    Mat::from_vec(rows, cols, data)
}

fn bias(n: usize, seed: u64) -> Vec<f64> {
    (0..n)
        .map(|j| 0.1 * ((j as f64 + seed as f64 * 0.37).sin()))
        .collect()
}

/// Two-layer MLP: `in_w → hidden (relu) → out_w (sigmoid)`. With
/// `hidden = 19` the second layer exercises the runtime-width dense
/// fallback while the first sweeps the monomorphised widths.
fn tiny_mlp(in_w: usize, hidden: usize, out_w: usize, density_pct: u32, seed: u64) -> Model {
    let layers = vec![
        Layer::Dense(DenseParams {
            w: masked_weights(hidden, in_w, density_pct, seed),
            b: bias(hidden, seed),
            activation: Activation::Relu,
        }),
        Layer::Dense(DenseParams {
            w: masked_weights(out_w, hidden, density_pct, seed ^ 0xABCD),
            b: bias(out_w, seed ^ 0xABCD),
            activation: Activation::Sigmoid,
        }),
    ];
    Model::new(in_w, 1, layers)
}

/// Miniature U-Net shaped graph covering both fusions: conv→pool (fused
/// ConvPool with a retained skip), bottleneck conv, upsample→concat
/// (fused Concat reading the retained slot), and a pointwise head.
fn tiny_unet(len: usize, ch: usize, density_pct: u32, seed: u64) -> Model {
    let k = 3;
    let layers = vec![
        // 0: conv (retained for the concat below) then pooled.
        Layer::Conv1d {
            p: DenseParams {
                w: masked_weights(ch, k, density_pct, seed),
                b: bias(ch, seed),
                activation: Activation::Relu,
            },
            k,
        },
        Layer::MaxPool { pool: 2 },
        // 2: bottleneck conv at half length.
        Layer::Conv1d {
            p: DenseParams {
                w: masked_weights(ch + 1, k * ch, density_pct, seed ^ 0x51),
                b: bias(ch + 1, seed ^ 0x51),
                activation: Activation::Relu,
            },
            k,
        },
        Layer::UpSample { factor: 2 },
        Layer::ConcatWith { node: 0 },
        // 5: pointwise head over (ch + 1) + ch channels.
        Layer::PointwiseDense(DenseParams {
            w: masked_weights(2, 2 * ch + 1, density_pct.max(50), seed ^ 0x77),
            b: bias(2, seed ^ 0x77),
            activation: Activation::Sigmoid,
        }),
    ];
    Model::new(len, 1, layers)
}

fn frame(n: usize, salt: u64, amp: f64) -> Vec<f64> {
    (0..n)
        .map(|j| amp * ((j as f64).mul_add(0.219, salt as f64 * 0.83)).sin())
        .collect()
}

fn lower_to_firmware(m: &Model) -> Firmware {
    let (len, ch) = m.input_shape();
    let calib: Vec<Vec<f64>> = (0..4).map(|f| frame(len * ch, f + 900, 2.0)).collect();
    let profile = profile_model(m, &calib);
    convert(m, &profile, &HlsConfig::paper_default())
}

/// Every plan the build-time dispatcher can produce on this host.
fn plans() -> Vec<PlanConfig> {
    let mut out = Vec::new();
    for simd in [
        SimdPref::Scalar,
        SimdPref::Avx2,
        SimdPref::Avx512,
        SimdPref::Auto,
    ] {
        for sparsity in [
            SparsityPolicy::ForceDense,
            SparsityPolicy::ForceSparse,
            SparsityPolicy::Auto,
        ] {
            out.push(PlanConfig {
                simd,
                sparsity,
                ..PlanConfig::default()
            });
        }
    }
    out
}

/// Interpreter reference for a batch: per-frame outputs plus merged stats
/// (the compiled engine reports one merged `InferenceStats` per batch).
fn reference(fw: &Firmware, frames: &[Vec<f64>]) -> (Vec<Vec<f64>>, InferenceStats) {
    let mut merged = InferenceStats::default();
    let outs = frames
        .iter()
        .map(|x| {
            let (y, s) = fw.infer(x);
            merged.merge(&s);
            y
        })
        .collect();
    (outs, merged)
}

/// Asserts one plan × batch-size cell: outputs and overflow counters must
/// equal the interpreter reference bit-for-bit.
fn assert_conforms(fw: &Firmware, cfg: &PlanConfig, batch: usize, salt: u64, amp: f64, tag: &str) {
    let n_in = fw.input_len * fw.input_channels;
    let frames: Vec<Vec<f64>> = (0..batch)
        .map(|f| frame(n_in, salt + f as u64, amp))
        .collect();
    let (want, want_stats) = reference(fw, &frames);

    let engine = CompiledFirmware::lower_with(fw, cfg);
    assert_eq!(
        engine.content_digest(),
        fw.content_digest(),
        "{tag}: kernel selection must not perturb the content digest"
    );
    let (got, got_stats) = engine.infer_batch(&frames);

    for (f, (g, w)) in got.iter().zip(&want).enumerate() {
        let g_bits: Vec<u64> = g.iter().map(|v| v.to_bits()).collect();
        let w_bits: Vec<u64> = w.iter().map(|v| v.to_bits()).collect();
        assert_eq!(g_bits, w_bits, "{tag} frame {f}: outputs diverge");
    }
    assert_eq!(got_stats, want_stats, "{tag}: overflow counters diverge");
}

/// Widths 1–17 × density × every plan, batch sizes spanning remainder and
/// lane-pass paths. The hidden width 19 keeps the mid layer on the
/// runtime-width fallback so both dense families run in the same net.
#[test]
fn dense_kernels_match_reference_across_widths_and_densities() {
    for width in 1..=17usize {
        for &density in &[0u32, 25, 50, 100] {
            let model = tiny_mlp(width, 19, width, density, 7 + width as u64);
            let fw = lower_to_firmware(&model);
            for cfg in plans() {
                for &batch in &[1usize, 8] {
                    let tag = format!(
                        "width {width} density {density}% batch {batch} plan {:?}/{:?}",
                        cfg.simd, cfg.sparsity
                    );
                    assert_conforms(&fw, &cfg, batch, width as u64, 1.9, &tag);
                }
            }
        }
    }
}

/// Batch remainder handling: 7 (pure remainder), 8 (one lane pass), and
/// 9 (lane pass + remainder) against per-frame reference, across plans.
#[test]
fn batch_remainders_match_reference() {
    for &density in &[25u32, 100] {
        let model = tiny_mlp(13, 16, 11, density, 99);
        let fw = lower_to_firmware(&model);
        for cfg in plans() {
            for &batch in &[1usize, 7, 8, 9] {
                let tag = format!(
                    "density {density}% batch {batch} plan {:?}/{:?}",
                    cfg.simd, cfg.sparsity
                );
                assert_conforms(&fw, &cfg, batch, 5, 1.7, &tag);
            }
        }
    }
}

/// The fused conv→pool and upsample→concat kernels, with and without
/// fusion enabled, against the interpreter — including the retained-skip
/// bookkeeping the fusions must preserve.
#[test]
fn fused_kernels_match_reference() {
    for &density in &[0u32, 25, 50, 100] {
        let model = tiny_unet(12, 3, density, 31);
        let fw = lower_to_firmware(&model);
        for mut cfg in plans() {
            for fuse in [true, false] {
                cfg.fuse = fuse;
                for &batch in &[1usize, 8, 9] {
                    let tag = format!(
                        "unet density {density}% batch {batch} fuse {fuse} plan {:?}/{:?}",
                        cfg.simd, cfg.sparsity
                    );
                    assert_conforms(&fw, &cfg, batch, 11, 2.1, &tag);
                }
            }
        }
    }
}

/// Saturating frames: amplitudes far outside the calibrated range drive
/// the quantizers into overflow, so the counters being compared are
/// non-trivial — and must still match exactly on every kernel.
#[test]
fn overflow_counters_match_on_saturating_frames() {
    let model = tiny_mlp(9, 12, 5, 50, 17);
    let fw = lower_to_firmware(&model);
    let n_in = fw.input_len * fw.input_channels;
    let hot: Vec<Vec<f64>> = (0..9).map(|f| frame(n_in, 400 + f, 60.0)).collect();
    let (_, ref_stats) = reference(&fw, &hot);
    assert!(
        ref_stats.total_overflows() > 0,
        "saturating frames must actually overflow for this test to bite"
    );
    for cfg in plans() {
        let engine = CompiledFirmware::lower_with(&fw, &cfg);
        let (_, got_stats) = engine.infer_batch(&hot);
        assert_eq!(
            got_stats, ref_stats,
            "plan {:?}/{:?}: overflow counters diverge under saturation",
            cfg.simd, cfg.sparsity
        );
    }

    let unet = lower_to_firmware(&tiny_unet(12, 3, 75, 5));
    let hot: Vec<Vec<f64>> = (0..9).map(|f| frame(12, 700 + f, 80.0)).collect();
    let (_, ref_stats) = reference(&unet, &hot);
    assert!(ref_stats.total_overflows() > 0);
    for cfg in plans() {
        let engine = CompiledFirmware::lower_with(&unet, &cfg);
        let (_, got_stats) = engine.infer_batch(&hot);
        assert_eq!(
            got_stats, ref_stats,
            "unet plan {:?}/{:?}: overflow counters diverge under saturation",
            cfg.simd, cfg.sparsity
        );
    }
}

proptest! {
    /// Fuzzed corners of the same matrix: random widths, density, batch,
    /// amplitude, and seed, on the plan that forces the sparse path and
    /// the host's full SIMD level (the widest gap from the scalar
    /// reference). Seeded shrinking localises any divergence.
    #[test]
    fn fuzzed_dense_conforms(
        in_w in 1usize..=17,
        out_w in 1usize..=17,
        hidden in 1usize..=24,
        density in 0u32..=100,
        batch in 1usize..=9,
        salt in 0u64..1000,
        amp_m in 1u32..=30,
    ) {
        let amp = f64::from(amp_m) * 0.2;
        let model = tiny_mlp(in_w, hidden, out_w, density, salt ^ 0xF00D);
        let fw = lower_to_firmware(&model);
        for cfg in [
            PlanConfig { simd: SimdPref::Auto, sparsity: SparsityPolicy::ForceSparse, ..PlanConfig::default() },
            PlanConfig { simd: SimdPref::Auto, sparsity: SparsityPolicy::ForceDense, ..PlanConfig::default() },
        ] {
            let n_in = fw.input_len * fw.input_channels;
            let frames: Vec<Vec<f64>> = (0..batch).map(|f| frame(n_in, salt + f as u64, amp)).collect();
            let (want, want_stats) = reference(&fw, &frames);
            let engine = CompiledFirmware::lower_with(&fw, &cfg);
            let (got, got_stats) = engine.infer_batch(&frames);
            for (f, (g, w)) in got.iter().zip(&want).enumerate() {
                let g_bits: Vec<u64> = g.iter().map(|v| v.to_bits()).collect();
                let w_bits: Vec<u64> = w.iter().map(|v| v.to_bits()).collect();
                prop_assert_eq!(g_bits, w_bits, "frame {} diverges ({:?})", f, cfg.sparsity);
            }
            prop_assert_eq!(&got_stats, &want_stats, "stats diverge ({:?})", cfg.sparsity);
        }
    }

    /// Fuzzed fused graphs: random length/width/density, both fusion
    /// settings, batch crossing the lane boundary.
    #[test]
    fn fuzzed_fused_conforms(
        len in 4usize..=16,
        ch in 1usize..=5,
        density in 0u32..=100,
        batch in 1usize..=9,
        salt in 0u64..500,
    ) {
        let model = tiny_unet(len + len % 2, ch, density, salt ^ 0xBEEF);
        let fw = lower_to_firmware(&model);
        for fuse in [true, false] {
            let cfg = PlanConfig { fuse, ..PlanConfig::default() };
            let n_in = fw.input_len * fw.input_channels;
            let frames: Vec<Vec<f64>> = (0..batch).map(|f| frame(n_in, salt + f as u64, 2.3)).collect();
            let (want, want_stats) = reference(&fw, &frames);
            let engine = CompiledFirmware::lower_with(&fw, &cfg);
            let (got, got_stats) = engine.infer_batch(&frames);
            for (f, (g, w)) in got.iter().zip(&want).enumerate() {
                let g_bits: Vec<u64> = g.iter().map(|v| v.to_bits()).collect();
                let w_bits: Vec<u64> = w.iter().map(|v| v.to_bits()).collect();
                prop_assert_eq!(g_bits, w_bits, "frame {} diverges (fuse {})", f, fuse);
            }
            prop_assert_eq!(&got_stats, &want_stats, "stats diverge (fuse {})", fuse);
        }
    }
}
