//! Offline stand-in for `serde_derive`.
//!
//! The build container has no network access and no vendored registry, so
//! the real `serde`/`serde_derive` cannot be resolved. This crate derives
//! the vendored `serde`'s value-model traits (`to_value`/`from_value`)
//! directly from the item token stream — no `syn`/`quote` needed for the
//! shapes this workspace uses: non-generic named structs, tuple structs,
//! and enums with unit/newtype/tuple/struct variants, without `#[serde]`
//! attributes.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
enum Fields {
    Unit,
    /// Tuple struct/variant with this many fields.
    Tuple(usize),
    /// Named fields, in declaration order.
    Named(Vec<String>),
}

#[derive(Debug)]
struct Variant {
    name: String,
    fields: Fields,
}

#[derive(Debug)]
enum Item {
    Struct {
        name: String,
        fields: Fields,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

/// Derives `serde::Serialize` (value-model flavor).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match parse_item(input) {
        Ok(item) => gen_serialize(&item).parse().expect("generated impl parses"),
        Err(e) => error(&e),
    }
}

/// Derives `serde::Deserialize` (value-model flavor).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    match parse_item(input) {
        Ok(item) => gen_deserialize(&item)
            .parse()
            .expect("generated impl parses"),
        Err(e) => error(&e),
    }
}

fn error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});")
        .parse()
        .expect("error tokens")
}

// ---------------------------------------------------------------- parsing

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0usize;
    skip_attrs_and_vis(&tokens, &mut i);
    let kind = match &tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected struct/enum, got {other:?}")),
    };
    i += 1;
    let name = match &tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected type name, got {other:?}")),
    };
    i += 1;
    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "generic type {name} not supported by the vendored serde_derive"
        ));
    }
    match kind.as_str() {
        "struct" => {
            let fields = match &tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Fields::Named(parse_named_fields(g.stream())?)
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Fields::Tuple(count_tuple_fields(g.stream()))
                }
                Some(TokenTree::Punct(p)) if p.as_char() == ';' => Fields::Unit,
                other => return Err(format!("unsupported struct body: {other:?}")),
            };
            Ok(Item::Struct { name, fields })
        }
        "enum" => {
            let body = match &tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
                other => return Err(format!("expected enum body, got {other:?}")),
            };
            Ok(Item::Enum {
                name,
                variants: parse_variants(body)?,
            })
        }
        k => Err(format!("cannot derive for item kind {k}")),
    }
}

fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 1; // '#'
                if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket)
                {
                    *i += 1;
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    *i += 1; // pub(crate) etc.
                }
            }
            _ => return,
        }
    }
}

/// Advances past a type (or any expression) up to the next top-level comma.
/// Group tokens are atomic, so only `<`/`>` nesting needs tracking; `->` is
/// recognized so fn-pointer types do not unbalance the depth.
fn skip_to_comma(tokens: &[TokenTree], i: &mut usize) {
    let mut angle = 0i32;
    let mut prev_dash = false;
    while let Some(t) = tokens.get(*i) {
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                ',' if angle == 0 => return,
                '<' => angle += 1,
                '>' if !prev_dash => angle -= 1,
                _ => {}
            }
            prev_dash = p.as_char() == '-';
        } else {
            prev_dash = false;
        }
        *i += 1;
    }
}

fn parse_named_fields(stream: TokenStream) -> Result<Vec<String>, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => return Err(format!("expected field name, got {other:?}")),
        };
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => return Err(format!("expected ':' after field {name}, got {other:?}")),
        }
        skip_to_comma(&tokens, &mut i);
        i += 1; // the comma (or past-the-end)
        fields.push(name);
    }
    Ok(fields)
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut i = 0usize;
    let mut n = 0usize;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        skip_to_comma(&tokens, &mut i);
        i += 1;
        n += 1;
    }
    n
}

fn parse_variants(stream: TokenStream) -> Result<Vec<Variant>, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => return Err(format!("expected variant name, got {other:?}")),
        };
        i += 1;
        let fields = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let f = Fields::Named(parse_named_fields(g.stream())?);
                i += 1;
                f
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let f = Fields::Tuple(count_tuple_fields(g.stream()));
                i += 1;
                f
            }
            _ => Fields::Unit,
        };
        // Skip an explicit discriminant (`= expr`) if present, then the comma.
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '=') {
            i += 1;
            skip_to_comma(&tokens, &mut i);
        }
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
        variants.push(Variant { name, fields });
    }
    Ok(variants)
}

// ---------------------------------------------------------------- codegen

const V: &str = "::serde::value::Value";

fn gen_serialize(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let body = match fields {
                Fields::Unit => format!("{V}::Null"),
                Fields::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
                Fields::Tuple(n) => {
                    let elems: Vec<String> = (0..*n)
                        .map(|k| format!("::serde::Serialize::to_value(&self.{k})"))
                        .collect();
                    format!("{V}::Array(::std::vec![{}])", elems.join(", "))
                }
                Fields::Named(fs) => named_to_object(fs, "&self."),
            };
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> {V} {{ {body} }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.fields {
                        Fields::Unit => format!(
                            "{name}::{vn} => {V}::Str(::std::string::String::from(\"{vn}\")),"
                        ),
                        Fields::Tuple(1) => format!(
                            "{name}::{vn}(x0) => {V}::Object(::std::vec![(\
                             ::std::string::String::from(\"{vn}\"), \
                             ::serde::Serialize::to_value(x0))]),"
                        ),
                        Fields::Tuple(n) => {
                            let binds: Vec<String> = (0..*n).map(|k| format!("x{k}")).collect();
                            let elems: Vec<String> = (0..*n)
                                .map(|k| format!("::serde::Serialize::to_value(x{k})"))
                                .collect();
                            format!(
                                "{name}::{vn}({}) => {V}::Object(::std::vec![(\
                                 ::std::string::String::from(\"{vn}\"), \
                                 {V}::Array(::std::vec![{}]))]),",
                                binds.join(", "),
                                elems.join(", ")
                            )
                        }
                        Fields::Named(fs) => {
                            let binds = fs.join(", ");
                            let obj = named_to_object(fs, "");
                            format!(
                                "{name}::{vn} {{ {binds} }} => {V}::Object(::std::vec![(\
                                 ::std::string::String::from(\"{vn}\"), {obj})]),"
                            )
                        }
                    }
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> {V} {{ match self {{ {} }} }}\n\
                 }}",
                arms.join("\n")
            )
        }
    }
}

fn named_to_object(fields: &[String], access_prefix: &str) -> String {
    let pairs: Vec<String> = fields
        .iter()
        .map(|f| {
            format!(
                "(::std::string::String::from(\"{f}\"), \
                 ::serde::Serialize::to_value({access_prefix}{f}))"
            )
        })
        .collect();
    format!("{V}::Object(::std::vec![{}])", pairs.join(", "))
}

fn gen_deserialize(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let body = match fields {
                Fields::Unit => format!("{{ let _ = v; ::std::result::Result::Ok({name}) }}"),
                Fields::Tuple(1) => format!(
                    "::std::result::Result::Ok({name}(::serde::Deserialize::from_value(v)?))"
                ),
                Fields::Tuple(n) => {
                    let elems: Vec<String> = (0..*n)
                        .map(|k| format!("::serde::Deserialize::from_value(v.index({k})?)?"))
                        .collect();
                    format!("::std::result::Result::Ok({name}({}))", elems.join(", "))
                }
                Fields::Named(fs) => {
                    let inits: Vec<String> = fs
                        .iter()
                        .map(|f| {
                            format!(
                                "{f}: ::serde::Deserialize::from_value(v.field_or_null(\"{f}\"))?"
                            )
                        })
                        .collect();
                    format!(
                        "::std::result::Result::Ok({name} {{ {} }})",
                        inits.join(", ")
                    )
                }
            };
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &{V}) -> ::std::result::Result<Self, ::serde::Error> {{ {body} }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.fields, Fields::Unit))
                .map(|v| {
                    let vn = &v.name;
                    format!("\"{vn}\" => ::std::result::Result::Ok({name}::{vn}),")
                })
                .collect();
            let data_arms: Vec<String> = variants
                .iter()
                .filter_map(|v| {
                    let vn = &v.name;
                    match &v.fields {
                        Fields::Unit => None,
                        Fields::Tuple(1) => Some(format!(
                            "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}(\
                             ::serde::Deserialize::from_value(inner)?)),"
                        )),
                        Fields::Tuple(n) => {
                            let elems: Vec<String> = (0..*n)
                                .map(|k| {
                                    format!("::serde::Deserialize::from_value(inner.index({k})?)?")
                                })
                                .collect();
                            Some(format!(
                                "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}({})),",
                                elems.join(", ")
                            ))
                        }
                        Fields::Named(fs) => {
                            let inits: Vec<String> = fs
                                .iter()
                                .map(|f| {
                                    format!(
                                        "{f}: ::serde::Deserialize::from_value(\
                                         inner.field_or_null(\"{f}\"))?"
                                    )
                                })
                                .collect();
                            Some(format!(
                                "\"{vn}\" => ::std::result::Result::Ok({name}::{vn} {{ {} }}),",
                                inits.join(", ")
                            ))
                        }
                    }
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                   fn from_value(v: &{V}) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                     match v {{\n\
                       {V}::Str(s) => match s.as_str() {{\n\
                         {}\n\
                         other => ::std::result::Result::Err(::serde::Error::new(\
                             ::std::format!(\"unknown variant {{other}} of {name}\"))),\n\
                       }},\n\
                       {V}::Object(pairs) if pairs.len() == 1 => {{\n\
                         let (tag, inner) = &pairs[0];\n\
                         let _ = inner;\n\
                         match tag.as_str() {{\n\
                           {}\n\
                           other => ::std::result::Result::Err(::serde::Error::new(\
                               ::std::format!(\"unknown variant {{other}} of {name}\"))),\n\
                         }}\n\
                       }}\n\
                       _ => ::std::result::Result::Err(::serde::Error::new(\
                           ::std::format!(\"invalid value for enum {name}\"))),\n\
                     }}\n\
                   }}\n\
                 }}",
                unit_arms.join("\n"),
                data_arms.join("\n")
            )
        }
    }
}
