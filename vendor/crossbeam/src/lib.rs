//! Offline stand-in for `crossbeam`.
//!
//! Provides `crossbeam::channel::{bounded, unbounded}` backed by the
//! standard library's mpsc channels. Unlike the real crate the receiver is
//! not cloneable (every use in this workspace is single-consumer); the
//! exposed surface is the blocking `send`/`recv` pair plus the non-blocking
//! `try_send`/`try_recv` used for backpressure drop policies.

pub mod channel {
    use std::sync::mpsc;

    enum Tx<T> {
        Bounded(mpsc::SyncSender<T>),
        Unbounded(mpsc::Sender<T>),
    }

    /// Sending half of a channel; cloneable for multiple producers.
    pub struct Sender<T>(Tx<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(match &self.0 {
                Tx::Bounded(tx) => Tx::Bounded(tx.clone()),
                Tx::Unbounded(tx) => Tx::Unbounded(tx.clone()),
            })
        }
    }

    /// Receiving half of a channel.
    pub struct Receiver<T>(mpsc::Receiver<T>);

    /// Error returned when every receiver has been dropped.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> std::fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    impl<T: std::fmt::Debug> std::error::Error for SendError<T> {}

    /// Error returned by [`Sender::try_send`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TrySendError<T> {
        /// The bounded buffer is full; the value is handed back.
        Full(T),
        /// Every receiver has been dropped; the value is handed back.
        Disconnected(T),
    }

    impl<T> TrySendError<T> {
        /// The value that could not be sent.
        pub fn into_inner(self) -> T {
            match self {
                TrySendError::Full(v) | TrySendError::Disconnected(v) => v,
            }
        }
    }

    impl<T> std::fmt::Display for TrySendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                TrySendError::Full(_) => write!(f, "sending on a full channel"),
                TrySendError::Disconnected(_) => write!(f, "sending on a disconnected channel"),
            }
        }
    }

    impl<T: std::fmt::Debug> std::error::Error for TrySendError<T> {}

    /// Error returned when every sender has been dropped and the buffer
    /// is drained.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl std::fmt::Display for RecvError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "receiving on an empty and disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    impl<T> Sender<T> {
        /// Blocks until the value is queued or all receivers are gone.
        ///
        /// # Errors
        /// Returns [`SendError`] carrying the value back when disconnected.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            match &self.0 {
                Tx::Bounded(tx) => tx.send(value).map_err(|mpsc::SendError(v)| SendError(v)),
                Tx::Unbounded(tx) => tx.send(value).map_err(|mpsc::SendError(v)| SendError(v)),
            }
        }

        /// Queues the value only if there is room right now.
        ///
        /// # Errors
        /// [`TrySendError::Full`] when the bounded buffer has no free slot
        /// (never returned by unbounded channels);
        /// [`TrySendError::Disconnected`] when every receiver is gone.
        pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
            match &self.0 {
                Tx::Bounded(tx) => tx.try_send(value).map_err(|e| match e {
                    mpsc::TrySendError::Full(v) => TrySendError::Full(v),
                    mpsc::TrySendError::Disconnected(v) => TrySendError::Disconnected(v),
                }),
                Tx::Unbounded(tx) => tx
                    .send(value)
                    .map_err(|mpsc::SendError(v)| TrySendError::Disconnected(v)),
            }
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a value arrives or all senders are gone.
        ///
        /// # Errors
        /// Returns [`RecvError`] when disconnected and empty.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv().map_err(|mpsc::RecvError| RecvError)
        }

        /// Returns immediately with a value if one is ready.
        ///
        /// # Errors
        /// Returns `Err` when the channel is empty or disconnected.
        pub fn try_recv(&self) -> Result<T, mpsc::TryRecvError> {
            self.0.try_recv()
        }

        /// Blocking iterator draining the channel until disconnect.
        pub fn iter(&self) -> impl Iterator<Item = T> + '_ {
            std::iter::from_fn(|| self.recv().ok())
        }
    }

    /// Creates a channel holding at most `cap` in-flight messages.
    #[must_use]
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap);
        (Sender(Tx::Bounded(tx)), Receiver(rx))
    }

    /// Creates a channel with no capacity bound (sends never block).
    #[must_use]
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender(Tx::Unbounded(tx)), Receiver(rx))
    }
}

#[cfg(test)]
mod tests {
    use super::channel;

    #[test]
    fn bounded_roundtrip_across_threads() {
        let (tx, rx) = channel::bounded::<u32>(2);
        let tx2 = tx.clone();
        std::thread::scope(|s| {
            s.spawn(move || {
                for i in 0..5 {
                    tx2.send(i).unwrap();
                }
            });
            drop(tx);
            let got: Vec<u32> = std::iter::from_fn(|| rx.recv().ok()).collect();
            assert_eq!(got, vec![0, 1, 2, 3, 4]);
        });
    }

    #[test]
    fn disconnected_send_returns_value() {
        let (tx, rx) = channel::bounded::<u8>(1);
        drop(rx);
        assert_eq!(tx.send(7), Err(channel::SendError(7)));
    }

    #[test]
    fn try_send_reports_full_then_drains() {
        let (tx, rx) = channel::bounded::<u8>(1);
        assert_eq!(tx.try_send(1), Ok(()));
        assert_eq!(tx.try_send(2), Err(channel::TrySendError::Full(2)));
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(tx.try_send(3), Ok(()));
        drop(rx);
        assert_eq!(tx.try_send(4), Err(channel::TrySendError::Disconnected(4)));
    }

    #[test]
    fn unbounded_never_fills() {
        let (tx, rx) = channel::unbounded::<u32>();
        for i in 0..1_000 {
            tx.try_send(i).unwrap();
        }
        drop(tx);
        assert_eq!(rx.iter().count(), 1_000);
    }
}
