//! Offline stand-in for `crossbeam`.
//!
//! Provides `crossbeam::channel::bounded` backed by the standard library's
//! `mpsc::sync_channel`. Unlike the real crate the receiver is not
//! cloneable (every use in this workspace is single-consumer), and only
//! the blocking `send`/`recv` pair is exposed.

pub mod channel {
    use std::sync::mpsc;

    /// Sending half of a bounded channel; cloneable for multiple producers.
    pub struct Sender<T>(mpsc::SyncSender<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    /// Receiving half of a bounded channel.
    pub struct Receiver<T>(mpsc::Receiver<T>);

    /// Error returned when every receiver has been dropped.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> std::fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    impl<T: std::fmt::Debug> std::error::Error for SendError<T> {}

    /// Error returned when every sender has been dropped and the buffer
    /// is drained.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl std::fmt::Display for RecvError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "receiving on an empty and disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    impl<T> Sender<T> {
        /// Blocks until the value is queued or all receivers are gone.
        ///
        /// # Errors
        /// Returns [`SendError`] carrying the value back when disconnected.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.0
                .send(value)
                .map_err(|mpsc::SendError(v)| SendError(v))
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a value arrives or all senders are gone.
        ///
        /// # Errors
        /// Returns [`RecvError`] when disconnected and empty.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv().map_err(|mpsc::RecvError| RecvError)
        }

        /// Returns immediately with a value if one is ready.
        ///
        /// # Errors
        /// Returns `Err` when the channel is empty or disconnected.
        pub fn try_recv(&self) -> Result<T, mpsc::TryRecvError> {
            self.0.try_recv()
        }
    }

    /// Creates a channel holding at most `cap` in-flight messages.
    #[must_use]
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap);
        (Sender(tx), Receiver(rx))
    }
}

#[cfg(test)]
mod tests {
    use super::channel;

    #[test]
    fn bounded_roundtrip_across_threads() {
        let (tx, rx) = channel::bounded::<u32>(2);
        let tx2 = tx.clone();
        std::thread::scope(|s| {
            s.spawn(move || {
                for i in 0..5 {
                    tx2.send(i).unwrap();
                }
            });
            drop(tx);
            let got: Vec<u32> = std::iter::from_fn(|| rx.recv().ok()).collect();
            assert_eq!(got, vec![0, 1, 2, 3, 4]);
        });
    }

    #[test]
    fn disconnected_send_returns_value() {
        let (tx, rx) = channel::bounded::<u8>(1);
        drop(rx);
        assert_eq!(tx.send(7), Err(channel::SendError(7)));
    }
}
