//! Offline stand-in for `rayon`.
//!
//! Exposes the same `par_iter()` / `into_par_iter()` entry points and the
//! combinator subset this workspace uses (`map`, `zip`, `sum`, `fold`,
//! `reduce`, `reduce_with`, `flat_map`, `collect`), but executes
//! sequentially on the calling thread. Because every campaign in this repo
//! seeds each replica by *index* (not by thread), results are identical to
//! a truly parallel run — only wall-clock differs.

pub mod iter {
    /// Sequential adapter with rayon's parallel-iterator method surface.
    pub struct ParIter<I> {
        it: I,
    }

    impl<I: Iterator> ParIter<I> {
        pub(crate) fn new(it: I) -> Self {
            Self { it }
        }

        pub fn map<U, F>(self, f: F) -> ParIter<std::iter::Map<I, F>>
        where
            F: FnMut(I::Item) -> U,
        {
            ParIter::new(self.it.map(f))
        }

        pub fn flat_map<U, F>(self, f: F) -> ParIter<std::iter::FlatMap<I, U, F>>
        where
            U: IntoIterator,
            F: FnMut(I::Item) -> U,
        {
            ParIter::new(self.it.flat_map(f))
        }

        pub fn zip<J: Iterator>(self, other: ParIter<J>) -> ParIter<std::iter::Zip<I, J>> {
            ParIter::new(self.it.zip(other.it))
        }

        pub fn filter<F>(self, f: F) -> ParIter<std::iter::Filter<I, F>>
        where
            F: FnMut(&I::Item) -> bool,
        {
            ParIter::new(self.it.filter(f))
        }

        pub fn collect<C: FromIterator<I::Item>>(self) -> C {
            self.it.collect()
        }

        pub fn sum<S: std::iter::Sum<I::Item>>(self) -> S {
            self.it.sum()
        }

        pub fn count(self) -> usize {
            self.it.count()
        }

        pub fn for_each<F: FnMut(I::Item)>(self, f: F) {
            self.it.for_each(f);
        }

        /// Folds all items into a single accumulator. Rayon yields one
        /// accumulator per work chunk; sequentially there is exactly one,
        /// which the subsequent `reduce` merges with the identity.
        pub fn fold<T, ID, F>(self, identity: ID, fold_op: F) -> ParIter<std::iter::Once<T>>
        where
            ID: Fn() -> T,
            F: FnMut(T, I::Item) -> T,
        {
            ParIter::new(std::iter::once(self.it.fold(identity(), fold_op)))
        }

        pub fn reduce<ID, OP>(self, identity: ID, op: OP) -> I::Item
        where
            ID: FnOnce() -> I::Item,
            OP: FnMut(I::Item, I::Item) -> I::Item,
        {
            self.it.fold(identity(), op)
        }

        pub fn reduce_with<OP>(self, op: OP) -> Option<I::Item>
        where
            OP: FnMut(I::Item, I::Item) -> I::Item,
        {
            self.it.reduce(op)
        }
    }

    /// Conversion into a "parallel" iterator by value.
    pub trait IntoParallelIterator {
        type Item;
        type Iter: Iterator<Item = Self::Item>;
        fn into_par_iter(self) -> ParIter<Self::Iter>;
    }

    impl<T: IntoIterator> IntoParallelIterator for T {
        type Item = T::Item;
        type Iter = T::IntoIter;
        fn into_par_iter(self) -> ParIter<Self::Iter> {
            ParIter::new(self.into_iter())
        }
    }

    /// Conversion into a "parallel" iterator over references.
    pub trait IntoParallelRefIterator<'data> {
        type Item: 'data;
        type Iter: Iterator<Item = Self::Item>;
        fn par_iter(&'data self) -> ParIter<Self::Iter>;
    }

    impl<'data, I: 'data + ?Sized> IntoParallelRefIterator<'data> for I
    where
        &'data I: IntoIterator,
    {
        type Item = <&'data I as IntoIterator>::Item;
        type Iter = <&'data I as IntoIterator>::IntoIter;
        fn par_iter(&'data self) -> ParIter<Self::Iter> {
            ParIter::new(self.into_iter())
        }
    }
}

pub mod prelude {
    pub use crate::iter::{IntoParallelIterator, IntoParallelRefIterator, ParIter};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let xs = vec![1u32, 2, 3];
        let ys: Vec<u32> = xs.par_iter().map(|x| x * 2).collect();
        assert_eq!(ys, vec![2, 4, 6]);
        let zs: Vec<u64> = (0..4u64).into_par_iter().map(|i| i * i).collect();
        assert_eq!(zs, vec![0, 1, 4, 9]);
    }

    #[test]
    fn fold_reduce_matches_sequential() {
        let xs: Vec<f64> = (1..=10).map(f64::from).collect();
        let init = || 0.0f64;
        let total = xs
            .par_iter()
            .fold(init, |acc, x| acc + x)
            .reduce(&init, |a, b| a + b);
        assert_eq!(total, 55.0);
    }

    #[test]
    fn zip_sum_reduce_with() {
        let a = vec![1.0, 2.0];
        let b = vec![10.0, 20.0];
        let s: f64 = a.par_iter().zip(b.par_iter()).map(|(x, y)| x * y).sum();
        assert_eq!(s, 50.0);
        let m = a.par_iter().map(|x| *x).reduce_with(f64::max);
        assert_eq!(m, Some(2.0));
        assert_eq!(
            Vec::<f64>::new()
                .par_iter()
                .map(|x| *x)
                .reduce_with(f64::max),
            None
        );
    }

    #[test]
    fn flat_map_flattens() {
        let v: Vec<usize> = (0..3usize)
            .into_par_iter()
            .flat_map(|i| vec![i; i])
            .collect();
        assert_eq!(v, vec![1, 2, 2]);
    }
}
