//! JSON-shaped value tree used as the intermediate representation for the
//! vendored serde stand-in.

use crate::Error;

/// A JSON-shaped dynamic value.
///
/// Objects keep insertion order (a `Vec` of pairs, not a map) so serialized
/// output is deterministic and mirrors field declaration order.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Int(i64),
    UInt(u64),
    Float(f64),
    Str(String),
    Array(Vec<Value>),
    Object(Vec<(String, Value)>),
}

static NULL: Value = Value::Null;

impl Value {
    /// Short name of the value's shape, for error messages.
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) | Value::UInt(_) => "integer",
            Value::Float(_) => "float",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }

    /// Looks up `key` in an object, returning `Null` when the key is absent
    /// or `self` is not an object (so `Option` fields decode to `None`).
    #[must_use]
    pub fn field_or_null(&self, key: &str) -> &Value {
        match self {
            Value::Object(pairs) => pairs
                .iter()
                .find(|(k, _)| k == key)
                .map_or(&NULL, |(_, v)| v),
            _ => &NULL,
        }
    }

    /// Indexes into an array.
    ///
    /// # Errors
    /// Returns [`Error`] when `self` is not an array or `i` is out of bounds.
    pub fn index(&self, i: usize) -> Result<&Value, Error> {
        match self {
            Value::Array(items) => items
                .get(i)
                .ok_or_else(|| Error::new(format!("index {i} out of bounds ({})", items.len()))),
            other => Err(Error::new(format!("expected array, got {}", other.kind()))),
        }
    }

    /// Extracts an unsigned integer (accepts non-negative `Int` too).
    ///
    /// # Errors
    /// Returns [`Error`] on shape mismatch or negative value.
    pub fn as_u64(&self) -> Result<u64, Error> {
        match self {
            Value::UInt(n) => Ok(*n),
            Value::Int(n) => {
                u64::try_from(*n).map_err(|_| Error::new(format!("expected unsigned, got {n}")))
            }
            other => Err(Error::new(format!(
                "expected integer, got {}",
                other.kind()
            ))),
        }
    }

    /// Extracts a signed integer (accepts in-range `UInt` too).
    ///
    /// # Errors
    /// Returns [`Error`] on shape mismatch or out-of-range value.
    pub fn as_i64(&self) -> Result<i64, Error> {
        match self {
            Value::Int(n) => Ok(*n),
            Value::UInt(n) => {
                i64::try_from(*n).map_err(|_| Error::new(format!("{n} overflows i64")))
            }
            other => Err(Error::new(format!(
                "expected integer, got {}",
                other.kind()
            ))),
        }
    }

    /// Extracts a float. Integers widen; `Null` decodes to NaN (the writer
    /// emits `null` for non-finite floats, mirroring JSON's limitations).
    ///
    /// # Errors
    /// Returns [`Error`] on shape mismatch.
    #[allow(clippy::cast_precision_loss)]
    pub fn as_f64(&self) -> Result<f64, Error> {
        match self {
            Value::Float(x) => Ok(*x),
            Value::Int(n) => Ok(*n as f64),
            Value::UInt(n) => Ok(*n as f64),
            Value::Null => Ok(f64::NAN),
            other => Err(Error::new(format!("expected number, got {}", other.kind()))),
        }
    }
}
