//! Offline stand-in for `serde`.
//!
//! The build container resolves no registry crates, so this workspace
//! vendors a minimal, *functional* serialization framework under the same
//! crate name: types convert to/from a JSON-shaped [`value::Value`] tree,
//! and the sibling `serde_json` stand-in renders/parses that tree as real
//! JSON text. The derive macros (re-exported from the vendored
//! `serde_derive`) cover the shapes this workspace uses; the trait surface
//! is intentionally tiny and NOT compatible with the real serde's
//! `Serializer`/`Deserializer` architecture.

pub use serde_derive::{Deserialize, Serialize};

pub mod value;

pub use value::Value;

/// Serialization/deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    /// Creates an error with the given message.
    #[must_use]
    pub fn new(msg: impl Into<String>) -> Self {
        Self { msg: msg.into() }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.msg)
    }
}

impl std::error::Error for Error {}

/// A type that can render itself as a [`Value`] tree.
pub trait Serialize {
    /// Converts `self` to a value tree.
    fn to_value(&self) -> Value;
}

/// A type that can rebuild itself from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from a value tree.
    ///
    /// # Errors
    /// Returns [`Error`] when the tree does not match the expected shape.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

// ------------------------------------------------------------- primitives

macro_rules! impl_serde_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(u64::from(*self))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = v.as_u64()?;
                <$t>::try_from(n)
                    .map_err(|_| Error::new(format!("{n} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

impl_serde_uint!(u8, u16, u32);

impl Serialize for u64 {
    fn to_value(&self) -> Value {
        Value::UInt(*self)
    }
}

impl Deserialize for u64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_u64()
    }
}

impl Serialize for usize {
    fn to_value(&self) -> Value {
        Value::UInt(*self as u64)
    }
}

impl Deserialize for usize {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let n = v.as_u64()?;
        usize::try_from(n).map_err(|_| Error::new(format!("{n} out of range for usize")))
    }
}

macro_rules! impl_serde_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(i64::from(*self))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = v.as_i64()?;
                <$t>::try_from(n)
                    .map_err(|_| Error::new(format!("{n} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

impl_serde_int!(i8, i16, i32);

impl Serialize for i64 {
    fn to_value(&self) -> Value {
        Value::Int(*self)
    }
}

impl Deserialize for i64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_i64()
    }
}

impl Serialize for isize {
    fn to_value(&self) -> Value {
        Value::Int(*self as i64)
    }
}

impl Deserialize for isize {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let n = v.as_i64()?;
        isize::try_from(n).map_err(|_| Error::new(format!("{n} out of range for isize")))
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_f64()
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.as_f64()? as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::new(format!("expected bool, got {}", other.kind()))),
        }
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => Err(Error::new(format!("expected char, got {}", other.kind()))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::new(format!("expected string, got {}", other.kind()))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for &'static str {
    /// Static string fields (device names, labels) deserialize through a
    /// process-wide intern table, so the leak is bounded by the number of
    /// distinct strings ever decoded.
    fn from_value(v: &Value) -> Result<Self, Error> {
        static INTERNED: std::sync::Mutex<Vec<&'static str>> = std::sync::Mutex::new(Vec::new());
        match v {
            Value::Str(s) => {
                let mut table = INTERNED.lock().expect("intern table poisoned");
                if let Some(hit) = table.iter().find(|t| **t == s.as_str()) {
                    return Ok(hit);
                }
                let leaked: &'static str = Box::leak(s.clone().into_boxed_str());
                table.push(leaked);
                Ok(leaked)
            }
            other => Err(Error::new(format!("expected string, got {}", other.kind()))),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

// ------------------------------------------------------------- containers

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error::new(format!("expected array, got {}", other.kind()))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let items: Vec<T> = Vec::from_value(v)?;
        let n = items.len();
        items
            .try_into()
            .map_err(|_| Error::new(format!("expected array of {N}, got {n}")))
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => Ok(Some(T::from_value(other)?)),
        }
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(Box::new(T::from_value(v)?))
    }
}

macro_rules! impl_serde_tuple {
    ($(($($name:ident : $idx:tt),+)),+ $(,)?) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                Ok(($($name::from_value(v.index($idx)?)?,)+))
            }
        }
    )+};
}

impl_serde_tuple!(
    (A: 0),
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3),
    (A: 0, B: 1, C: 2, D: 3, E: 4),
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        assert_eq!(u32::from_value(&42u32.to_value()).unwrap(), 42);
        assert_eq!(i32::from_value(&(-7i32).to_value()).unwrap(), -7);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert!(bool::from_value(&true.to_value()).unwrap());
        let v: Vec<f64> = vec![1.0, -2.5];
        assert_eq!(Vec::<f64>::from_value(&v.to_value()).unwrap(), v);
        let t = (1u64, -2.5f64);
        assert_eq!(<(u64, f64)>::from_value(&t.to_value()).unwrap(), t);
        let o: Option<u8> = None;
        assert_eq!(Option::<u8>::from_value(&o.to_value()).unwrap(), None);
    }

    #[test]
    fn shape_mismatch_errors() {
        assert!(bool::from_value(&Value::UInt(1)).is_err());
        assert!(Vec::<u8>::from_value(&Value::Str("x".into())).is_err());
        assert!(u8::from_value(&Value::UInt(300)).is_err());
    }
}
