//! Offline stand-in for `proptest`.
//!
//! Implements the `proptest!` / `prop_assert*` / `prop_oneof!` macro surface
//! and the strategy combinators this workspace uses (numeric ranges, tuples,
//! `prop::collection::vec`, `any`, `Just`, `prop_map`, `prop::num::f64::ANY`)
//! over a deterministic internal RNG. Every test runs a fixed number of
//! random cases seeded from the test's name, so failures reproduce exactly
//! across runs and machines. Shrinking and regression-file persistence are
//! not implemented; a failure report includes the case number instead.

pub mod strategy {
    use crate::test_runner::TestRng;

    /// A source of random values of a given type.
    pub trait Strategy {
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }
    }

    impl<S: Strategy + ?Sized> Strategy for Box<S> {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    /// Strategy that always yields a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Output of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Uniform choice between boxed alternatives (`prop_oneof!`).
    pub struct Union<T> {
        options: Vec<Box<dyn Strategy<Value = T>>>,
    }

    impl<T> Union<T> {
        /// Builds a union; panics if `options` is empty.
        #[must_use]
        pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Self { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let idx = rng.below(self.options.len() as u64) as usize;
            self.options[idx].generate(rng)
        }
    }

    macro_rules! impl_uint_range {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = u64::from(self.end as u64 - self.start as u64);
                    self.start + rng.below(span) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as u64 - lo as u64) + 1;
                    lo + rng.below(span) as $t
                }
            }
        )*};
    }

    impl_uint_range!(u8, u16, u32, u64, usize);

    macro_rules! impl_int_range {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128 + 1) as u64;
                    (lo as i128 + rng.below(span) as i128) as $t
                }
            }
        )*};
    }

    impl_int_range!(i8, i16, i32, i64, isize);

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + (self.end - self.start) * rng.unit_f64()
        }
    }

    impl Strategy for std::ops::RangeInclusive<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            let (lo, hi) = (*self.start(), *self.end());
            lo + (hi - lo) * rng.unit_f64()
        }
    }

    macro_rules! impl_tuple_strategy {
        ($(($($name:ident : $idx:tt),+)),+ $(,)?) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )+};
    }

    impl_tuple_strategy!(
        (A: 0),
        (A: 0, B: 1),
        (A: 0, B: 1, C: 2),
        (A: 0, B: 1, C: 2, D: 3),
        (A: 0, B: 1, C: 2, D: 3, E: 4),
        (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
    );

    /// Full-domain strategy for `any::<T>()`.
    pub struct Any<T> {
        _marker: std::marker::PhantomData<T>,
    }

    /// Returns a strategy over `T`'s full domain.
    #[must_use]
    pub fn any<T>() -> Any<T>
    where
        Any<T>: Strategy<Value = T>,
    {
        Any {
            _marker: std::marker::PhantomData,
        }
    }

    macro_rules! impl_any_uint {
        ($($t:ty),*) => {$(
            impl Strategy for Any<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_any_uint!(u8, u16, u32, u64, usize);

    impl Strategy for Any<bool> {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Strategy for Any<i32> {
        type Value = i32;
        fn generate(&self, rng: &mut TestRng) -> i32 {
            rng.next_u64() as i32
        }
    }

    impl Strategy for Any<i64> {
        type Value = i64;
        fn generate(&self, rng: &mut TestRng) -> i64 {
            rng.next_u64() as i64
        }
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Element-count specification for [`vec`]: an exact size or a range.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi: n + 1 }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            Self {
                lo: *r.start(),
                hi: *r.end() + 1,
            }
        }
    }

    /// Strategy yielding `Vec`s of values from an element strategy.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Creates a strategy producing vectors whose length falls in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod num {
    /// Strategies over floating-point domains.
    pub mod f64 {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;

        /// Strategy over every `f64` bit pattern, biased toward the special
        /// values that break naive numeric code.
        pub struct F64Any;

        /// All of `f64`, including NaN, infinities and signed zeros.
        pub const ANY: F64Any = F64Any;

        const SPECIALS: [f64; 10] = [
            0.0,
            -0.0,
            f64::NAN,
            f64::INFINITY,
            f64::NEG_INFINITY,
            f64::MAX,
            f64::MIN,
            f64::MIN_POSITIVE,
            f64::EPSILON,
            1.0,
        ];

        impl Strategy for F64Any {
            type Value = f64;
            fn generate(&self, rng: &mut TestRng) -> f64 {
                if rng.below(8) == 0 {
                    SPECIALS[rng.below(SPECIALS.len() as u64) as usize]
                } else {
                    f64::from_bits(rng.next_u64())
                }
            }
        }
    }
}

pub mod test_runner {
    /// Deterministic splitmix64 RNG driving test-case generation.
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        fn seed_from(seed: u64) -> Self {
            Self {
                state: seed ^ 0x9E37_79B9_7F4A_7C15,
            }
        }

        /// RNG for one case of one test, derived from the test's name so
        /// every run of the suite draws identical inputs.
        #[must_use]
        pub fn for_case(name: &str, case: u32) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            Self::seed_from(h ^ (u64::from(case) << 32) ^ u64::from(case))
        }

        /// Next raw 64-bit draw.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform draw in `[0, n)`; returns 0 when `n == 0`.
        pub fn below(&mut self, n: u64) -> u64 {
            if n == 0 {
                0
            } else {
                self.next_u64() % n
            }
        }

        /// Uniform draw in `[0, 1)` with 53 bits of precision.
        #[allow(clippy::cast_precision_loss)]
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    /// Failure raised by a `prop_assert*` macro.
    #[derive(Debug)]
    pub struct TestCaseError {
        msg: String,
    }

    impl TestCaseError {
        /// Creates a failed-assertion error.
        #[must_use]
        pub fn fail(msg: impl Into<String>) -> Self {
            Self { msg: msg.into() }
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "{}", self.msg)
        }
    }

    /// Outcome of one generated case.
    pub type TestCaseResult = Result<(), TestCaseError>;

    /// Cases per property; fixed so suite cost is predictable.
    pub const CASES: u32 = 64;

    /// Runs `f` against `CASES` deterministic inputs, panicking (so the
    /// harness reports a normal test failure) on the first failing case.
    pub fn run(name: &str, mut f: impl FnMut(&mut TestRng) -> TestCaseResult) {
        for case in 0..CASES {
            let mut rng = TestRng::for_case(name, case);
            if let Err(e) = f(&mut rng) {
                panic!("property '{name}' failed at case {case}/{CASES}: {e}");
            }
        }
    }
}

pub mod prelude {
    pub use crate as prop;
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Defines `#[test]` functions whose arguments are drawn from strategies.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block)+) => {
        $(
            $(#[$meta])*
            fn $name() {
                $crate::test_runner::run(stringify!($name), |__pt_rng| {
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), __pt_rng);)+
                    $body
                    Ok(())
                });
            }
        )+
    };
}

/// Asserts a condition inside a property, failing only the current case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::fail(concat!(
                "assertion failed: ",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Asserts two expressions are equal inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                l,
                r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err($crate::test_runner::TestCaseError::fail(format!($($fmt)+)));
        }
    }};
}

/// Asserts two expressions differ inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {} != {}\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                l
            )));
        }
    }};
}

/// Uniform choice among strategies yielding the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {{
        let options: ::std::vec::Vec<
            ::std::boxed::Box<dyn $crate::strategy::Strategy<Value = _>>,
        > = vec![$(::std::boxed::Box::new($s)),+];
        $crate::strategy::Union::new(options)
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_respect_bounds(a in 3u32..17, b in -5i64..5, x in 0.25f64..0.75,
                                 w in 2u32..=4) {
            prop_assert!((3..17).contains(&a));
            prop_assert!((-5..5).contains(&b));
            prop_assert!((0.25..0.75).contains(&x));
            prop_assert!((2..=4).contains(&w));
        }

        #[test]
        fn vec_sizes_respect_bounds(xs in prop::collection::vec(any::<u8>(), 2..6),
                                    ys in prop::collection::vec(0u16..9, 3)) {
            prop_assert!(xs.len() >= 2 && xs.len() < 6);
            prop_assert_eq!(ys.len(), 3);
            prop_assert!(ys.iter().all(|y| *y < 9));
        }

        #[test]
        fn oneof_and_map_compose(v in prop_oneof![
            (0u8..4).prop_map(u32::from),
            Just(99u32),
        ]) {
            prop_assert!(v < 4 || v == 99);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;
        let strat = prop::collection::vec(0.0f64..1.0, 5);
        let a = strat.generate(&mut TestRng::for_case("det", 7));
        let b = strat.generate(&mut TestRng::for_case("det", 7));
        assert_eq!(a, b);
    }

    #[test]
    fn f64_any_hits_special_values() {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;
        let mut rng = TestRng::for_case("specials", 0);
        let mut saw_nonfinite = false;
        for _ in 0..4096 {
            let x = prop::num::f64::ANY.generate(&mut rng);
            saw_nonfinite |= !x.is_finite();
        }
        assert!(saw_nonfinite);
    }
}
