//! Offline stand-in for `criterion`.
//!
//! Keeps the `criterion_group!` / `criterion_main!` / `benchmark_group` /
//! `Bencher::iter*` surface so the workspace's benches compile and run
//! without the registry, but replaces criterion's statistical machinery
//! with a plain mean over `sample_size` timed iterations, printed to
//! stdout. No warmup tuning, outlier analysis, or HTML reports.

use std::time::{Duration, Instant};

/// Per-iteration batch sizing hint (accepted, ignored).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Opaque measurement driver handed to bench closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over the configured iteration count.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Times `routine` on fresh inputs from `setup`; setup time excluded.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

/// Benchmark driver with criterion's builder surface.
pub struct Criterion {
    sample_size: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 20 }
    }
}

impl Criterion {
    /// Sets how many timed iterations each benchmark runs.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1) as u64;
        self
    }

    /// Accepted for compatibility; this implementation is iteration-count
    /// driven, not time driven.
    #[must_use]
    pub fn measurement_time(self, _d: Duration) -> Self {
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            _criterion: self,
        }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<String>,
        f: F,
    ) -> &mut Self {
        run_one(&id.into(), self.sample_size, f);
        self
    }
}

/// A named set of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: u64,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Overrides the iteration count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1) as u64;
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<String>,
        f: F,
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id.into()), self.sample_size, f);
        self
    }

    /// Ends the group (report already emitted per bench).
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, sample_size: u64, mut f: F) {
    // One untimed pass so lazy setup (caches, allocators) settles first.
    let mut warmup = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut warmup);

    let mut b = Bencher {
        iters: sample_size,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let mean_ns = b.elapsed.as_nanos() as f64 / sample_size as f64;
    println!(
        "{label}: mean {:.3} us over {sample_size} iters",
        mean_ns / 1_000.0
    );
}

/// Re-export for benches that take `black_box` from criterion.
pub use std::hint::black_box;

/// Declares a benchmark group function.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the bench binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bench_demo(c: &mut Criterion) {
        let mut g = c.benchmark_group("demo");
        g.sample_size(3);
        g.bench_function("sum", |b| {
            b.iter(|| (0..100u64).sum::<u64>());
        });
        g.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 64], |v| v.len(), BatchSize::LargeInput);
        });
        g.finish();
    }

    criterion_group!(demo_benches, bench_demo);

    #[test]
    fn group_runs_without_panicking() {
        demo_benches();
    }

    #[test]
    fn full_config_form_compiles() {
        criterion_group! {
            name = cfg_benches;
            config = Criterion::default().sample_size(2);
            targets = bench_demo
        }
        cfg_benches();
    }
}
