//! Offline stand-in for `serde_json`.
//!
//! Serializes the vendored serde's [`Value`] tree to real JSON text (compact
//! by default, with a pretty variant) and parses JSON text back. The writer
//! relies on Rust's shortest-round-trip `f64` Display, so finite floats
//! survive a text round trip exactly; non-finite floats render as `null`
//! (as in the real crate) and decode to NaN.

use serde::{Deserialize, Serialize, Value};

/// JSON serialization/parse error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Self { msg: msg.into() }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.msg)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error::new(e.to_string())
    }
}

/// Serializes `value` as a compact JSON string.
///
/// # Errors
/// Infallible in this implementation; `Result` kept for API compatibility.
pub fn to_string<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value());
    Ok(out)
}

/// Serializes `value` as compact JSON bytes.
///
/// # Errors
/// Infallible in this implementation; `Result` kept for API compatibility.
pub fn to_vec<T: Serialize>(value: &T) -> Result<Vec<u8>, Error> {
    to_string(value).map(String::into_bytes)
}

/// Serializes `value` as indented JSON text.
///
/// # Errors
/// Infallible in this implementation; `Result` kept for API compatibility.
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value_pretty(&mut out, &value.to_value(), 0);
    Ok(out)
}

/// Serializes `value` as indented JSON bytes.
///
/// # Errors
/// Infallible in this implementation; `Result` kept for API compatibility.
pub fn to_vec_pretty<T: Serialize>(value: &T) -> Result<Vec<u8>, Error> {
    to_string_pretty(value).map(String::into_bytes)
}

/// Parses a JSON string into `T`.
///
/// # Errors
/// Returns [`Error`] on malformed JSON or a shape mismatch.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let v = parse(s)?;
    Ok(T::from_value(&v)?)
}

/// Parses JSON bytes into `T`.
///
/// # Errors
/// Returns [`Error`] on invalid UTF-8, malformed JSON or a shape mismatch.
pub fn from_slice<T: Deserialize>(bytes: &[u8]) -> Result<T, Error> {
    let s = std::str::from_utf8(bytes).map_err(|e| Error::new(format!("invalid utf-8: {e}")))?;
    from_str(s)
}

// ------------------------------------------------------------------ writer

fn write_value(out: &mut String, v: &Value) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(n) => out.push_str(&n.to_string()),
        Value::UInt(n) => out.push_str(&n.to_string()),
        Value::Float(x) => write_float(out, *x),
        Value::Str(s) => write_string(out, s),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(out, item);
            }
            out.push(']');
        }
        Value::Object(pairs) => {
            out.push('{');
            for (i, (k, item)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(out, k);
                out.push(':');
                write_value(out, item);
            }
            out.push('}');
        }
    }
}

fn write_value_pretty(out: &mut String, v: &Value, depth: usize) {
    match v {
        Value::Array(items) if !items.is_empty() => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                out.push_str(if i > 0 { ",\n" } else { "\n" });
                push_indent(out, depth + 1);
                write_value_pretty(out, item, depth + 1);
            }
            out.push('\n');
            push_indent(out, depth);
            out.push(']');
        }
        Value::Object(pairs) if !pairs.is_empty() => {
            out.push('{');
            for (i, (k, item)) in pairs.iter().enumerate() {
                out.push_str(if i > 0 { ",\n" } else { "\n" });
                push_indent(out, depth + 1);
                write_string(out, k);
                out.push_str(": ");
                write_value_pretty(out, item, depth + 1);
            }
            out.push('\n');
            push_indent(out, depth);
            out.push('}');
        }
        other => write_value(out, other),
    }
}

fn push_indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn write_float(out: &mut String, x: f64) {
    if x.is_finite() {
        out.push_str(&x.to_string());
    } else {
        out.push_str("null");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ------------------------------------------------------------------ parser

fn parse(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected '{}' at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(Error::new(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(Error::new(format!(
                "unexpected character '{}' at byte {}",
                c as char, self.pos
            ))),
            None => Err(Error::new("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected ',' or ']' at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let v = self.value()?;
            pairs.push((key, v));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(pairs));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected ',' or '}}' at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|e| Error::new(format!("invalid utf-8 in string: {e}")))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error::new("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let code = self.hex4()?;
                            // Surrogate pairs for astral-plane characters.
                            let c = if (0xD800..0xDC00).contains(&code) {
                                self.expect(b'\\')?;
                                self.expect(b'u')?;
                                let low = self.hex4()?;
                                let combined = 0x10000
                                    + ((code - 0xD800) << 10)
                                    + low
                                        .checked_sub(0xDC00)
                                        .ok_or_else(|| Error::new("invalid low surrogate"))?;
                                char::from_u32(combined)
                            } else {
                                char::from_u32(code)
                            };
                            out.push(c.ok_or_else(|| Error::new("invalid \\u escape"))?);
                        }
                        other => {
                            return Err(Error::new(format!("invalid escape '\\{}'", other as char)))
                        }
                    }
                }
                _ => return Err(Error::new("unterminated string")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let end = self.pos + 4;
        let slice = self
            .bytes
            .get(self.pos..end)
            .ok_or_else(|| Error::new("truncated \\u escape"))?;
        let s = std::str::from_utf8(slice).map_err(|_| Error::new("invalid \\u escape"))?;
        let code = u32::from_str_radix(s, 16).map_err(|_| Error::new("invalid \\u escape"))?;
        self.pos = end;
        Ok(code)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| Error::new(format!("invalid number '{text}'")))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Value::Int)
                .or_else(|_| text.parse::<f64>().map(Value::Float))
                .map_err(|_| Error::new(format!("invalid number '{text}'")))
        } else {
            text.parse::<u64>()
                .map(Value::UInt)
                .or_else(|_| text.parse::<f64>().map(Value::Float))
                .map_err(|_| Error::new(format!("invalid number '{text}'")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_format_matches_serde_json() {
        let v = Value::Object(vec![
            ("version".into(), Value::UInt(1)),
            (
                "xs".into(),
                Value::Array(vec![Value::Float(1.5), Value::Int(-2)]),
            ),
            ("name".into(), Value::Str("a\"b".into())),
        ]);
        struct W(Value);
        impl Serialize for W {
            fn to_value(&self) -> Value {
                self.0.clone()
            }
        }
        assert_eq!(
            to_string(&W(v)).unwrap(),
            r#"{"version":1,"xs":[1.5,-2],"name":"a\"b"}"#
        );
    }

    #[test]
    fn float_text_roundtrip_is_exact() {
        for x in [0.1, 1.0 / 3.0, -2.5e-17, 1e300, f64::MIN_POSITIVE] {
            let json = to_string(&x).unwrap();
            let back: f64 = from_str(&json).unwrap();
            assert_eq!(back.to_bits(), x.to_bits(), "{json}");
        }
    }

    #[test]
    fn nonfinite_floats_become_null_then_nan() {
        let json = to_string(&f64::NAN).unwrap();
        assert_eq!(json, "null");
        let back: f64 = from_str(&json).unwrap();
        assert!(back.is_nan());
    }

    #[test]
    fn parses_escapes_and_whitespace() {
        let v: Vec<String> = from_str(" [ \"a\\n\\u0041\", \"\" ] ").unwrap();
        assert_eq!(v, vec!["a\nA".to_string(), String::new()]);
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<bool>("not json").is_err());
        assert!(from_str::<bool>("true trailing").is_err());
        assert!(from_str::<Vec<u8>>("[1,").is_err());
    }
}
