//! The ML/HLS co-design exploration of Sec. IV-D: sweep reuse factors and
//! precision strategies and print the accuracy/latency/resource frontier,
//! then let the co-design loop fit the design onto progressively smaller
//! devices.
//!
//! ```sh
//! cargo run --release --example codesign_sweep
//! ```

use reads::central::codesign::codesign;
use reads::central::trained::{TrainedBundle, TrainingTier};
use reads::fixed::QFormat;
use reads::hls4ml::config::PrecisionStrategy;
use reads::hls4ml::latency::estimate_latency;
use reads::hls4ml::resource::estimate_resources;
use reads::hls4ml::{convert, profile_model, HlsConfig, ARRIA10_10AS066};
use reads::nn::{metrics, ModelSpec};

fn main() {
    let bundle = TrainedBundle::get_or_train(ModelSpec::UNet, TrainingTier::Fast, 3);
    let calibration = bundle.calibration_inputs(32);
    let profile = profile_model(&bundle.model, &calibration);
    let eval = bundle.eval_frames(16, 0).inputs;
    let float_out: Vec<Vec<f64>> = eval.iter().map(|x| bundle.model.predict(x)).collect();

    println!("reuse-factor sweep (layer-based 16-bit):");
    println!(
        "{:>7} {:>12} {:>12} {:>10} {:>8}",
        "reuse", "cycles", "latency", "ALUTs", "fits"
    );
    for reuse in [8u32, 16, 32, 64, 128, 256, 512] {
        let mut cfg = HlsConfig::paper_default();
        cfg.reuse.conv = reuse;
        let fw = convert(&bundle.model, &profile, &cfg);
        let lat = estimate_latency(&fw);
        let res = estimate_resources(&fw);
        println!(
            "{:>7} {:>12} {:>12} {:>10} {:>8}",
            reuse,
            lat.total_cycles,
            format!("{}", lat.duration()),
            res.ip_aluts,
            res.fits(&ARRIA10_10AS066)
        );
    }

    println!("\nprecision sweep (reuse 32/260), accuracy vs float on 16 frames:");
    println!(
        "{:>46} {:>9} {:>9} {:>9}",
        "strategy", "acc", "ALUT %", "fits"
    );
    let mut strategies = vec![
        PrecisionStrategy::Uniform(QFormat::signed(12, 6)),
        PrecisionStrategy::Uniform(QFormat::signed(16, 7)),
        PrecisionStrategy::Uniform(QFormat::signed(18, 10)),
    ];
    for width in [10, 12, 14, 16] {
        strategies.push(PrecisionStrategy::LayerBased {
            width,
            int_margin: 0,
        });
    }
    for strategy in strategies {
        let cfg = HlsConfig::with_strategy(strategy);
        let fw = convert(&bundle.model, &profile, &cfg);
        let (quant_out, _) = fw.infer_batch(&eval);
        let acc: f64 = float_out
            .iter()
            .zip(&quant_out)
            .map(|(a, b)| metrics::accuracy_within(a, b, metrics::PAPER_TOLERANCE))
            .sum::<f64>()
            / eval.len() as f64;
        let res = estimate_resources(&fw);
        println!(
            "{:>46} {:>8.1}% {:>8.1}% {:>9}",
            strategy.label(),
            acc * 100.0,
            res.alut_pct(&ARRIA10_10AS066),
            res.fits(&ARRIA10_10AS066)
        );
    }

    println!("\nco-design loop onto shrinking devices:");
    for shrink in [1u64, 2, 3, 4] {
        let mut device = ARRIA10_10AS066;
        device.aluts /= shrink;
        device.alms /= shrink;
        let result = codesign(
            &bundle.model,
            &profile,
            HlsConfig::paper_default(),
            &device,
            64,
        );
        println!(
            "  1/{shrink} device: fits={} after {} reuse raises, latency {}, ALUTs {}",
            result.fits,
            result.iterations,
            result.report.latency.duration(),
            result.report.resources.ip_aluts
        );
    }
}
