//! The six-stage verification flow of Sec. IV-C, run exactly in the
//! paper's order: the control IP first, then the hls4ml IP verified on the
//! *small MLP* before the full U-Net, the FPGA subsystem, the bridge adder,
//! the interrupt path, and the combined system.
//!
//! ```sh
//! cargo run --release --example verification_flow
//! ```

use reads::central::trained::{TrainedBundle, TrainingTier};
use reads::central::verification::{build_firmware, run_verification_flow};
use reads::nn::{metrics, ModelSpec};

fn main() {
    let mut all_passed = true;
    // The paper's discipline: verify the flow on the small MLP first, then
    // repeat on the production U-Net.
    for spec in [ModelSpec::Mlp, ModelSpec::UNet] {
        println!("── verification flow on the {} ──", spec.name());
        let bundle = TrainedBundle::get_or_train(spec, TrainingTier::Fast, 13);
        let frames = bundle.eval_frames(8, 0).inputs;
        let firmware = build_firmware(&bundle.model, &frames);
        for result in
            run_verification_flow(&bundle.model, &firmware, &frames, metrics::PAPER_TOLERANCE)
        {
            println!(
                "  stage {} [{}] {:<38} {}",
                result.stage,
                if result.passed { "PASS" } else { "FAIL" },
                result.name,
                result.detail
            );
            all_passed &= result.passed;
        }
    }
    println!(
        "\nverification {}",
        if all_passed {
            "complete: all stages passed — the surrounding interfaces and \
             control logic are now trusted; future IP updates only re-run \
             stage 2 (Sec. IV-C)"
        } else {
            "FAILED"
        }
    );
    std::process::exit(i32::from(!all_passed));
}
