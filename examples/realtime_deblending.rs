//! Real-time de-blending: a three-thread central node driven at the real
//! 320 fps cadence.
//!
//! Thread 1 plays the BLM hubs (7 packets every 3.125 ms of wall time),
//! thread 2 is the HPS user-space application (assemble, standardize, run
//! the SoC frame, publish), thread 3 is the ACNET consumer applying trip
//! decisions. Channels are `crossbeam` bounded channels, mirroring the
//! paper's Ethernet ingress and egress queues.
//!
//! ```sh
//! cargo run --release --example realtime_deblending
//! ```

use crossbeam::channel;
use reads::blm::hubs::{split_frame, HubPacket};
use reads::blm::FrameGenerator;
use reads::central::system::{DeblendingSystem, TRIP_THRESHOLD};
use reads::central::trained::{TrainedBundle, TrainingTier};
use reads::central::OperatorConsole;
use reads::hls4ml::{convert, profile_model, HlsConfig};
use reads::nn::ModelSpec;
use std::time::{Duration, Instant};

const FRAMES: u32 = 640; // two seconds at 320 fps
const PERIOD: Duration = Duration::from_micros(3125);

fn main() {
    let bundle = TrainedBundle::get_or_train(ModelSpec::UNet, TrainingTier::Fast, 7);
    let calibration = bundle.calibration_inputs(16);
    let profile = profile_model(&bundle.model, &calibration);
    let firmware = convert(&bundle.model, &profile, &HlsConfig::paper_default());
    let mut system =
        DeblendingSystem::new(firmware, bundle.standardizer.clone(), Default::default(), 1);
    let generator = FrameGenerator::with_defaults(bundle.workload_seed);

    let (hub_tx, hub_rx) = channel::bounded::<(u32, Vec<HubPacket>)>(8);
    let (acnet_tx, acnet_rx) = channel::bounded(8);

    std::thread::scope(|scope| {
        // BLM hubs: one frame of 7 packets per period.
        scope.spawn(move || {
            let start = Instant::now();
            for seq in 0..FRAMES {
                let sample = generator.frame(u64::from(seq) + 50_000);
                let packets = split_frame(&sample.readings, seq);
                hub_tx.send((seq, packets)).expect("hub channel");
                // Pace to the digitizer cadence.
                let next = PERIOD * (seq + 1);
                if let Some(sleep) = next.checked_sub(start.elapsed()) {
                    std::thread::sleep(sleep);
                }
            }
        });

        // HPS user-space application.
        scope.spawn(move || {
            let mut worst_ms: f64 = 0.0;
            let mut misses = 0u32;
            while let Ok((seq, packets)) = hub_rx.recv() {
                let (verdict, timing) = system.process_tick(&packets, seq).expect("tick");
                let ms = timing.total.as_millis_f64();
                worst_ms = worst_ms.max(ms);
                misses += u32::from(ms > 3.0);
                acnet_tx
                    .send((verdict, timing.core))
                    .expect("acnet channel");
            }
            println!(
                "HPS: {} frames, worst simulated frame {:.3} ms, {} deadline misses",
                FRAMES, worst_ms, misses
            );
        });

        // ACNET consumer: the operator console.
        scope.spawn(move || {
            let mut console = OperatorConsole::new(TRIP_THRESHOLD, 3.0);
            while let Ok((verdict, timing)) = acnet_rx.recv() {
                console.observe(&verdict, &timing);
            }
            print!("{}", console.render());
        });
    });
    println!("real-time run complete: 2 s of beam at 320 fps");
}
