//! Quickstart: train a small de-blending model, convert it to fixed-point
//! firmware the way hls4ml would, deploy it on the simulated Arria 10 SoC,
//! and run one 3 ms frame end to end.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use reads::central::system::{DeblendingSystem, TRIP_THRESHOLD};
use reads::central::trained::{TrainedBundle, TrainingTier};
use reads::hls4ml::{convert, profile_model, BuildReport, HlsConfig};
use reads::nn::ModelSpec;

fn main() {
    // 1. A trained model (the MLP trains in seconds; swap in
    //    ModelSpec::UNet for the production model).
    println!("training (or loading cached) MLP on the synthetic workload...");
    let bundle = TrainedBundle::get_or_train(ModelSpec::Mlp, TrainingTier::Fast, 1);
    println!(
        "  {} parameters, validation BCE {:.4}",
        bundle.model.param_count(),
        bundle.val_loss
    );

    // 2. hls4ml conversion: profile dynamic ranges on calibration frames,
    //    then quantize with the paper's layer-based 16-bit strategy.
    let calibration = bundle.calibration_inputs(32);
    let profile = profile_model(&bundle.model, &calibration);
    let firmware = convert(&bundle.model, &profile, &HlsConfig::paper_default());
    println!("\nfirmware build:\n{}", BuildReport::new(&firmware));

    // 3. Deploy on the simulated SoC and process one digitizer tick:
    //    7 hub packets -> standardize -> Steps 1-8 -> ACNET verdict.
    let mut system = DeblendingSystem::new(
        firmware,
        bundle.standardizer.clone(),
        Default::default(),
        42,
    );
    let generator = reads::blm::FrameGenerator::with_defaults(bundle.workload_seed);
    let sample = generator.frame(99_999);
    let packets = reads::blm::hubs::split_frame(&sample.readings, 1);
    let (verdict, timing) = system.process_tick(&packets, 1).expect("frame");

    println!("frame timing:");
    println!("  ingress {:>10}", timing.ingress);
    println!(
        "  steps 1-8 {:>8}   (write {} | compute {} | irq {} | read {})",
        timing.core.total,
        timing.core.write,
        timing.core.compute,
        timing.core.irq,
        timing.core.read
    );
    println!("  egress  {:>10}", timing.egress);
    match verdict.trip_decision(TRIP_THRESHOLD) {
        Some(machine) => println!("verdict: trip {}", machine.tag()),
        None => println!("verdict: quiet frame, no trip"),
    }
    println!(
        "attribution mass: MI {:.1} / RR {:.1}",
        verdict.mi_mass(),
        verdict.rr_mass()
    );
}
