//! Emits the firmware artifacts the real flow would hand to Quartus: the
//! hls4ml-style C++ translation unit and the VHDL control/interface
//! wrapper (the paper's memory-mapped host-interface extension, Sec. IV-B).
//!
//! ```sh
//! cargo run --release --example generate_firmware
//! ```

use reads::central::trained::{TrainedBundle, TrainingTier};
use reads::hls4ml::{codegen, convert, profile_model, BuildReport, HlsConfig};
use reads::nn::ModelSpec;

fn main() {
    let bundle = TrainedBundle::get_or_train(ModelSpec::UNet, TrainingTier::Fast, 23);
    let calibration = bundle.calibration_inputs(16);
    let profile = profile_model(&bundle.model, &calibration);
    let firmware = convert(&bundle.model, &profile, &HlsConfig::paper_default());

    let cpp = codegen::emit_cpp(&firmware, "unet_deblender");
    let vhdl = codegen::emit_avalon_wrapper(&firmware, "unet_deblender");

    let dir =
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("target/reads-artifacts/firmware");
    std::fs::create_dir_all(&dir).expect("artifacts dir");
    std::fs::write(dir.join("unet_deblender.cpp"), &cpp).expect("write cpp");
    std::fs::write(dir.join("unet_deblender_wrapper.vhd"), &vhdl).expect("write vhdl");

    println!("{}", BuildReport::new(&firmware));
    println!(
        "emitted {} lines of C++ and {} lines of VHDL under {}",
        cpp.lines().count(),
        vhdl.lines().count(),
        dir.display()
    );
    // A taste of the generated interface.
    for line in vhdl.lines().take(12) {
        println!("  | {line}");
    }
}
