//! SignalTap-style capture of the control-path handshake, exported as VCD.
//!
//! The paper debugs the deployed system "by monitoring real-time signals
//! via the SignalTap utility" (Sec. IV-C). This example runs three frames
//! through the simulated central node with the logic analyzer attached and
//! writes `target/reads-artifacts/handshake.vcd` — open it in GTKWave to
//! see the trigger/busy/done/IRQ handshake of Fig. 2, Steps 1–8.
//!
//! ```sh
//! cargo run --release --example signaltap_trace
//! ```

use reads::central::trained::{TrainedBundle, TrainingTier};
use reads::hls4ml::{convert, profile_model, HlsConfig};
use reads::nn::ModelSpec;
use reads::sim::{SimDuration, SimTime};
use reads::soc::node::{CentralNodeSim, TapProbes};
use reads::soc::SignalTap;

fn main() {
    let bundle = TrainedBundle::get_or_train(ModelSpec::Mlp, TrainingTier::Fast, 17);
    let calibration = bundle.calibration_inputs(8);
    let profile = profile_model(&bundle.model, &calibration);
    let firmware = convert(&bundle.model, &profile, &HlsConfig::paper_default());
    let mut node = CentralNodeSim::new(firmware, Default::default(), 4);

    let mut tap = SignalTap::new();
    let probes = TapProbes::declare(&mut tap);
    let input = bundle.eval_frames(3, 0).inputs;

    let mut base = SimTime::ZERO;
    for (i, frame) in input.iter().enumerate() {
        let (_, timing) = node.run_frame_traced(frame, &mut tap, probes, base);
        println!(
            "frame {i}: total {} (write {} | compute {} | irq {} | read {})",
            timing.total, timing.write, timing.compute, timing.irq, timing.read
        );
        // Idle gap between frames, as the 3 ms cadence would leave.
        base = base + timing.total + SimDuration::from_micros(500);
    }

    let vcd = tap.to_vcd("reads_central_node");
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("target/reads-artifacts");
    std::fs::create_dir_all(&dir).expect("artifacts dir");
    let path = dir.join("handshake.vcd");
    std::fs::write(&path, &vcd).expect("write vcd");
    println!(
        "\n{} signals, {} transitions -> {}",
        tap.signal_count(),
        tap.transition_count(),
        path.display()
    );
    println!("open with: gtkwave {}", path.display());
}
