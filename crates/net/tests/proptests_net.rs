//! Property/fuzz suite for the `reads-net` wire codec.
//!
//! The decoder's contract: arbitrary `HubPacket`s round-trip exactly;
//! truncated, corrupted, or adversarially-sized inputs return typed
//! errors — **never** a panic, **never** an allocation beyond the
//! protocol's declared cap; and any split of a valid byte stream into
//! chunks decodes to the same messages.

use proptest::prelude::*;
use reads_blm::acnet::DeblendVerdict;
use reads_blm::hubs::HubPacket;
use reads_net::wire::{encode_msg, FrameDecoder, Msg, Role, VerdictMsg, HEADER_LEN, MAX_PAYLOAD};
use reads_net::{BufPool, Outbound};
use std::io::Write;
use std::sync::Arc;

/// The pathological subscriber socket: accepts at most `grain` bytes per
/// write and reports `WouldBlock` every `stall_every`-th call — the
/// worst case the reactor's vectored-write drain must survive without
/// reordering, duplicating, or dropping a single byte.
struct TrickleSocket {
    received: Vec<u8>,
    grain: usize,
    stall_every: usize,
    calls: usize,
}

impl Write for TrickleSocket {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.calls += 1;
        if self.calls.is_multiple_of(self.stall_every) {
            return Err(std::io::ErrorKind::WouldBlock.into());
        }
        let n = buf.len().min(self.grain);
        self.received.extend_from_slice(&buf[..n]);
        Ok(n)
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

fn arb_packet() -> impl Strategy<Value = HubPacket> {
    (
        0u8..7,
        any::<u32>(),
        0u16..260,
        prop::collection::vec(any::<u32>(), 1..60),
    )
        .prop_map(|(hub, sequence, first_monitor, counts)| HubPacket {
            hub,
            sequence,
            first_monitor,
            counts,
        })
}

fn arb_msg() -> impl Strategy<Value = Msg> {
    prop_oneof![
        Just(Msg::Hello {
            role: Role::Producer
        }),
        Just(Msg::Hello {
            role: Role::Subscriber
        }),
        (any::<u32>(), arb_packet()).prop_map(|(chain, packet)| Msg::HubData { chain, packet }),
        (any::<u32>(), any::<u32>())
            .prop_map(|(chain, sequence)| Msg::FrameAck { chain, sequence }),
        (
            any::<u32>(),
            any::<u32>(),
            prop::collection::vec(any::<u64>(), 0..40)
        )
            .prop_map(|(chain, sequence, bits)| {
                let mi: Vec<f64> = bits.iter().map(|&b| f64::from_bits(b)).collect();
                let rr: Vec<f64> = bits.iter().rev().map(|&b| f64::from_bits(b)).collect();
                Msg::Verdict(VerdictMsg {
                    chain,
                    verdict: DeblendVerdict { sequence, mi, rr },
                })
            }),
        Just(Msg::Shutdown),
    ]
}

/// Bit-pattern equality: NaNs and -0.0 must survive transport verbatim,
/// which `PartialEq` on f64 cannot express.
fn msg_bits_eq(a: &Msg, b: &Msg) -> bool {
    match (a, b) {
        (Msg::Verdict(x), Msg::Verdict(y)) => {
            let bits = |xs: &[f64]| xs.iter().map(|v| v.to_bits()).collect::<Vec<_>>();
            x.chain == y.chain
                && x.verdict.sequence == y.verdict.sequence
                && bits(&x.verdict.mi) == bits(&y.verdict.mi)
                && bits(&x.verdict.rr) == bits(&y.verdict.rr)
        }
        _ => a == b,
    }
}

proptest! {
    /// Round trip: any message, through any chunking of its bytes.
    #[test]
    fn any_message_roundtrips_through_any_chunking(
        msg in arb_msg(), chunk in 1usize..64
    ) {
        let bytes = encode_msg(&msg);
        let mut dec = FrameDecoder::new();
        let mut got = Vec::new();
        for part in bytes.chunks(chunk) {
            dec.push(part);
            while let Ok(Some(m)) = dec.next_msg() {
                got.push(m);
            }
        }
        prop_assert_eq!(got.len(), 1);
        prop_assert!(msg_bits_eq(&got[0], &msg), "decoded message drifted");
        prop_assert_eq!(dec.buffered(), 0);
    }

    /// A back-to-back stream of messages decodes in order.
    #[test]
    fn message_streams_decode_in_order(
        msgs in prop::collection::vec(arb_msg(), 1..8)
    ) {
        let mut dec = FrameDecoder::new();
        for m in &msgs {
            dec.push(&encode_msg(m));
        }
        for m in &msgs {
            let got = dec.next_msg().unwrap().expect("message available");
            prop_assert!(msg_bits_eq(&got, m));
        }
        prop_assert_eq!(dec.next_msg().unwrap(), None);
    }

    /// Truncation at any point yields `Ok(None)` (need more bytes) or a
    /// typed error after resync — never a panic, never a phantom message
    /// beyond the one that fit.
    #[test]
    fn truncated_input_never_panics(msg in arb_msg(), keep_frac in 0.0f64..1.0) {
        let bytes = encode_msg(&msg);
        #[allow(clippy::cast_sign_loss, clippy::cast_possible_truncation)]
        let keep = ((bytes.len() as f64) * keep_frac) as usize;
        let mut dec = FrameDecoder::new();
        dec.push(&bytes[..keep.min(bytes.len().saturating_sub(1))]);
        for _ in 0..16 {
            match dec.next_msg() {
                Ok(None) => break,
                Ok(Some(_)) => prop_assert!(false, "truncated frame decoded whole"),
                Err(_) => {}
            }
        }
    }

    /// Arbitrary corruption of one encoded frame: the decoder yields a
    /// typed error or nothing — never a different valid message of the
    /// same kind with different contents, and never a panic.
    #[test]
    fn corrupted_frames_never_silently_accepted(
        chain in any::<u32>(), sequence in any::<u32>(),
        byte_idx in 0usize..20, bit in 0u8..8
    ) {
        let msg = Msg::FrameAck { chain, sequence };
        let mut bytes = encode_msg(&msg);
        let idx = byte_idx % bytes.len();
        bytes[idx] ^= 1 << bit;
        let mut dec = FrameDecoder::new();
        dec.push(&bytes);
        for _ in 0..(bytes.len() + 4) {
            match dec.next_msg() {
                Ok(None) => break,
                Ok(Some(m)) => {
                    // A single bit flip must not produce a *different*
                    // accepted ack (CRC-32 detects all 1-bit errors).
                    prop_assert!(msg_bits_eq(&m, &msg), "corrupted frame accepted");
                }
                Err(_) => {} // typed rejection: fine
            }
        }
    }

    /// Pure garbage: the decoder consumes it with typed errors and bounded
    /// memory, and recovers the next clean frame afterwards.
    #[test]
    fn garbage_then_clean_frame_recovers(
        junk in prop::collection::vec(any::<u8>(), 0..300),
        chain in any::<u32>(), sequence in any::<u32>()
    ) {
        let clean = Msg::FrameAck { chain, sequence };
        let mut dec = FrameDecoder::new();
        dec.push(&junk);
        dec.push(&encode_msg(&clean));
        let mut recovered = false;
        // Junk can only be consumed at ≥1 byte per call, so this bound
        // guarantees termination.
        for _ in 0..(junk.len() + 64) {
            match dec.next_msg() {
                Ok(Some(m)) => {
                    if msg_bits_eq(&m, &clean) {
                        recovered = true;
                        break;
                    }
                    // Junk *can* embed a valid frame by chance with a
                    // vendored RNG it practically never will; either way it
                    // must be a well-formed decode, which reaching here
                    // already proves.
                }
                Ok(None) => break,
                Err(_) => {}
            }
        }
        // Either the clean frame decoded, or junk bytes consumed part of
        // its header during resync — in which case the stream ends with
        // nothing buffered beyond the tail. Both are sound; what matters
        // is no panic and bounded consumption, plus recovery in the
        // overwhelmingly common case where junk lacks the magic prefix.
        if !junk.windows(1).any(|w| w[0] == 0x52) {
            prop_assert!(recovered, "clean frame lost without any resync ambiguity");
        }
    }

    /// Adversarial length fields never make the decoder buffer more than
    /// the protocol cap: memory stays bounded by what was actually pushed,
    /// and declared-but-absent bytes are never allocated for.
    #[test]
    fn adversarial_lengths_never_overallocate(len_field in any::<u32>()) {
        let mut frame = encode_msg(&Msg::Shutdown);
        frame[8..12].copy_from_slice(&len_field.to_be_bytes());
        let mut dec = FrameDecoder::new();
        dec.push(&frame);
        let pushed = frame.len();
        for _ in 0..32 {
            if let Ok(None) = dec.next_msg() {
                break;
            }
        }
        // The decoder may hold at most what was pushed — a 4 GiB length
        // claim buys the attacker nothing.
        prop_assert!(dec.buffered() <= pushed);
        if len_field as usize > MAX_PAYLOAD {
            prop_assert!(pushed < HEADER_LEN + len_field as usize);
        }
    }

    /// Reactor partial-write invariant: a subscriber whose socket accepts
    /// one-to-three bytes at a time (and stalls with `WouldBlock` on top)
    /// still receives the exact byte stream that was enqueued — every
    /// message decodes back bit-identical, in order, with nothing left
    /// buffered. This drives the same [`Outbound`] ring + flush path the
    /// gateway's reactors use for verdict fan-out, through both the
    /// shared-`Arc` and the pool-coalesced small-message enqueue routes.
    #[test]
    fn trickle_subscriber_receives_bit_identical_stream(
        msgs in prop::collection::vec(arb_msg(), 1..10),
        grain in 1usize..4,
        stall_every in 2usize..5,
    ) {
        let out = Outbound::new(msgs.len(), BufPool::default());
        let mut total_bytes = 0usize;
        for (i, m) in msgs.iter().enumerate() {
            let bytes = encode_msg(m);
            total_bytes += bytes.len();
            if i % 2 == 0 {
                let shared: Arc<[u8]> = bytes.into();
                out.push_shared(shared).expect("within capacity");
            } else {
                out.push_small(&bytes).expect("within capacity");
            }
        }
        let mut sock = TrickleSocket {
            received: Vec::new(),
            grain,
            stall_every,
            calls: 0,
        };
        // Each non-stalled call moves ≥1 byte, so this bound guarantees
        // termination even at grain 1 with a stall every other call.
        let mut drained = false;
        for _ in 0..(total_bytes * stall_every + 16) {
            match out.flush_into(&mut sock) {
                Ok(true) => { drained = true; break; }
                Ok(false) => {} // WouldBlock: reactor would re-arm write interest
                Err(e) => prop_assert!(false, "trickle flush failed: {e}"),
            }
        }
        prop_assert!(drained, "ring never drained");
        prop_assert!(out.is_drained());
        prop_assert_eq!(sock.received.len(), total_bytes);
        let mut dec = FrameDecoder::new();
        dec.push(&sock.received);
        for m in &msgs {
            let got = dec.next_msg().unwrap().expect("message available");
            prop_assert!(msg_bits_eq(&got, m), "trickled stream drifted");
        }
        prop_assert_eq!(dec.next_msg().unwrap(), None);
        prop_assert_eq!(dec.buffered(), 0);
    }
}
