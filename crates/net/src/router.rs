//! Fleet placement and replicated session digests: the shared state every
//! federated gateway and the [`FleetSupervisor`](crate::fleet) read.
//!
//! **Placement** is rendezvous hashing (highest random weight): chain `c`
//! is owned by the *alive* member maximizing `mix(c, member_id)`. The
//! property that matters for failover is minimal disruption — when a
//! member dies, only the chains it owned move (each to the peer that was
//! its runner-up); every other chain keeps its owner, so clients pinned to
//! surviving gateways never see a redirect from a fleet death.
//!
//! **Liveness** is a heartbeat counter per member, bumped by the member's
//! own hub loop every poll iteration (≤ 2 ms apart). The supervisor reads
//! the counters; a counter that stops advancing for the configured timeout
//! is a dead gateway — indistinguishable from SIGKILL, which is the point.
//! Death bumps the fleet `epoch`, so owners recompute lazily everywhere.
//!
//! **Gossip** is a per-gateway digest of its live sessions — role plus
//! per-chain delivered-verdict watermarks — republished every
//! [`FleetLink::gossip_interval`]. The digest is the handoff primitive: a
//! `Resume` landing on a gateway that has never seen the session consults
//! the board, and a stub published by a now-dead member is imported as a
//! parked session (the PR 5 resume path does the rest). The digest is at
//! most one gossip interval stale — that staleness bound is part of the
//! protocol contract (see DESIGN.md §12).

use crate::wire::Role;
use std::collections::HashMap;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// One fleet member's control block.
#[derive(Debug)]
pub struct FleetMember {
    /// Fleet id (index into the member table; stable for the fleet's
    /// lifetime — dead members keep their slot so ids never reshuffle).
    pub id: u32,
    /// The member's listen address, as clients should dial it.
    pub addr: SocketAddr,
    alive: AtomicBool,
    heartbeat: AtomicU64,
}

/// A session's gossiped digest entry: enough for a peer to adopt the
/// session after its home gateway dies, not enough to replay verdict bytes
/// (those are re-derived — the producer refeeds its retained frames and
/// the deterministic engine reproduces bit-identical verdicts).
#[derive(Debug, Clone)]
pub struct SessionStub {
    /// The session's declared role.
    pub role: Role,
    /// Per-chain `(chain, highest verdict sequence delivered-or-ringed)`
    /// watermarks at publish time. Empty for producers.
    pub watermarks: Vec<(u32, u32)>,
}

/// Shared fleet state: the member table, the death epoch, and the gossip
/// board. One instance per fleet, behind an [`Arc`], read by every
/// gateway's hub loop and by the supervisor.
pub struct FleetState {
    members: Vec<FleetMember>,
    epoch: AtomicU64,
    gossip: Mutex<HashMap<u32, HashMap<u64, SessionStub>>>,
}

/// Rendezvous weight of `(chain, member)` — a splitmix64-style mixer over
/// the pair. Pure function of its inputs: every gateway and every client
/// computes the same owner without coordination.
fn weight(chain: u32, member: u32) -> u64 {
    let mut x = (u64::from(chain) << 32) ^ u64::from(member) ^ 0x9E37_79B9_7F4A_7C15;
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^= x >> 31;
    x
}

impl FleetState {
    /// Builds the member table; everyone starts alive with heartbeat 0.
    #[must_use]
    pub fn new(addrs: &[SocketAddr]) -> Self {
        let members = addrs
            .iter()
            .enumerate()
            .map(|(i, &addr)| FleetMember {
                id: u32::try_from(i).expect("fleet larger than u32"),
                addr,
                alive: AtomicBool::new(true),
                heartbeat: AtomicU64::new(0),
            })
            .collect();
        Self {
            members,
            epoch: AtomicU64::new(0),
            gossip: Mutex::new(HashMap::new()),
        }
    }

    /// Member count (alive or dead).
    #[must_use]
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether the member table is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// The member table.
    #[must_use]
    pub fn members(&self) -> &[FleetMember] {
        &self.members
    }

    /// Listen address of member `id`.
    ///
    /// # Panics
    /// Panics on an out-of-range id — ids come from this table.
    #[must_use]
    pub fn addr_of(&self, id: u32) -> SocketAddr {
        self.members[id as usize].addr
    }

    /// Whether member `id` is currently considered alive.
    #[must_use]
    pub fn is_alive(&self, id: u32) -> bool {
        self.members
            .get(id as usize)
            .is_some_and(|m| m.alive.load(Ordering::SeqCst))
    }

    /// Alive members right now.
    #[must_use]
    pub fn alive_count(&self) -> usize {
        self.members
            .iter()
            .filter(|m| m.alive.load(Ordering::SeqCst))
            .count()
    }

    /// The death epoch: bumped on every liveness transition, so cached
    /// placements can be invalidated with one atomic load.
    #[must_use]
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::SeqCst)
    }

    /// Marks a member dead (supervisor verdict). Idempotent; bumps the
    /// epoch only on the transition.
    pub fn mark_dead(&self, id: u32) {
        if let Some(m) = self.members.get(id as usize) {
            if m.alive.swap(false, Ordering::SeqCst) {
                self.epoch.fetch_add(1, Ordering::SeqCst);
            }
        }
    }

    /// Marks a member alive again (not used by the kill path — a killed
    /// gateway stays dead — but the transition is symmetric for future
    /// rejoin support).
    pub fn mark_alive(&self, id: u32) {
        if let Some(m) = self.members.get(id as usize) {
            if !m.alive.swap(true, Ordering::SeqCst) {
                self.epoch.fetch_add(1, Ordering::SeqCst);
            }
        }
    }

    /// Heartbeat bump — called by member `id`'s own hub loop every poll
    /// iteration. Monotonic; the supervisor only compares for advance.
    pub fn beat(&self, id: u32) {
        if let Some(m) = self.members.get(id as usize) {
            m.heartbeat.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Current heartbeat counter of member `id`.
    #[must_use]
    pub fn heartbeat(&self, id: u32) -> u64 {
        self.members
            .get(id as usize)
            .map_or(0, |m| m.heartbeat.load(Ordering::Relaxed))
    }

    /// The alive member owning `chain` under rendezvous hashing, or `None`
    /// when the whole fleet is dead.
    #[must_use]
    pub fn owner_of(&self, chain: u32) -> Option<u32> {
        self.members
            .iter()
            .filter(|m| m.alive.load(Ordering::SeqCst))
            .max_by_key(|m| weight(chain, m.id))
            .map(|m| m.id)
    }

    /// The chains in `0..chains_hint` that member `id` currently owns —
    /// for console labels; placement itself never materializes this list.
    #[must_use]
    pub fn owned_chains(&self, id: u32, chains_hint: u32) -> Vec<u32> {
        (0..chains_hint)
            .filter(|&c| self.owner_of(c) == Some(id))
            .collect()
    }

    /// Comma-separated owned-chain label for the console (`"-"` when the
    /// member owns nothing in the hinted range).
    #[must_use]
    pub fn chains_label(&self, id: u32, chains_hint: u32) -> String {
        let owned = self.owned_chains(id, chains_hint);
        if owned.is_empty() {
            "-".to_string()
        } else {
            owned
                .iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
                .join(",")
        }
    }

    /// Replaces gateway `id`'s gossiped session digest wholesale (the
    /// digest is a snapshot, not a delta — republishing is idempotent).
    pub fn publish_digest(&self, id: u32, digest: HashMap<u64, SessionStub>) {
        self.gossip.lock().expect("gossip lock").insert(id, digest);
    }

    /// Every gateway currently claiming `session_id` in its digest, with
    /// the claimed stub. The resume path uses this to decide a handoff:
    /// a claim by an *alive* member means the session lives elsewhere
    /// (misrouted resume — reject); a claim only by *dead* members means
    /// the session is orphaned and importable.
    #[must_use]
    pub fn digest_claims(&self, session_id: u64) -> Vec<(u32, SessionStub)> {
        self.gossip
            .lock()
            .expect("gossip lock")
            .iter()
            .filter_map(|(&gw, sessions)| sessions.get(&session_id).map(|s| (gw, s.clone())))
            .collect()
    }

    /// Drops gateway `id`'s digest claim on one session — called by an
    /// importer after adoption so a second resume of the same session
    /// cannot double-import from the stale dead-member digest.
    pub fn retract_claim(&self, id: u32, session_id: u64) {
        if let Some(sessions) = self.gossip.lock().expect("gossip lock").get_mut(&id) {
            sessions.remove(&session_id);
        }
    }
}

impl std::fmt::Debug for FleetState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FleetState")
            .field("members", &self.members.len())
            .field("alive", &self.alive_count())
            .field("epoch", &self.epoch())
            .finish_non_exhaustive()
    }
}

/// A gateway's membership in a fleet, injected through
/// [`GatewayConfig::fleet`](crate::GatewayConfig): the shared state, this
/// gateway's id, and how often it republishes its session digest.
#[derive(Clone)]
pub struct FleetLink {
    /// The fleet-wide shared state.
    pub state: Arc<FleetState>,
    /// This gateway's member id.
    pub gateway_id: u32,
    /// Session-digest republish period — also the digest staleness bound.
    pub gossip_interval: Duration,
}

impl std::fmt::Debug for FleetLink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FleetLink")
            .field("gateway_id", &self.gateway_id)
            .field("gossip_interval", &self.gossip_interval)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn state(n: usize) -> FleetState {
        let addrs: Vec<SocketAddr> = (0..n)
            .map(|i| format!("127.0.0.1:{}", 7000 + i).parse().unwrap())
            .collect();
        FleetState::new(&addrs)
    }

    #[test]
    fn ownership_is_total_and_deterministic() {
        let s = state(3);
        for chain in 0..64 {
            let a = s.owner_of(chain).expect("someone owns it");
            let b = s.owner_of(chain).expect("still owned");
            assert_eq!(a, b);
            assert!(a < 3);
        }
    }

    #[test]
    fn every_member_owns_something() {
        let s = state(3);
        let mut counts = [0usize; 3];
        for chain in 0..48 {
            counts[s.owner_of(chain).unwrap() as usize] += 1;
        }
        for (id, &n) in counts.iter().enumerate() {
            assert!(n > 0, "member {id} owns no chains out of 48: {counts:?}");
        }
    }

    #[test]
    fn death_moves_only_the_dead_members_chains() {
        let s = state(4);
        let before: Vec<u32> = (0..64).map(|c| s.owner_of(c).unwrap()).collect();
        s.mark_dead(2);
        assert_eq!(s.epoch(), 1);
        for (chain, &old) in before.iter().enumerate() {
            let now = s.owner_of(chain as u32).unwrap();
            if old == 2 {
                assert_ne!(now, 2, "chain {chain} still owned by the dead member");
            } else {
                assert_eq!(now, old, "chain {chain} moved although its owner lives");
            }
        }
    }

    #[test]
    fn mark_dead_is_idempotent_and_rejoin_bumps_epoch() {
        let s = state(2);
        s.mark_dead(1);
        s.mark_dead(1);
        assert_eq!(s.epoch(), 1, "second mark_dead must not bump");
        assert_eq!(s.alive_count(), 1);
        s.mark_alive(1);
        assert_eq!(s.epoch(), 2);
        assert_eq!(s.alive_count(), 2);
    }

    #[test]
    fn whole_fleet_dead_has_no_owner() {
        let s = state(2);
        s.mark_dead(0);
        s.mark_dead(1);
        assert_eq!(s.owner_of(5), None);
    }

    #[test]
    fn digest_claims_and_retraction() {
        let s = state(2);
        let mut digest = HashMap::new();
        digest.insert(
            42u64,
            SessionStub {
                role: Role::Subscriber,
                watermarks: vec![(0, 17)],
            },
        );
        s.publish_digest(0, digest);
        let claims = s.digest_claims(42);
        assert_eq!(claims.len(), 1);
        assert_eq!(claims[0].0, 0);
        assert_eq!(claims[0].1.watermarks, vec![(0, 17)]);
        s.retract_claim(0, 42);
        assert!(s.digest_claims(42).is_empty());
    }

    #[test]
    fn chains_label_renders_owned_set() {
        let s = state(1);
        assert_eq!(s.chains_label(0, 3), "0,1,2", "solo member owns all");
        assert_eq!(s.chains_label(0, 0), "-");
    }

    #[test]
    fn heartbeats_are_per_member() {
        let s = state(2);
        s.beat(0);
        s.beat(0);
        s.beat(1);
        assert_eq!(s.heartbeat(0), 2);
        assert_eq!(s.heartbeat(1), 1);
    }
}
