//! Readiness-driven reactor primitives: the std-only `epoll`/`poll(2)`
//! wrapper underneath the event-loop gateway.
//!
//! Thread-per-connection capped the serving plane at thousands of
//! sessions — two OS threads, two stacks, and an unbounded channel per
//! socket. This module provides everything needed to run the same wire
//! protocol from a handful of reactor threads instead:
//!
//! * [`Poller`] — a readiness multiplexer over raw file descriptors.
//!   On Linux it is a thin wrapper over `epoll` (level-triggered); on
//!   other Unix platforms it falls back to `poll(2)`. Both backends are
//!   declared as `extern "C"` symbols resolved from the libc that `std`
//!   already links — no external crates, the same trick
//!   [`shutdown`](crate::shutdown) uses for `signal(2)`.
//! * [`Waker`] / [`WakeRx`] — a deduplicated cross-thread wakeup built
//!   on a nonblocking [`UnixStream`] pair, so the hub thread can nudge a
//!   reactor that is parked in [`Poller::wait`].
//! * [`SendQueue`] / [`Outbound`] — the per-connection outbound ring
//!   that replaces writer threads: bounded by *message* count (so the
//!   slow-consumer policies keep their exact semantics), drained with
//!   vectored writes ([`Write::write_vectored`]), small messages
//!   coalesced into blocks recycled through a shared [`BufPool`], and
//!   fan-out payloads shared as `Arc<[u8]>` so a verdict broadcast to
//!   50 000 subscribers is encoded exactly once.
//! * [`retry_intr`] / [`is_would_block`] — the *single* home for
//!   `EINTR` retries and would-block classification. Transport code
//!   must call these instead of matching [`io::ErrorKind`] ad hoc.
//!
//! Everything here is platform-gated: on non-Unix targets the
//! constructors return [`io::ErrorKind::Unsupported`] so the crate still
//! compiles, but the gateway cannot serve.

use std::collections::VecDeque;
use std::io::{self, IoSlice, Write};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

#[cfg(unix)]
use std::os::unix::io::{AsRawFd, RawFd};
#[cfg(unix)]
use std::os::unix::net::UnixStream;

/// Raw file-descriptor type on platforms without `std::os::unix`.
#[cfg(not(unix))]
pub type RawFd = i32;

// ---------------------------------------------------------------------------
// Error-classification helpers (the one home for EINTR / WouldBlock logic).
// ---------------------------------------------------------------------------

/// Whether an I/O error means "not ready yet, try again when the fd is
/// ready" — `EAGAIN`/`EWOULDBLOCK` from a nonblocking socket, or the
/// `TimedOut` that a blocking socket with a read timeout reports on some
/// platforms. Every transport-layer would-block match routes through
/// here; matching [`io::ErrorKind`] inline elsewhere is a bug.
#[must_use]
pub fn is_would_block(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
    )
}

/// Runs an I/O operation, transparently retrying `EINTR`
/// ([`io::ErrorKind::Interrupted`]): a signal landing mid-syscall (the
/// ctrl-c handler, a profiler tick) must never masquerade as a dead
/// socket.
///
/// # Errors
/// Propagates every error except [`io::ErrorKind::Interrupted`].
pub fn retry_intr<T>(mut op: impl FnMut() -> io::Result<T>) -> io::Result<T> {
    loop {
        match op() {
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            other => return other,
        }
    }
}

#[cfg(not(unix))]
fn unsupported() -> io::Error {
    io::Error::new(
        io::ErrorKind::Unsupported,
        "reactor requires a Unix platform (epoll or poll(2))",
    )
}

/// The raw fd of a socket, listener, or waker — the registration key for
/// [`Poller`].
#[cfg(unix)]
#[must_use]
pub fn fd_of<T: AsRawFd>(t: &T) -> RawFd {
    t.as_raw_fd()
}

/// Non-Unix stub (the [`Poller`] stub never accepts a registration).
#[cfg(not(unix))]
#[must_use]
pub fn fd_of<T>(_t: &T) -> RawFd {
    -1
}

// ---------------------------------------------------------------------------
// Interest + readiness events.
// ---------------------------------------------------------------------------

/// Which readiness a registered fd should report.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest {
    /// Wake when the fd is readable (or the peer hung up).
    pub read: bool,
    /// Wake when the fd is writable.
    pub write: bool,
}

impl Interest {
    /// Readable only.
    pub const READ: Self = Self {
        read: true,
        write: false,
    };
    /// Writable only.
    pub const WRITE: Self = Self {
        read: false,
        write: true,
    };
    /// Readable and writable.
    pub const BOTH: Self = Self {
        read: true,
        write: true,
    };
    /// Registered but silent (keeps hangup detection on epoll).
    pub const NONE: Self = Self {
        read: false,
        write: false,
    };
}

/// One readiness event out of [`Poller::wait`].
#[derive(Debug, Clone, Copy)]
pub struct Ready {
    /// The token the fd was registered with.
    pub token: u64,
    /// Read (or EOF) will not block.
    pub readable: bool,
    /// Write will not block.
    pub writable: bool,
    /// Peer hangup / error — the fd is dead or dying.
    pub hangup: bool,
}

// ---------------------------------------------------------------------------
// Linux backend: epoll.
// ---------------------------------------------------------------------------

#[cfg(target_os = "linux")]
mod sys {
    use super::{Interest, Ready};
    use std::io;
    use std::os::unix::io::RawFd;
    use std::time::Duration;

    const EPOLLIN: u32 = 0x001;
    const EPOLLOUT: u32 = 0x004;
    const EPOLLERR: u32 = 0x008;
    const EPOLLHUP: u32 = 0x010;
    const EPOLLRDHUP: u32 = 0x2000;
    const EPOLL_CTL_ADD: i32 = 1;
    const EPOLL_CTL_DEL: i32 = 2;
    const EPOLL_CTL_MOD: i32 = 3;
    const EPOLL_CLOEXEC: i32 = 0o2000000;

    // The kernel ABI struct. x86-64 is the one architecture where the
    // kernel declares it packed; everywhere else natural alignment is
    // the ABI.
    #[repr(C)]
    #[cfg_attr(target_arch = "x86_64", repr(packed))]
    #[derive(Clone, Copy)]
    struct EpollEvent {
        events: u32,
        data: u64,
    }

    // Resolved from the libc std already links (same pattern as the
    // `signal(2)` declaration in `shutdown.rs`).
    extern "C" {
        fn epoll_create1(flags: i32) -> i32;
        fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
        fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
        fn close(fd: i32) -> i32;
    }

    fn cvt(ret: i32) -> io::Result<i32> {
        if ret < 0 {
            Err(io::Error::last_os_error())
        } else {
            Ok(ret)
        }
    }

    fn mask(interest: Interest) -> u32 {
        let mut m = 0;
        if interest.read {
            // RDHUP rides the read interest: a write-only drain phase must
            // not be woken (level-triggered, forever) by a peer that
            // half-closed — ERR/HUP still fire unmasked if it fully dies.
            m |= EPOLLIN | EPOLLRDHUP;
        }
        if interest.write {
            m |= EPOLLOUT;
        }
        m
    }

    pub struct Backend {
        epfd: RawFd,
        buf: Vec<EpollEvent>,
    }

    impl Backend {
        pub fn new() -> io::Result<Self> {
            let epfd = cvt(unsafe { epoll_create1(EPOLL_CLOEXEC) })?;
            Ok(Self {
                epfd,
                buf: vec![EpollEvent { events: 0, data: 0 }; 1024],
            })
        }

        fn ctl(&self, op: i32, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            let mut ev = EpollEvent {
                events: mask(interest),
                data: token,
            };
            cvt(unsafe { epoll_ctl(self.epfd, op, fd, std::ptr::addr_of_mut!(ev)) }).map(|_| ())
        }

        pub fn register(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            self.ctl(EPOLL_CTL_ADD, fd, token, interest)
        }

        pub fn modify(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            self.ctl(EPOLL_CTL_MOD, fd, token, interest)
        }

        pub fn deregister(&mut self, fd: RawFd) -> io::Result<()> {
            self.ctl(EPOLL_CTL_DEL, fd, 0, Interest::NONE)
        }

        pub fn wait(&mut self, out: &mut Vec<Ready>, timeout: Option<Duration>) -> io::Result<()> {
            let ms: i32 = timeout.map_or(-1, |d| {
                i32::try_from(d.as_millis().min(i32::MAX as u128)).unwrap_or(i32::MAX)
            });
            let cap = i32::try_from(self.buf.len()).unwrap_or(i32::MAX);
            let n = super::retry_intr(|| {
                cvt(unsafe { epoll_wait(self.epfd, self.buf.as_mut_ptr(), cap, ms) })
            })?;
            for ev in self.buf.iter().take(n.unsigned_abs() as usize) {
                let bits = { ev.events };
                out.push(Ready {
                    token: { ev.data },
                    readable: bits & (EPOLLIN | EPOLLRDHUP) != 0,
                    writable: bits & EPOLLOUT != 0,
                    hangup: bits & (EPOLLERR | EPOLLHUP) != 0,
                });
            }
            Ok(())
        }
    }

    impl Drop for Backend {
        fn drop(&mut self) {
            let _ = unsafe { close(self.epfd) };
        }
    }
}

// ---------------------------------------------------------------------------
// Portable Unix backend: poll(2).
// ---------------------------------------------------------------------------

#[cfg(all(unix, not(target_os = "linux")))]
mod sys {
    use super::{Interest, Ready};
    use std::collections::HashMap;
    use std::io;
    use std::os::unix::io::RawFd;
    use std::time::Duration;

    const POLLIN: i16 = 0x001;
    const POLLOUT: i16 = 0x004;
    const POLLERR: i16 = 0x008;
    const POLLHUP: i16 = 0x010;

    #[repr(C)]
    #[derive(Clone, Copy)]
    struct PollFd {
        fd: i32,
        events: i16,
        revents: i16,
    }

    extern "C" {
        // nfds_t is `unsigned int` on the BSD family (the platforms this
        // fallback serves; Linux uses the epoll backend above).
        fn poll(fds: *mut PollFd, nfds: u32, timeout: i32) -> i32;
    }

    pub struct Backend {
        registered: HashMap<RawFd, (u64, Interest)>,
        scratch: Vec<PollFd>,
    }

    impl Backend {
        pub fn new() -> io::Result<Self> {
            Ok(Self {
                registered: HashMap::new(),
                scratch: Vec::new(),
            })
        }

        pub fn register(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            self.registered.insert(fd, (token, interest));
            Ok(())
        }

        pub fn modify(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            self.registered.insert(fd, (token, interest));
            Ok(())
        }

        pub fn deregister(&mut self, fd: RawFd) -> io::Result<()> {
            self.registered.remove(&fd);
            Ok(())
        }

        pub fn wait(&mut self, out: &mut Vec<Ready>, timeout: Option<Duration>) -> io::Result<()> {
            self.scratch.clear();
            for (&fd, &(_, interest)) in &self.registered {
                let mut events = 0i16;
                if interest.read {
                    events |= POLLIN;
                }
                if interest.write {
                    events |= POLLOUT;
                }
                self.scratch.push(PollFd {
                    fd,
                    events,
                    revents: 0,
                });
            }
            let ms: i32 = timeout.map_or(-1, |d| {
                i32::try_from(d.as_millis().min(i32::MAX as u128)).unwrap_or(i32::MAX)
            });
            let nfds = u32::try_from(self.scratch.len())
                .map_err(|_| io::Error::other("too many fds for poll(2)"))?;
            let n = super::retry_intr(|| {
                let r = unsafe { poll(self.scratch.as_mut_ptr(), nfds, ms) };
                if r < 0 {
                    Err(io::Error::last_os_error())
                } else {
                    Ok(r)
                }
            })?;
            if n == 0 {
                return Ok(());
            }
            for pfd in &self.scratch {
                if pfd.revents == 0 {
                    continue;
                }
                if let Some(&(token, _)) = self.registered.get(&pfd.fd) {
                    out.push(Ready {
                        token,
                        readable: pfd.revents & POLLIN != 0,
                        writable: pfd.revents & POLLOUT != 0,
                        hangup: pfd.revents & (POLLERR | POLLHUP) != 0,
                    });
                }
            }
            Ok(())
        }
    }
}

#[cfg(not(unix))]
mod sys {
    use super::{unsupported, Interest, RawFd, Ready};
    use std::io;
    use std::time::Duration;

    pub struct Backend;

    impl Backend {
        pub fn new() -> io::Result<Self> {
            Err(unsupported())
        }
        pub fn register(&mut self, _: RawFd, _: u64, _: Interest) -> io::Result<()> {
            Err(unsupported())
        }
        pub fn modify(&mut self, _: RawFd, _: u64, _: Interest) -> io::Result<()> {
            Err(unsupported())
        }
        pub fn deregister(&mut self, _: RawFd) -> io::Result<()> {
            Err(unsupported())
        }
        pub fn wait(&mut self, _: &mut Vec<Ready>, _: Option<Duration>) -> io::Result<()> {
            Err(unsupported())
        }
    }
}

// ---------------------------------------------------------------------------
// Poller: the public multiplexer facade.
// ---------------------------------------------------------------------------

/// A readiness multiplexer over raw file descriptors — `epoll` on Linux,
/// `poll(2)` elsewhere on Unix. Level-triggered: a fd that stays ready
/// keeps reporting until the condition is consumed.
pub struct Poller {
    backend: sys::Backend,
}

impl Poller {
    /// Creates the multiplexer.
    ///
    /// # Errors
    /// Propagates `epoll_create1` failure; on non-Unix platforms returns
    /// [`io::ErrorKind::Unsupported`].
    pub fn new() -> io::Result<Self> {
        Ok(Self {
            backend: sys::Backend::new()?,
        })
    }

    /// Registers `fd` under `token` for `interest`.
    ///
    /// # Errors
    /// Propagates `epoll_ctl` failure (e.g. an already-registered fd).
    pub fn register(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        self.backend.register(fd, token, interest)
    }

    /// Changes the interest set of a registered fd.
    ///
    /// # Errors
    /// Propagates `epoll_ctl` failure (e.g. a never-registered fd).
    pub fn modify(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        self.backend.modify(fd, token, interest)
    }

    /// Removes a fd from the interest set. Must be called *before* the
    /// fd closes on the `poll(2)` backend (epoll drops closed fds
    /// itself, the fallback would keep polling a stale descriptor).
    ///
    /// # Errors
    /// Propagates `epoll_ctl` failure.
    pub fn deregister(&mut self, fd: RawFd) -> io::Result<()> {
        self.backend.deregister(fd)
    }

    /// Blocks until at least one registered fd is ready or the timeout
    /// lapses (`None` = forever), appending events to `out` (which is
    /// *not* cleared here). `EINTR` is retried internally.
    ///
    /// # Errors
    /// Propagates `epoll_wait`/`poll` failure.
    pub fn wait(&mut self, out: &mut Vec<Ready>, timeout: Option<Duration>) -> io::Result<()> {
        self.backend.wait(out, timeout)
    }
}

// ---------------------------------------------------------------------------
// Waker: deduplicated cross-thread wakeups.
// ---------------------------------------------------------------------------

/// The sending half of a reactor wakeup. Cloneable; [`Waker::wake`] is
/// deduplicated — while a wake is pending (armed and not yet drained by
/// the reactor) further wakes are free no-ops, so a fan-out touching
/// 50 000 connections costs one pipe write, not 50 000.
#[cfg(unix)]
#[derive(Clone)]
pub struct Waker {
    tx: Arc<UnixStream>,
    armed: Arc<AtomicBool>,
}

/// The receiving half: register [`WakeRx::as_raw_fd`] in the reactor's
/// [`Poller`] and call [`WakeRx::drain`] whenever it reports readable.
#[cfg(unix)]
pub struct WakeRx {
    rx: UnixStream,
    armed: Arc<AtomicBool>,
}

#[cfg(unix)]
impl Waker {
    /// Builds a connected waker pair (a nonblocking [`UnixStream`] pair
    /// — no raw `pipe(2)` needed).
    ///
    /// # Errors
    /// Propagates socketpair creation failure.
    pub fn pair() -> io::Result<(Waker, WakeRx)> {
        let (tx, rx) = UnixStream::pair()?;
        tx.set_nonblocking(true)?;
        rx.set_nonblocking(true)?;
        let armed = Arc::new(AtomicBool::new(false));
        Ok((
            Waker {
                tx: Arc::new(tx),
                armed: Arc::clone(&armed),
            },
            WakeRx { rx, armed },
        ))
    }

    /// Nudges the reactor out of [`Poller::wait`]. Idempotent until the
    /// reactor drains.
    pub fn wake(&self) {
        if !self.armed.swap(true, Ordering::AcqRel) {
            // A full pipe means a wake is already deliverable; any other
            // failure means the reactor is gone — both are ignorable.
            let _ = retry_intr(|| (&*self.tx).write(&[1u8]));
        }
    }
}

#[cfg(unix)]
impl WakeRx {
    /// The fd to register for read interest.
    #[must_use]
    pub fn as_raw_fd(&self) -> RawFd {
        self.rx.as_raw_fd()
    }

    /// Consumes pending wake bytes and re-arms the waker. Disarm happens
    /// *before* the drain so a concurrent [`Waker::wake`] can never be
    /// lost — at worst it costs one spurious extra wakeup.
    pub fn drain(&mut self) {
        self.armed.store(false, Ordering::Release);
        let mut sink = [0u8; 64];
        loop {
            match retry_intr(|| (&self.rx).read(&mut sink)) {
                Ok(0) => break, // sender gone
                Ok(_) => {}
                Err(_) => break, // WouldBlock: drained
            }
        }
    }
}

#[cfg(unix)]
use std::io::Read;

/// Non-Unix stub: construction fails, so the gateway cannot start.
#[cfg(not(unix))]
#[derive(Clone)]
pub struct Waker;

/// Non-Unix stub for the waker's receiving half.
#[cfg(not(unix))]
pub struct WakeRx;

#[cfg(not(unix))]
impl Waker {
    /// Always fails on non-Unix platforms.
    ///
    /// # Errors
    /// Returns [`io::ErrorKind::Unsupported`].
    pub fn pair() -> io::Result<(Waker, WakeRx)> {
        Err(unsupported())
    }
    /// No-op stub.
    pub fn wake(&self) {}
}

#[cfg(not(unix))]
impl WakeRx {
    /// Stub fd.
    #[must_use]
    pub fn as_raw_fd(&self) -> RawFd {
        -1
    }
    /// No-op stub.
    pub fn drain(&mut self) {}
}

// ---------------------------------------------------------------------------
// BufPool: recycled coalescing blocks for small outbound messages.
// ---------------------------------------------------------------------------

/// Coalescing blocks are sized for a burst of small control messages
/// (acks, welcomes, redirects are tens of bytes each).
pub const POOL_BLOCK: usize = 8 * 1024;

/// A shared pool of recycled byte blocks. Small outbound messages are
/// coalesced into pooled blocks ([`SendQueue::push_small`]); when a block
/// fully drains to the socket it returns here instead of the allocator.
/// The pool is bounded — beyond the cap, drained blocks are simply freed
/// — so idle memory stays O(pool), never O(connections).
#[derive(Clone)]
pub struct BufPool {
    free: Arc<Mutex<Vec<Vec<u8>>>>,
    max_blocks: usize,
}

impl BufPool {
    /// A pool retaining at most `max_blocks` spare blocks.
    #[must_use]
    pub fn new(max_blocks: usize) -> Self {
        Self {
            free: Arc::new(Mutex::new(Vec::new())),
            max_blocks,
        }
    }

    /// Takes a cleared block (recycled when available, fresh otherwise).
    #[must_use]
    pub fn take(&self) -> Vec<u8> {
        self.free
            .lock()
            .expect("buf pool lock")
            .pop()
            .unwrap_or_else(|| Vec::with_capacity(POOL_BLOCK))
    }

    /// Returns a drained block to the pool (freed if the pool is full).
    pub fn put(&self, mut block: Vec<u8>) {
        block.clear();
        let mut free = self.free.lock().expect("buf pool lock");
        if free.len() < self.max_blocks {
            free.push(block);
        }
    }

    /// Spare blocks currently pooled.
    #[must_use]
    pub fn spare(&self) -> usize {
        self.free.lock().expect("buf pool lock").len()
    }
}

impl Default for BufPool {
    fn default() -> Self {
        Self::new(256)
    }
}

// ---------------------------------------------------------------------------
// SendQueue: the bounded outbound ring drained by vectored writes.
// ---------------------------------------------------------------------------

/// Why a push into an outbound queue was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PushError {
    /// The ring holds `capacity` unflushed messages (slow consumer).
    Full,
    /// The connection's socket is gone; nothing will ever drain.
    Closed,
}

enum Seg {
    /// A fan-out payload shared across every subscriber's ring — encoded
    /// once, reference-counted everywhere.
    Shared { bytes: Arc<[u8]>, msgs: u32 },
    /// A pooled coalescing block holding one or more small messages.
    Pooled { buf: Vec<u8>, msgs: u32 },
}

impl Seg {
    fn bytes(&self) -> &[u8] {
        match self {
            Seg::Shared { bytes, .. } => bytes,
            Seg::Pooled { buf, .. } => buf,
        }
    }
    fn msgs(&self) -> u32 {
        match self {
            Seg::Shared { msgs, .. } | Seg::Pooled { msgs, .. } => *msgs,
        }
    }
}

/// Largest iovec batch per `writev` — past this the syscall's copy of
/// the iovec array costs more than a second call.
const MAX_IOV: usize = 64;

/// A bounded per-connection outbound ring. Capacity counts *messages*
/// (matching the old per-connection channel depth, so
/// [`SlowConsumerPolicy`](crate::gateway::SlowConsumerPolicy) semantics
/// are unchanged); bytes are drained with vectored writes and partial
/// writes resume mid-segment.
pub struct SendQueue {
    segs: VecDeque<Seg>,
    /// Bytes of `segs[0]` already written to the socket.
    head_off: usize,
    /// Messages queued and not yet fully flushed.
    msgs: usize,
    capacity: usize,
}

impl SendQueue {
    /// A ring refusing pushes past `capacity` queued messages.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        Self {
            segs: VecDeque::new(),
            head_off: 0,
            msgs: 0,
            capacity,
        }
    }

    /// Messages queued and not fully flushed.
    #[must_use]
    pub fn len(&self) -> usize {
        self.msgs
    }

    /// Whether everything queued has reached the socket.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.segs.is_empty()
    }

    /// Bytes queued and not yet written.
    #[must_use]
    pub fn pending_bytes(&self) -> usize {
        self.segs
            .iter()
            .map(|s| s.bytes().len())
            .sum::<usize>()
            .saturating_sub(self.head_off)
    }

    /// Queues one shared (fan-out) message.
    ///
    /// # Errors
    /// [`PushError::Full`] at capacity.
    pub fn push_shared(&mut self, bytes: Arc<[u8]>) -> Result<(), PushError> {
        if self.msgs >= self.capacity {
            return Err(PushError::Full);
        }
        self.msgs += 1;
        self.segs.push_back(Seg::Shared { bytes, msgs: 1 });
        Ok(())
    }

    /// Queues one small message, coalescing it into the tail pooled
    /// block when it fits (blocks come from — and drain back to — the
    /// pool).
    ///
    /// # Errors
    /// [`PushError::Full`] at capacity.
    pub fn push_small(&mut self, bytes: &[u8], pool: &BufPool) -> Result<(), PushError> {
        if self.msgs >= self.capacity {
            return Err(PushError::Full);
        }
        self.msgs += 1;
        if let Some(Seg::Pooled { buf, msgs }) = self.segs.back_mut() {
            if buf.len() + bytes.len() <= buf.capacity() {
                buf.extend_from_slice(bytes);
                *msgs += 1;
                return Ok(());
            }
        }
        let mut buf = pool.take();
        if buf.capacity() < bytes.len() {
            buf.reserve(bytes.len());
        }
        buf.extend_from_slice(bytes);
        self.segs.push_back(Seg::Pooled { buf, msgs: 1 });
        Ok(())
    }

    /// Drains as much as the socket will take with vectored writes.
    /// Returns `Ok(true)` when the ring is fully flushed, `Ok(false)`
    /// when the socket would block with bytes still queued (the caller
    /// should arm write interest).
    ///
    /// # Errors
    /// Propagates fatal socket errors (`EINTR` retried, would-block
    /// translated into `Ok(false)`).
    pub fn flush_into<W: Write + ?Sized>(&mut self, w: &mut W, pool: &BufPool) -> io::Result<bool> {
        loop {
            if self.segs.is_empty() {
                return Ok(true);
            }
            let mut slices = [IoSlice::new(&[]); MAX_IOV];
            let mut cnt = 0usize;
            for (i, seg) in self.segs.iter().take(MAX_IOV).enumerate() {
                let b = seg.bytes();
                slices[i] = IoSlice::new(if i == 0 { &b[self.head_off..] } else { b });
                cnt += 1;
            }
            let wrote = match retry_intr(|| w.write_vectored(&slices[..cnt])) {
                Ok(0) => {
                    return Err(io::Error::new(
                        io::ErrorKind::WriteZero,
                        "socket accepted zero bytes",
                    ))
                }
                Ok(n) => n,
                Err(e) if is_would_block(&e) => return Ok(false),
                Err(e) => return Err(e),
            };
            self.consume(wrote, pool);
        }
    }

    /// Advances the ring past `n` written bytes, recycling fully-drained
    /// pooled blocks.
    fn consume(&mut self, mut n: usize, pool: &BufPool) {
        while n > 0 {
            let seg_len = self.segs.front().map_or(0, |s| s.bytes().len());
            let remaining = seg_len - self.head_off;
            if n < remaining {
                self.head_off += n;
                return;
            }
            n -= remaining;
            self.head_off = 0;
            let seg = self.segs.pop_front().expect("nonempty: remaining > 0");
            self.msgs = self.msgs.saturating_sub(seg.msgs() as usize);
            if let Seg::Pooled { buf, .. } = seg {
                pool.put(buf);
            }
        }
    }

    /// Drops everything queued (abrupt sever), recycling pooled blocks.
    pub fn clear(&mut self, pool: &BufPool) {
        while let Some(seg) = self.segs.pop_front() {
            if let Seg::Pooled { buf, .. } = seg {
                pool.put(buf);
            }
        }
        self.head_off = 0;
        self.msgs = 0;
    }
}

// ---------------------------------------------------------------------------
// Outbound: the hub ↔ reactor handle around a SendQueue.
// ---------------------------------------------------------------------------

/// The shared outbound handle for one connection: the hub enqueues from
/// its thread, the owning reactor drains from its event loop. Replaces
/// the writer thread + unbounded channel of the old transport.
pub struct Outbound {
    q: Mutex<SendQueue>,
    pool: BufPool,
    /// Set by the reactor when the socket dies; pushes fail `Closed`.
    closed: AtomicBool,
    /// Wake-dedup: true while the owning reactor owes this connection a
    /// flush attempt.
    dirty: AtomicBool,
}

impl Outbound {
    /// An outbound ring of `capacity` messages drawing coalescing blocks
    /// from `pool`.
    #[must_use]
    pub fn new(capacity: usize, pool: BufPool) -> Self {
        Self {
            q: Mutex::new(SendQueue::new(capacity)),
            pool,
            closed: AtomicBool::new(false),
            dirty: AtomicBool::new(false),
        }
    }

    /// Queues a shared fan-out payload.
    ///
    /// # Errors
    /// [`PushError::Full`] at capacity, [`PushError::Closed`] after the
    /// socket died.
    pub fn push_shared(&self, bytes: Arc<[u8]>) -> Result<(), PushError> {
        if self.closed.load(Ordering::Acquire) {
            return Err(PushError::Closed);
        }
        self.q.lock().expect("outbound lock").push_shared(bytes)
    }

    /// Queues a small (coalesced) control message.
    ///
    /// # Errors
    /// [`PushError::Full`] at capacity, [`PushError::Closed`] after the
    /// socket died.
    pub fn push_small(&self, bytes: &[u8]) -> Result<(), PushError> {
        if self.closed.load(Ordering::Acquire) {
            return Err(PushError::Closed);
        }
        self.q
            .lock()
            .expect("outbound lock")
            .push_small(bytes, &self.pool)
    }

    /// Marks the flush debt; returns `true` when this transition armed
    /// it (the caller should tell the owning reactor exactly once).
    #[must_use]
    pub fn mark_dirty(&self) -> bool {
        !self.dirty.swap(true, Ordering::AcqRel)
    }

    /// Clears the flush debt (reactor-side, before flushing, so a
    /// concurrent push re-arms rather than getting lost).
    pub fn clear_dirty(&self) {
        self.dirty.store(false, Ordering::Release);
    }

    /// Marks the socket dead: subsequent pushes fail, queued bytes are
    /// recycled.
    pub fn mark_closed(&self) {
        self.closed.store(true, Ordering::Release);
        self.q.lock().expect("outbound lock").clear(&self.pool);
    }

    /// Whether the socket is known dead.
    #[must_use]
    pub fn is_closed(&self) -> bool {
        self.closed.load(Ordering::Acquire)
    }

    /// Messages queued and unflushed.
    #[must_use]
    pub fn queued(&self) -> usize {
        self.q.lock().expect("outbound lock").len()
    }

    /// Whether the ring is fully flushed.
    #[must_use]
    pub fn is_drained(&self) -> bool {
        self.q.lock().expect("outbound lock").is_empty()
    }

    /// Drains the ring into `w` (see [`SendQueue::flush_into`]).
    ///
    /// # Errors
    /// Propagates fatal socket errors.
    pub fn flush_into<W: Write + ?Sized>(&self, w: &mut W) -> io::Result<bool> {
        self.q
            .lock()
            .expect("outbound lock")
            .flush_into(w, &self.pool)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A writer that accepts at most `grain` bytes per call, interleaving
    /// `WouldBlock` — the pathological peer the reactor must handle.
    struct TrickleWriter {
        grain: usize,
        accepted: Vec<u8>,
        block_every: usize,
        calls: usize,
    }

    impl Write for TrickleWriter {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            self.calls += 1;
            if self.block_every > 0 && self.calls.is_multiple_of(self.block_every) {
                return Err(io::Error::new(io::ErrorKind::WouldBlock, "trickle"));
            }
            let n = buf.len().min(self.grain);
            self.accepted.extend_from_slice(&buf[..n]);
            Ok(n)
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn one_byte_at_a_time_preserves_stream() {
        let pool = BufPool::new(8);
        let mut q = SendQueue::new(1024);
        let mut expect = Vec::new();
        for i in 0..40u8 {
            let msg: Vec<u8> = (0..(i as usize % 7 + 1)).map(|j| i ^ j as u8).collect();
            expect.extend_from_slice(&msg);
            if i % 3 == 0 {
                let shared: Arc<[u8]> = msg.clone().into();
                q.push_shared(shared).unwrap();
            } else {
                q.push_small(&msg, &pool).unwrap();
            }
        }
        let mut w = TrickleWriter {
            grain: 1,
            accepted: Vec::new(),
            block_every: 5,
            calls: 0,
        };
        loop {
            match q.flush_into(&mut w, &pool) {
                Ok(true) => break,
                Ok(false) => {} // would-block: retry, like a writable event
                Err(e) => panic!("unexpected error: {e}"),
            }
        }
        assert_eq!(w.accepted, expect, "byte stream must be bit-identical");
        assert!(q.is_empty());
        assert_eq!(q.len(), 0);
    }

    #[test]
    fn capacity_counts_messages_and_flush_frees_room() {
        let pool = BufPool::new(8);
        let mut q = SendQueue::new(2);
        q.push_small(b"a", &pool).unwrap();
        q.push_small(b"bb", &pool).unwrap();
        assert_eq!(q.push_small(b"c", &pool), Err(PushError::Full));
        let mut w = TrickleWriter {
            grain: 64,
            accepted: Vec::new(),
            block_every: 0,
            calls: 0,
        };
        assert!(q.flush_into(&mut w, &pool).unwrap());
        assert_eq!(w.accepted, b"abb");
        q.push_small(b"c", &pool).unwrap();
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn pooled_blocks_recycle() {
        let pool = BufPool::new(4);
        let mut q = SendQueue::new(64);
        q.push_small(&[7u8; 32], &pool).unwrap();
        let mut w = TrickleWriter {
            grain: 1024,
            accepted: Vec::new(),
            block_every: 0,
            calls: 0,
        };
        assert!(q.flush_into(&mut w, &pool).unwrap());
        assert_eq!(pool.spare(), 1, "drained block returned to the pool");
        let reused = pool.take();
        assert!(reused.is_empty() && reused.capacity() >= 32);
    }

    #[test]
    fn would_block_classification_is_shared() {
        assert!(is_would_block(&io::Error::new(
            io::ErrorKind::WouldBlock,
            "x"
        )));
        assert!(is_would_block(&io::Error::new(
            io::ErrorKind::TimedOut,
            "x"
        )));
        assert!(!is_would_block(&io::Error::new(
            io::ErrorKind::ConnectionReset,
            "x"
        )));
    }

    #[test]
    fn retry_intr_swallows_interrupts() {
        let mut attempts = 0;
        let r: io::Result<u32> = retry_intr(|| {
            attempts += 1;
            if attempts < 3 {
                Err(io::Error::new(io::ErrorKind::Interrupted, "signal"))
            } else {
                Ok(99)
            }
        });
        assert_eq!(r.unwrap(), 99);
        assert_eq!(attempts, 3);
    }

    #[cfg(unix)]
    #[test]
    fn waker_dedups_until_drained() {
        let (w, mut rx) = Waker::pair().unwrap();
        w.wake();
        w.wake();
        w.wake();
        let mut poller = Poller::new().unwrap();
        poller.register(rx.as_raw_fd(), 7, Interest::READ).unwrap();
        let mut evs = Vec::new();
        poller.wait(&mut evs, Some(Duration::from_secs(2))).unwrap();
        assert!(evs.iter().any(|e| e.token == 7 && e.readable));
        rx.drain();
        evs.clear();
        poller
            .wait(&mut evs, Some(Duration::from_millis(10)))
            .unwrap();
        assert!(evs.is_empty(), "drained waker is quiet until re-armed");
        w.wake();
        evs.clear();
        poller.wait(&mut evs, Some(Duration::from_secs(2))).unwrap();
        assert!(evs.iter().any(|e| e.token == 7 && e.readable));
    }

    #[cfg(unix)]
    #[test]
    fn poller_reports_socket_readiness() {
        use std::io::Write as _;
        let (mut a, b) = UnixStream::pair().unwrap();
        b.set_nonblocking(true).unwrap();
        let mut poller = Poller::new().unwrap();
        poller.register(b.as_raw_fd(), 42, Interest::BOTH).unwrap();
        let mut evs = Vec::new();
        poller.wait(&mut evs, Some(Duration::from_secs(2))).unwrap();
        // Nothing to read yet, but an idle socket is writable.
        assert!(evs.iter().any(|e| e.token == 42 && e.writable));
        a.write_all(b"ping").unwrap();
        evs.clear();
        poller.wait(&mut evs, Some(Duration::from_secs(2))).unwrap();
        assert!(evs.iter().any(|e| e.token == 42 && e.readable));
        poller.deregister(b.as_raw_fd()).unwrap();
    }
}
