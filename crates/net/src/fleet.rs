//! Gateway federation: a consistent-hash fleet of [`HubGateway`]s with a
//! supervisor, plus fleet-aware client helpers.
//!
//! [`GatewayFleet::start`] binds every member's listener *first* (so the
//! shared [`FleetState`] carries real addresses even with OS-assigned
//! ports), then starts one [`HubGateway`] per member with a [`FleetLink`]
//! injected — each gateway owns the rendezvous-hash slice of chain ids the
//! shared state assigns it, redirects misrouted hub packets, answers
//! [`Msg::Route`](crate::wire::Msg::Route) queries, heartbeats, and
//! gossips its session digest.
//!
//! The **supervisor** is a thread that watches those heartbeats: a counter
//! that stops advancing for `heartbeat_timeout` is a dead gateway —
//! SIGKILL and a wedged hub loop look identical, which is the point. Death
//! marks the member dead in the shared state (bumping the placement
//! epoch, so the dead member's chains rendezvous to their runner-up
//! peers), and records detection latency against any kill the harness
//! logged via [`FleetHandle::kill_gateway`].
//!
//! Recovery is client-driven from there: [`FleetProducer`] re-routes each
//! chain-pinned [`ResilientClient`] to the new owner (refeeding retained
//! acked frames, so the successor's deterministic engine recomputes the
//! dead gateway's unfinished verdicts bit-identically), and
//! [`FleetSubscriber`]'s per-gateway clients fail over to a survivor that
//! imports their session from gossip — per-chain watermarks plus the
//! subscriber's own dedupe make redelivery exactly-once.

use crate::gateway::{GatewayConfig, GatewayHandle, GatewayReport, HubGateway};
use crate::resilient::{ResilienceConfig, ResilienceStats, ResilientClient};
use crate::router::{FleetLink, FleetState};
use crate::wire::{Msg, Role, VerdictMsg};
use reads_blm::hubs::ChainFrame;
use reads_core::console::OperatorConsole;
use reads_core::resilience::NetCounters;
use reads_core::system::TRIP_THRESHOLD;
use std::collections::{HashMap, HashSet};
use std::net::{SocketAddr, TcpListener};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

/// Fleet sizing and failure-detection policy.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Member count for [`GatewayFleet::start_local`].
    pub gateways: usize,
    /// Supervisor poll period.
    pub heartbeat_interval: Duration,
    /// A heartbeat counter that does not advance for this long is a dead
    /// gateway. Must comfortably exceed the hub poll period (2 ms) times
    /// the worst event-burst the hub handles between polls.
    pub heartbeat_timeout: Duration,
    /// Session-digest republish period — also the handoff staleness
    /// bound (DESIGN.md §12).
    pub gossip_interval: Duration,
    /// Per-member gateway template ([`GatewayConfig::fleet`] is
    /// overwritten per member). [`GatewayConfig::reactors`] flows through
    /// unchanged: every fleet member runs its own reactor pool, so a
    /// 4-member fleet at `--reactors 2` owns 8 event-loop threads total.
    pub gateway: GatewayConfig,
    /// Chain-id range hint used only for console `chains` labels.
    pub chains_hint: u32,
}

impl Default for FleetConfig {
    fn default() -> Self {
        Self {
            gateways: 3,
            heartbeat_interval: Duration::from_millis(20),
            heartbeat_timeout: Duration::from_millis(150),
            gossip_interval: Duration::from_millis(25),
            gateway: GatewayConfig::default(),
            chains_hint: 8,
        }
    }
}

/// Everything the fleet knows at shutdown.
#[derive(Debug)]
pub struct FederationReport {
    /// Per-surviving-gateway reports, in member-id order (killed members
    /// reported at kill time and are absent here).
    pub gateways: Vec<(u32, GatewayReport)>,
    /// Member ids killed through [`FleetHandle::kill_gateway`].
    pub killed: Vec<u32>,
    /// Deaths the supervisor detected (heartbeat timeouts).
    pub deaths_detected: u64,
    /// Kill → supervisor-detection latency per logged kill, milliseconds.
    pub detection_ms: Vec<f64>,
    /// Rendered per-gateway console lines
    /// (`gw[i]: chains … | state | sessions | resumes | handoffs | redirects`).
    pub fleet_console: String,
}

/// Kill/detection bookkeeping shared between the harness-facing handle
/// and the supervisor thread.
#[derive(Debug, Default)]
struct DeathClock {
    kill_at: HashMap<u32, Instant>,
    deaths_detected: u64,
    detection_ms: Vec<f64>,
}

/// Handle to a running fleet.
pub struct FleetHandle {
    state: Arc<FleetState>,
    gateways: Vec<Option<GatewayHandle>>,
    killed: Vec<u32>,
    clock: Arc<Mutex<DeathClock>>,
    stop: Arc<AtomicBool>,
    supervisor: Option<JoinHandle<()>>,
    chains_hint: u32,
}

impl std::fmt::Debug for FleetHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FleetHandle")
            .field("state", &self.state)
            .field("killed", &self.killed)
            .finish_non_exhaustive()
    }
}

/// Constructor namespace for gateway fleets.
#[derive(Debug)]
pub struct GatewayFleet;

impl GatewayFleet {
    /// Starts a fleet of `cfg.gateways` members on loopback with
    /// OS-assigned ports. `make_engine(i)` builds member `i`'s engine.
    ///
    /// # Errors
    /// Propagates bind/spawn failures.
    pub fn start_local(
        cfg: FleetConfig,
        make_engine: impl FnMut(usize) -> reads_core::engine::ShardedEngine,
    ) -> std::io::Result<FleetHandle> {
        let addrs: Vec<SocketAddr> = vec!["127.0.0.1:0".parse().expect("loopback"); cfg.gateways];
        Self::start(&addrs, cfg, make_engine)
    }

    /// Starts one gateway per address (port 0 = OS-assigned). Listeners
    /// are all bound before any gateway starts so the shared fleet state
    /// carries final addresses from the first heartbeat.
    ///
    /// # Errors
    /// Propagates bind/spawn failures.
    ///
    /// # Panics
    /// Panics on an empty address list.
    pub fn start(
        addrs: &[SocketAddr],
        cfg: FleetConfig,
        mut make_engine: impl FnMut(usize) -> reads_core::engine::ShardedEngine,
    ) -> std::io::Result<FleetHandle> {
        assert!(!addrs.is_empty(), "a fleet needs at least one gateway");
        let listeners: Vec<TcpListener> = addrs
            .iter()
            .map(TcpListener::bind)
            .collect::<std::io::Result<_>>()?;
        let bound: Vec<SocketAddr> = listeners
            .iter()
            .map(TcpListener::local_addr)
            .collect::<std::io::Result<_>>()?;
        let state = Arc::new(FleetState::new(&bound));

        let mut gateways = Vec::with_capacity(listeners.len());
        for (i, listener) in listeners.into_iter().enumerate() {
            let mut gw_cfg = cfg.gateway.clone();
            gw_cfg.fleet = Some(FleetLink {
                state: Arc::clone(&state),
                gateway_id: u32::try_from(i).expect("fleet larger than u32"),
                gossip_interval: cfg.gossip_interval,
            });
            gateways.push(Some(HubGateway::start_on(
                listener,
                gw_cfg,
                make_engine(i),
            )?));
        }

        let clock = Arc::new(Mutex::new(DeathClock::default()));
        let stop = Arc::new(AtomicBool::new(false));
        let supervisor = {
            let state = Arc::clone(&state);
            let clock = Arc::clone(&clock);
            let stop = Arc::clone(&stop);
            let interval = cfg.heartbeat_interval;
            let timeout = cfg.heartbeat_timeout;
            thread::Builder::new()
                .name("reads-net-fleet-supervisor".into())
                .spawn(move || supervise(&state, &clock, &stop, interval, timeout))
                .expect("spawn fleet supervisor")
        };

        Ok(FleetHandle {
            state,
            gateways,
            killed: Vec::new(),
            clock,
            stop,
            supervisor: Some(supervisor),
            chains_hint: cfg.chains_hint,
        })
    }
}

/// The supervisor loop: poll heartbeats every `interval`; a member whose
/// counter has not advanced for `timeout` is declared dead.
fn supervise(
    state: &Arc<FleetState>,
    clock: &Arc<Mutex<DeathClock>>,
    stop: &Arc<AtomicBool>,
    interval: Duration,
    timeout: Duration,
) {
    struct Watch {
        last_beat: u64,
        last_advance: Instant,
    }
    let mut watches: Vec<Watch> = state
        .members()
        .iter()
        .map(|m| Watch {
            last_beat: state.heartbeat(m.id),
            last_advance: Instant::now(),
        })
        .collect();
    while !stop.load(Ordering::SeqCst) {
        thread::sleep(interval);
        for m in state.members() {
            if !state.is_alive(m.id) {
                continue;
            }
            let watch = &mut watches[m.id as usize];
            let beat = state.heartbeat(m.id);
            if beat != watch.last_beat {
                watch.last_beat = beat;
                watch.last_advance = Instant::now();
            } else if watch.last_advance.elapsed() >= timeout {
                state.mark_dead(m.id);
                let mut clock = clock.lock().expect("death clock lock");
                clock.deaths_detected += 1;
                if let Some(&killed_at) = clock.kill_at.get(&m.id) {
                    clock
                        .detection_ms
                        .push(killed_at.elapsed().as_secs_f64() * 1e3);
                }
            }
        }
    }
}

impl FleetHandle {
    /// Member listen addresses, in id order (dead members keep their
    /// slot — placement ids never reshuffle).
    #[must_use]
    pub fn addrs(&self) -> Vec<SocketAddr> {
        self.state.members().iter().map(|m| m.addr).collect()
    }

    /// The shared fleet state (placement, liveness, gossip).
    #[must_use]
    pub fn state(&self) -> Arc<FleetState> {
        Arc::clone(&self.state)
    }

    /// Address of `chain`'s current owner, or `None` when the whole
    /// fleet is dead.
    #[must_use]
    pub fn owner_of(&self, chain: u32) -> Option<SocketAddr> {
        self.state.owner_of(chain).map(|id| self.state.addr_of(id))
    }

    /// Transport-counter snapshot of member `id` (zeroes once killed).
    #[must_use]
    pub fn counters(&self, id: u32) -> NetCounters {
        self.gateways
            .get(id as usize)
            .and_then(Option::as_ref)
            .map_or_else(NetCounters::default, GatewayHandle::counters)
    }

    /// Live sessions on member `id` right now (0 once killed).
    #[must_use]
    pub fn sessions(&self, id: u32) -> u64 {
        self.gateways
            .get(id as usize)
            .and_then(Option::as_ref)
            .map_or(0, GatewayHandle::sessions)
    }

    /// SIGKILL-equivalent death of member `id`: sockets severed with no
    /// drain or goodbye, engine results discarded. The kill instant is
    /// logged so the supervisor's eventual heartbeat-timeout verdict
    /// yields a detection-latency sample. The member is *not* marked dead
    /// here — detection is the supervisor's job; until it fires, clients
    /// see refused connects and peers still route to the corpse.
    ///
    /// # Panics
    /// Panics when `id` is out of range or already killed.
    pub fn kill_gateway(&mut self, id: u32) -> GatewayReport {
        let handle = self.gateways[id as usize]
            .take()
            .expect("gateway already killed");
        self.clock
            .lock()
            .expect("death clock lock")
            .kill_at
            .insert(id, Instant::now());
        self.killed.push(id);
        handle.kill()
    }

    /// Stops the supervisor, gracefully shuts down every surviving
    /// gateway, and folds the per-gateway consoles into a fleet report.
    ///
    /// # Panics
    /// Panics if the supervisor or a gateway thread panicked.
    #[must_use]
    pub fn shutdown(mut self) -> FederationReport {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(s) = self.supervisor.take() {
            s.join().expect("fleet supervisor panicked");
        }
        let mut console = OperatorConsole::new(TRIP_THRESHOLD, 3.0);
        let mut reports = Vec::new();
        for (i, slot) in self.gateways.iter_mut().enumerate() {
            let Some(handle) = slot.take() else { continue };
            let id = u32::try_from(i).expect("fleet larger than u32");
            let sessions = handle.sessions();
            let report = handle.shutdown();
            console.observe_gateway_health(
                id,
                self.state.chains_label(id, self.chains_hint),
                sessions,
                &report.net,
            );
            reports.push((id, report));
        }
        let clock = self.clock.lock().expect("death clock lock");
        FederationReport {
            gateways: reports,
            killed: self.killed.clone(),
            deaths_detected: clock.deaths_detected,
            detection_ms: clock.detection_ms.clone(),
            fleet_console: console.render_fleet(),
        }
    }
}

/// Inner recv drains per [`FleetSubscriber::poll`] / [`FleetProducer`]
/// ack pump — bounds one call's work per client.
const DRAIN_BURST: usize = 256;

/// A fleet-wide subscriber: one [`ResilientClient`] per gateway (each
/// seeded with the full candidate list, own gateway first, so a death
/// fails over to a survivor that imports the session from gossip), merged
/// behind a `(chain, sequence)` dedupe set — verdicts fan out to every
/// gateway's subscribers *and* failover redelivers, so exactly-once needs
/// the set.
#[derive(Debug)]
pub struct FleetSubscriber {
    clients: Vec<Option<ResilientClient>>,
    seen: HashSet<(u32, u32)>,
    retired: u64,
    duplicates: u64,
}

impl FleetSubscriber {
    /// Connects one subscriber session per gateway address.
    ///
    /// # Errors
    /// Fails when the list is empty or any initial connect fails (the
    /// fleet is expected healthy at subscribe time).
    pub fn connect(addrs: &[SocketAddr], cfg: &ResilienceConfig) -> std::io::Result<Self> {
        if addrs.is_empty() {
            return Err(std::io::Error::other("no gateway addresses"));
        }
        let mut clients = Vec::with_capacity(addrs.len());
        for i in 0..addrs.len() {
            // Rotate so client i dials gateway i first but can cycle to
            // the rest of the fleet when it dies.
            let mut rotated: Vec<SocketAddr> = addrs[i..].to_vec();
            rotated.extend_from_slice(&addrs[..i]);
            let mut cfg = cfg.clone();
            cfg.seed = cfg.seed.wrapping_add(i as u64);
            clients.push(Some(ResilientClient::connect_fleet(
                &rotated,
                Role::Subscriber,
                cfg,
            )?));
        }
        Ok(Self {
            clients,
            seen: HashSet::new(),
            retired: 0,
            duplicates: 0,
        })
    }

    /// Polls every live client once (first recv waits up to `timeout`,
    /// then drains what is already queued) and returns the new —
    /// never-before-seen — verdicts. A client whose reconnect budget is
    /// exhausted is retired; the merged stream continues from the
    /// survivors.
    pub fn poll(&mut self, timeout: Duration) -> Vec<VerdictMsg> {
        let mut fresh = Vec::new();
        for slot in &mut self.clients {
            let Some(client) = slot.as_mut() else {
                continue;
            };
            let mut wait = timeout;
            for _ in 0..DRAIN_BURST {
                match client.recv(wait) {
                    Ok(Some(Msg::Verdict(v))) => {
                        if self.seen.insert((v.chain, v.verdict.sequence)) {
                            fresh.push(v);
                        } else {
                            self.duplicates += 1;
                        }
                        wait = Duration::from_millis(1);
                    }
                    Ok(Some(_)) => wait = Duration::from_millis(1),
                    Ok(None) => break,
                    Err(_) => {
                        *slot = None;
                        self.retired += 1;
                        break;
                    }
                }
            }
        }
        fresh
    }

    /// Clients still running.
    #[must_use]
    pub fn active(&self) -> usize {
        self.clients.iter().flatten().count()
    }

    /// Clients retired after exhausting their reconnect budget.
    #[must_use]
    pub fn retired(&self) -> u64 {
        self.retired
    }

    /// Distinct `(chain, sequence)` verdicts delivered so far.
    #[must_use]
    pub fn distinct_verdicts(&self) -> usize {
        self.seen.len()
    }

    /// Duplicate verdict copies the dedupe set suppressed (multi-gateway
    /// fan-out after a handoff redelivers; this counts the suppressions —
    /// nonzero after a failover proves redelivery actually happened).
    #[must_use]
    pub fn duplicates(&self) -> u64 {
        self.duplicates
    }

    /// Merged resilience stats across live clients.
    #[must_use]
    pub fn stats(&self) -> ResilienceStats {
        merge_stats(self.clients.iter().flatten())
    }
}

/// A fleet-wide producer: one chain-pinned [`ResilientClient`] per chain,
/// created lazily on first send. Each client routes itself to the chain's
/// owner (`Route`/`Redirect`), retains acked frames for failover refeed,
/// and insists on resume through the supervisor's detection window.
#[derive(Debug)]
pub struct FleetProducer {
    addrs: Vec<SocketAddr>,
    cfg: ResilienceConfig,
    clients: HashMap<u32, ResilientClient>,
}

impl FleetProducer {
    /// Builds the producer. `cfg` is the per-chain template;
    /// [`ResilienceConfig::route_chain`] is overwritten per chain, and
    /// `acked_retention`/`insist_resume` get failover-safe floors when
    /// left at their standalone defaults.
    #[must_use]
    pub fn new(addrs: &[SocketAddr], cfg: ResilienceConfig) -> Self {
        let mut cfg = cfg;
        if cfg.acked_retention == 0 {
            cfg.acked_retention = 1024;
        }
        if cfg.insist_resume == 0 {
            cfg.insist_resume = 8;
        }
        Self {
            addrs: addrs.to_vec(),
            cfg,
            clients: HashMap::new(),
        }
    }

    /// Sends one frame to its chain's owner, connecting (and routing) the
    /// chain's client on first use.
    ///
    /// # Errors
    /// Propagates connect failures and exhausted reconnect budgets.
    pub fn send_frame(&mut self, frame: &ChainFrame) -> std::io::Result<()> {
        let chain = frame.chain;
        if !self.clients.contains_key(&chain) {
            let mut cfg = self.cfg.clone();
            cfg.route_chain = Some(chain);
            cfg.seed = cfg.seed.wrapping_add(u64::from(chain) << 8);
            let client = ResilientClient::connect_fleet(&self.addrs, Role::Producer, cfg)?;
            self.clients.insert(chain, client);
        }
        self.clients
            .get_mut(&chain)
            .expect("client just inserted")
            .send_frame(frame)
    }

    /// Pumps acks (and any stray messages) on every chain client, pruning
    /// replay buffers. Bounded per client; quiet clients cost `timeout`.
    ///
    /// # Errors
    /// Propagates an exhausted reconnect budget.
    pub fn drain_acks(&mut self, timeout: Duration) -> std::io::Result<()> {
        for client in self.clients.values_mut() {
            let mut wait = timeout;
            for _ in 0..DRAIN_BURST {
                match client.recv(wait)? {
                    Some(_) => wait = Duration::from_millis(1),
                    None => break,
                }
            }
        }
        Ok(())
    }

    /// Frames sent but not yet acked, across every chain.
    #[must_use]
    pub fn unacked_total(&self) -> usize {
        self.clients
            .values()
            .map(ResilientClient::unacked_len)
            .sum()
    }

    /// Merged resilience stats across chain clients.
    #[must_use]
    pub fn stats(&self) -> ResilienceStats {
        merge_stats(self.clients.values())
    }

    /// Per-chain clients created so far.
    #[must_use]
    pub fn chains(&self) -> usize {
        self.clients.len()
    }
}

fn merge_stats<'a>(clients: impl Iterator<Item = &'a ResilientClient>) -> ResilienceStats {
    let mut merged = ResilienceStats::default();
    for c in clients {
        let s = c.stats();
        merged.disconnects += s.disconnects;
        merged.reconnect_attempts += s.reconnect_attempts;
        merged.resumed += s.resumed;
        merged.fresh_sessions += s.fresh_sessions;
        merged.frames_replayed += s.frames_replayed;
        merged.truncated_cuts += s.truncated_cuts;
        merged.outage += s.outage;
        merged.redirects_followed += s.redirects_followed;
        merged.failovers += s.failovers;
    }
    merged
}
