//! `reads-net` — the TCP serving plane in front of the sharded inference
//! engine.
//!
//! The paper's deployed node receives hub packets over Ethernet and
//! answers with de-blending verdicts; everywhere else in this repository
//! that ingress is simulated. This crate makes it real: a versioned,
//! length-prefixed, CRC-checked [`wire`] protocol; a readiness-driven
//! [`gateway`] — `--reactors N` event-loop threads ([`reactor`]:
//! epoll/poll wrapper, nonblocking sockets, vectored writes from a
//! reusable buffer pool, no thread-per-connection anywhere) — that
//! assembles packets into chain frames (tracking sequence gaps, reorders
//! and staleness), drives the
//! [`ShardedEngine`](reads_core::engine::ShardedEngine) through its
//! bounded backpressure queues, and streams verdicts to subscribers under
//! an explicit slow-consumer policy; and a [`client`] side with
//! closed/open-loop load generators.
//!
//! The serving plane is chaos-hardened: gateway-side sessions park and
//! resume across TCP cuts ([`gateway`]), the [`resilient`] client
//! reconnects with backoff + jitter and replays unacked frames, and the
//! seeded [`chaos`] proxy injects resets, partial writes, stalls and byte
//! corruption deterministically so all of it stays testable.
//!
//! Above a single gateway sits the federation tier ([`router`] +
//! [`fleet`]): N gateways each owning a rendezvous-hash slice of chain
//! ids, `Route`/`Redirect` wire messages so any member answers "who owns
//! chain c?", a heartbeat supervisor that declares SIGKILL-equivalent
//! deaths, and gossiped session-watermark digests so a dead member's
//! sessions hand off to survivors — with acked-but-unserved verdicts
//! recomputed bit-identically from producer refeed.
//!
//! Everything is `std`-only — no async runtime, no external networking
//! crates — and every transport anomaly feeds
//! [`NetCounters`](reads_core::resilience::NetCounters), the same health
//! machinery the fault-injection plane reports through.

#![warn(missing_docs)]

pub mod assembler;
pub mod chaos;
pub mod client;
pub mod fleet;
pub mod gateway;
pub mod reactor;
pub mod resilient;
pub mod router;
pub mod shutdown;
pub mod wire;

pub use assembler::{FrameAssembler, Offer};
pub use chaos::{ChaosConfig, ChaosHandle, ChaosProxy, ChaosStats};
pub use client::{run_load, was_truncated, GatewayClient, LoadGenConfig, LoadReport};
pub use fleet::{
    FederationReport, FleetConfig, FleetHandle, FleetProducer, FleetSubscriber, GatewayFleet,
};
pub use gateway::{
    GatewayConfig, GatewayHandle, GatewayReport, HubGateway, SlowConsumerPolicy, MAX_REACTORS,
};
pub use reactor::{
    fd_of, is_would_block, retry_intr, BufPool, Interest, Outbound, Poller, PushError, Ready,
    SendQueue, WakeRx, Waker,
};
pub use resilient::{ResilienceConfig, ResilienceStats, ResilientClient};
pub use router::{FleetLink, FleetMember, FleetState, SessionStub};
pub use shutdown::{ctrl_c_requested, install_ctrl_c, request_shutdown};
pub use wire::{
    crc32, encode_msg, FrameDecoder, Msg, Role, VerdictMsg, WireError, MAX_PAYLOAD,
    PROTOCOL_VERSION, WIRE_MAGIC,
};
