//! Ctrl-c (SIGINT) wiring without external crates.
//!
//! The gateway drains gracefully when its shutdown flag flips; all this
//! module does is flip a process-wide flag from the C signal handler so a
//! serve loop can poll it. `libc`'s `signal(2)` is reachable from any
//! `std` binary on Unix without adding a dependency; on other platforms
//! installation is a no-op and the flag simply never fires.
//!
//! Because this installs a handler *without* `SA_RESTART`, any blocking
//! syscall in the process may now fail with `EINTR` — which is why every
//! socket/poll call in the serving plane goes through
//! [`retry_intr`](crate::reactor::retry_intr) and the reactor treats an
//! interrupted wait as an ordinary early wakeup.

use std::sync::atomic::{AtomicBool, Ordering};

static CTRL_C: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
extern "C" fn on_sigint(_signum: i32) {
    // Only async-signal-safe work here: one atomic store.
    CTRL_C.store(true, Ordering::SeqCst);
}

/// Installs the SIGINT handler (idempotent) and returns the flag it sets.
/// On non-Unix targets this returns the flag without installing anything.
pub fn install_ctrl_c() -> &'static AtomicBool {
    #[cfg(unix)]
    {
        const SIGINT: i32 = 2;
        extern "C" {
            fn signal(signum: i32, handler: usize) -> usize;
        }
        // SAFETY: `signal` with a handler that only performs an atomic
        // store is async-signal-safe; re-installation is harmless.
        unsafe {
            signal(SIGINT, on_sigint as extern "C" fn(i32) as usize);
        }
    }
    &CTRL_C
}

/// Whether SIGINT has fired since [`install_ctrl_c`].
#[must_use]
pub fn ctrl_c_requested() -> bool {
    CTRL_C.load(Ordering::SeqCst)
}

/// Testing/CLI hook: arms the same flag as a real SIGINT would.
pub fn request_shutdown() {
    CTRL_C.store(true, Ordering::SeqCst);
}
