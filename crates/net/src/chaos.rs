//! A deterministic in-process chaos proxy: sits between a client and the
//! gateway on loopback, forwarding bytes while injecting seeded faults —
//! connection resets, partial (chunked) writes, stalls, and byte
//! corruption. The network-side twin of [`FaultPlan`]
//! (`reads_soc::faults`): compose the two and the serving plane faces
//! chaos on both flanks at once.
//!
//! Determinism: every forwarding direction of every accepted connection
//! gets its own [`Rng`] forked from the config seed, the connection
//! index, and the direction — so a fixed seed yields the same fault
//! sequence run after run, independent of thread scheduling *within* a
//! direction. [`ChaosHandle::cut_now`] additionally severs every live
//! connection on demand, for tests that need an exact number of cuts at
//! exact points in the stream.

use crate::reactor::is_would_block;
use reads_sim::Rng;
use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::Duration;

/// Fault intensities. All rates are per forwarded chunk.
#[derive(Debug, Clone)]
pub struct ChaosConfig {
    /// Seed for every fault draw.
    pub seed: u64,
    /// Probability of severing the connection after a chunk.
    pub cut_rate: f64,
    /// Probability of flipping one bit in a chunk.
    pub corrupt_rate: f64,
    /// Probability of stalling before forwarding a chunk.
    pub stall_rate: f64,
    /// Stall length.
    pub stall: Duration,
    /// Forward at most this many bytes per write (partial writes);
    /// `0` forwards whole reads.
    pub max_chunk: usize,
    /// Bytes a connection must forward (per direction) before the random
    /// cut fault arms — keeps handshakes out of the blast radius so even
    /// high intensities make progress.
    pub min_bytes_before_cut: u64,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        Self {
            seed: 11,
            cut_rate: 0.0,
            corrupt_rate: 0.0,
            stall_rate: 0.0,
            stall: Duration::from_millis(5),
            max_chunk: 0,
            min_bytes_before_cut: 4 * 1024,
        }
    }
}

/// What the proxy did.
#[derive(Debug, Clone, Copy, Default)]
pub struct ChaosStats {
    /// Connections accepted.
    pub connections: u64,
    /// Connections severed (random cuts + [`ChaosHandle::cut_now`]).
    pub cuts: u64,
    /// Chunks with a flipped bit.
    pub corruptions: u64,
    /// Stalls injected.
    pub stalls: u64,
    /// Bytes forwarded (both directions).
    pub forwarded_bytes: u64,
}

#[derive(Default)]
struct Shared {
    stats: Mutex<ChaosStats>,
    /// Bumped by [`ChaosHandle::cut_now`]; forwarders sever when they see
    /// a generation newer than the one they started under.
    kill_generation: AtomicU64,
    stop: AtomicBool,
}

/// A running chaos proxy.
pub struct ChaosProxy;

/// Handle to a running [`ChaosProxy`].
pub struct ChaosHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    acceptor: Option<JoinHandle<()>>,
    workers: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl ChaosProxy {
    /// Binds a loopback port and forwards every accepted connection to
    /// `upstream` under the configured fault intensities.
    ///
    /// # Errors
    /// Propagates bind failures and upstream address resolution.
    pub fn start(upstream: impl ToSocketAddrs, cfg: ChaosConfig) -> std::io::Result<ChaosHandle> {
        let upstream = upstream
            .to_socket_addrs()?
            .next()
            .ok_or_else(|| std::io::Error::other("no upstream address resolved"))?;
        let listener = TcpListener::bind("127.0.0.1:0")?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(Shared::default());
        let workers: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
        let acceptor = {
            let shared = Arc::clone(&shared);
            let workers = Arc::clone(&workers);
            thread::Builder::new()
                .name("reads-chaos-accept".into())
                .spawn(move || accept_loop(&listener, upstream, &cfg, &shared, &workers))
                .expect("spawn chaos acceptor")
        };
        Ok(ChaosHandle {
            addr,
            shared,
            acceptor: Some(acceptor),
            workers,
        })
    }
}

impl ChaosHandle {
    /// The proxy's client-facing address.
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Snapshot of the fault counters.
    ///
    /// # Panics
    /// Panics when a forwarder panicked while holding the stats lock.
    #[must_use]
    pub fn stats(&self) -> ChaosStats {
        *self.shared.stats.lock().expect("chaos stats lock")
    }

    /// Severs every live proxied connection now (deterministic forced
    /// cut). New connections are unaffected.
    pub fn cut_now(&self) {
        self.shared.kill_generation.fetch_add(1, Ordering::SeqCst);
    }

    /// Stops accepting, severs everything, joins every thread.
    ///
    /// # Panics
    /// Panics when the acceptor or a forwarder panicked.
    pub fn shutdown(mut self) -> ChaosStats {
        self.shared.stop.store(true, Ordering::SeqCst);
        self.shared.kill_generation.fetch_add(1, Ordering::SeqCst);
        if let Some(a) = self.acceptor.take() {
            a.join().expect("chaos acceptor panicked");
        }
        let workers: Vec<JoinHandle<()>> =
            std::mem::take(&mut *self.workers.lock().expect("chaos workers lock"));
        for w in workers {
            w.join().expect("chaos forwarder panicked");
        }
        self.stats()
    }
}

fn accept_loop(
    listener: &TcpListener,
    upstream: SocketAddr,
    cfg: &ChaosConfig,
    shared: &Arc<Shared>,
    workers: &Arc<Mutex<Vec<JoinHandle<()>>>>,
) {
    let mut conn_index = 0u64;
    while !shared.stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((client, _)) => {
                conn_index += 1;
                shared.stats.lock().expect("chaos stats lock").connections += 1;
                let Ok(server) = TcpStream::connect(upstream) else {
                    let _ = client.shutdown(Shutdown::Both);
                    continue;
                };
                let _ = client.set_nodelay(true);
                let _ = server.set_nodelay(true);
                let pairs = [
                    (client.try_clone(), server.try_clone(), 0u64),
                    (server.try_clone(), client.try_clone(), 1u64),
                ];
                let mut guard = workers.lock().expect("chaos workers lock");
                for (src, dst, direction) in pairs {
                    let (Ok(src), Ok(dst)) = (src, dst) else {
                        continue;
                    };
                    // Per-direction seed: deterministic under a fixed
                    // seed regardless of scheduling across connections.
                    let rng = Rng::seed_from_u64(
                        cfg.seed ^ conn_index.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ direction,
                    );
                    let cfg = cfg.clone();
                    let shared = Arc::clone(shared);
                    guard.push(
                        thread::Builder::new()
                            .name(format!("reads-chaos-{conn_index}d{direction}"))
                            .spawn(move || forward_loop(src, dst, &cfg, rng, &shared))
                            .expect("spawn chaos forwarder"),
                    );
                }
            }
            Err(e) if is_would_block(&e) => {
                thread::sleep(Duration::from_millis(2));
            }
            Err(_) => thread::sleep(Duration::from_millis(2)),
        }
    }
}

fn forward_loop(
    mut src: TcpStream,
    mut dst: TcpStream,
    cfg: &ChaosConfig,
    mut rng: Rng,
    shared: &Arc<Shared>,
) {
    let born_generation = shared.kill_generation.load(Ordering::SeqCst);
    let _ = src.set_read_timeout(Some(Duration::from_millis(10)));
    let mut chunk = [0u8; 16 * 1024];
    let mut forwarded = 0u64;
    let sever = |src: &TcpStream, dst: &TcpStream| {
        let _ = src.shutdown(Shutdown::Both);
        let _ = dst.shutdown(Shutdown::Both);
    };
    loop {
        if shared.kill_generation.load(Ordering::SeqCst) != born_generation {
            shared.stats.lock().expect("chaos stats lock").cuts += 1;
            sever(&src, &dst);
            return;
        }
        let n = match src.read(&mut chunk) {
            Ok(0) => {
                sever(&src, &dst);
                return;
            }
            Ok(n) => n,
            Err(e) if is_would_block(&e) => continue,
            Err(_) => {
                sever(&src, &dst);
                return;
            }
        };
        if cfg.stall_rate > 0.0 && rng.chance(cfg.stall_rate) {
            shared.stats.lock().expect("chaos stats lock").stalls += 1;
            thread::sleep(cfg.stall);
        }
        if cfg.corrupt_rate > 0.0 && rng.chance(cfg.corrupt_rate) {
            let byte = rng.index(n);
            let bit = rng.index(8) as u32;
            chunk[byte] ^= 1 << bit;
            shared.stats.lock().expect("chaos stats lock").corruptions += 1;
        }
        // Partial writes: forward in bounded pieces so the receiver's
        // incremental decoder sees every possible split point.
        let piece = if cfg.max_chunk == 0 { n } else { cfg.max_chunk };
        let mut off = 0;
        while off < n {
            let end = (off + piece).min(n);
            if dst.write_all(&chunk[off..end]).is_err() {
                sever(&src, &dst);
                return;
            }
            off = end;
        }
        forwarded += n as u64;
        shared
            .stats
            .lock()
            .expect("chaos stats lock")
            .forwarded_bytes += n as u64;
        if cfg.cut_rate > 0.0 && forwarded >= cfg.min_bytes_before_cut && rng.chance(cfg.cut_rate) {
            shared.stats.lock().expect("chaos stats lock").cuts += 1;
            sever(&src, &dst);
            return;
        }
    }
}
