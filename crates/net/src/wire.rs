//! The `reads-net` wire protocol.
//!
//! Every message on a gateway connection is one *wire frame*:
//!
//! ```text
//! offset  size  field
//!      0     4  magic      0x52445331 ("RDS1"), big-endian
//!      4     1  version    PROTOCOL_VERSION (1)
//!      5     1  kind       message kind tag
//!      6     2  flags      reserved, must be zero
//!      8     4  len        payload length in bytes, big-endian
//!     12   len  payload    kind-specific body
//! 12+len     4  crc32      CRC-32 (IEEE 802.3) over header + payload
//! ```
//!
//! The payload of a [`Msg::HubData`] frame embeds the existing
//! [`HubPacket`] codec (length-prefixed, Fletcher-16-checked), so the hub
//! packet bytes on TCP are byte-identical to what the simulated Ethernet
//! fault plane corrupts — one codec, two transports. Verdicts carry f64
//! *bit patterns*, so a verdict that crosses the wire is bit-identical to
//! the in-process [`DeblendVerdict`].
//!
//! Decoding is incremental and panic-free: [`FrameDecoder`] consumes
//! arbitrary byte chunks, yields complete messages, returns typed
//! [`WireError`]s for malformed input, and never allocates more than
//! [`MAX_PAYLOAD`] + one read chunk no matter what the peer sends (a
//! declared length is validated *before* any buffer grows to meet it).

use reads_blm::acnet::DeblendVerdict;
use reads_blm::hubs::{DecodeError, HubPacket};

/// Magic tag leading every wire frame (`"RDS1"`).
pub const WIRE_MAGIC: u32 = 0x5244_5331;

/// Protocol version this build speaks.
pub const PROTOCOL_VERSION: u8 = 1;

/// Fixed header size (magic + version + kind + flags + len).
pub const HEADER_LEN: usize = 12;

/// CRC trailer size.
pub const TRAILER_LEN: usize = 4;

/// Hard cap on a declared payload length. The largest legitimate message
/// is a 260-monitor verdict (~4.2 KiB); 64 KiB leaves generous headroom
/// while bounding what a malicious length field can make the decoder
/// buffer.
pub const MAX_PAYLOAD: usize = 64 * 1024;

/// The role a client declares in its `Hello`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Role {
    /// Pushes hub packets into the gateway.
    Producer,
    /// Receives the verdict stream.
    Subscriber,
}

/// One decoded wire message.
#[derive(Debug, Clone, PartialEq)]
pub enum Msg {
    /// Connection handshake: the client's declared role.
    Hello {
        /// Declared role.
        role: Role,
    },
    /// One hub packet of one chain's 3 ms tick.
    HubData {
        /// Hub-chain (sector) index.
        chain: u32,
        /// The hub packet, carried in its native codec.
        packet: HubPacket,
    },
    /// Gateway → producer: the frame `(chain, sequence)` assembled fully
    /// and was accepted into the inference engine's queues.
    FrameAck {
        /// Hub-chain index.
        chain: u32,
        /// Frame sequence within the chain.
        sequence: u32,
    },
    /// Gateway → subscriber: one de-blending verdict.
    Verdict(VerdictMsg),
    /// Administrative graceful-shutdown request.
    Shutdown,
    /// Client → gateway: reconnect handshake. Replaces `Hello` on a
    /// reconnecting client: names the session to resume, re-declares the
    /// role (the gateway must be able to serve a fresh session when the
    /// old one expired), and carries the client's per-chain delivery
    /// watermarks — for a producer the highest acked sequence per chain,
    /// for a subscriber the highest verdict sequence seen per chain — so
    /// the gateway replays only what the client provably missed.
    Resume {
        /// Session to resume (`0` = none yet; always answered fresh).
        session_id: u64,
        /// Declared role, authoritative when the session cannot resume.
        role: Role,
        /// Per-chain `(chain, highest delivered sequence)` watermarks.
        acked: Vec<(u32, u32)>,
    },
    /// Gateway → client: handshake answer to `Hello` or `Resume`. Carries
    /// the session id to present on the next `Resume`, and whether the
    /// named session actually resumed (`false` = fresh session — any
    /// server-side replay state is gone).
    Welcome {
        /// The session id this connection is bound to.
        session_id: u64,
        /// Whether a `Resume` found its session alive.
        resumed: bool,
    },
    /// Client → gateway: "who owns chain `chain`?" Any fleet member can
    /// answer; a standalone gateway answers with itself. This is how
    /// clients learn the consistent-hash placement lazily instead of
    /// needing fleet topology up front.
    Route {
        /// Hub-chain index being located.
        chain: u32,
    },
    /// Gateway → client: the placement answer — either the reply to an
    /// explicit [`Msg::Route`], or an unsolicited bounce when a producer
    /// sends [`Msg::HubData`] for a chain this gateway does not own
    /// (misroute). Carries enough for the client to retarget: the owning
    /// gateway's fleet id and listen address.
    Redirect {
        /// Hub-chain index the answer is about.
        chain: u32,
        /// Fleet id of the owning gateway.
        gateway_id: u32,
        /// Listen address (`host:port`) of the owning gateway.
        addr: String,
    },
    /// Client → gateway: bind this session to a tenant of the multi-model
    /// registry. Every subsequent `HubData` is routed through the tenant's
    /// live firmware, and a subscriber receives only that tenant's
    /// verdicts. Sessions start on the default tenant (`0`), so clients
    /// that never send this see the single-model protocol unchanged.
    TenantSelect {
        /// Registry tenant id to bind to.
        tenant: u32,
    },
    /// Gateway → client: answer to [`Msg::TenantSelect`] — what the session
    /// is actually bound to. A select for an unknown tenant does **not**
    /// rebind; the reply then describes the tenant the session kept.
    TenantInfo {
        /// Tenant the session is bound to.
        tenant: u32,
        /// Digest of the tenant's live firmware (`0` when none).
        live_digest: u64,
        /// Serving state: `0` = no live variant, `1` = live, `2` = live
        /// with a shadow candidate scoring.
        state: u8,
        /// Human-readable tenant name from the registry.
        name: String,
    },
}

/// A verdict in transit: chain tag plus the in-process verdict. The f64
/// probabilities travel as bit patterns, so transport is bit-exact.
#[derive(Debug, Clone, PartialEq)]
pub struct VerdictMsg {
    /// Hub-chain index.
    pub chain: u32,
    /// The verdict (carries its own sequence number).
    pub verdict: DeblendVerdict,
}

/// Message kind tags on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
enum Kind {
    Hello = 1,
    HubData = 2,
    FrameAck = 3,
    Verdict = 4,
    Shutdown = 5,
    Resume = 6,
    Welcome = 7,
    Route = 8,
    Redirect = 9,
    TenantSelect = 10,
    TenantInfo = 11,
}

/// Typed decode failures. None of these panic, and none cause the decoder
/// to allocate for the bad frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// Leading bytes are not [`WIRE_MAGIC`].
    BadMagic,
    /// Unknown protocol version.
    BadVersion(u8),
    /// Unknown message kind tag.
    BadKind(u8),
    /// Reserved flags were non-zero.
    BadFlags(u16),
    /// Declared payload length exceeds [`MAX_PAYLOAD`].
    Oversized(u32),
    /// CRC-32 mismatch over header + payload.
    BadCrc,
    /// The payload body was malformed for its kind.
    BadPayload,
    /// An embedded hub packet failed its own codec.
    BadHubPacket(DecodeError),
    /// The peer closed the connection in the middle of a wire frame. The
    /// decoder never produces this itself (it just waits for more bytes);
    /// the *reader* raises it when EOF lands with a partial message still
    /// buffered, so reconnect logic can tell a mid-frame cut from a clean
    /// close.
    Truncated,
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::BadMagic => write!(f, "bad wire magic"),
            WireError::BadVersion(v) => write!(f, "unsupported protocol version {v}"),
            WireError::BadKind(k) => write!(f, "unknown message kind {k}"),
            WireError::BadFlags(x) => write!(f, "reserved flags set: {x:#06x}"),
            WireError::Oversized(n) => write!(f, "declared payload {n} exceeds {MAX_PAYLOAD}"),
            WireError::BadCrc => write!(f, "crc32 mismatch"),
            WireError::BadPayload => write!(f, "malformed payload"),
            WireError::BadHubPacket(e) => write!(f, "embedded hub packet: {e:?}"),
            WireError::Truncated => write!(f, "connection cut mid-message"),
        }
    }
}

impl std::error::Error for WireError {}

/// CRC-32 (IEEE 802.3, reflected, polynomial `0xEDB88320`) lookup table,
/// computed at compile time.
const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
};

/// CRC-32 over a byte stream (IEEE 802.3).
#[must_use]
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in data {
        c = CRC_TABLE[((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

fn kind_of(msg: &Msg) -> Kind {
    match msg {
        Msg::Hello { .. } => Kind::Hello,
        Msg::HubData { .. } => Kind::HubData,
        Msg::FrameAck { .. } => Kind::FrameAck,
        Msg::Verdict(_) => Kind::Verdict,
        Msg::Shutdown => Kind::Shutdown,
        Msg::Resume { .. } => Kind::Resume,
        Msg::Welcome { .. } => Kind::Welcome,
        Msg::Route { .. } => Kind::Route,
        Msg::Redirect { .. } => Kind::Redirect,
        Msg::TenantSelect { .. } => Kind::TenantSelect,
        Msg::TenantInfo { .. } => Kind::TenantInfo,
    }
}

fn payload_of(msg: &Msg) -> Vec<u8> {
    match msg {
        Msg::Hello { role } => vec![match role {
            Role::Producer => 0,
            Role::Subscriber => 1,
        }],
        Msg::HubData { chain, packet } => {
            let inner = packet.encode();
            let mut out = Vec::with_capacity(4 + inner.len());
            out.extend_from_slice(&chain.to_be_bytes());
            out.extend_from_slice(&inner);
            out
        }
        Msg::FrameAck { chain, sequence } => {
            let mut out = Vec::with_capacity(8);
            out.extend_from_slice(&chain.to_be_bytes());
            out.extend_from_slice(&sequence.to_be_bytes());
            out
        }
        Msg::Verdict(v) => {
            let n = v.verdict.mi.len();
            assert_eq!(n, v.verdict.rr.len(), "verdict halves must match");
            let mut out = Vec::with_capacity(10 + 16 * n);
            out.extend_from_slice(&v.chain.to_be_bytes());
            out.extend_from_slice(&v.verdict.sequence.to_be_bytes());
            out.extend_from_slice(&(n as u16).to_be_bytes());
            for &x in &v.verdict.mi {
                out.extend_from_slice(&x.to_bits().to_be_bytes());
            }
            for &x in &v.verdict.rr {
                out.extend_from_slice(&x.to_bits().to_be_bytes());
            }
            out
        }
        Msg::Shutdown => Vec::new(),
        Msg::Resume {
            session_id,
            role,
            acked,
        } => {
            assert!(
                acked.len() <= usize::from(u16::MAX),
                "resume watermark list exceeds u16 count"
            );
            let mut out = Vec::with_capacity(11 + 8 * acked.len());
            out.extend_from_slice(&session_id.to_be_bytes());
            out.push(match role {
                Role::Producer => 0,
                Role::Subscriber => 1,
            });
            out.extend_from_slice(&(acked.len() as u16).to_be_bytes());
            for (chain, seq) in acked {
                out.extend_from_slice(&chain.to_be_bytes());
                out.extend_from_slice(&seq.to_be_bytes());
            }
            out
        }
        Msg::Welcome {
            session_id,
            resumed,
        } => {
            let mut out = Vec::with_capacity(9);
            out.extend_from_slice(&session_id.to_be_bytes());
            out.push(u8::from(*resumed));
            out
        }
        Msg::Route { chain } => chain.to_be_bytes().to_vec(),
        Msg::Redirect {
            chain,
            gateway_id,
            addr,
        } => {
            let bytes = addr.as_bytes();
            assert!(
                bytes.len() <= usize::from(u16::MAX),
                "redirect address exceeds u16 length"
            );
            let mut out = Vec::with_capacity(10 + bytes.len());
            out.extend_from_slice(&chain.to_be_bytes());
            out.extend_from_slice(&gateway_id.to_be_bytes());
            out.extend_from_slice(&(bytes.len() as u16).to_be_bytes());
            out.extend_from_slice(bytes);
            out
        }
        Msg::TenantSelect { tenant } => tenant.to_be_bytes().to_vec(),
        Msg::TenantInfo {
            tenant,
            live_digest,
            state,
            name,
        } => {
            let bytes = name.as_bytes();
            assert!(
                bytes.len() <= usize::from(u16::MAX),
                "tenant name exceeds u16 length"
            );
            let mut out = Vec::with_capacity(15 + bytes.len());
            out.extend_from_slice(&tenant.to_be_bytes());
            out.extend_from_slice(&live_digest.to_be_bytes());
            out.push(*state);
            out.extend_from_slice(&(bytes.len() as u16).to_be_bytes());
            out.extend_from_slice(bytes);
            out
        }
    }
}

/// Encodes one message into a complete wire frame.
///
/// # Panics
/// Panics if the payload would exceed [`MAX_PAYLOAD`] — only possible by
/// constructing a verdict far larger than the 260-monitor ring, which is a
/// caller bug, not a wire condition.
#[must_use]
pub fn encode_msg(msg: &Msg) -> Vec<u8> {
    let payload = payload_of(msg);
    assert!(payload.len() <= MAX_PAYLOAD, "payload exceeds MAX_PAYLOAD");
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len() + TRAILER_LEN);
    out.extend_from_slice(&WIRE_MAGIC.to_be_bytes());
    out.push(PROTOCOL_VERSION);
    out.push(kind_of(msg) as u8);
    out.extend_from_slice(&0u16.to_be_bytes());
    out.extend_from_slice(&(payload.len() as u32).to_be_bytes());
    out.extend_from_slice(&payload);
    let crc = crc32(&out);
    out.extend_from_slice(&crc.to_be_bytes());
    out
}

fn be_u32(b: &[u8]) -> u32 {
    u32::from_be_bytes([b[0], b[1], b[2], b[3]])
}

fn decode_payload(kind: u8, p: &[u8]) -> Result<Msg, WireError> {
    match kind {
        k if k == Kind::Hello as u8 => match p {
            [0] => Ok(Msg::Hello {
                role: Role::Producer,
            }),
            [1] => Ok(Msg::Hello {
                role: Role::Subscriber,
            }),
            _ => Err(WireError::BadPayload),
        },
        k if k == Kind::HubData as u8 => {
            if p.len() < 4 {
                return Err(WireError::BadPayload);
            }
            let chain = be_u32(p);
            let packet = HubPacket::decode(&p[4..]).map_err(WireError::BadHubPacket)?;
            Ok(Msg::HubData { chain, packet })
        }
        k if k == Kind::FrameAck as u8 => {
            if p.len() != 8 {
                return Err(WireError::BadPayload);
            }
            Ok(Msg::FrameAck {
                chain: be_u32(p),
                sequence: be_u32(&p[4..]),
            })
        }
        k if k == Kind::Verdict as u8 => {
            if p.len() < 10 {
                return Err(WireError::BadPayload);
            }
            let chain = be_u32(p);
            let sequence = be_u32(&p[4..]);
            let n = usize::from(u16::from_be_bytes([p[8], p[9]]));
            if p.len() != 10 + 16 * n {
                return Err(WireError::BadPayload);
            }
            let f64_at = |o: usize| {
                let mut b = [0u8; 8];
                b.copy_from_slice(&p[o..o + 8]);
                f64::from_bits(u64::from_be_bytes(b))
            };
            let mi = (0..n).map(|i| f64_at(10 + 8 * i)).collect();
            let rr = (0..n).map(|i| f64_at(10 + 8 * (n + i))).collect();
            Ok(Msg::Verdict(VerdictMsg {
                chain,
                verdict: DeblendVerdict { sequence, mi, rr },
            }))
        }
        k if k == Kind::Shutdown as u8 => {
            if p.is_empty() {
                Ok(Msg::Shutdown)
            } else {
                Err(WireError::BadPayload)
            }
        }
        k if k == Kind::Resume as u8 => {
            if p.len() < 11 {
                return Err(WireError::BadPayload);
            }
            let mut sid = [0u8; 8];
            sid.copy_from_slice(&p[..8]);
            let role = match p[8] {
                0 => Role::Producer,
                1 => Role::Subscriber,
                _ => return Err(WireError::BadPayload),
            };
            let n = usize::from(u16::from_be_bytes([p[9], p[10]]));
            if p.len() != 11 + 8 * n {
                return Err(WireError::BadPayload);
            }
            let acked = (0..n)
                .map(|i| {
                    let o = 11 + 8 * i;
                    (be_u32(&p[o..]), be_u32(&p[o + 4..]))
                })
                .collect();
            Ok(Msg::Resume {
                session_id: u64::from_be_bytes(sid),
                role,
                acked,
            })
        }
        k if k == Kind::Welcome as u8 => {
            if p.len() != 9 || p[8] > 1 {
                return Err(WireError::BadPayload);
            }
            let mut sid = [0u8; 8];
            sid.copy_from_slice(&p[..8]);
            Ok(Msg::Welcome {
                session_id: u64::from_be_bytes(sid),
                resumed: p[8] == 1,
            })
        }
        k if k == Kind::Route as u8 => {
            if p.len() != 4 {
                return Err(WireError::BadPayload);
            }
            Ok(Msg::Route { chain: be_u32(p) })
        }
        k if k == Kind::Redirect as u8 => {
            if p.len() < 10 {
                return Err(WireError::BadPayload);
            }
            let chain = be_u32(p);
            let gateway_id = be_u32(&p[4..]);
            let n = usize::from(u16::from_be_bytes([p[8], p[9]]));
            if p.len() != 10 + n {
                return Err(WireError::BadPayload);
            }
            let addr = std::str::from_utf8(&p[10..])
                .map_err(|_| WireError::BadPayload)?
                .to_string();
            Ok(Msg::Redirect {
                chain,
                gateway_id,
                addr,
            })
        }
        k if k == Kind::TenantSelect as u8 => {
            if p.len() != 4 {
                return Err(WireError::BadPayload);
            }
            Ok(Msg::TenantSelect { tenant: be_u32(p) })
        }
        k if k == Kind::TenantInfo as u8 => {
            if p.len() < 15 || p[12] > 2 {
                return Err(WireError::BadPayload);
            }
            let tenant = be_u32(p);
            let mut dig = [0u8; 8];
            dig.copy_from_slice(&p[4..12]);
            let state = p[12];
            let n = usize::from(u16::from_be_bytes([p[13], p[14]]));
            if p.len() != 15 + n {
                return Err(WireError::BadPayload);
            }
            let name = std::str::from_utf8(&p[15..])
                .map_err(|_| WireError::BadPayload)?
                .to_string();
            Ok(Msg::TenantInfo {
                tenant,
                live_digest: u64::from_be_bytes(dig),
                state,
                name,
            })
        }
        k => Err(WireError::BadKind(k)),
    }
}

/// Incremental, panic-free frame decoder.
///
/// Push bytes with [`FrameDecoder::push`], then drain messages with
/// [`FrameDecoder::next_msg`]. On a malformed frame the decoder returns the
/// typed error once and *resynchronizes* by skipping forward to the next
/// plausible magic, so one corrupted frame costs one error, not the
/// connection (the gateway decides whether the error is fatal).
#[derive(Debug, Default)]
pub struct FrameDecoder {
    buf: Vec<u8>,
    /// Consumed prefix of `buf`; compacted opportunistically.
    head: usize,
}

impl FrameDecoder {
    /// Fresh decoder.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends raw bytes from the transport.
    pub fn push(&mut self, bytes: &[u8]) {
        // Compact before growing so buffered memory stays bounded by the
        // unconsumed tail plus this chunk.
        if self.head > 0 {
            self.buf.drain(..self.head);
            self.head = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Unconsumed bytes currently buffered (bounded-memory assertion hook
    /// for tests).
    #[must_use]
    pub fn buffered(&self) -> usize {
        self.buf.len() - self.head
    }

    /// Skips forward to the next byte that could start a frame (used after
    /// an error to resynchronize on a byte stream).
    fn resync(&mut self) {
        let first = WIRE_MAGIC.to_be_bytes()[0];
        self.head += 1; // always make progress past the bad byte
        while self.head < self.buf.len() && self.buf[self.head] != first {
            self.head += 1;
        }
    }

    /// Tries to decode the next complete message.
    ///
    /// * `Ok(Some(msg))` — one message consumed;
    /// * `Ok(None)` — need more bytes (nothing consumed);
    /// * `Err(e)` — malformed frame; the offending bytes are skipped so a
    ///   later call can resynchronize.
    pub fn next_msg(&mut self) -> Result<Option<Msg>, WireError> {
        let avail = &self.buf[self.head..];
        if avail.len() < HEADER_LEN {
            return Ok(None);
        }
        let magic = be_u32(avail);
        if magic != WIRE_MAGIC {
            self.resync();
            return Err(WireError::BadMagic);
        }
        let version = avail[4];
        let kind = avail[5];
        let flags = u16::from_be_bytes([avail[6], avail[7]]);
        let len = be_u32(&avail[8..12]);
        // Validate the declared length *before* waiting for (or buffering)
        // that many bytes — an adversarial length never grows the buffer.
        if len as usize > MAX_PAYLOAD {
            self.resync();
            return Err(WireError::Oversized(len));
        }
        if version != PROTOCOL_VERSION {
            self.resync();
            return Err(WireError::BadVersion(version));
        }
        if flags != 0 {
            self.resync();
            return Err(WireError::BadFlags(flags));
        }
        let total = HEADER_LEN + len as usize + TRAILER_LEN;
        if avail.len() < total {
            return Ok(None);
        }
        let body = &avail[..HEADER_LEN + len as usize];
        let want = be_u32(&avail[HEADER_LEN + len as usize..total]);
        if crc32(body) != want {
            self.resync();
            return Err(WireError::BadCrc);
        }
        let result = decode_payload(kind, &body[HEADER_LEN..]);
        match result {
            Ok(msg) => {
                self.head += total;
                Ok(Some(msg))
            }
            Err(e) => {
                // The frame was intact (CRC passed) but semantically bad:
                // consume it whole.
                self.head += total;
                Err(e)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_packet() -> HubPacket {
        HubPacket {
            hub: 2,
            sequence: 77,
            first_monitor: 75,
            counts: vec![110_000, 111_111, 112_222],
        }
    }

    #[test]
    fn crc32_known_vector() {
        // CRC-32("123456789") = 0xCBF43926 (IEEE check value).
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn every_kind_round_trips() {
        let msgs = [
            Msg::Hello {
                role: Role::Producer,
            },
            Msg::Hello {
                role: Role::Subscriber,
            },
            Msg::HubData {
                chain: 3,
                packet: sample_packet(),
            },
            Msg::FrameAck {
                chain: 9,
                sequence: 1_000_001,
            },
            Msg::Verdict(VerdictMsg {
                chain: 1,
                verdict: DeblendVerdict {
                    sequence: 42,
                    mi: vec![0.25, -0.0, f64::MIN_POSITIVE],
                    rr: vec![1.0, 2.5e-308, 0.75],
                },
            }),
            Msg::Shutdown,
            Msg::Resume {
                session_id: 0xDEAD_BEEF_0042,
                role: Role::Producer,
                acked: vec![(0, 17), (3, 1_000_000), (9, 0)],
            },
            Msg::Resume {
                session_id: 0,
                role: Role::Subscriber,
                acked: Vec::new(),
            },
            Msg::Welcome {
                session_id: 7,
                resumed: true,
            },
            Msg::Welcome {
                session_id: u64::MAX,
                resumed: false,
            },
            Msg::Route { chain: 11 },
            Msg::Redirect {
                chain: 11,
                gateway_id: 2,
                addr: "127.0.0.1:7313".to_string(),
            },
            Msg::Redirect {
                chain: 0,
                gateway_id: 0,
                addr: String::new(),
            },
            Msg::TenantSelect { tenant: 2 },
            Msg::TenantInfo {
                tenant: 2,
                live_digest: 0xFEED_FACE_CAFE_0042,
                state: 2,
                name: "booster-mlp".to_string(),
            },
            Msg::TenantInfo {
                tenant: 0,
                live_digest: 0,
                state: 0,
                name: String::new(),
            },
        ];
        let mut dec = FrameDecoder::new();
        for m in &msgs {
            dec.push(&encode_msg(m));
        }
        for m in &msgs {
            assert_eq!(dec.next_msg().unwrap().as_ref(), Some(m));
        }
        assert_eq!(dec.next_msg().unwrap(), None);
        assert_eq!(dec.buffered(), 0);
    }

    #[test]
    fn verdict_bits_survive_transport_exactly() {
        let v = VerdictMsg {
            chain: 0,
            verdict: DeblendVerdict {
                sequence: 7,
                mi: (0..260).map(|j| (j as f64 * 0.7177).sin() * 1e-3).collect(),
                rr: (0..260).map(|j| (j as f64 * 1.3).cos()).collect(),
            },
        };
        let bytes = encode_msg(&Msg::Verdict(v.clone()));
        let mut dec = FrameDecoder::new();
        dec.push(&bytes);
        let Some(Msg::Verdict(back)) = dec.next_msg().unwrap() else {
            panic!("expected verdict");
        };
        let bits = |xs: &[f64]| xs.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&back.verdict.mi), bits(&v.verdict.mi));
        assert_eq!(bits(&back.verdict.rr), bits(&v.verdict.rr));
    }

    #[test]
    fn partial_pushes_yield_nothing_then_the_message() {
        let bytes = encode_msg(&Msg::FrameAck {
            chain: 1,
            sequence: 2,
        });
        let mut dec = FrameDecoder::new();
        for (i, b) in bytes.iter().enumerate() {
            dec.push(std::slice::from_ref(b));
            let got = dec.next_msg().unwrap();
            if i + 1 < bytes.len() {
                assert_eq!(got, None, "byte {i}");
            } else {
                assert!(matches!(got, Some(Msg::FrameAck { .. })));
            }
        }
    }

    #[test]
    fn oversized_length_is_rejected_without_buffering() {
        let mut frame = encode_msg(&Msg::Shutdown);
        // Rewrite len to something absurd; CRC no longer matters because
        // the length check fires first.
        frame[8..12].copy_from_slice(&(u32::MAX).to_be_bytes());
        let mut dec = FrameDecoder::new();
        dec.push(&frame);
        assert_eq!(dec.next_msg(), Err(WireError::Oversized(u32::MAX)));
        assert!(dec.buffered() <= frame.len());
    }

    #[test]
    fn corruption_is_one_typed_error_then_resync() {
        let good = encode_msg(&Msg::FrameAck {
            chain: 5,
            sequence: 6,
        });
        let mut bad = good.clone();
        bad[HEADER_LEN] ^= 0x01; // flip one payload bit → CRC fails
        let mut dec = FrameDecoder::new();
        dec.push(&bad);
        dec.push(&good);
        assert_eq!(dec.next_msg(), Err(WireError::BadCrc));
        // After resync the clean frame still decodes.
        let mut ok = false;
        for _ in 0..2 * (good.len() + bad.len()) {
            match dec.next_msg() {
                Ok(Some(Msg::FrameAck { chain: 5, .. })) => {
                    ok = true;
                    break;
                }
                Ok(None) => break,
                _ => {}
            }
        }
        assert!(ok, "clean frame lost after corruption");
    }

    #[test]
    fn redirect_with_non_utf8_addr_is_bad_payload() {
        let mut frame = encode_msg(&Msg::Redirect {
            chain: 1,
            gateway_id: 0,
            addr: "x:1".to_string(),
        });
        // Corrupt the address bytes into invalid UTF-8, then re-seal the CRC
        // so only the payload check can object.
        let body_end = frame.len() - TRAILER_LEN;
        frame[body_end - 1] = 0xFF;
        frame[body_end - 2] = 0xC0;
        let crc = crc32(&frame[..body_end]);
        frame[body_end..].copy_from_slice(&crc.to_be_bytes());
        let mut dec = FrameDecoder::new();
        dec.push(&frame);
        assert_eq!(dec.next_msg(), Err(WireError::BadPayload));
    }

    #[test]
    fn garbage_never_panics() {
        let mut dec = FrameDecoder::new();
        dec.push(&[0xFF; 64]);
        for _ in 0..256 {
            match dec.next_msg() {
                Ok(None) => break,
                Ok(Some(_)) => panic!("garbage decoded to a message"),
                Err(_) => {}
            }
        }
    }
}
