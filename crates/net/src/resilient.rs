//! A reconnecting gateway client: [`ResilientClient`] wraps
//! [`GatewayClient`] with exponential-backoff + jitter reconnects, a
//! bounded unacked-frame replay buffer keyed by `(chain, sequence)`, and
//! the [`Msg::Resume`] handshake — so a TCP cut (clean, mid-message, or
//! byte-corrupted) costs an outage window, never an acked frame.
//!
//! The dedupe contract is split between the two ends: the client replays
//! every frame it was never acked for, and the gateway's assembler
//! watermark plus accepted-frame memory make the replay idempotent (a
//! frame that *was* accepted before the cut is re-acked exactly once per
//! connection; one that was not completes normally). Verdicts a
//! subscriber never saw come back from the gateway's per-session replay
//! ring, filtered by the acked watermarks the client sends in its
//! `Resume`.

use crate::client::{was_truncated, GatewayClient};
use crate::wire::{Msg, Role};
use reads_blm::hubs::ChainFrame;
use reads_sim::Rng;
use std::collections::{BTreeMap, VecDeque};
use std::net::{SocketAddr, ToSocketAddrs};
use std::time::{Duration, Instant};

/// Reconnect/replay policy.
#[derive(Debug, Clone)]
pub struct ResilienceConfig {
    /// Reconnect attempts per outage before giving up.
    pub max_reconnect_attempts: u32,
    /// First backoff; doubles per attempt.
    pub base_backoff: Duration,
    /// Backoff ceiling.
    pub max_backoff: Duration,
    /// Multiplicative jitter spread: each sleep is scaled by a seeded
    /// uniform draw from `[1 - jitter, 1 + jitter]`, so a fleet of
    /// clients cut by the same fault does not reconnect in lockstep.
    pub jitter: f64,
    /// Seed for the jitter stream (deterministic chaos runs).
    pub seed: u64,
    /// Unacked frames remembered for replay. At the cap the oldest is
    /// dropped — visible as a frame that never acks.
    pub replay_buffer: usize,
    /// How long to wait for the `Welcome` after sending `Resume`.
    pub handshake_timeout: Duration,
}

impl Default for ResilienceConfig {
    fn default() -> Self {
        Self {
            max_reconnect_attempts: 10,
            base_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_millis(500),
            jitter: 0.25,
            seed: 7,
            replay_buffer: 1024,
            handshake_timeout: Duration::from_secs(2),
        }
    }
}

/// What the client lived through.
#[derive(Debug, Clone, Copy, Default)]
pub struct ResilienceStats {
    /// Connection losses observed (any cause).
    pub disconnects: u64,
    /// Dial attempts made while reconnecting (includes failures).
    pub reconnect_attempts: u64,
    /// Reconnects the gateway answered `Welcome { resumed: true }`.
    pub resumed: u64,
    /// Reconnects that came back as a fresh session (history gone).
    pub fresh_sessions: u64,
    /// Frames replayed from the unacked buffer.
    pub frames_replayed: u64,
    /// Cuts that landed mid-message ([`crate::wire::WireError::Truncated`]).
    pub truncated_cuts: u64,
    /// Total wall-clock spent disconnected (outage begin → handshake
    /// complete), for MTTR curves.
    pub outage: Duration,
}

impl ResilienceStats {
    /// Mean time to recovery in milliseconds (0 when never disconnected).
    #[must_use]
    pub fn mttr_ms(&self) -> f64 {
        if self.disconnects == 0 {
            return 0.0;
        }
        #[allow(clippy::cast_precision_loss)]
        {
            self.outage.as_secs_f64() * 1e3 / self.disconnects as f64
        }
    }
}

/// A gateway client that survives its transport.
#[derive(Debug)]
pub struct ResilientClient {
    addr: SocketAddr,
    role: Role,
    cfg: ResilienceConfig,
    rng: Rng,
    inner: Option<GatewayClient>,
    session_id: u64,
    /// Unacked frames by `(chain, sequence)` — the replay set.
    unacked: BTreeMap<(u32, u32), ChainFrame>,
    /// Highest acked/seen sequence per chain — the resume watermarks.
    acked_high: BTreeMap<u32, u32>,
    /// Messages that arrived while waiting for a `Welcome`.
    pending: VecDeque<Msg>,
    stats: ResilienceStats,
}

impl ResilientClient {
    /// Connects and opens a session (`Hello` → `Welcome`).
    ///
    /// # Errors
    /// Propagates connect failures and a missing `Welcome`.
    pub fn connect(
        addr: impl ToSocketAddrs,
        role: Role,
        cfg: ResilienceConfig,
    ) -> std::io::Result<Self> {
        let addr = addr
            .to_socket_addrs()?
            .next()
            .ok_or_else(|| std::io::Error::other("no address resolved"))?;
        let rng = Rng::seed_from_u64(cfg.seed);
        let mut client = Self {
            addr,
            role,
            cfg,
            rng,
            inner: None,
            session_id: 0,
            unacked: BTreeMap::new(),
            acked_high: BTreeMap::new(),
            pending: VecDeque::new(),
            stats: ResilienceStats::default(),
        };
        let mut inner = GatewayClient::connect(client.addr, role)?;
        let (sid, _) = client.await_welcome(&mut inner)?;
        client.session_id = sid;
        client.inner = Some(inner);
        Ok(client)
    }

    /// The session id the gateway assigned (changes when a resume falls
    /// back to a fresh session).
    #[must_use]
    pub fn session_id(&self) -> u64 {
        self.session_id
    }

    /// Outage/replay accounting so far.
    #[must_use]
    pub fn stats(&self) -> ResilienceStats {
        self.stats
    }

    /// Frames sent but not yet acked.
    #[must_use]
    pub fn unacked_len(&self) -> usize {
        self.unacked.len()
    }

    /// Sends one chain frame, remembering it for replay until acked. A
    /// dead transport triggers a reconnect; the frame itself rides the
    /// post-resume replay, so the send "succeeds" once the session is
    /// back.
    ///
    /// # Errors
    /// Returns an error only when reconnecting exhausted its attempts.
    pub fn send_frame(&mut self, frame: &ChainFrame) -> std::io::Result<()> {
        if self.unacked.len() >= self.cfg.replay_buffer {
            self.unacked.pop_first(); // oldest frame becomes visible loss
        }
        self.unacked
            .insert((frame.chain, frame.sequence), frame.clone());
        loop {
            let Some(client) = self.inner.as_mut() else {
                self.reconnect()?;
                continue;
            };
            match client.send_frame(frame) {
                Ok(()) => return Ok(()),
                Err(_) => {
                    // The replay after resume carries this frame.
                    self.begin_outage(false);
                    self.reconnect()?;
                    return Ok(());
                }
            }
        }
    }

    /// Receives the next message, reconnecting through transport faults.
    /// Returns `Ok(None)` on a quiet timeout *or* after a reconnect (the
    /// caller just polls again). Acks and verdicts prune the replay
    /// buffer and advance the per-chain watermarks before the message is
    /// handed back.
    ///
    /// # Errors
    /// Returns an error only when reconnecting exhausted its attempts.
    pub fn recv(&mut self, timeout: Duration) -> std::io::Result<Option<Msg>> {
        if let Some(msg) = self.pending.pop_front() {
            self.observe(&msg);
            return Ok(Some(msg));
        }
        let Some(client) = self.inner.as_mut() else {
            self.reconnect()?;
            return Ok(None);
        };
        match client.recv(timeout) {
            Ok(Some(msg)) => {
                self.observe(&msg);
                Ok(Some(msg))
            }
            Ok(None) => Ok(None),
            Err(e) => {
                let truncated = was_truncated(&e);
                if truncated || Self::is_transport_fault(&e) {
                    self.begin_outage(truncated);
                    self.reconnect()?;
                    Ok(None)
                } else {
                    Err(e)
                }
            }
        }
    }

    /// Re-sends every frame still unacked (e.g. after the gateway evicted
    /// an incomplete assembly that a corrupted packet poked a hole in).
    ///
    /// # Errors
    /// Returns an error only when reconnecting exhausted its attempts.
    pub fn replay_unacked(&mut self) -> std::io::Result<usize> {
        let frames: Vec<ChainFrame> = self.unacked.values().cloned().collect();
        let n = frames.len();
        for frame in frames {
            let Some(client) = self.inner.as_mut() else {
                self.reconnect()?;
                return Ok(0);
            };
            if client.send_frame(&frame).is_err() {
                self.begin_outage(false);
                self.reconnect()?;
                return Ok(0);
            }
            self.stats.frames_replayed += 1;
        }
        Ok(n)
    }

    /// Transport faults worth a reconnect; anything else (e.g. a local
    /// logic error) propagates. `InvalidData` is *corruption on the
    /// wire* — under chaos that is the transport's fault, so it counts.
    fn is_transport_fault(e: &std::io::Error) -> bool {
        matches!(
            e.kind(),
            std::io::ErrorKind::UnexpectedEof
                | std::io::ErrorKind::ConnectionReset
                | std::io::ErrorKind::ConnectionAborted
                | std::io::ErrorKind::BrokenPipe
                | std::io::ErrorKind::InvalidData
        )
    }

    fn begin_outage(&mut self, truncated: bool) {
        self.inner = None;
        self.stats.disconnects += 1;
        if truncated {
            self.stats.truncated_cuts += 1;
        }
    }

    fn observe(&mut self, msg: &Msg) {
        match msg {
            Msg::FrameAck { chain, sequence } => {
                self.unacked.remove(&(*chain, *sequence));
                self.bump_watermark(*chain, *sequence);
            }
            Msg::Verdict(v) => self.bump_watermark(v.chain, v.verdict.sequence),
            _ => {}
        }
    }

    fn bump_watermark(&mut self, chain: u32, sequence: u32) {
        let high = self.acked_high.entry(chain).or_insert(sequence);
        *high = (*high).max(sequence);
    }

    /// Backoff → dial → `Resume` → `Welcome` → replay, until connected or
    /// out of attempts. The outage clock runs from the first backoff to
    /// the completed handshake.
    fn reconnect(&mut self) -> std::io::Result<()> {
        let outage_started = Instant::now();
        let mut result = Err(std::io::Error::other("no reconnect attempt made"));
        for attempt in 0..self.cfg.max_reconnect_attempts {
            let exp = self
                .cfg
                .base_backoff
                .saturating_mul(1u32 << attempt.min(16))
                .min(self.cfg.max_backoff);
            let jittered = exp.mul_f64(
                self.rng
                    .range_f64((1.0 - self.cfg.jitter).max(0.0), 1.0 + self.cfg.jitter),
            );
            std::thread::sleep(jittered);
            self.stats.reconnect_attempts += 1;
            match self.try_resume() {
                Ok(()) => {
                    result = Ok(());
                    break;
                }
                Err(e) => result = Err(e),
            }
        }
        self.stats.outage += outage_started.elapsed();
        result
    }

    fn try_resume(&mut self) -> std::io::Result<()> {
        let mut client = GatewayClient::connect_raw(self.addr)?;
        let acked: Vec<(u32, u32)> = self
            .acked_high
            .iter()
            .map(|(&chain, &high)| (chain, high))
            .collect();
        client.send(&Msg::Resume {
            session_id: self.session_id,
            role: self.role,
            acked,
        })?;
        let (sid, resumed) = self.await_welcome(&mut client)?;
        if resumed {
            self.stats.resumed += 1;
        } else {
            self.stats.fresh_sessions += 1;
        }
        self.session_id = sid;
        // Replay everything unacked on the fresh pipe. The gateway
        // re-acks what it already accepted and processes the rest —
        // either way the buffer drains through normal acks.
        for frame in self.unacked.values() {
            client.send_frame(frame)?;
            self.stats.frames_replayed += 1;
        }
        self.inner = Some(client);
        Ok(())
    }

    /// Waits for the `Welcome`, buffering anything else that arrives
    /// first (replayed verdicts land *after* the `Welcome` by protocol,
    /// but acks from a pre-cut burst may already be queued).
    fn await_welcome(&mut self, client: &mut GatewayClient) -> std::io::Result<(u64, bool)> {
        let deadline = Instant::now() + self.cfg.handshake_timeout;
        loop {
            let now = Instant::now();
            if now >= deadline {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::TimedOut,
                    "no Welcome before handshake timeout",
                ));
            }
            match client.recv(deadline - now)? {
                Some(Msg::Welcome {
                    session_id,
                    resumed,
                }) => return Ok((session_id, resumed)),
                Some(other) => self.pending.push_back(other),
                None => {}
            }
        }
    }
}
