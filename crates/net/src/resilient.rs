//! A reconnecting gateway client: [`ResilientClient`] wraps
//! [`GatewayClient`] with exponential-backoff + jitter reconnects, a
//! bounded unacked-frame replay buffer keyed by `(chain, sequence)`, and
//! the [`Msg::Resume`] handshake — so a TCP cut (clean, mid-message, or
//! byte-corrupted) costs an outage window, never an acked frame.
//!
//! The dedupe contract is split between the two ends: the client replays
//! every frame it was never acked for, and the gateway's assembler
//! watermark plus accepted-frame memory make the replay idempotent (a
//! frame that *was* accepted before the cut is re-acked exactly once per
//! connection; one that was not completes normally). Verdicts a
//! subscriber never saw come back from the gateway's per-session replay
//! ring, filtered by the acked watermarks the client sends in its
//! `Resume`.
//!
//! Fleet-aware failover adds three behaviours on top (all off by default,
//! so a single-gateway client is byte-for-byte the PR 5 one):
//!
//! * **Address cycling** — the client holds a *list* of candidate gateway
//!   addresses ([`ResilientClient::connect_fleet`]); a dial failure
//!   advances to the next candidate under the same seeded backoff, so a
//!   dead gateway costs one refused connect, not the whole outage budget.
//! * **Acked-frame retention** — the last
//!   [`ResilienceConfig::acked_retention`] *acked* frames are kept in a
//!   ring. A failover (new gateway, or a fresh session anywhere) drains
//!   the ring back into the replay set: the successor gateway has none of
//!   the dead gateway's engine state, so acked-but-undelivered verdicts
//!   are recomputed from the refeed — deterministically, hence
//!   bit-identical (subscriber-side watermarks suppress the duplicates).
//! * **Routing** — a producer pinned to one chain
//!   ([`ResilienceConfig::route_chain`]) asks any reachable gateway
//!   [`Msg::Route`] before resuming and follows the [`Msg::Redirect`]
//!   answer to the owner, and follows unsolicited redirects (misroute
//!   bounces) by migrating its session to the named owner.

use crate::client::{was_truncated, GatewayClient};
use crate::wire::{Msg, Role};
use reads_blm::hubs::ChainFrame;
use reads_sim::Rng;
use std::collections::{BTreeMap, VecDeque};
use std::net::{SocketAddr, ToSocketAddrs};
use std::time::{Duration, Instant};

/// Reconnect/replay policy.
#[derive(Debug, Clone)]
pub struct ResilienceConfig {
    /// Reconnect attempts per outage before giving up.
    pub max_reconnect_attempts: u32,
    /// First backoff; doubles per attempt.
    pub base_backoff: Duration,
    /// Backoff ceiling.
    pub max_backoff: Duration,
    /// Multiplicative jitter spread: each sleep is scaled by a seeded
    /// uniform draw from `[1 - jitter, 1 + jitter]`, so a fleet of
    /// clients cut by the same fault does not reconnect in lockstep.
    pub jitter: f64,
    /// Seed for the jitter stream (deterministic chaos runs).
    pub seed: u64,
    /// Unacked frames remembered for replay. At the cap the oldest is
    /// dropped — visible as a frame that never acks.
    pub replay_buffer: usize,
    /// How long to wait for the `Welcome` after sending `Resume`.
    pub handshake_timeout: Duration,
    /// *Acked* frames retained for failover refeed. When a reconnect
    /// lands on a different gateway (or comes back as a fresh session),
    /// these frames rejoin the replay set so the successor can recompute
    /// the verdicts the dead gateway still owed. `0` disables retention
    /// (the PR 5 behaviour).
    pub acked_retention: usize,
    /// How many `Welcome { resumed: false }` answers to *refuse* per
    /// outage before accepting a fresh session. A client racing the fleet
    /// supervisor (reconnected to a survivor before the dead gateway was
    /// declared dead) needs a few refusals for the gossip-import window
    /// to open. `0` accepts the first answer (the PR 5 behaviour).
    pub insist_resume: u32,
    /// Chain this producer is pinned to. When set, reconnects first ask
    /// a reachable gateway [`Msg::Route`] for the chain's owner and dial
    /// the answer — so a failover goes straight to the successor instead
    /// of bouncing off a non-owner. `None` for subscribers and
    /// single-gateway producers.
    pub route_chain: Option<u32>,
}

impl Default for ResilienceConfig {
    fn default() -> Self {
        Self {
            max_reconnect_attempts: 10,
            base_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_millis(500),
            jitter: 0.25,
            seed: 7,
            replay_buffer: 1024,
            handshake_timeout: Duration::from_secs(2),
            acked_retention: 0,
            insist_resume: 0,
            route_chain: None,
        }
    }
}

/// What the client lived through.
#[derive(Debug, Clone, Copy, Default)]
pub struct ResilienceStats {
    /// Connection losses observed (any cause).
    pub disconnects: u64,
    /// Dial attempts made while reconnecting (includes failures).
    pub reconnect_attempts: u64,
    /// Reconnects the gateway answered `Welcome { resumed: true }`.
    pub resumed: u64,
    /// Reconnects that came back as a fresh session (history gone).
    pub fresh_sessions: u64,
    /// Frames replayed from the unacked buffer.
    pub frames_replayed: u64,
    /// Cuts that landed mid-message ([`crate::wire::WireError::Truncated`]).
    pub truncated_cuts: u64,
    /// Total wall-clock spent disconnected (outage begin → handshake
    /// complete), for MTTR curves.
    pub outage: Duration,
    /// `Redirect` answers acted on — explicit `Route` lookups plus
    /// misroute bounces that triggered a migration.
    pub redirects_followed: u64,
    /// Reconnects that landed on a *different* gateway than the previous
    /// connection (each drains the acked ring into the replay set).
    pub failovers: u64,
}

impl ResilienceStats {
    /// Mean time to recovery in milliseconds (0 when never disconnected).
    #[must_use]
    pub fn mttr_ms(&self) -> f64 {
        if self.disconnects == 0 {
            return 0.0;
        }
        #[allow(clippy::cast_precision_loss)]
        {
            self.outage.as_secs_f64() * 1e3 / self.disconnects as f64
        }
    }
}

/// A gateway client that survives its transport — and, given a candidate
/// list, its gateway.
#[derive(Debug)]
pub struct ResilientClient {
    /// Candidate gateway addresses; `cursor` indexes the current target.
    addrs: Vec<SocketAddr>,
    cursor: usize,
    /// Address of the live (or last) connection — failover detection.
    connected_addr: Option<SocketAddr>,
    role: Role,
    cfg: ResilienceConfig,
    rng: Rng,
    inner: Option<GatewayClient>,
    session_id: u64,
    /// Unacked frames by `(chain, sequence)` — the replay set.
    unacked: BTreeMap<(u32, u32), ChainFrame>,
    /// Recently *acked* frames, oldest first — the failover refeed ring.
    acked_ring: VecDeque<ChainFrame>,
    /// Highest acked/seen sequence per chain — the resume watermarks.
    acked_high: BTreeMap<u32, u32>,
    /// Messages that arrived while waiting for a `Welcome`.
    pending: VecDeque<Msg>,
    stats: ResilienceStats,
}

impl ResilientClient {
    /// Connects and opens a session (`Hello` → `Welcome`).
    ///
    /// # Errors
    /// Propagates connect failures and a missing `Welcome`.
    pub fn connect(
        addr: impl ToSocketAddrs,
        role: Role,
        cfg: ResilienceConfig,
    ) -> std::io::Result<Self> {
        let addrs: Vec<SocketAddr> = addr.to_socket_addrs()?.collect();
        Self::connect_fleet(&addrs, role, cfg)
    }

    /// Connects against a candidate list: the first reachable address
    /// that answers a `Welcome` wins; later outages cycle the list.
    ///
    /// # Errors
    /// Fails when the list is empty or no candidate completed a
    /// handshake.
    pub fn connect_fleet(
        addrs: &[SocketAddr],
        role: Role,
        cfg: ResilienceConfig,
    ) -> std::io::Result<Self> {
        if addrs.is_empty() {
            return Err(std::io::Error::other("no address resolved"));
        }
        let rng = Rng::seed_from_u64(cfg.seed);
        let mut client = Self {
            addrs: addrs.to_vec(),
            cursor: 0,
            connected_addr: None,
            role,
            cfg,
            rng,
            inner: None,
            session_id: 0,
            unacked: BTreeMap::new(),
            acked_ring: VecDeque::new(),
            acked_high: BTreeMap::new(),
            pending: VecDeque::new(),
            stats: ResilienceStats::default(),
        };
        if client.cfg.route_chain.is_some() {
            client.locate_owner();
        }
        let mut last = std::io::Error::other("no candidate address answered");
        for _ in 0..client.addrs.len() {
            let target = client.current_addr();
            match GatewayClient::connect(target, role) {
                Ok(mut inner) => match client.await_welcome(&mut inner) {
                    Ok((sid, _)) => {
                        client.session_id = sid;
                        client.connected_addr = Some(target);
                        client.inner = Some(inner);
                        return Ok(client);
                    }
                    Err(e) => {
                        last = e;
                        client.advance_cursor();
                    }
                },
                Err(e) => {
                    last = e;
                    client.advance_cursor();
                }
            }
        }
        Err(last)
    }

    /// The session id the gateway assigned (changes when a resume falls
    /// back to a fresh session).
    #[must_use]
    pub fn session_id(&self) -> u64 {
        self.session_id
    }

    /// Outage/replay accounting so far.
    #[must_use]
    pub fn stats(&self) -> ResilienceStats {
        self.stats
    }

    /// Frames sent but not yet acked.
    #[must_use]
    pub fn unacked_len(&self) -> usize {
        self.unacked.len()
    }

    /// The gateway address currently (or last) connected to.
    #[must_use]
    pub fn connected_addr(&self) -> Option<SocketAddr> {
        self.connected_addr
    }

    fn current_addr(&self) -> SocketAddr {
        self.addrs[self.cursor]
    }

    fn advance_cursor(&mut self) {
        self.cursor = (self.cursor + 1) % self.addrs.len();
    }

    /// Points the cursor at `target`, learning the address if new.
    fn retarget(&mut self, target: SocketAddr) {
        match self.addrs.iter().position(|&a| a == target) {
            Some(i) => self.cursor = i,
            None => {
                self.addrs.push(target);
                self.cursor = self.addrs.len() - 1;
            }
        }
    }

    /// Sends one chain frame, remembering it for replay until acked. A
    /// dead transport triggers a reconnect; the frame itself rides the
    /// post-resume replay, so the send "succeeds" once the session is
    /// back.
    ///
    /// # Errors
    /// Returns an error only when reconnecting exhausted its attempts.
    pub fn send_frame(&mut self, frame: &ChainFrame) -> std::io::Result<()> {
        if self.unacked.len() >= self.cfg.replay_buffer {
            self.unacked.pop_first(); // oldest frame becomes visible loss
        }
        self.unacked
            .insert((frame.chain, frame.sequence), frame.clone());
        loop {
            let Some(client) = self.inner.as_mut() else {
                self.reconnect()?;
                continue;
            };
            match client.send_frame(frame) {
                Ok(()) => return Ok(()),
                Err(_) => {
                    // The replay after resume carries this frame.
                    self.begin_outage(false);
                    self.reconnect()?;
                    return Ok(());
                }
            }
        }
    }

    /// Receives the next message, reconnecting through transport faults.
    /// Returns `Ok(None)` on a quiet timeout *or* after a reconnect (the
    /// caller just polls again). Acks and verdicts prune the replay
    /// buffer and advance the per-chain watermarks before the message is
    /// handed back; redirects are followed internally (session migration
    /// to the named owner) and never surface to the caller.
    ///
    /// # Errors
    /// Returns an error only when reconnecting exhausted its attempts.
    pub fn recv(&mut self, timeout: Duration) -> std::io::Result<Option<Msg>> {
        if let Some(msg) = self.pending.pop_front() {
            return Ok(self.digest(msg));
        }
        let Some(client) = self.inner.as_mut() else {
            self.reconnect()?;
            return Ok(None);
        };
        match client.recv(timeout) {
            Ok(Some(msg)) => Ok(self.digest(msg)),
            Ok(None) => Ok(None),
            Err(e) => {
                let truncated = was_truncated(&e);
                if truncated || Self::is_transport_fault(&e) {
                    self.begin_outage(truncated);
                    self.reconnect()?;
                    Ok(None)
                } else {
                    Err(e)
                }
            }
        }
    }

    /// Re-sends every frame still unacked (e.g. after the gateway evicted
    /// an incomplete assembly that a corrupted packet poked a hole in).
    ///
    /// # Errors
    /// Returns an error only when reconnecting exhausted its attempts.
    pub fn replay_unacked(&mut self) -> std::io::Result<usize> {
        let frames: Vec<ChainFrame> = self.unacked.values().cloned().collect();
        let n = frames.len();
        for frame in frames {
            let Some(client) = self.inner.as_mut() else {
                self.reconnect()?;
                return Ok(0);
            };
            if client.send_frame(&frame).is_err() {
                self.begin_outage(false);
                self.reconnect()?;
                return Ok(0);
            }
            self.stats.frames_replayed += 1;
        }
        Ok(n)
    }

    /// Transport faults worth a reconnect; anything else (e.g. a local
    /// logic error) propagates. `InvalidData` is *corruption on the
    /// wire* — under chaos that is the transport's fault, so it counts.
    fn is_transport_fault(e: &std::io::Error) -> bool {
        matches!(
            e.kind(),
            std::io::ErrorKind::UnexpectedEof
                | std::io::ErrorKind::ConnectionReset
                | std::io::ErrorKind::ConnectionAborted
                | std::io::ErrorKind::BrokenPipe
                | std::io::ErrorKind::InvalidData
        )
    }

    fn begin_outage(&mut self, truncated: bool) {
        self.inner = None;
        self.stats.disconnects += 1;
        if truncated {
            self.stats.truncated_cuts += 1;
        }
    }

    /// Observes a message's accounting side effects, then decides whether
    /// to surface it. Redirects migrate the session: drop the transport
    /// (the owner has our chain; this gateway does not) and let the next
    /// reconnect resume at the redirect target with a full replay.
    fn digest(&mut self, msg: Msg) -> Option<Msg> {
        self.observe(&msg);
        if let Msg::Redirect { addr, .. } = &msg {
            if let Ok(target) = addr.parse::<SocketAddr>() {
                self.stats.redirects_followed += 1;
                self.retarget(target);
                // Voluntary migration, not an outage: no disconnect count.
                self.inner = None;
            }
            return None;
        }
        Some(msg)
    }

    fn observe(&mut self, msg: &Msg) {
        match msg {
            Msg::FrameAck { chain, sequence } => {
                if let Some(frame) = self.unacked.remove(&(*chain, *sequence)) {
                    if self.cfg.acked_retention > 0 {
                        self.acked_ring.push_back(frame);
                        while self.acked_ring.len() > self.cfg.acked_retention {
                            self.acked_ring.pop_front();
                        }
                    }
                }
                self.bump_watermark(*chain, *sequence);
            }
            Msg::Verdict(v) => self.bump_watermark(v.chain, v.verdict.sequence),
            _ => {}
        }
    }

    fn bump_watermark(&mut self, chain: u32, sequence: u32) {
        let high = self.acked_high.entry(chain).or_insert(sequence);
        *high = (*high).max(sequence);
    }

    /// Best-effort owner lookup for the pinned chain: probe candidates
    /// with [`Msg::Route`] until one answers, then point the cursor at
    /// the owner. Silent on total failure — the dial loop will cycle.
    fn locate_owner(&mut self) {
        let Some(chain) = self.cfg.route_chain else {
            return;
        };
        for i in 0..self.addrs.len() {
            let probe_addr = self.addrs[(self.cursor + i) % self.addrs.len()];
            let Ok(mut probe) = GatewayClient::connect_raw(probe_addr) else {
                continue;
            };
            if probe.send(&Msg::Route { chain }).is_err() {
                continue;
            }
            let deadline = Instant::now() + self.cfg.handshake_timeout;
            loop {
                let now = Instant::now();
                if now >= deadline {
                    break;
                }
                match probe.recv(deadline - now) {
                    Ok(Some(Msg::Redirect { addr, .. })) => {
                        if let Ok(target) = addr.parse::<SocketAddr>() {
                            self.stats.redirects_followed += 1;
                            self.retarget(target);
                            return;
                        }
                        break;
                    }
                    Ok(Some(_)) => {}
                    Ok(None) | Err(_) => break,
                }
            }
        }
    }

    /// Backoff → (route) → dial → `Resume` → `Welcome` → replay, until
    /// connected or out of attempts. The outage clock runs from the first
    /// backoff to the completed handshake. A dial/handshake failure
    /// cycles the candidate list; a refused fresh session (while
    /// insisting) retries in place — the handoff window it is waiting for
    /// opens at the *same* gateway once the supervisor declares the old
    /// owner dead.
    fn reconnect(&mut self) -> std::io::Result<()> {
        let outage_started = Instant::now();
        let mut result = Err(std::io::Error::other("no reconnect attempt made"));
        let mut insisted = 0u32;
        for attempt in 0..self.cfg.max_reconnect_attempts {
            let exp = self
                .cfg
                .base_backoff
                .saturating_mul(1u32 << attempt.min(16))
                .min(self.cfg.max_backoff);
            let jittered = exp.mul_f64(
                self.rng
                    .range_f64((1.0 - self.cfg.jitter).max(0.0), 1.0 + self.cfg.jitter),
            );
            std::thread::sleep(jittered);
            self.stats.reconnect_attempts += 1;
            if self.cfg.route_chain.is_some() {
                self.locate_owner();
            }
            let accept_fresh = insisted >= self.cfg.insist_resume;
            match self.try_resume(accept_fresh) {
                Ok(true) => {
                    result = Ok(());
                    break;
                }
                Ok(false) => {
                    insisted += 1;
                    result = Err(std::io::Error::other(
                        "gateway offered a fresh session while insisting on resume",
                    ));
                }
                Err(e) => {
                    self.advance_cursor();
                    result = Err(e);
                }
            }
        }
        self.stats.outage += outage_started.elapsed();
        result
    }

    /// One resume attempt against the current candidate. `Ok(true)` =
    /// connected (session committed, replay sent). `Ok(false)` = the
    /// gateway offered a fresh session and `accept_fresh` was false — the
    /// offer is abandoned (the gateway parks and expires it). `Err` =
    /// dial or handshake failure.
    fn try_resume(&mut self, accept_fresh: bool) -> std::io::Result<bool> {
        let target = self.current_addr();
        let mut client = GatewayClient::connect_raw(target)?;
        let acked: Vec<(u32, u32)> = self
            .acked_high
            .iter()
            .map(|(&chain, &high)| (chain, high))
            .collect();
        client.send(&Msg::Resume {
            session_id: self.session_id,
            role: self.role,
            acked,
        })?;
        let (sid, resumed) = self.await_welcome(&mut client)?;
        if !resumed && !accept_fresh {
            // Whatever was buffered during this handshake belongs to the
            // abandoned session.
            self.pending.clear();
            return Ok(false);
        }
        if resumed {
            self.stats.resumed += 1;
        } else {
            self.stats.fresh_sessions += 1;
        }
        // Failover: a different gateway (or a fresh session anywhere) has
        // none of the engine state behind our acked frames — refeed the
        // retained ring so the successor recomputes those verdicts. The
        // unacked map replays in (chain, sequence) order, so per-chain
        // verdict order survives the handoff.
        let moved = self.connected_addr.is_some_and(|prev| prev != target);
        if moved || !resumed {
            if moved {
                self.stats.failovers += 1;
            }
            for frame in self.acked_ring.drain(..) {
                self.unacked
                    .entry((frame.chain, frame.sequence))
                    .or_insert(frame);
            }
        }
        self.session_id = sid;
        self.connected_addr = Some(target);
        // Replay everything unacked on the fresh pipe. The gateway
        // re-acks what it already accepted and processes the rest —
        // either way the buffer drains through normal acks.
        for frame in self.unacked.values() {
            client.send_frame(frame)?;
            self.stats.frames_replayed += 1;
        }
        self.inner = Some(client);
        Ok(true)
    }

    /// Waits for the `Welcome`, buffering anything else that arrives
    /// first (replayed verdicts land *after* the `Welcome` by protocol,
    /// but acks from a pre-cut burst may already be queued).
    fn await_welcome(&mut self, client: &mut GatewayClient) -> std::io::Result<(u64, bool)> {
        let deadline = Instant::now() + self.cfg.handshake_timeout;
        loop {
            let now = Instant::now();
            if now >= deadline {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::TimedOut,
                    "no Welcome before handshake timeout",
                ));
            }
            match client.recv(deadline - now)? {
                Some(Msg::Welcome {
                    session_id,
                    resumed,
                }) => return Ok((session_id, resumed)),
                Some(other) => self.pending.push_back(other),
                None => {}
            }
        }
    }
}
