//! The TCP hub gateway: a real serving plane in front of the sharded
//! inference engine.
//!
//! Topology (all `std` threads, no async runtime):
//!
//! ```text
//!  producers ──TCP──▶ reader threads ──events──▶ hub thread ──▶ ShardedEngine
//!                                                  │  ▲              │
//!  subscribers ◀──TCP── writer threads ◀─bytes─────┘  └──verdicts────┘
//! ```
//!
//! * One **reader thread per connection** feeds the panic-free incremental
//!   [`FrameDecoder`](crate::wire::FrameDecoder); well-formed hub packets
//!   flow to the hub thread over a bounded event channel (TCP backpressure
//!   propagates naturally when the hub falls behind).
//! * The **hub thread** owns the [`FrameAssembler`], the
//!   [`ShardedEngine`], and the [`NetCounters`]: completed chain frames
//!   are priced in simulated time with
//!   [`EthernetModel::frame_ingest_time`] (the *same* model the in-process
//!   pipeline uses — no duplicated bandwidth constants), submitted to the
//!   engine, and acked back to the producer that completed them.
//! * Verdicts stream back to every subscriber through a bounded
//!   per-connection queue with an explicit slow-consumer policy:
//!   [`SlowConsumerPolicy::DropNewest`] sheds the verdict and counts it;
//!   [`SlowConsumerPolicy::Disconnect`] drops the subscriber (and trips
//!   the network health ladder — an operator must notice).
//! * **Graceful shutdown** ([`GatewayHandle::shutdown`], a wire-level
//!   [`Msg::Shutdown`], or an external flag such as ctrl-c) stops the
//!   acceptor and readers, drains every in-flight event, finishes the
//!   engine, flushes remaining verdicts to subscribers, joins every
//!   thread, and returns a [`GatewayReport`] — no accepted-and-acked
//!   frame is ever lost.
//! * **Session resumption**: every `Hello` opens a server-side session
//!   and answers [`Msg::Welcome`] with its id. When a connection dies the
//!   session *parks* for [`GatewayConfig::session_resume_window`]; a
//!   client reconnecting with [`Msg::Resume`] rebinds it, gets verdicts
//!   it never saw replayed from a bounded per-session ring, and replayed
//!   producer frames behind the assembler watermark are re-acked exactly
//!   once per connection — so a resumed stream is idempotent and its
//!   verdicts stay bit-identical to an uninterrupted run.

use crate::assembler::{FrameAssembler, Offer};
use crate::router::{FleetLink, SessionStub};
use crate::wire::{encode_msg, FrameDecoder, Msg, Role, VerdictMsg, WireError};
use reads_blm::hubs::HubPacket;
use reads_core::console::OperatorConsole;
use reads_core::engine::{FleetReport, FrameResult, ShardedEngine};
use reads_core::resilience::NetCounters;
use reads_core::system::TRIP_THRESHOLD;
use reads_sim::SimDuration;
use reads_soc::eth::EthernetModel;
use std::collections::{BTreeSet, HashMap, HashSet, VecDeque};
use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{self, Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

/// What to do when a subscriber's outbound queue is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SlowConsumerPolicy {
    /// Drop the verdict for that subscriber and count it.
    DropNewest,
    /// Disconnect the subscriber (trips network health).
    Disconnect,
}

/// Gateway sizing and policy.
#[derive(Debug, Clone)]
pub struct GatewayConfig {
    /// Outbound queue depth per connection (verdicts / acks).
    pub outbound_queue: usize,
    /// Behaviour on a full subscriber queue.
    pub slow_consumer: SlowConsumerPolicy,
    /// Pending-sequence window per chain in the assembler.
    pub assembly_window: usize,
    /// Whether to ack each accepted frame back to its producer.
    pub ack_frames: bool,
    /// Maximum live sessions (attached + parked). At the cap the oldest
    /// parked session is evicted; when every session is attached, new
    /// connections are rejected and counted.
    pub max_sessions: usize,
    /// How long a disconnected session stays parked and resumable.
    pub session_resume_window: Duration,
    /// Verdicts remembered per subscriber session for replay on resume.
    /// Overflow while parked sheds the oldest verdict and counts it
    /// ([`NetCounters::resume_overflow`]) — the resumed stream then has a
    /// gap the client can see.
    pub resume_buffer: usize,
    /// Simulated-time pricing of hub-frame ingest. **Single source of
    /// truth**: the gateway never re-derives bandwidth or stack-overhead
    /// constants from this model — it calls
    /// [`EthernetModel::frame_ingest_time`] exactly like the in-process
    /// pipeline does.
    pub eth: EthernetModel,
    /// Fleet membership (`None` = standalone gateway, the PR 5 behaviour).
    /// A fleet member redirects hub packets for chains it does not own,
    /// answers [`Msg::Route`] queries, heartbeats into the shared fleet
    /// state, gossips its session digest every
    /// [`FleetLink::gossip_interval`], and adopts sessions orphaned by a
    /// dead peer on `Resume`.
    pub fleet: Option<FleetLink>,
}

impl Default for GatewayConfig {
    fn default() -> Self {
        Self {
            outbound_queue: 256,
            slow_consumer: SlowConsumerPolicy::DropNewest,
            assembly_window: 64,
            ack_frames: true,
            max_sessions: 1024,
            session_resume_window: Duration::from_secs(30),
            resume_buffer: 1024,
            eth: EthernetModel::default(),
            fleet: None,
        }
    }
}

/// Everything the gateway knows at shutdown.
#[derive(Debug)]
pub struct GatewayReport {
    /// The inference engine's fleet report (per-shard stats + health).
    pub fleet: FleetReport,
    /// Transport counters.
    pub net: NetCounters,
    /// Verdict messages actually queued to subscribers.
    pub verdicts_sent: u64,
    /// Frame acks queued to producers.
    pub acks_sent: u64,
    /// Simulated ingest time of every assembled frame, priced by
    /// [`EthernetModel::frame_ingest_time`].
    pub sim_ingest: SimDuration,
    /// Rendered operator console (latency, trips, shard + network health
    /// lines); empty when no frame produced a verdict.
    pub console: String,
}

const READ_CHUNK: usize = 64 * 1024;
const READ_TIMEOUT: Duration = Duration::from_millis(25);
const ACCEPT_POLL: Duration = Duration::from_millis(5);
const HUB_POLL: Duration = Duration::from_millis(2);
const EVENT_QUEUE: usize = 64 * 1024;

enum Event {
    Attach {
        conn: u64,
        tx: SyncSender<Vec<u8>>,
        stream: TcpStream,
        writer: JoinHandle<()>,
    },
    Hello {
        conn: u64,
        role: Role,
    },
    Resume {
        conn: u64,
        session_id: u64,
        role: Role,
        acked: Vec<(u32, u32)>,
    },
    Packet {
        conn: u64,
        chain: u32,
        packet: reads_blm::hubs::HubPacket,
    },
    Route {
        conn: u64,
        chain: u32,
    },
    DecodeErr {
        conn: u64,
        fatal: bool,
    },
    ShutdownRequested,
    Closed {
        conn: u64,
    },
    /// Several events from one socket read, delivered in one channel
    /// wakeup (never nested).
    Batch(Vec<Event>),
}

struct ConnState {
    tx: SyncSender<Vec<u8>>,
    stream: TcpStream,
    writer: Option<JoinHandle<()>>,
    role: Role,
    /// Frames re-acked on this connection (replay dedupe: a frame
    /// replayed after a resume is acked at most once more, no matter how
    /// many of its seven hub packets land behind the watermark).
    reacked: HashSet<(u32, u32)>,
}

/// Server-side session: survives its TCP connection so a reconnecting
/// client can resume exactly where it left off.
struct Session {
    role: Role,
    /// Attached connection, `None` while parked.
    conn: Option<u64>,
    /// When the session parked (connection died); governs expiry.
    parked_at: Option<Instant>,
    /// Recent verdicts for replay on resume: `(chain, sequence, bytes)`.
    replay: VecDeque<(u32, u32, Vec<u8>)>,
    /// Highest verdict sequence ringed-or-sent per chain — the watermark
    /// this session gossips to fleet peers (subscribers only).
    delivered_high: HashMap<u32, u32>,
    /// Fan-out floor per chain for sessions adopted from a dead fleet
    /// peer: verdicts at or below the floor were provably delivered by
    /// the previous gateway (the client said so in its `Resume`), so the
    /// post-handoff re-run must not deliver them again. Empty for
    /// home-grown sessions.
    delivered_floor: HashMap<u32, u32>,
}

impl Session {
    fn fresh(role: Role, conn: u64) -> Self {
        Self {
            role,
            conn: Some(conn),
            parked_at: None,
            replay: VecDeque::new(),
            delivered_high: HashMap::new(),
            delivered_floor: HashMap::new(),
        }
    }
}

/// Connection registry + verdict fan-out + operational console: everything
/// the hub needs that is *not* the engine, so the shutdown path can keep
/// broadcasting after [`ShardedEngine::finish`] consumed the engine.
struct Switchboard {
    conns: HashMap<u64, ConnState>,
    /// Sessions by id — the unit of resumption.
    sessions: HashMap<u64, Session>,
    /// Attached connection → session id.
    conn_sessions: HashMap<u64, u64>,
    /// Accepted-and-acked frame sequences per chain (bounded), so a
    /// replayed frame behind the assembler watermark can be told apart
    /// from one that was evicted without ever completing.
    accepted: HashMap<u32, BTreeSet<u32>>,
    next_session: u64,
    counters: NetCounters,
    console: OperatorConsole,
    observed: u64,
    verdicts_sent: u64,
    acks_sent: u64,
}

/// Accepted-frame memory per chain. Large enough that a client replaying
/// a bounded unacked window can always be re-acked; old sequences age out
/// from the bottom.
const ACCEPTED_WINDOW: usize = 4096;
/// Re-ack dedupe entries kept per connection before the set resets.
const REACK_WINDOW: usize = 8192;

impl Switchboard {
    /// Abruptly severs a connection: the socket dies first, so a writer
    /// blocked on a slow peer unblocks with an error and drains. Used for
    /// fatal protocol violations, peer hangups and slow-consumer
    /// disconnects.
    fn drop_conn(&mut self, conn: u64) {
        if let Some(c) = self.conns.remove(&conn) {
            let _ = c.stream.shutdown(Shutdown::Both);
            drop(c.tx); // writer drains its queue and exits
            if let Some(w) = c.writer {
                let _ = w.join();
            }
        }
    }

    /// Parks the connection's session (resumable until the window
    /// expires), then severs the connection.
    fn park_conn(&mut self, conn: u64) {
        if let Some(sid) = self.conn_sessions.remove(&conn) {
            if let Some(s) = self.sessions.get_mut(&sid) {
                if s.conn == Some(conn) {
                    s.conn = None;
                    s.parked_at = Some(Instant::now());
                }
            }
        }
        self.drop_conn(conn);
    }

    /// Drops parked sessions whose resume window has expired.
    fn expire_sessions(&mut self, window: Duration) {
        self.sessions
            .retain(|_, s| s.parked_at.is_none_or(|t| t.elapsed() <= window));
    }

    /// Makes room for one more session. At the cap the oldest parked
    /// session is evicted; with every session attached there is no room.
    fn make_room(&mut self, max_sessions: usize) -> bool {
        if self.sessions.len() < max_sessions {
            return true;
        }
        let oldest = self
            .sessions
            .iter()
            .filter_map(|(&sid, s)| s.parked_at.map(|t| (t, sid)))
            .min()
            .map(|(_, sid)| sid);
        if let Some(sid) = oldest {
            self.sessions.remove(&sid);
        }
        self.sessions.len() < max_sessions
    }

    /// Opens a fresh session for `conn` and answers `Welcome`. At
    /// capacity the connection is rejected (dropped + counted) — the
    /// client sees EOF before any `Welcome`.
    fn bind_fresh_session(&mut self, conn: u64, role: Role, max_sessions: usize) {
        if !self.conns.contains_key(&conn) {
            return;
        }
        if !self.make_room(max_sessions) {
            self.counters.session_rejects += 1;
            self.drop_conn(conn);
            return;
        }
        self.next_session += 1;
        let sid = self.next_session;
        self.sessions.insert(sid, Session::fresh(role, conn));
        self.conn_sessions.insert(conn, sid);
        let c = self.conns.get_mut(&conn).expect("checked above");
        c.role = role;
        let _ = c.tx.try_send(encode_msg(&Msg::Welcome {
            session_id: sid,
            resumed: false,
        }));
    }

    /// Handles a `Resume`: rebinds the session when it is known, the role
    /// matches, and the park window has not expired — replaying to a
    /// subscriber every ringed verdict above the client's acked
    /// watermarks. Anything else falls back to a fresh session (counted),
    /// and the client learns from `Welcome { resumed: false }` that its
    /// history is gone.
    fn resume_session(
        &mut self,
        conn: u64,
        sid: u64,
        role: Role,
        acked: &[(u32, u32)],
        cfg: &GatewayConfig,
    ) {
        let resumable = self.sessions.get(&sid).is_some_and(|s| {
            s.role == role
                && s.parked_at
                    .is_none_or(|t| t.elapsed() <= cfg.session_resume_window)
        });
        if !resumable {
            // Fleet handoff: a session this gateway has never parked may
            // be orphaned by a dead peer — the gossip board decides.
            if self.try_import_session(conn, sid, role, acked, cfg) {
                return;
            }
            self.counters.resume_rejects += 1;
            self.bind_fresh_session(conn, role, cfg.max_sessions);
            return;
        }
        // The client may have reconnected before the old reader noticed
        // the cut: steal the session from the zombie connection.
        if let Some(old) = self.sessions.get(&sid).and_then(|s| s.conn) {
            if old != conn {
                self.conn_sessions.remove(&old);
                self.drop_conn(old);
            }
        }
        let Some(c) = self.conns.get_mut(&conn) else {
            return;
        };
        c.role = role;
        let session = self.sessions.get_mut(&sid).expect("checked above");
        session.conn = Some(conn);
        session.parked_at = None;
        self.conn_sessions.insert(conn, sid);
        self.counters.resumes += 1;
        let mut outbound = vec![encode_msg(&Msg::Welcome {
            session_id: sid,
            resumed: true,
        })];
        if role == Role::Subscriber {
            let watermark: HashMap<u32, u32> = acked.iter().copied().collect();
            outbound.extend(
                session
                    .replay
                    .iter()
                    .filter(|(chain, seq, _)| watermark.get(chain).is_none_or(|&high| *seq > high))
                    .map(|(_, _, bytes)| bytes.clone()),
            );
        }
        let mut sent = outbound.into_iter();
        let _ = c.tx.try_send(sent.next().expect("welcome"));
        let mut replayed = 0u64;
        for bytes in sent {
            if c.tx.try_send(bytes).is_ok() {
                replayed += 1;
            }
        }
        self.counters.replayed_verdicts += replayed;
        self.verdicts_sent += replayed;
    }

    /// Adopts a session orphaned by a dead fleet peer: the gossip board
    /// claims it, the claimant is dead, nobody alive claims it, and the
    /// roles match. The adopted session starts with an empty replay ring
    /// (the dead gateway's ring died with it); the client's own `Resume`
    /// watermarks become the fan-out floor, so the producer-side re-run
    /// delivers exactly the verdicts the client never saw. Returns `false`
    /// when this is not a handoff (caller falls back to a fresh session).
    fn try_import_session(
        &mut self,
        conn: u64,
        sid: u64,
        role: Role,
        acked: &[(u32, u32)],
        cfg: &GatewayConfig,
    ) -> bool {
        let Some(link) = &cfg.fleet else {
            return false;
        };
        if self.sessions.contains_key(&sid) || !self.conns.contains_key(&conn) {
            return false;
        }
        let claims = link.state.digest_claims(sid);
        // A claim by an *alive* member means the session lives elsewhere:
        // this is a misrouted resume, not a handoff.
        if claims.is_empty() || claims.iter().any(|(gw, _)| link.state.is_alive(*gw)) {
            return false;
        }
        let (dead_gw, stub) = claims.into_iter().next().expect("checked non-empty");
        if stub.role != role || !self.make_room(cfg.max_sessions) {
            return false;
        }
        link.state.retract_claim(dead_gw, sid);
        let mut session = Session::fresh(role, conn);
        session.delivered_high = stub.watermarks.iter().copied().collect();
        session.delivered_floor = acked.iter().copied().collect();
        self.sessions.insert(sid, session);
        self.conn_sessions.insert(conn, sid);
        self.counters.handoffs += 1;
        self.counters.resumes += 1;
        let c = self.conns.get_mut(&conn).expect("checked above");
        c.role = role;
        let _ = c.tx.try_send(encode_msg(&Msg::Welcome {
            session_id: sid,
            resumed: true,
        }));
        true
    }

    /// This gateway's gossiped session digest: every live session's role
    /// plus (for subscribers) its delivered-verdict watermarks.
    fn session_digest(&self) -> HashMap<u64, SessionStub> {
        self.sessions
            .iter()
            .map(|(&sid, s)| {
                (
                    sid,
                    SessionStub {
                        role: s.role,
                        watermarks: if s.role == Role::Subscriber {
                            s.delivered_high.iter().map(|(&c, &h)| (c, h)).collect()
                        } else {
                            Vec::new()
                        },
                    },
                )
            })
            .collect()
    }

    /// Remembers an accepted-and-acked frame so its replay can be
    /// re-acked.
    fn note_accepted(&mut self, chain: u32, sequence: u32) {
        let set = self.accepted.entry(chain).or_default();
        set.insert(sequence);
        while set.len() > ACCEPTED_WINDOW {
            set.pop_first();
        }
    }

    /// Re-acks a replayed frame that fell behind the assembler watermark
    /// — exactly once per connection, and only when the frame really was
    /// accepted (an evicted-incomplete frame stays unacked: that loss is
    /// visible to the client, as it must be).
    fn maybe_reack(&mut self, conn: u64, chain: u32, sequence: u32, ack_frames: bool) {
        if !ack_frames
            || !self
                .accepted
                .get(&chain)
                .is_some_and(|s| s.contains(&sequence))
        {
            return;
        }
        let Some(c) = self.conns.get_mut(&conn) else {
            return;
        };
        if c.reacked.len() > REACK_WINDOW {
            c.reacked.clear();
        }
        if !c.reacked.insert((chain, sequence)) {
            return;
        }
        if c.tx
            .try_send(encode_msg(&Msg::FrameAck { chain, sequence }))
            .is_ok()
        {
            self.acks_sent += 1;
            self.counters.replayed_frames += 1;
        }
    }

    /// Gracefully closes a connection: the writer first drains and flushes
    /// everything already queued (final verdicts, final acks), *then* the
    /// socket closes. Used at shutdown so accepted-and-acked work is never
    /// lost on the floor of an outbound queue.
    fn close_conn_graceful(&mut self, conn: u64) {
        if let Some(c) = self.conns.remove(&conn) {
            drop(c.tx); // channel closes → writer drains, flushes, exits
            if let Some(w) = c.writer {
                let _ = w.join();
            }
            let _ = c.stream.shutdown(Shutdown::Both);
        }
    }

    /// Sends every result to every subscriber session under the
    /// slow-consumer policy, rings it for resume replay, and feeds the
    /// console. A parked session accumulates verdicts in its ring; when
    /// the ring overflows while parked, the shed verdict is gone for good
    /// and counted.
    fn fan_out(&mut self, results: Vec<FrameResult>, policy: SlowConsumerPolicy, ring: usize) {
        for r in results {
            self.console.observe(&r.verdict, &r.timing);
            self.observed += 1;
            let bytes = encode_msg(&Msg::Verdict(VerdictMsg {
                chain: r.chain,
                verdict: r.verdict,
            }));
            let mut to_park: Vec<u64> = Vec::new();
            for s in self.sessions.values_mut() {
                if s.role != Role::Subscriber {
                    continue;
                }
                // Post-handoff duplicate suppression: the previous gateway
                // already delivered this verdict (the client's `Resume`
                // proved it), so the re-run's copy must not go out again.
                if s.delivered_floor
                    .get(&r.chain)
                    .is_some_and(|&floor| r.sequence <= floor)
                {
                    continue;
                }
                if s.replay.len() >= ring {
                    s.replay.pop_front();
                    if s.conn.is_none() {
                        self.counters.resume_overflow += 1;
                    }
                }
                s.replay.push_back((r.chain, r.sequence, bytes.clone()));
                let high = s.delivered_high.entry(r.chain).or_insert(r.sequence);
                *high = (*high).max(r.sequence);
                let Some(id) = s.conn else { continue };
                let Some(c) = self.conns.get(&id) else {
                    continue;
                };
                match c.tx.try_send(bytes.clone()) {
                    Ok(()) => self.verdicts_sent += 1,
                    Err(TrySendError::Full(_)) => match policy {
                        SlowConsumerPolicy::DropNewest => {
                            self.counters.slow_consumer_drops += 1;
                        }
                        SlowConsumerPolicy::Disconnect => {
                            self.counters.slow_consumer_disconnects += 1;
                            to_park.push(id);
                        }
                    },
                    Err(TrySendError::Disconnected(_)) => to_park.push(id),
                }
            }
            for id in to_park {
                self.park_conn(id);
            }
        }
    }

    /// Gracefully closes every remaining connection (drain → flush →
    /// close) and joins its writer.
    fn close_all(&mut self) {
        let ids: Vec<u64> = self.conns.keys().copied().collect();
        for id in ids {
            self.close_conn_graceful(id);
        }
    }

    fn publish(&self, shared: &Arc<Mutex<(NetCounters, u64)>>) {
        let mut guard = shared.lock().expect("counters lock");
        guard.0 = self.counters;
        guard.1 = self.conns.len() as u64;
    }
}

/// Constructor namespace for the gateway server.
pub struct HubGateway;

/// A running gateway. Always call [`GatewayHandle::shutdown`] — dropping
/// the handle without it leaks the server threads.
pub struct GatewayHandle {
    addr: SocketAddr,
    flag: Arc<AtomicBool>,
    kill: Arc<AtomicBool>,
    acceptor: Option<JoinHandle<()>>,
    readers: Arc<Mutex<Vec<JoinHandle<()>>>>,
    hub: Option<JoinHandle<()>>,
    report_rx: Receiver<GatewayReport>,
    shared: Arc<Mutex<(NetCounters, u64)>>,
}

impl HubGateway {
    /// Binds `addr` and starts serving the given engine. The engine's drop
    /// policy governs ingest backpressure (`Block` is lossless;
    /// `DropNewest` sheds and counts).
    ///
    /// # Errors
    /// Propagates socket bind/configure failures.
    ///
    /// # Panics
    /// Panics when `cfg.outbound_queue` is zero.
    pub fn start(
        addr: impl ToSocketAddrs,
        cfg: GatewayConfig,
        engine: ShardedEngine,
    ) -> std::io::Result<GatewayHandle> {
        Self::start_on(TcpListener::bind(addr)?, cfg, engine)
    }

    /// Starts serving on an already-bound listener. The fleet layer binds
    /// every member's listener *first* (so the shared
    /// [`FleetState`](crate::router::FleetState) can carry real addresses
    /// even with OS-assigned ports), then hands each listener here.
    ///
    /// # Errors
    /// Propagates socket configure failures.
    ///
    /// # Panics
    /// Panics when `cfg.outbound_queue` is zero.
    pub fn start_on(
        listener: TcpListener,
        cfg: GatewayConfig,
        engine: ShardedEngine,
    ) -> std::io::Result<GatewayHandle> {
        assert!(cfg.outbound_queue > 0, "outbound queue must be positive");
        listener.set_nonblocking(true)?;
        let local = listener.local_addr()?;
        let flag = Arc::new(AtomicBool::new(false));
        let kill = Arc::new(AtomicBool::new(false));
        let shared = Arc::new(Mutex::new((NetCounters::default(), 0u64)));
        let readers: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
        let (event_tx, event_rx) = mpsc::sync_channel::<Event>(EVENT_QUEUE);
        let (report_tx, report_rx) = mpsc::sync_channel::<GatewayReport>(1);

        let acceptor = {
            let flag = Arc::clone(&flag);
            let readers = Arc::clone(&readers);
            let event_tx = event_tx.clone();
            let queue = cfg.outbound_queue;
            thread::Builder::new()
                .name("reads-net-accept".into())
                .spawn(move || accept_loop(&listener, &flag, &readers, &event_tx, queue))
                .expect("spawn acceptor")
        };
        // The hub must see Disconnected once the acceptor and every reader
        // are gone, so the constructor's copy dies here.
        drop(event_tx);

        let hub = {
            let flag = Arc::clone(&flag);
            let kill = Arc::clone(&kill);
            let shared = Arc::clone(&shared);
            thread::Builder::new()
                .name("reads-net-hub".into())
                .spawn(move || {
                    let report = hub_loop(&cfg, local, engine, &event_rx, &flag, &kill, &shared);
                    let _ = report_tx.send(report);
                })
                .expect("spawn hub")
        };

        Ok(GatewayHandle {
            addr: local,
            flag,
            kill,
            acceptor: Some(acceptor),
            readers,
            hub: Some(hub),
            report_rx,
            shared,
        })
    }
}

impl GatewayHandle {
    /// The bound address (useful with port 0).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shutdown flag — store `true` (e.g. from a ctrl-c handler) to
    /// begin a graceful drain, then call [`GatewayHandle::shutdown`] to
    /// join and collect the report.
    #[must_use]
    pub fn shutdown_flag(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.flag)
    }

    /// Whether a shutdown has been requested (externally or by a wire
    /// [`Msg::Shutdown`]).
    #[must_use]
    pub fn shutdown_requested(&self) -> bool {
        self.flag.load(Ordering::SeqCst)
    }

    /// Snapshot of the transport counters.
    #[must_use]
    pub fn counters(&self) -> NetCounters {
        self.shared.lock().expect("counters lock").0
    }

    /// Live sessions right now.
    #[must_use]
    pub fn sessions(&self) -> u64 {
        self.shared.lock().expect("counters lock").1
    }

    /// Graceful shutdown: stop accepting, drain in-flight frames through
    /// the engine, flush remaining verdicts, join every thread, and return
    /// the final report.
    ///
    /// # Panics
    /// Panics if a gateway thread panicked.
    #[must_use]
    pub fn shutdown(mut self) -> GatewayReport {
        self.flag.store(true, Ordering::SeqCst);
        if let Some(a) = self.acceptor.take() {
            a.join().expect("acceptor panicked");
        }
        // No new readers can spawn now; join the existing ones. Their
        // event senders drop here, which is what lets the hub finalize.
        let readers: Vec<JoinHandle<()>> =
            std::mem::take(&mut *self.readers.lock().expect("readers lock"));
        for r in readers {
            r.join().expect("reader panicked");
        }
        let report = self.report_rx.recv().expect("hub report");
        if let Some(h) = self.hub.take() {
            h.join().expect("hub panicked");
        }
        report
    }

    /// SIGKILL-equivalent death: every socket is severed abruptly (no
    /// drain, no flush, no goodbye), in-flight engine results are
    /// discarded, and clients learn only from the TCP reset — exactly what
    /// a killed process looks like from outside. The fleet supervisor
    /// notices the stopped heartbeat; peers adopt the orphaned sessions
    /// from gossip. The threads themselves are still joined (they are this
    /// process's threads — the kill is wire-visible, not UB) and a report
    /// is returned for accounting, but nothing in it reached any client.
    ///
    /// # Panics
    /// Panics if a gateway thread panicked.
    #[must_use]
    pub fn kill(mut self) -> GatewayReport {
        self.kill.store(true, Ordering::SeqCst);
        self.flag.store(true, Ordering::SeqCst);
        if let Some(a) = self.acceptor.take() {
            a.join().expect("acceptor panicked");
        }
        let readers: Vec<JoinHandle<()>> =
            std::mem::take(&mut *self.readers.lock().expect("readers lock"));
        for r in readers {
            r.join().expect("reader panicked");
        }
        let report = self.report_rx.recv().expect("hub report");
        if let Some(h) = self.hub.take() {
            h.join().expect("hub panicked");
        }
        report
    }
}

fn accept_loop(
    listener: &TcpListener,
    flag: &Arc<AtomicBool>,
    readers: &Arc<Mutex<Vec<JoinHandle<()>>>>,
    event_tx: &SyncSender<Event>,
    outbound_queue: usize,
) {
    let mut next_conn = 0u64;
    while !flag.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                next_conn += 1;
                let conn = next_conn;
                let _ = stream.set_nodelay(true);
                let _ = stream.set_read_timeout(Some(READ_TIMEOUT));
                let _ = stream.set_write_timeout(Some(Duration::from_secs(5)));
                let (Ok(write_half), Ok(ctrl_half)) = (stream.try_clone(), stream.try_clone())
                else {
                    continue;
                };
                let (tx, rx) = mpsc::sync_channel::<Vec<u8>>(outbound_queue);
                let writer = thread::Builder::new()
                    .name(format!("reads-net-w{conn}"))
                    .spawn(move || writer_loop(write_half, &rx))
                    .expect("spawn writer");
                if event_tx
                    .send(Event::Attach {
                        conn,
                        tx,
                        stream: ctrl_half,
                        writer,
                    })
                    .is_err()
                {
                    return; // hub gone — shutting down
                }
                let reader = {
                    let event_tx = event_tx.clone();
                    let flag = Arc::clone(flag);
                    thread::Builder::new()
                        .name(format!("reads-net-r{conn}"))
                        .spawn(move || reader_loop(conn, stream, &event_tx, &flag))
                        .expect("spawn reader")
                };
                readers.lock().expect("readers lock").push(reader);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                thread::sleep(ACCEPT_POLL);
            }
            Err(_) => thread::sleep(ACCEPT_POLL),
        }
    }
}

fn reader_loop(
    conn: u64,
    mut stream: TcpStream,
    event_tx: &SyncSender<Event>,
    flag: &Arc<AtomicBool>,
) {
    let mut decoder = FrameDecoder::new();
    let mut chunk = [0u8; READ_CHUNK];
    // Only a *peer*-initiated end (EOF, socket error, fatal protocol
    // violation) reports `Closed` to the hub: a flag-driven shutdown exit
    // must leave the connection registered so the finalize path can still
    // drain its last verdicts/acks through the graceful close.
    let mut peer_gone = false;
    'outer: while !flag.load(Ordering::SeqCst) {
        let n = match stream.read(&mut chunk) {
            Ok(0) => {
                peer_gone = true;
                break; // EOF
            }
            Ok(n) => n,
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                continue;
            }
            Err(_) => {
                peer_gone = true;
                break;
            }
        };
        decoder.push(&chunk[..n]);
        // Decode everything this read delivered and ship it as ONE event:
        // a channel wakeup per hub packet would cost a context switch each
        // at serving rates.
        let mut batch: Vec<Event> = Vec::new();
        let mut fatal_err = false;
        loop {
            match decoder.next_msg() {
                Ok(Some(msg)) => batch.push(match msg {
                    Msg::Hello { role } => Event::Hello { conn, role },
                    Msg::HubData { chain, packet } => Event::Packet {
                        conn,
                        chain,
                        packet,
                    },
                    Msg::Shutdown => Event::ShutdownRequested,
                    Msg::Resume {
                        session_id,
                        role,
                        acked,
                    } => Event::Resume {
                        conn,
                        session_id,
                        role,
                        acked,
                    },
                    Msg::Route { chain } => Event::Route { conn, chain },
                    // Server-to-client kinds arriving at the server are
                    // protocol violations, not transport corruption.
                    Msg::FrameAck { .. }
                    | Msg::Verdict(_)
                    | Msg::Welcome { .. }
                    | Msg::Redirect { .. } => Event::DecodeErr { conn, fatal: false },
                }),
                Ok(None) => break,
                Err(e) => {
                    // An adversarial length field is the one error worth a
                    // disconnect: it signals a peer probing the buffer
                    // bounds, and resync past it cannot be trusted.
                    let fatal = matches!(e, WireError::Oversized(_));
                    batch.push(Event::DecodeErr { conn, fatal });
                    if fatal {
                        fatal_err = true;
                        break;
                    }
                }
            }
        }
        let send_failed = match batch.len() {
            0 => false,
            1 => event_tx.send(batch.pop().expect("len 1")).is_err(),
            _ => event_tx.send(Event::Batch(batch)).is_err(),
        };
        if fatal_err {
            peer_gone = true;
        }
        if send_failed || fatal_err {
            break 'outer;
        }
    }
    if peer_gone {
        let _ = event_tx.send(Event::Closed { conn });
    }
}

fn writer_loop(mut stream: TcpStream, rx: &Receiver<Vec<u8>>) {
    // Coalesce whatever is queued into one write: at verdict rates a
    // wakeup per message would cost a syscall + context switch each.
    let mut burst: Vec<u8> = Vec::new();
    while let Ok(first) = rx.recv() {
        burst.clear();
        burst.extend_from_slice(&first);
        while burst.len() < 256 * 1024 {
            match rx.try_recv() {
                Ok(more) => burst.extend_from_slice(&more),
                Err(_) => break,
            }
        }
        if stream.write_all(&burst).is_err() {
            // Socket dead: drain the queue so senders never block on a
            // corpse, then exit when the channel closes.
            while rx.recv().is_ok() {}
            break;
        }
    }
    let _ = stream.flush();
}

fn hub_loop(
    cfg: &GatewayConfig,
    local: SocketAddr,
    mut engine: ShardedEngine,
    events: &Receiver<Event>,
    flag: &Arc<AtomicBool>,
    kill: &Arc<AtomicBool>,
    shared: &Arc<Mutex<(NetCounters, u64)>>,
) -> GatewayReport {
    let mut board = Switchboard {
        conns: HashMap::new(),
        sessions: HashMap::new(),
        conn_sessions: HashMap::new(),
        accepted: HashMap::new(),
        // Fleet members mint session ids in a per-gateway namespace
        // (top bits), so an adopted session can never collide with one
        // minted here.
        next_session: cfg
            .fleet
            .as_ref()
            .map_or(0, |l| (u64::from(l.gateway_id) + 1) << 40),
        counters: NetCounters::default(),
        console: OperatorConsole::new(TRIP_THRESHOLD, 3.0),
        observed: 0,
        verdicts_sent: 0,
        acks_sent: 0,
    };
    let mut assembler = FrameAssembler::new(cfg.assembly_window);
    let mut sim_ingest = SimDuration::ZERO;

    #[allow(clippy::too_many_arguments)]
    fn handle_event(
        ev: Event,
        cfg: &GatewayConfig,
        local: SocketAddr,
        flag: &AtomicBool,
        board: &mut Switchboard,
        assembler: &mut FrameAssembler,
        engine: &mut ShardedEngine,
        sim_ingest: &mut SimDuration,
    ) {
        match ev {
            Event::Attach {
                conn,
                tx,
                stream,
                writer,
            } => {
                board.counters.connections += 1;
                board.conns.insert(
                    conn,
                    ConnState {
                        tx,
                        stream,
                        writer: Some(writer),
                        role: Role::Producer,
                        reacked: HashSet::new(),
                    },
                );
            }
            Event::Hello { conn, role } => {
                board.counters.messages += 1;
                board.bind_fresh_session(conn, role, cfg.max_sessions);
            }
            Event::Resume {
                conn,
                session_id,
                role,
                acked,
            } => {
                board.counters.messages += 1;
                board.resume_session(conn, session_id, role, &acked, cfg);
            }
            Event::Route { conn, chain } => {
                board.counters.messages += 1;
                board.counters.redirects += 1;
                let (gateway_id, addr) = match &cfg.fleet {
                    Some(link) => match link.state.owner_of(chain) {
                        Some(owner) => (owner, link.state.addr_of(owner).to_string()),
                        // Whole fleet marked dead (we are evidently not):
                        // answer with ourselves rather than nothing.
                        None => (link.gateway_id, local.to_string()),
                    },
                    None => (0, local.to_string()),
                };
                if let Some(c) = board.conns.get(&conn) {
                    let _ = c.tx.try_send(encode_msg(&Msg::Redirect {
                        chain,
                        gateway_id,
                        addr,
                    }));
                }
            }
            Event::Packet {
                conn,
                chain,
                packet,
            } => {
                board.counters.messages += 1;
                // Fleet placement check: a hub packet for a chain owned by
                // a living peer bounces back as a `Redirect` instead of
                // being assembled here — lazy placement discovery, not an
                // error.
                if let Some(link) = &cfg.fleet {
                    if let Some(owner) = link.state.owner_of(chain) {
                        if owner != link.gateway_id {
                            board.counters.redirects += 1;
                            if let Some(c) = board.conns.get(&conn) {
                                let _ = c.tx.try_send(encode_msg(&Msg::Redirect {
                                    chain,
                                    gateway_id: owner,
                                    addr: link.state.addr_of(owner).to_string(),
                                }));
                            }
                            return;
                        }
                    }
                }
                let sequence = packet.sequence;
                match assembler.offer(chain, packet, &mut board.counters) {
                    Offer::Complete(frame) => {
                        // Price the frame's ingest in simulated time with
                        // the canonical Ethernet model — never a local
                        // copy of its constants.
                        let payloads: Vec<usize> =
                            frame.packets.iter().map(HubPacket::encoded_len).collect();
                        *sim_ingest += cfg.eth.frame_ingest_time(&payloads);
                        let sequence = frame.sequence;
                        if engine.submit(frame) {
                            board.counters.frames_accepted += 1;
                            if cfg.ack_frames {
                                board.note_accepted(chain, sequence);
                                if let Some(c) = board.conns.get(&conn) {
                                    let ack = encode_msg(&Msg::FrameAck { chain, sequence });
                                    if c.tx.try_send(ack).is_ok() {
                                        board.acks_sent += 1;
                                    }
                                }
                            }
                        } else {
                            board.counters.backpressure_drops += 1;
                        }
                    }
                    // A packet behind the watermark is (usually) a frame
                    // replayed after a resume: re-ack it so the client's
                    // replay buffer drains.
                    Offer::Stale => board.maybe_reack(conn, chain, sequence, cfg.ack_frames),
                    Offer::Merged | Offer::Duplicate | Offer::BadHub => {}
                }
            }
            Event::DecodeErr { conn, fatal } => {
                board.counters.decode_errors += 1;
                if fatal {
                    // The connection cannot be trusted past an adversarial
                    // length field, but its *session* can park: chaos-level
                    // byte corruption hits length fields too, and the
                    // client deserves a resume path.
                    board.park_conn(conn);
                }
            }
            Event::ShutdownRequested => {
                board.counters.messages += 1;
                flag.store(true, Ordering::SeqCst);
            }
            Event::Closed { conn } => {
                board.counters.disconnects += 1;
                board.park_conn(conn);
            }
            Event::Batch(evs) => {
                for e in evs {
                    handle_event(e, cfg, local, flag, board, assembler, engine, sim_ingest);
                }
            }
        }
    }

    let mut last_gossip = Instant::now();
    loop {
        // SIGKILL-equivalent: stop mid-everything, events still queued.
        if kill.load(Ordering::SeqCst) {
            break;
        }
        match events.recv_timeout(HUB_POLL) {
            Ok(ev) => {
                handle_event(
                    ev,
                    cfg,
                    local,
                    flag,
                    &mut board,
                    &mut assembler,
                    &mut engine,
                    &mut sim_ingest,
                );
                // Drain a bounded burst before looking at results again.
                for _ in 0..256 {
                    match events.try_recv() {
                        Ok(ev) => handle_event(
                            ev,
                            cfg,
                            local,
                            flag,
                            &mut board,
                            &mut assembler,
                            &mut engine,
                            &mut sim_ingest,
                        ),
                        Err(_) => break,
                    }
                }
            }
            Err(mpsc::RecvTimeoutError::Timeout) => {}
            // Every producer of events (acceptor + readers) is gone and
            // the queue is fully drained: time to finalize.
            Err(mpsc::RecvTimeoutError::Disconnected) => break,
        }
        let results = engine.poll_results();
        board.fan_out(results, cfg.slow_consumer, cfg.resume_buffer);
        board.expire_sessions(cfg.session_resume_window);
        board.publish(shared);
        if let Some(link) = &cfg.fleet {
            // Liveness is "this loop is turning", not "the process
            // exists" — a wedged hub is as dead as a killed one.
            link.state.beat(link.gateway_id);
            if last_gossip.elapsed() >= link.gossip_interval {
                last_gossip = Instant::now();
                link.state
                    .publish_digest(link.gateway_id, board.session_digest());
            }
        }
    }

    if kill.load(Ordering::SeqCst) {
        // Abrupt death: sever every socket (no drain, no flush — clients
        // see a reset mid-stream), then silently discard whatever the
        // engine still owes. The producer-side acked-frame retention plus
        // the fleet handoff path are what make this survivable.
        let ids: Vec<u64> = board.conns.keys().copied().collect();
        for id in ids {
            board.drop_conn(id);
        }
        let (_discarded, fleet) = engine.finish();
        board.publish(shared);
        return GatewayReport {
            fleet,
            net: board.counters,
            verdicts_sent: board.verdicts_sent,
            acks_sent: board.acks_sent,
            sim_ingest,
            console: String::new(),
        };
    }

    // Finalize: the engine drains its queues (Block policy loses nothing),
    // remaining verdicts go out, writers flush, everything joins.
    let (remaining, fleet) = engine.finish();
    board.fan_out(remaining, cfg.slow_consumer, cfg.resume_buffer);
    board.close_all();

    let mut console_render = String::new();
    if board.observed > 0 {
        for s in &fleet.shards {
            board
                .console
                .observe_shard_health(s.shard, s.health, &s.counters, s.processed, s.lost);
            if let Some(m) = s.kernel_mix {
                board.console.observe_kernel_mix(m);
            }
        }
        board.console.observe_net_health(0, &board.counters);
        console_render = board.console.render();
    }
    board.publish(shared);
    GatewayReport {
        fleet,
        net: board.counters,
        verdicts_sent: board.verdicts_sent,
        acks_sent: board.acks_sent,
        sim_ingest,
        console: console_render,
    }
}
