//! The TCP hub gateway: a real serving plane in front of the sharded
//! inference engine.
//!
//! Topology (all `std` threads, no async runtime, no thread-per-connection):
//!
//! ```text
//!  producers ──TCP──▶ ┌────────────────┐ ──events──▶ hub thread ──▶ ShardedEngine
//!                     │ reactor threads│               │  ▲              │
//!  subscribers ◀──TCP─│ (epoll/poll)   │ ◀─rings+wake──┘  └──verdicts────┘
//!                     └────────────────┘
//! ```
//!
//! * **Reactor threads** (`--reactors N`, default 1) own every socket,
//!   nonblocking, registered in a [`Poller`] for read/write interest.
//!   Each connection is a small state machine (handshake → streaming →
//!   draining) feeding the panic-free incremental
//!   [`FrameDecoder`](crate::wire::FrameDecoder); well-formed messages
//!   flow to the hub thread over a bounded event channel (TCP
//!   backpressure propagates naturally when the hub falls behind).
//! * The **hub thread** owns the [`FrameAssembler`], the
//!   [`ShardedEngine`], and the [`NetCounters`]: completed chain frames
//!   are priced in simulated time with
//!   [`EthernetModel::frame_ingest_time`] (the *same* model the
//!   in-process pipeline uses — no duplicated bandwidth constants),
//!   submitted to the engine, and acked back to the producer that
//!   completed them.
//! * Verdicts stream back through a bounded per-connection
//!   [`Outbound`] ring drained by the owning reactor with vectored
//!   writes — fan-out is *enqueue + write-interest*, the payload encoded
//!   once and shared as `Arc<[u8]>` across every subscriber (and every
//!   replay ring). A full ring invokes the explicit slow-consumer
//!   policy: [`SlowConsumerPolicy::DropNewest`] sheds the verdict and
//!   counts it; [`SlowConsumerPolicy::Disconnect`] drops the subscriber
//!   (and trips the network health ladder — an operator must notice).
//! * **Graceful shutdown** ([`GatewayHandle::shutdown`], a wire-level
//!   [`Msg::Shutdown`], or an external flag such as ctrl-c) stops
//!   accepts and reads, drains every in-flight event, finishes the
//!   engine, flushes remaining verdicts through the reactors' draining
//!   phase, joins every thread, and returns a [`GatewayReport`] — no
//!   accepted-and-acked frame is ever lost.
//! * **Session resumption**: every `Hello` opens a server-side session
//!   and answers [`Msg::Welcome`] with its id. When a connection dies the
//!   session *parks* for [`GatewayConfig::session_resume_window`]; a
//!   client reconnecting with [`Msg::Resume`] rebinds it, gets verdicts
//!   it never saw replayed from a bounded per-session ring, and replayed
//!   producer frames behind the assembler watermark are re-acked exactly
//!   once per connection — so a resumed stream is idempotent and its
//!   verdicts stay bit-identical to an uninterrupted run.

use crate::assembler::{FrameAssembler, Offer};
use crate::reactor::{
    fd_of, is_would_block, retry_intr, BufPool, Interest, Outbound, Poller, PushError, Ready,
    WakeRx, Waker,
};
use crate::router::{FleetLink, SessionStub};
use crate::wire::{encode_msg, FrameDecoder, Msg, Role, VerdictMsg, WireError};
use reads_blm::hubs::HubPacket;
use reads_core::adapt::AdaptObserver;
use reads_core::console::{AdaptConsoleLine, OperatorConsole, TenantConsoleLine};
use reads_core::engine::{FleetReport, FrameResult, ShardedEngine};
use reads_core::resilience::NetCounters;
use reads_core::system::TRIP_THRESHOLD;
use reads_sim::SimDuration;
use reads_soc::eth::EthernetModel;
use std::collections::{BTreeSet, HashMap, HashSet, VecDeque};
use std::io::Read;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{self, Receiver, Sender, SyncSender};
use std::sync::{Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

/// What to do when a subscriber's outbound queue is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SlowConsumerPolicy {
    /// Drop the verdict for that subscriber and count it.
    DropNewest,
    /// Disconnect the subscriber (trips network health).
    Disconnect,
}

/// Gateway sizing and policy.
#[derive(Debug, Clone)]
pub struct GatewayConfig {
    /// Outbound queue depth per connection (verdicts / acks), in
    /// messages.
    pub outbound_queue: usize,
    /// Behaviour on a full subscriber queue.
    pub slow_consumer: SlowConsumerPolicy,
    /// Pending-sequence window per chain in the assembler.
    pub assembly_window: usize,
    /// Whether to ack each accepted frame back to its producer.
    pub ack_frames: bool,
    /// Maximum live sessions (attached + parked). At the cap the oldest
    /// parked session is evicted; when every session is attached, new
    /// connections are rejected and counted.
    pub max_sessions: usize,
    /// How long a disconnected session stays parked and resumable.
    pub session_resume_window: Duration,
    /// Verdicts remembered per subscriber session for replay on resume.
    /// Overflow while parked sheds the oldest verdict and counts it
    /// ([`NetCounters::resume_overflow`]) — the resumed stream then has a
    /// gap the client can see.
    pub resume_buffer: usize,
    /// Reactor (event-loop) threads owning the sockets. Clamped to
    /// `1..=`[`MAX_REACTORS`]; one reactor drives tens of thousands of
    /// idle-ish sessions, more spread the read/write work per core.
    pub reactors: usize,
    /// Simulated-time pricing of hub-frame ingest. **Single source of
    /// truth**: the gateway never re-derives bandwidth or stack-overhead
    /// constants from this model — it calls
    /// [`EthernetModel::frame_ingest_time`] exactly like the in-process
    /// pipeline does.
    pub eth: EthernetModel,
    /// Fleet membership (`None` = standalone gateway, the PR 5 behaviour).
    /// A fleet member redirects hub packets for chains it does not own,
    /// answers [`Msg::Route`] queries, heartbeats into the shared fleet
    /// state, gossips its session digest every
    /// [`FleetLink::gossip_interval`], and adopts sessions orphaned by a
    /// dead peer on `Resume`.
    pub fleet: Option<FleetLink>,
    /// Read-only handle onto an online-adaptation loop running next to
    /// this gateway's engine (`None` = no adaptation). At shutdown the
    /// loop's counters fold into [`NetCounters`] and its state becomes
    /// the console's `adapt` line, so fleet roll-ups see retrains,
    /// promotions and rollbacks without double-counting.
    pub adapt: Option<AdaptObserver>,
}

impl Default for GatewayConfig {
    fn default() -> Self {
        Self {
            outbound_queue: 256,
            slow_consumer: SlowConsumerPolicy::DropNewest,
            assembly_window: 64,
            ack_frames: true,
            max_sessions: 1024,
            session_resume_window: Duration::from_secs(30),
            resume_buffer: 1024,
            reactors: 1,
            eth: EthernetModel::default(),
            fleet: None,
            adapt: None,
        }
    }
}

/// Everything the gateway knows at shutdown.
#[derive(Debug)]
pub struct GatewayReport {
    /// The inference engine's fleet report (per-shard stats + health).
    pub fleet: FleetReport,
    /// Transport counters.
    pub net: NetCounters,
    /// Verdict messages actually queued to subscribers.
    pub verdicts_sent: u64,
    /// Frame acks queued to producers.
    pub acks_sent: u64,
    /// Simulated ingest time of every assembled frame, priced by
    /// [`EthernetModel::frame_ingest_time`].
    pub sim_ingest: SimDuration,
    /// Rendered operator console (latency, trips, shard + network health
    /// lines); empty when no frame produced a verdict.
    pub console: String,
}

/// Upper bound on [`GatewayConfig::reactors`] — beyond this the hub
/// thread, not socket I/O, is the bottleneck.
pub const MAX_REACTORS: usize = 64;

const READ_CHUNK: usize = 64 * 1024;
const HUB_POLL: Duration = Duration::from_millis(2);
const EVENT_QUEUE: usize = 64 * 1024;
/// Idle park time in the poller — bounds how late a reactor notices the
/// shutdown/kill flags when nobody wakes it explicitly.
const REACTOR_PARK: Duration = Duration::from_millis(25);
/// Accepts per listener wakeup before yielding to other fds.
const ACCEPT_BURST: usize = 512;
/// Backoff after a non-would-block accept error (EMFILE storm): the
/// listener stays level-triggered readable, so without a pause the
/// reactor would spin at 100% while the fd table is exhausted.
const ACCEPT_ERR_BACKOFF: Duration = Duration::from_millis(5);
/// Bytes read from one connection per wakeup before yielding (fairness —
/// a firehose producer must not starve 50k subscribers on the same
/// reactor).
const READ_FAIR_BUDGET: usize = 4 * READ_CHUNK;
/// How long the draining phase keeps flushing at shutdown before
/// severing what remains (was the writer threads' write timeout).
const DRAIN_DEADLINE: Duration = Duration::from_secs(5);
/// Parked-session expiry is a full scan; at storm scale it cannot run
/// every 2 ms hub tick.
const EXPIRE_EVERY: Duration = Duration::from_millis(250);

const TOKEN_WAKER: u64 = u64::MAX;
const TOKEN_LISTENER: u64 = u64::MAX - 1;

enum Event {
    Attach {
        conn: u64,
        out: Arc<Outbound>,
        reactor: usize,
    },
    Hello {
        conn: u64,
        role: Role,
    },
    Resume {
        conn: u64,
        session_id: u64,
        role: Role,
        acked: Vec<(u32, u32)>,
    },
    Packet {
        conn: u64,
        chain: u32,
        packet: reads_blm::hubs::HubPacket,
    },
    Route {
        conn: u64,
        chain: u32,
    },
    TenantSelect {
        conn: u64,
        tenant: u32,
    },
    DecodeErr {
        conn: u64,
        fatal: bool,
    },
    ShutdownRequested,
    Closed {
        conn: u64,
    },
    /// Several events from one socket read, delivered in one channel
    /// wakeup (never nested).
    Batch(Vec<Event>),
}

/// Hub-side view of a connection: where its socket lives (which
/// reactor) and how to enqueue bytes to it.
struct ConnState {
    out: Arc<Outbound>,
    reactor: usize,
    role: Role,
    /// Frames re-acked on this connection (replay dedupe: a frame
    /// replayed after a resume is acked at most once more, no matter how
    /// many of its seven hub packets land behind the watermark).
    reacked: HashSet<(u32, u32)>,
}

/// Server-side session: survives its TCP connection so a reconnecting
/// client can resume exactly where it left off.
struct Session {
    role: Role,
    /// Registry tenant this session is bound to. Starts at the default
    /// tenant (`0`), so sessions that never send [`Msg::TenantSelect`]
    /// see the single-model protocol unchanged; survives parking, so a
    /// resumed session keeps its tenant.
    tenant: u32,
    /// Attached connection, `None` while parked.
    conn: Option<u64>,
    /// When the session parked (connection died); governs expiry.
    parked_at: Option<Instant>,
    /// Recent verdicts for replay on resume: `(chain, sequence, bytes)`.
    /// The bytes are the *same* `Arc` the fan-out queued — a verdict
    /// ringed by 50k sessions is one allocation, not 50k.
    replay: VecDeque<(u32, u32, Arc<[u8]>)>,
    /// Highest verdict sequence ringed-or-sent per chain — the watermark
    /// this session gossips to fleet peers (subscribers only).
    delivered_high: HashMap<u32, u32>,
    /// Fan-out floor per chain for sessions adopted from a dead fleet
    /// peer: verdicts at or below the floor were provably delivered by
    /// the previous gateway (the client said so in its `Resume`), so the
    /// post-handoff re-run must not deliver them again. Empty for
    /// home-grown sessions.
    delivered_floor: HashMap<u32, u32>,
}

impl Session {
    fn fresh(role: Role, conn: u64) -> Self {
        Self {
            role,
            tenant: 0,
            conn: Some(conn),
            parked_at: None,
            replay: VecDeque::new(),
            delivered_high: HashMap::new(),
            delivered_floor: HashMap::new(),
        }
    }
}

/// Hub → reactor control messages. Paired with a [`Waker`] nudge so a
/// parked reactor handles them promptly.
enum ReactorCmd {
    /// Take ownership of a freshly accepted socket (cross-reactor
    /// handoff from the accepting reactor).
    Adopt {
        conn: u64,
        stream: TcpStream,
        out: Arc<Outbound>,
    },
    /// Sever one connection now (hub-initiated: slow-consumer
    /// disconnect, zombie steal, session reject, fatal protocol error).
    Close { conn: u64 },
    /// Graceful exit: flush every ring (bounded by [`DRAIN_DEADLINE`]),
    /// then close sockets and return.
    DrainAllThenExit,
    /// SIGKILL-equivalent exit: sever everything unflushed and return.
    SeverAllThenExit,
}

/// The hub-visible half of one reactor: its command inbox, its dirty
/// list (connections owing a flush), and its waker.
struct ReactorShared {
    dirty: Mutex<Vec<u64>>,
    waker: Waker,
}

#[derive(Clone)]
struct ReactorPort {
    cmd_tx: Sender<ReactorCmd>,
    shared: Arc<ReactorShared>,
}

impl ReactorPort {
    /// Tells the reactor that `conn` has newly queued outbound bytes.
    /// Callers gate on [`Outbound::mark_dirty`], so fan-out to 50k
    /// connections wakes each reactor once, not 50k times.
    fn notify_dirty(&self, conn: u64) {
        self.shared.dirty.lock().expect("dirty lock").push(conn);
        self.shared.waker.wake();
    }

    fn send(&self, cmd: ReactorCmd) {
        let _ = self.cmd_tx.send(cmd);
        self.shared.waker.wake();
    }
}

/// Connection registry + verdict fan-out + operational console: everything
/// the hub needs that is *not* the engine, so the shutdown path can keep
/// broadcasting after [`ShardedEngine::finish`] consumed the engine.
struct Switchboard {
    conns: HashMap<u64, ConnState>,
    /// Sessions by id — the unit of resumption.
    sessions: HashMap<u64, Session>,
    /// Attached connection → session id.
    conn_sessions: HashMap<u64, u64>,
    /// Accepted-and-acked frame sequences per chain (bounded), so a
    /// replayed frame behind the assembler watermark can be told apart
    /// from one that was evicted without ever completing.
    accepted: HashMap<u32, BTreeSet<u32>>,
    ports: Vec<ReactorPort>,
    next_session: u64,
    counters: NetCounters,
    console: OperatorConsole,
    observed: u64,
    verdicts_sent: u64,
    acks_sent: u64,
}

/// Accepted-frame memory per chain. Large enough that a client replaying
/// a bounded unacked window can always be re-acked; old sequences age out
/// from the bottom.
const ACCEPTED_WINDOW: usize = 4096;
/// Re-ack dedupe entries kept per connection before the set resets.
const REACK_WINDOW: usize = 8192;

impl Switchboard {
    /// Enqueues a small control message (welcome, ack, redirect) to a
    /// connection and nudges its reactor. Best-effort, like the old
    /// bounded-channel `try_send`: a full or dead ring drops the message.
    fn send_small(&mut self, conn: u64, bytes: &[u8]) -> bool {
        let Some(c) = self.conns.get(&conn) else {
            return false;
        };
        if c.out.push_small(bytes).is_err() {
            return false;
        }
        if c.out.mark_dirty() {
            self.ports[c.reactor].notify_dirty(conn);
        }
        true
    }

    /// Severs a connection: marks its ring closed (pushes fail from now
    /// on) and tells the owning reactor to shut the socket down. Used for
    /// fatal protocol violations, peer hangups and slow-consumer
    /// disconnects.
    fn drop_conn(&mut self, conn: u64) {
        if let Some(c) = self.conns.remove(&conn) {
            c.out.mark_closed();
            self.ports[c.reactor].send(ReactorCmd::Close { conn });
        }
    }

    /// Parks the connection's session (resumable until the window
    /// expires), then severs the connection.
    fn park_conn(&mut self, conn: u64) {
        if let Some(sid) = self.conn_sessions.remove(&conn) {
            if let Some(s) = self.sessions.get_mut(&sid) {
                if s.conn == Some(conn) {
                    s.conn = None;
                    s.parked_at = Some(Instant::now());
                }
            }
        }
        self.drop_conn(conn);
    }

    /// Drops parked sessions whose resume window has expired.
    fn expire_sessions(&mut self, window: Duration) {
        self.sessions
            .retain(|_, s| s.parked_at.is_none_or(|t| t.elapsed() <= window));
    }

    /// Makes room for one more session. At the cap the oldest parked
    /// session is evicted; with every session attached there is no room.
    fn make_room(&mut self, max_sessions: usize) -> bool {
        if self.sessions.len() < max_sessions {
            return true;
        }
        let oldest = self
            .sessions
            .iter()
            .filter_map(|(&sid, s)| s.parked_at.map(|t| (t, sid)))
            .min()
            .map(|(_, sid)| sid);
        if let Some(sid) = oldest {
            self.sessions.remove(&sid);
        }
        self.sessions.len() < max_sessions
    }

    /// Opens a fresh session for `conn` and answers `Welcome`. At
    /// capacity the connection is rejected (dropped + counted) — the
    /// client sees EOF before any `Welcome`.
    fn bind_fresh_session(&mut self, conn: u64, role: Role, max_sessions: usize) {
        if !self.conns.contains_key(&conn) {
            return;
        }
        if !self.make_room(max_sessions) {
            self.counters.session_rejects += 1;
            self.drop_conn(conn);
            return;
        }
        self.next_session += 1;
        let sid = self.next_session;
        self.sessions.insert(sid, Session::fresh(role, conn));
        self.conn_sessions.insert(conn, sid);
        self.conns.get_mut(&conn).expect("checked above").role = role;
        let welcome = encode_msg(&Msg::Welcome {
            session_id: sid,
            resumed: false,
        });
        let _ = self.send_small(conn, &welcome);
    }

    /// Handles a `Resume`: rebinds the session when it is known, the role
    /// matches, and the park window has not expired — replaying to a
    /// subscriber every ringed verdict above the client's acked
    /// watermarks. Anything else falls back to a fresh session (counted),
    /// and the client learns from `Welcome { resumed: false }` that its
    /// history is gone.
    fn resume_session(
        &mut self,
        conn: u64,
        sid: u64,
        role: Role,
        acked: &[(u32, u32)],
        cfg: &GatewayConfig,
    ) {
        let resumable = self.sessions.get(&sid).is_some_and(|s| {
            s.role == role
                && s.parked_at
                    .is_none_or(|t| t.elapsed() <= cfg.session_resume_window)
        });
        if !resumable {
            // Fleet handoff: a session this gateway has never parked may
            // be orphaned by a dead peer — the gossip board decides.
            if self.try_import_session(conn, sid, role, acked, cfg) {
                return;
            }
            self.counters.resume_rejects += 1;
            self.bind_fresh_session(conn, role, cfg.max_sessions);
            return;
        }
        // The client may have reconnected before the old socket's death
        // was noticed: steal the session from the zombie connection.
        if let Some(old) = self.sessions.get(&sid).and_then(|s| s.conn) {
            if old != conn {
                self.conn_sessions.remove(&old);
                self.drop_conn(old);
            }
        }
        let Some(c) = self.conns.get_mut(&conn) else {
            return;
        };
        c.role = role;
        let session = self.sessions.get_mut(&sid).expect("checked above");
        session.conn = Some(conn);
        session.parked_at = None;
        self.conn_sessions.insert(conn, sid);
        self.counters.resumes += 1;
        let welcome = encode_msg(&Msg::Welcome {
            session_id: sid,
            resumed: true,
        });
        let _ = c.out.push_small(&welcome);
        let mut replayed = 0u64;
        if role == Role::Subscriber {
            let watermark: HashMap<u32, u32> = acked.iter().copied().collect();
            for (_, _, bytes) in session
                .replay
                .iter()
                .filter(|(chain, seq, _)| watermark.get(chain).is_none_or(|&high| *seq > high))
            {
                if c.out.push_shared(Arc::clone(bytes)).is_ok() {
                    replayed += 1;
                }
            }
        }
        if c.out.mark_dirty() {
            self.ports[c.reactor].notify_dirty(conn);
        }
        self.counters.replayed_verdicts += replayed;
        self.verdicts_sent += replayed;
    }

    /// Adopts a session orphaned by a dead fleet peer: the gossip board
    /// claims it, the claimant is dead, nobody alive claims it, and the
    /// roles match. The adopted session starts with an empty replay ring
    /// (the dead gateway's ring died with it); the client's own `Resume`
    /// watermarks become the fan-out floor, so the producer-side re-run
    /// delivers exactly the verdicts the client never saw. Returns `false`
    /// when this is not a handoff (caller falls back to a fresh session).
    fn try_import_session(
        &mut self,
        conn: u64,
        sid: u64,
        role: Role,
        acked: &[(u32, u32)],
        cfg: &GatewayConfig,
    ) -> bool {
        let Some(link) = &cfg.fleet else {
            return false;
        };
        if self.sessions.contains_key(&sid) || !self.conns.contains_key(&conn) {
            return false;
        }
        let claims = link.state.digest_claims(sid);
        // A claim by an *alive* member means the session lives elsewhere:
        // this is a misrouted resume, not a handoff.
        if claims.is_empty() || claims.iter().any(|(gw, _)| link.state.is_alive(*gw)) {
            return false;
        }
        let (dead_gw, stub) = claims.into_iter().next().expect("checked non-empty");
        if stub.role != role || !self.make_room(cfg.max_sessions) {
            return false;
        }
        link.state.retract_claim(dead_gw, sid);
        let mut session = Session::fresh(role, conn);
        session.delivered_high = stub.watermarks.iter().copied().collect();
        session.delivered_floor = acked.iter().copied().collect();
        self.sessions.insert(sid, session);
        self.conn_sessions.insert(conn, sid);
        self.counters.handoffs += 1;
        self.counters.resumes += 1;
        self.conns.get_mut(&conn).expect("checked above").role = role;
        let welcome = encode_msg(&Msg::Welcome {
            session_id: sid,
            resumed: true,
        });
        let _ = self.send_small(conn, &welcome);
        true
    }

    /// This gateway's gossiped session digest: every live session's role
    /// plus (for subscribers) its delivered-verdict watermarks.
    fn session_digest(&self) -> HashMap<u64, SessionStub> {
        self.sessions
            .iter()
            .map(|(&sid, s)| {
                (
                    sid,
                    SessionStub {
                        role: s.role,
                        watermarks: if s.role == Role::Subscriber {
                            s.delivered_high.iter().map(|(&c, &h)| (c, h)).collect()
                        } else {
                            Vec::new()
                        },
                    },
                )
            })
            .collect()
    }

    /// Tenant the connection's session is bound to (default tenant when
    /// the connection has no session yet — pre-handshake producers).
    fn tenant_of(&self, conn: u64) -> u32 {
        self.conn_sessions
            .get(&conn)
            .and_then(|sid| self.sessions.get(sid))
            .map_or(0, |s| s.tenant)
    }

    /// Remembers an accepted-and-acked frame so its replay can be
    /// re-acked.
    fn note_accepted(&mut self, chain: u32, sequence: u32) {
        let set = self.accepted.entry(chain).or_default();
        set.insert(sequence);
        while set.len() > ACCEPTED_WINDOW {
            set.pop_first();
        }
    }

    /// Re-acks a replayed frame that fell behind the assembler watermark
    /// — exactly once per connection, and only when the frame really was
    /// accepted (an evicted-incomplete frame stays unacked: that loss is
    /// visible to the client, as it must be).
    fn maybe_reack(&mut self, conn: u64, chain: u32, sequence: u32, ack_frames: bool) {
        if !ack_frames
            || !self
                .accepted
                .get(&chain)
                .is_some_and(|s| s.contains(&sequence))
        {
            return;
        }
        let Some(c) = self.conns.get_mut(&conn) else {
            return;
        };
        if c.reacked.len() > REACK_WINDOW {
            c.reacked.clear();
        }
        if !c.reacked.insert((chain, sequence)) {
            return;
        }
        let ack = encode_msg(&Msg::FrameAck { chain, sequence });
        if self.send_small(conn, &ack) {
            self.acks_sent += 1;
            self.counters.replayed_frames += 1;
        }
    }

    /// Sends every result to every subscriber session under the
    /// slow-consumer policy, rings it for resume replay, and feeds the
    /// console. The verdict is encoded once and the same `Arc<[u8]>` is
    /// queued everywhere — fan-out cost is a ring push + refcount, and
    /// each reactor is woken at most once per burst. A parked session
    /// accumulates verdicts in its ring; when the ring overflows while
    /// parked, the shed verdict is gone for good and counted.
    fn fan_out(&mut self, results: Vec<FrameResult>, policy: SlowConsumerPolicy, ring: usize) {
        for r in results {
            self.console.observe(&r.verdict, &r.timing);
            self.observed += 1;
            let bytes: Arc<[u8]> = encode_msg(&Msg::Verdict(VerdictMsg {
                chain: r.chain,
                verdict: r.verdict,
            }))
            .into();
            let mut to_park: Vec<u64> = Vec::new();
            for s in self.sessions.values_mut() {
                if s.role != Role::Subscriber {
                    continue;
                }
                // Tenant isolation: a subscriber receives only the verdict
                // stream of the tenant its session is bound to — shadow
                // candidates never emit, and other tenants' traffic never
                // crosses over.
                if s.tenant != r.tenant {
                    continue;
                }
                // Post-handoff duplicate suppression: the previous gateway
                // already delivered this verdict (the client's `Resume`
                // proved it), so the re-run's copy must not go out again.
                if s.delivered_floor
                    .get(&r.chain)
                    .is_some_and(|&floor| r.sequence <= floor)
                {
                    continue;
                }
                if s.replay.len() >= ring {
                    s.replay.pop_front();
                    if s.conn.is_none() {
                        self.counters.resume_overflow += 1;
                    }
                }
                s.replay
                    .push_back((r.chain, r.sequence, Arc::clone(&bytes)));
                let high = s.delivered_high.entry(r.chain).or_insert(r.sequence);
                *high = (*high).max(r.sequence);
                let Some(id) = s.conn else { continue };
                let Some(c) = self.conns.get(&id) else {
                    continue;
                };
                match c.out.push_shared(Arc::clone(&bytes)) {
                    Ok(()) => {
                        self.verdicts_sent += 1;
                        if c.out.mark_dirty() {
                            self.ports[c.reactor].notify_dirty(id);
                        }
                    }
                    Err(PushError::Full) => match policy {
                        SlowConsumerPolicy::DropNewest => {
                            self.counters.slow_consumer_drops += 1;
                        }
                        SlowConsumerPolicy::Disconnect => {
                            self.counters.slow_consumer_disconnects += 1;
                            to_park.push(id);
                        }
                    },
                    Err(PushError::Closed) => to_park.push(id),
                }
            }
            for id in to_park {
                self.park_conn(id);
            }
        }
    }

    fn publish(&self, shared: &Arc<Mutex<(NetCounters, u64)>>) {
        let mut guard = shared.lock().expect("counters lock");
        guard.0 = self.counters;
        guard.1 = self.conns.len() as u64;
    }
}

/// Constructor namespace for the gateway server.
pub struct HubGateway;

/// A running gateway. Always call [`GatewayHandle::shutdown`] — dropping
/// the handle without it leaks the server threads.
pub struct GatewayHandle {
    addr: SocketAddr,
    flag: Arc<AtomicBool>,
    kill: Arc<AtomicBool>,
    hub: Option<JoinHandle<()>>,
    reactors: Vec<JoinHandle<()>>,
    ports: Vec<ReactorPort>,
    report_rx: Receiver<GatewayReport>,
    shared: Arc<Mutex<(NetCounters, u64)>>,
}

impl HubGateway {
    /// Binds `addr` and starts serving the given engine. The engine's drop
    /// policy governs ingest backpressure (`Block` is lossless;
    /// `DropNewest` sheds and counts).
    ///
    /// # Errors
    /// Propagates socket bind/configure failures.
    ///
    /// # Panics
    /// Panics when `cfg.outbound_queue` is zero.
    pub fn start(
        addr: impl ToSocketAddrs,
        cfg: GatewayConfig,
        engine: ShardedEngine,
    ) -> std::io::Result<GatewayHandle> {
        Self::start_on(TcpListener::bind(addr)?, cfg, engine)
    }

    /// Starts serving on an already-bound listener. The fleet layer binds
    /// every member's listener *first* (so the shared
    /// [`FleetState`](crate::router::FleetState) can carry real addresses
    /// even with OS-assigned ports), then hands each listener here.
    ///
    /// # Errors
    /// Propagates socket configure failures; on non-Unix platforms the
    /// reactor cannot be built and this returns
    /// [`std::io::ErrorKind::Unsupported`].
    ///
    /// # Panics
    /// Panics when `cfg.outbound_queue` is zero.
    pub fn start_on(
        listener: TcpListener,
        cfg: GatewayConfig,
        engine: ShardedEngine,
    ) -> std::io::Result<GatewayHandle> {
        assert!(cfg.outbound_queue > 0, "outbound queue must be positive");
        listener.set_nonblocking(true)?;
        let local = listener.local_addr()?;
        let n_reactors = cfg.reactors.clamp(1, MAX_REACTORS);
        let flag = Arc::new(AtomicBool::new(false));
        let kill = Arc::new(AtomicBool::new(false));
        let shared = Arc::new(Mutex::new((NetCounters::default(), 0u64)));
        let (event_tx, event_rx) = mpsc::sync_channel::<Event>(EVENT_QUEUE);
        let (report_tx, report_rx) = mpsc::sync_channel::<GatewayReport>(1);
        let pool = BufPool::default();

        // Build every reactor fully (all fallible syscalls) before
        // spawning any thread, so a mid-construction failure leaks
        // nothing.
        let mut ports: Vec<ReactorPort> = Vec::with_capacity(n_reactors);
        let mut inboxes = Vec::with_capacity(n_reactors);
        for _ in 0..n_reactors {
            let (waker, wake_rx) = Waker::pair()?;
            let (cmd_tx, cmd_rx) = mpsc::channel();
            ports.push(ReactorPort {
                cmd_tx,
                shared: Arc::new(ReactorShared {
                    dirty: Mutex::new(Vec::new()),
                    waker,
                }),
            });
            inboxes.push((cmd_rx, wake_rx));
        }
        let mut built: Vec<Reactor> = Vec::with_capacity(n_reactors);
        let mut listener_slot = Some(listener);
        for (i, (cmd_rx, wake_rx)) in inboxes.into_iter().enumerate() {
            let mut poller = Poller::new()?;
            poller.register(wake_rx.as_raw_fd(), TOKEN_WAKER, Interest::READ)?;
            let listener = if i == 0 {
                let l = listener_slot.take().expect("taken once");
                poller.register(fd_of(&l), TOKEN_LISTENER, Interest::READ)?;
                Some(l)
            } else {
                None
            };
            built.push(Reactor {
                idx: i,
                poller,
                wake_rx,
                cmd_rx,
                event_tx: Some(event_tx.clone()),
                conns: HashMap::new(),
                listener,
                next_conn: 0,
                ports: ports.clone(),
                shared: Arc::clone(&ports[i].shared),
                pool: pool.clone(),
                outbound_queue: cfg.outbound_queue,
                flag: Arc::clone(&flag),
                kill: Arc::clone(&kill),
                scratch: vec![0u8; READ_CHUNK].into_boxed_slice(),
            });
        }
        // The hub must see Disconnected once every reactor has observed
        // the shutdown flag and dropped its sender, so the constructor's
        // copy dies here.
        drop(event_tx);

        let reactors: Vec<JoinHandle<()>> = built
            .into_iter()
            .map(|r| {
                thread::Builder::new()
                    .name(format!("reads-net-io{}", r.idx))
                    .spawn(move || r.run())
                    .expect("spawn reactor")
            })
            .collect();

        let hub = {
            let flag = Arc::clone(&flag);
            let kill = Arc::clone(&kill);
            let shared = Arc::clone(&shared);
            let ports = ports.clone();
            thread::Builder::new()
                .name("reads-net-hub".into())
                .spawn(move || {
                    let report =
                        hub_loop(&cfg, local, engine, &event_rx, &flag, &kill, &shared, ports);
                    let _ = report_tx.send(report);
                })
                .expect("spawn hub")
        };

        Ok(GatewayHandle {
            addr: local,
            flag,
            kill,
            hub: Some(hub),
            reactors,
            ports,
            report_rx,
            shared,
        })
    }
}

impl GatewayHandle {
    /// The bound address (useful with port 0).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shutdown flag — store `true` (e.g. from a ctrl-c handler) to
    /// begin a graceful drain, then call [`GatewayHandle::shutdown`] to
    /// join and collect the report.
    #[must_use]
    pub fn shutdown_flag(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.flag)
    }

    /// Whether a shutdown has been requested (externally or by a wire
    /// [`Msg::Shutdown`]).
    #[must_use]
    pub fn shutdown_requested(&self) -> bool {
        self.flag.load(Ordering::SeqCst)
    }

    /// Snapshot of the transport counters.
    #[must_use]
    pub fn counters(&self) -> NetCounters {
        self.shared.lock().expect("counters lock").0
    }

    /// Live sessions right now.
    #[must_use]
    pub fn sessions(&self) -> u64 {
        self.shared.lock().expect("counters lock").1
    }

    /// Graceful shutdown: stop accepting, drain in-flight frames through
    /// the engine, flush remaining verdicts through the reactors'
    /// draining phase, join every thread, and return the final report.
    ///
    /// # Panics
    /// Panics if a gateway thread panicked.
    #[must_use]
    pub fn shutdown(mut self) -> GatewayReport {
        self.flag.store(true, Ordering::SeqCst);
        for p in &self.ports {
            p.shared.waker.wake();
        }
        let report = self.report_rx.recv().expect("hub report");
        if let Some(h) = self.hub.take() {
            h.join().expect("hub panicked");
        }
        // The hub's finalize already commanded DrainAllThenExit; joining
        // here guarantees every ring flushed (or timed out) and every
        // socket closed before the report is handed back.
        for r in self.reactors.drain(..) {
            r.join().expect("reactor panicked");
        }
        report
    }

    /// SIGKILL-equivalent death: every socket is severed abruptly (no
    /// drain, no flush, no goodbye), in-flight engine results are
    /// discarded, and clients learn only from the TCP reset — exactly what
    /// a killed process looks like from outside. The fleet supervisor
    /// notices the stopped heartbeat; peers adopt the orphaned sessions
    /// from gossip. The threads themselves are still joined (they are this
    /// process's threads — the kill is wire-visible, not UB) and a report
    /// is returned for accounting, but nothing in it reached any client.
    ///
    /// # Panics
    /// Panics if a gateway thread panicked.
    #[must_use]
    pub fn kill(mut self) -> GatewayReport {
        self.kill.store(true, Ordering::SeqCst);
        self.flag.store(true, Ordering::SeqCst);
        for p in &self.ports {
            p.shared.waker.wake();
        }
        let report = self.report_rx.recv().expect("hub report");
        if let Some(h) = self.hub.take() {
            h.join().expect("hub panicked");
        }
        for r in self.reactors.drain(..) {
            r.join().expect("reactor panicked");
        }
        report
    }
}

/// Transport-level connection phases. `Handshake` ends at the first
/// decoded message (the protocol is permissive: a bare producer may lead
/// with `HubData`); `Draining` exists only during graceful exit, when
/// the ring flushes write-driven and then the socket closes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    Handshake,
    Streaming,
    Draining,
}

/// Reactor-side connection state: the nonblocking socket, its incremental
/// decoder, and the outbound ring it shares with the hub.
struct ConnIo {
    stream: TcpStream,
    decoder: FrameDecoder,
    out: Arc<Outbound>,
    interest: Interest,
    phase: Phase,
}

/// One event-loop thread: owns sockets, the accept path (reactor 0), all
/// reads, all vectored writes. Everything protocol-level lives in the
/// hub; everything byte-level lives here.
struct Reactor {
    idx: usize,
    poller: Poller,
    wake_rx: WakeRx,
    cmd_rx: Receiver<ReactorCmd>,
    /// `Some` until the shutdown flag is observed; dropping it is what
    /// lets the hub's event loop see Disconnected and finalize.
    event_tx: Option<SyncSender<Event>>,
    conns: HashMap<u64, ConnIo>,
    /// Present on reactor 0 only — the accepting reactor.
    listener: Option<TcpListener>,
    next_conn: u64,
    ports: Vec<ReactorPort>,
    shared: Arc<ReactorShared>,
    pool: BufPool,
    outbound_queue: usize,
    flag: Arc<AtomicBool>,
    kill: Arc<AtomicBool>,
    /// Reusable read buffer — one per reactor, not one stack per
    /// connection.
    scratch: Box<[u8]>,
}

impl Reactor {
    fn run(mut self) {
        let mut events: Vec<Ready> = Vec::with_capacity(1024);
        loop {
            if self.event_tx.is_some() && self.flag.load(Ordering::SeqCst) {
                self.stop_reading();
            }
            let mut exit_sever: Option<bool> = None;
            while let Ok(cmd) = self.cmd_rx.try_recv() {
                match cmd {
                    ReactorCmd::Adopt { conn, stream, out } => self.install(conn, stream, out),
                    ReactorCmd::Close { conn } => self.remove_conn(conn),
                    ReactorCmd::DrainAllThenExit => exit_sever = Some(false),
                    ReactorCmd::SeverAllThenExit => exit_sever = Some(true),
                }
            }
            if self.kill.load(Ordering::SeqCst) {
                exit_sever = Some(true);
            }
            match exit_sever {
                Some(true) => {
                    self.sever_all();
                    return;
                }
                Some(false) => {
                    self.drain_all();
                    return;
                }
                None => {}
            }
            self.flush_dirty();
            events.clear();
            if self.poller.wait(&mut events, Some(REACTOR_PARK)).is_err() {
                // A broken poller cannot be served around; park so a
                // persistent failure cannot spin a core, then re-check
                // flags.
                thread::sleep(REACTOR_PARK);
                continue;
            }
            for &ev in &events {
                match ev.token {
                    TOKEN_WAKER => self.wake_rx.drain(),
                    TOKEN_LISTENER => self.accept_burst(),
                    conn => self.conn_event(conn, ev),
                }
            }
        }
    }

    /// Shutdown-flag transition: stop accepting, stop reading, and drop
    /// the event sender so the hub can drain to Disconnected. Writes keep
    /// flowing — the drain command arrives later with the final verdicts.
    fn stop_reading(&mut self) {
        self.event_tx = None;
        if let Some(l) = self.listener.take() {
            let _ = self.poller.deregister(fd_of(&l));
        }
        for (&conn, io) in &mut self.conns {
            if io.interest.read {
                io.interest.read = false;
                let _ = self.poller.modify(fd_of(&io.stream), conn, io.interest);
            }
        }
    }

    fn accept_burst(&mut self) {
        for _ in 0..ACCEPT_BURST {
            let accepted = match &self.listener {
                Some(l) => retry_intr(|| l.accept()),
                None => return,
            };
            match accepted {
                Ok((stream, _)) => {
                    self.next_conn += 1;
                    let conn = self.next_conn;
                    let _ = stream.set_nodelay(true);
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    let out = Arc::new(Outbound::new(self.outbound_queue, self.pool.clone()));
                    let owner = (conn as usize - 1) % self.ports.len();
                    // Attach must reach the hub before any packet from
                    // this socket; both orders below guarantee it (the
                    // owner cannot read before it receives Adopt, which
                    // is sent after).
                    let Some(tx) = &self.event_tx else { return };
                    if tx
                        .send(Event::Attach {
                            conn,
                            out: Arc::clone(&out),
                            reactor: owner,
                        })
                        .is_err()
                    {
                        return;
                    }
                    if owner == self.idx {
                        self.install(conn, stream, out);
                    } else {
                        self.ports[owner].send(ReactorCmd::Adopt { conn, stream, out });
                    }
                }
                Err(e) if is_would_block(&e) => return,
                Err(_) => {
                    thread::sleep(ACCEPT_ERR_BACKOFF);
                    return;
                }
            }
        }
    }

    /// Registers a socket this reactor now owns. On registration failure
    /// (fd pressure) the connection is closed and reported so the hub's
    /// registry cannot leak an entry.
    fn install(&mut self, conn: u64, stream: TcpStream, out: Arc<Outbound>) {
        let interest = if self.event_tx.is_some() {
            Interest::READ
        } else {
            Interest::NONE
        };
        if self
            .poller
            .register(fd_of(&stream), conn, interest)
            .is_err()
        {
            out.mark_closed();
            let _ = stream.shutdown(Shutdown::Both);
            self.report_closed_event(conn);
            return;
        }
        self.conns.insert(
            conn,
            ConnIo {
                stream,
                decoder: FrameDecoder::new(),
                out,
                interest,
                phase: Phase::Handshake,
            },
        );
    }

    fn conn_event(&mut self, conn: u64, ev: Ready) {
        if ev.readable && self.event_tx.is_some() {
            self.read_conn(conn);
        }
        if ev.writable {
            self.flush_conn(conn);
        }
        if ev.hangup && self.conns.contains_key(&conn) {
            // ERR/HUP without consumable data: the socket is dead.
            self.peer_gone(conn);
        }
    }

    /// Reads a fairness-bounded burst, decodes it, and ships the decoded
    /// events to the hub in one channel wakeup.
    fn read_conn(&mut self, conn: u64) {
        let Some(io) = self.conns.get_mut(&conn) else {
            return;
        };
        let mut batch: Vec<Event> = Vec::new();
        let mut peer_gone = false;
        let mut fatal = false;
        let mut total = 0usize;
        while total < READ_FAIR_BUDGET {
            match retry_intr(|| io.stream.read(&mut self.scratch)) {
                Ok(0) => {
                    peer_gone = true;
                    break;
                }
                Ok(n) => {
                    total += n;
                    io.decoder.push(&self.scratch[..n]);
                    decode_into(&mut batch, conn, &mut io.decoder, &mut fatal);
                    if fatal {
                        peer_gone = true;
                        break;
                    }
                }
                Err(e) if is_would_block(&e) => break,
                Err(_) => {
                    peer_gone = true;
                    break;
                }
            }
        }
        if io.phase == Phase::Handshake && !batch.is_empty() {
            io.phase = Phase::Streaming;
        }
        if let Some(tx) = &self.event_tx {
            let _ = match batch.len() {
                0 => Ok(()),
                1 => tx.send(batch.pop().expect("len 1")),
                _ => tx.send(Event::Batch(batch)),
            };
        }
        if peer_gone {
            if fatal {
                // The hub learns from DecodeErr{fatal} in the batch and
                // parks the session itself — a Closed event on top would
                // double-count the disconnect.
                self.remove_conn(conn);
            } else {
                self.peer_gone(conn);
            }
        }
    }

    /// Drains a connection's outbound ring; arms or disarms write
    /// interest to match what is left.
    fn flush_conn(&mut self, conn: u64) {
        let Some(io) = self.conns.get_mut(&conn) else {
            return;
        };
        io.out.clear_dirty();
        let want_write = match io.out.flush_into(&mut io.stream) {
            Ok(flushed) => !flushed,
            Err(_) => {
                self.peer_gone(conn);
                return;
            }
        };
        if io.interest.write != want_write {
            io.interest.write = want_write;
            let _ = self.poller.modify(fd_of(&io.stream), conn, io.interest);
        }
    }

    /// Hub-notified flush debts accumulated since the last wakeup.
    fn flush_dirty(&mut self) {
        let dirty: Vec<u64> = {
            let mut d = self.shared.dirty.lock().expect("dirty lock");
            std::mem::take(&mut *d)
        };
        for conn in dirty {
            self.flush_conn(conn);
        }
    }

    /// Peer-initiated death: tell the hub (it parks the session and
    /// counts the disconnect), then tear the socket down.
    fn peer_gone(&mut self, conn: u64) {
        self.report_closed_event(conn);
        self.remove_conn(conn);
    }

    fn report_closed_event(&mut self, conn: u64) {
        if let Some(tx) = &self.event_tx {
            let _ = tx.send(Event::Closed { conn });
        }
    }

    /// Tears a connection down without telling the hub — used when the
    /// hub itself ordered the close, or already knows from a fatal
    /// decode error.
    fn remove_conn(&mut self, conn: u64) {
        if let Some(io) = self.conns.remove(&conn) {
            let _ = self.poller.deregister(fd_of(&io.stream));
            io.out.mark_closed();
            let _ = io.stream.shutdown(Shutdown::Both);
        }
    }

    /// Graceful exit: every connection enters the draining phase — its
    /// ring flushes write-driven, then the socket closes. Bounded by
    /// [`DRAIN_DEADLINE`] so a peer that stopped reading cannot wedge
    /// shutdown (its unflushed ring is severed, exactly like the old
    /// writer threads' write timeout).
    fn drain_all(&mut self) {
        for io in self.conns.values_mut() {
            io.phase = Phase::Draining;
        }
        let deadline = Instant::now() + DRAIN_DEADLINE;
        let mut events: Vec<Ready> = Vec::new();
        while !self.conns.is_empty() && Instant::now() < deadline {
            let ids: Vec<u64> = self.conns.keys().copied().collect();
            for conn in ids {
                let done = {
                    let Some(io) = self.conns.get_mut(&conn) else {
                        continue;
                    };
                    // A dead peer (Err) has nothing more to flush.
                    io.out.flush_into(&mut io.stream).unwrap_or(true)
                };
                if done {
                    self.remove_conn(conn);
                }
            }
            if self.conns.is_empty() {
                break;
            }
            events.clear();
            let _ = self
                .poller
                .wait(&mut events, Some(Duration::from_millis(10)));
        }
        self.sever_all();
    }

    fn sever_all(&mut self) {
        let ids: Vec<u64> = self.conns.keys().copied().collect();
        for conn in ids {
            self.remove_conn(conn);
        }
    }
}

/// Decodes everything buffered, translating wire messages into hub
/// events. Sets `fatal` on an adversarial length field — the one error
/// worth a disconnect: it signals a peer probing the buffer bounds, and
/// resync past it cannot be trusted.
fn decode_into(batch: &mut Vec<Event>, conn: u64, decoder: &mut FrameDecoder, fatal: &mut bool) {
    loop {
        match decoder.next_msg() {
            Ok(Some(msg)) => batch.push(match msg {
                Msg::Hello { role } => Event::Hello { conn, role },
                Msg::HubData { chain, packet } => Event::Packet {
                    conn,
                    chain,
                    packet,
                },
                Msg::Shutdown => Event::ShutdownRequested,
                Msg::Resume {
                    session_id,
                    role,
                    acked,
                } => Event::Resume {
                    conn,
                    session_id,
                    role,
                    acked,
                },
                Msg::Route { chain } => Event::Route { conn, chain },
                Msg::TenantSelect { tenant } => Event::TenantSelect { conn, tenant },
                // Server-to-client kinds arriving at the server are
                // protocol violations, not transport corruption.
                Msg::FrameAck { .. }
                | Msg::Verdict(_)
                | Msg::Welcome { .. }
                | Msg::Redirect { .. }
                | Msg::TenantInfo { .. } => Event::DecodeErr { conn, fatal: false },
            }),
            Ok(None) => return,
            Err(e) => {
                let is_fatal = matches!(e, WireError::Oversized(_));
                batch.push(Event::DecodeErr {
                    conn,
                    fatal: is_fatal,
                });
                if is_fatal {
                    *fatal = true;
                    return;
                }
            }
        }
    }
}

#[allow(clippy::too_many_lines, clippy::too_many_arguments)]
fn hub_loop(
    cfg: &GatewayConfig,
    local: SocketAddr,
    mut engine: ShardedEngine,
    events: &Receiver<Event>,
    flag: &Arc<AtomicBool>,
    kill: &Arc<AtomicBool>,
    shared: &Arc<Mutex<(NetCounters, u64)>>,
    ports: Vec<ReactorPort>,
) -> GatewayReport {
    let mut board = Switchboard {
        conns: HashMap::new(),
        sessions: HashMap::new(),
        conn_sessions: HashMap::new(),
        accepted: HashMap::new(),
        ports,
        // Fleet members mint session ids in a per-gateway namespace
        // (top bits), so an adopted session can never collide with one
        // minted here.
        next_session: cfg
            .fleet
            .as_ref()
            .map_or(0, |l| (u64::from(l.gateway_id) + 1) << 40),
        counters: NetCounters::default(),
        console: OperatorConsole::new(TRIP_THRESHOLD, 3.0),
        observed: 0,
        verdicts_sent: 0,
        acks_sent: 0,
    };
    let mut assembler = FrameAssembler::new(cfg.assembly_window);
    let mut sim_ingest = SimDuration::ZERO;

    #[allow(clippy::too_many_arguments)]
    fn handle_event(
        ev: Event,
        cfg: &GatewayConfig,
        local: SocketAddr,
        flag: &AtomicBool,
        board: &mut Switchboard,
        assembler: &mut FrameAssembler,
        engine: &mut ShardedEngine,
        sim_ingest: &mut SimDuration,
    ) {
        match ev {
            Event::Attach { conn, out, reactor } => {
                board.counters.connections += 1;
                board.conns.insert(
                    conn,
                    ConnState {
                        out,
                        reactor,
                        role: Role::Producer,
                        reacked: HashSet::new(),
                    },
                );
            }
            Event::Hello { conn, role } => {
                board.counters.messages += 1;
                board.bind_fresh_session(conn, role, cfg.max_sessions);
            }
            Event::Resume {
                conn,
                session_id,
                role,
                acked,
            } => {
                board.counters.messages += 1;
                board.resume_session(conn, session_id, role, &acked, cfg);
            }
            Event::Route { conn, chain } => {
                board.counters.messages += 1;
                board.counters.redirects += 1;
                let (gateway_id, addr) = match &cfg.fleet {
                    Some(link) => match link.state.owner_of(chain) {
                        Some(owner) => (owner, link.state.addr_of(owner).to_string()),
                        // Whole fleet marked dead (we are evidently not):
                        // answer with ourselves rather than nothing.
                        None => (link.gateway_id, local.to_string()),
                    },
                    None => (0, local.to_string()),
                };
                let redirect = encode_msg(&Msg::Redirect {
                    chain,
                    gateway_id,
                    addr,
                });
                let _ = board.send_small(conn, &redirect);
            }
            Event::Packet {
                conn,
                chain,
                packet,
            } => {
                board.counters.messages += 1;
                // Fleet placement check: a hub packet for a chain owned by
                // a living peer bounces back as a `Redirect` instead of
                // being assembled here — lazy placement discovery, not an
                // error.
                if let Some(link) = &cfg.fleet {
                    if let Some(owner) = link.state.owner_of(chain) {
                        if owner != link.gateway_id {
                            board.counters.redirects += 1;
                            let redirect = encode_msg(&Msg::Redirect {
                                chain,
                                gateway_id: owner,
                                addr: link.state.addr_of(owner).to_string(),
                            });
                            let _ = board.send_small(conn, &redirect);
                            return;
                        }
                    }
                }
                let sequence = packet.sequence;
                match assembler.offer(chain, packet, &mut board.counters) {
                    Offer::Complete(frame) => {
                        // Price the frame's ingest in simulated time with
                        // the canonical Ethernet model — never a local
                        // copy of its constants.
                        let payloads: Vec<usize> =
                            frame.packets.iter().map(HubPacket::encoded_len).collect();
                        *sim_ingest += cfg.eth.frame_ingest_time(&payloads);
                        let sequence = frame.sequence;
                        // Route through the session's tenant; tenant 0
                        // takes the legacy path so a gateway that never
                        // sees a `TenantSelect` behaves bit-identically.
                        let tenant = board.tenant_of(conn);
                        let accepted = if tenant == 0 {
                            engine.submit(frame)
                        } else {
                            engine.submit_for(tenant, frame).unwrap_or(false)
                        };
                        if accepted {
                            board.counters.frames_accepted += 1;
                            if cfg.ack_frames {
                                board.note_accepted(chain, sequence);
                                let ack = encode_msg(&Msg::FrameAck { chain, sequence });
                                if board.send_small(conn, &ack) {
                                    board.acks_sent += 1;
                                }
                            }
                        } else {
                            board.counters.backpressure_drops += 1;
                        }
                    }
                    // A packet behind the watermark is (usually) a frame
                    // replayed after a resume: re-ack it so the client's
                    // replay buffer drains.
                    Offer::Stale => board.maybe_reack(conn, chain, sequence, cfg.ack_frames),
                    Offer::Merged | Offer::Duplicate | Offer::BadHub => {}
                }
            }
            Event::TenantSelect { conn, tenant } => {
                board.counters.messages += 1;
                // Rebind only when the engine actually serves the tenant;
                // an unknown select keeps the current binding and the
                // reply describes what the session is still bound to.
                let bound = if engine.tenant_known(tenant) {
                    board.counters.tenant_selects += 1;
                    if let Some(s) = board
                        .conn_sessions
                        .get(&conn)
                        .copied()
                        .and_then(|sid| board.sessions.get_mut(&sid))
                    {
                        s.tenant = tenant;
                    }
                    tenant
                } else {
                    board.counters.tenant_rejects += 1;
                    board.tenant_of(conn)
                };
                let (live_digest, shadowing) = engine.tenant_info(bound).unwrap_or((0, false));
                let state = match (live_digest, shadowing) {
                    (0, _) => 0,
                    (_, false) => 1,
                    (_, true) => 2,
                };
                let info = encode_msg(&Msg::TenantInfo {
                    tenant: bound,
                    live_digest,
                    state,
                    name: engine.tenant_name(bound).to_string(),
                });
                let _ = board.send_small(conn, &info);
            }
            Event::DecodeErr { conn, fatal } => {
                board.counters.decode_errors += 1;
                if fatal {
                    // The connection cannot be trusted past an adversarial
                    // length field, but its *session* can park: chaos-level
                    // byte corruption hits length fields too, and the
                    // client deserves a resume path.
                    board.park_conn(conn);
                }
            }
            Event::ShutdownRequested => {
                board.counters.messages += 1;
                flag.store(true, Ordering::SeqCst);
            }
            Event::Closed { conn } => {
                // Count the disconnect only while the connection is still
                // registered: one the hub already dropped (slow-consumer
                // disconnect, zombie steal, fatal protocol violation) must
                // not *also* be accounted as a peer-initiated close.
                if board.conns.contains_key(&conn) {
                    board.counters.disconnects += 1;
                    board.park_conn(conn);
                }
            }
            Event::Batch(evs) => {
                for e in evs {
                    handle_event(e, cfg, local, flag, board, assembler, engine, sim_ingest);
                }
            }
        }
    }

    let mut last_gossip = Instant::now();
    let mut last_expiry = Instant::now();
    let mut reactors_woken = false;
    loop {
        // SIGKILL-equivalent: stop mid-everything, events still queued.
        if kill.load(Ordering::SeqCst) {
            break;
        }
        if !reactors_woken && flag.load(Ordering::SeqCst) {
            // Externally stored flag (ctrl-c handler, tests) or a wire
            // Shutdown: nudge every reactor so it notices without waiting
            // out its park timeout.
            reactors_woken = true;
            for p in &board.ports {
                p.shared.waker.wake();
            }
        }
        match events.recv_timeout(HUB_POLL) {
            Ok(ev) => {
                handle_event(
                    ev,
                    cfg,
                    local,
                    flag,
                    &mut board,
                    &mut assembler,
                    &mut engine,
                    &mut sim_ingest,
                );
                // Drain a bounded burst before looking at results again.
                for _ in 0..256 {
                    match events.try_recv() {
                        Ok(ev) => handle_event(
                            ev,
                            cfg,
                            local,
                            flag,
                            &mut board,
                            &mut assembler,
                            &mut engine,
                            &mut sim_ingest,
                        ),
                        Err(_) => break,
                    }
                }
            }
            Err(mpsc::RecvTimeoutError::Timeout) => {}
            // Every reactor has observed the shutdown flag and dropped
            // its sender, and the queue is fully drained: finalize.
            Err(mpsc::RecvTimeoutError::Disconnected) => break,
        }
        let results = engine.poll_results();
        board.fan_out(results, cfg.slow_consumer, cfg.resume_buffer);
        if last_expiry.elapsed() >= EXPIRE_EVERY {
            last_expiry = Instant::now();
            board.expire_sessions(cfg.session_resume_window);
        }
        board.publish(shared);
        if let Some(link) = &cfg.fleet {
            // Liveness is "this loop is turning", not "the process
            // exists" — a wedged hub is as dead as a killed one.
            link.state.beat(link.gateway_id);
            if last_gossip.elapsed() >= link.gossip_interval {
                last_gossip = Instant::now();
                link.state
                    .publish_digest(link.gateway_id, board.session_digest());
            }
        }
    }

    if kill.load(Ordering::SeqCst) {
        // Abrupt death: sever every socket (no drain, no flush — clients
        // see a reset mid-stream), then silently discard whatever the
        // engine still owes. The producer-side acked-frame retention plus
        // the fleet handoff path are what make this survivable.
        for p in &board.ports {
            p.send(ReactorCmd::SeverAllThenExit);
        }
        let (_discarded, fleet) = engine.finish();
        if let Some(obs) = &cfg.adapt {
            let c = obs.counters();
            board.counters.adapt_retrains = c.retrains;
            board.counters.adapt_promoted = c.promoted;
            board.counters.adapt_rolled_back = c.rolled_back;
        }
        board.publish(shared);
        return GatewayReport {
            fleet,
            net: board.counters,
            verdicts_sent: board.verdicts_sent,
            acks_sent: board.acks_sent,
            sim_ingest,
            console: String::new(),
        };
    }

    // Finalize: the engine drains its queues (Block policy loses nothing),
    // remaining verdicts go out, and the reactors enter their draining
    // phase — flush every ring, then close every socket. Placement and
    // tenant names are captured first — `finish` consumes the engine.
    let engine_placement = engine.placement().clone();
    let tenant_names: HashMap<u32, String> = engine_placement
        .keys()
        .map(|t| (*t, engine.tenant_name(*t).to_string()))
        .collect();
    let (remaining, fleet) = engine.finish();
    board.fan_out(remaining, cfg.slow_consumer, cfg.resume_buffer);
    for p in &board.ports {
        p.send(ReactorCmd::DrainAllThenExit);
    }

    if let Some(obs) = &cfg.adapt {
        let c = obs.counters();
        board.counters.adapt_retrains = c.retrains;
        board.counters.adapt_promoted = c.promoted;
        board.counters.adapt_rolled_back = c.rolled_back;
        board.console.observe_adapt(
            cfg.fleet.as_ref().map_or(0, |link| link.gateway_id),
            AdaptConsoleLine {
                counters: c,
                state: obs.state(),
                drift: fleet.drift().status,
            },
        );
    }
    let mut console_render = String::new();
    if board.observed > 0 {
        for s in &fleet.shards {
            board
                .console
                .observe_shard_health(s.shard, s.health, &s.counters, s.processed, s.lost);
            if let Some(m) = s.kernel_mix {
                board.console.observe_kernel_mix(m);
            }
        }
        board.console.observe_net_health(0, &board.counters);
        // Per-tenant serving lines, only when a registry actually serves
        // more than the default tenant — a single-model gateway's console
        // stays byte-identical.
        let multi = fleet
            .shards
            .iter()
            .flat_map(|s| &s.tenants)
            .any(|t| t.tenant != 0);
        if multi {
            for (tenant, shards) in engine_placement.iter() {
                let mut line = TenantConsoleLine {
                    tenant: *tenant,
                    name: tenant_names.get(tenant).cloned().unwrap_or_default(),
                    live_digest: 0,
                    shards: shards
                        .iter()
                        .map(ToString::to_string)
                        .collect::<Vec<_>>()
                        .join(","),
                    processed: 0,
                    slo_misses: 0,
                    shadow_digest: None,
                    shadow: Default::default(),
                };
                for t in fleet
                    .shards
                    .iter()
                    .flat_map(|s| &s.tenants)
                    .filter(|t| t.tenant == *tenant)
                {
                    line.processed += t.processed;
                    line.slo_misses += t.slo_misses;
                    line.shadow.merge(&t.shadow);
                    if line.live_digest == 0 {
                        line.live_digest = t.live_digest;
                    }
                    if line.shadow_digest.is_none() {
                        line.shadow_digest = t.shadow_digest;
                    }
                }
                board.console.observe_tenant(line);
            }
        }
        console_render = board.console.render();
    }
    board.publish(shared);
    GatewayReport {
        fleet,
        net: board.counters,
        verdicts_sent: board.verdicts_sent,
        acks_sent: board.acks_sent,
        sim_ingest,
        console: console_render,
    }
}
