//! Per-chain frame assembly with sequence-gap / reorder / staleness
//! tracking.
//!
//! Hub packets arrive on independent TCP connections in whatever order the
//! network delivers them. [`FrameAssembler`] regroups them into complete
//! [`ChainFrame`]s: a frame is *complete* when all seven hubs of one
//! `(chain, sequence)` are present. The tracker keeps a bounded window of
//! pending sequences per chain; packets behind the completed watermark are
//! stale (a 3 ms control loop has no use for them), and when a chain runs
//! more than the window ahead, the oldest incomplete frame is evicted —
//! both outcomes counted into [`NetCounters`], never silently.

use reads_blm::hubs::{ChainFrame, HubPacket, N_HUBS};
use reads_core::resilience::NetCounters;
use std::collections::HashMap;

/// One pending (incomplete) frame of a chain.
#[derive(Debug)]
struct Pending {
    sequence: u32,
    slots: [Option<HubPacket>; N_HUBS],
    filled: usize,
}

impl Pending {
    fn new(sequence: u32) -> Self {
        Self {
            sequence,
            slots: Default::default(),
            filled: 0,
        }
    }
}

/// Per-chain assembly state.
#[derive(Debug, Default)]
struct ChainState {
    /// Pending frames, oldest first; bounded by the assembler window.
    pending: Vec<Pending>,
    /// Highest sequence ever completed (None until the first completion).
    completed: Option<u32>,
    /// Highest sequence ever seen arriving.
    newest_seen: Option<u32>,
}

/// Regroups hub packets into complete chain frames.
#[derive(Debug)]
pub struct FrameAssembler {
    chains: HashMap<u32, ChainState>,
    /// Max pending sequences per chain before the oldest incomplete frame
    /// is evicted.
    window: usize,
}

/// What became of one offered packet.
#[derive(Debug, PartialEq)]
pub enum Offer {
    /// Packet merged; frame still incomplete.
    Merged,
    /// Packet completed its frame.
    Complete(ChainFrame),
    /// Packet was behind the completed watermark (dropped).
    Stale,
    /// The same hub already contributed to this sequence (dropped).
    Duplicate,
    /// Hub index out of range for the seven-hub chain (dropped).
    BadHub,
}

impl FrameAssembler {
    /// New assembler holding at most `window` pending sequences per chain.
    ///
    /// # Panics
    /// Panics when `window == 0`.
    #[must_use]
    pub fn new(window: usize) -> Self {
        assert!(window > 0, "assembler window must be positive");
        Self {
            chains: HashMap::new(),
            window,
        }
    }

    /// Number of incomplete frames currently pending across chains.
    #[must_use]
    pub fn pending(&self) -> usize {
        self.chains.values().map(|c| c.pending.len()).sum()
    }

    /// Offers one packet; updates `counters` for every anomaly observed
    /// (reorders, staleness, duplicates, gap detection on completion,
    /// window evictions).
    pub fn offer(&mut self, chain: u32, packet: HubPacket, counters: &mut NetCounters) -> Offer {
        if usize::from(packet.hub) >= N_HUBS {
            counters.decode_errors += 1;
            return Offer::BadHub;
        }
        let state = self.chains.entry(chain).or_default();
        let seq = packet.sequence;

        // Staleness: behind the completion watermark means the control
        // tick already passed (or the frame was evicted).
        if state.completed.is_some_and(|w| seq <= w) {
            counters.stale_drops += 1;
            return Offer::Stale;
        }
        // Reorder: arriving behind the newest sequence this chain has seen
        // but still usable.
        if state.newest_seen.is_some_and(|n| seq < n) {
            counters.reordered += 1;
        }
        state.newest_seen = Some(state.newest_seen.map_or(seq, |n| n.max(seq)));

        let idx = match state.pending.iter().position(|p| p.sequence == seq) {
            Some(i) => i,
            None => {
                // Keep pending ordered by sequence (insertion sort over a
                // short, bounded window).
                let at = state
                    .pending
                    .iter()
                    .position(|p| p.sequence > seq)
                    .unwrap_or(state.pending.len());
                state.pending.insert(at, Pending::new(seq));
                // Window overflow: evict the oldest incomplete frame — a
                // hub died mid-frame and the chain has moved on.
                if state.pending.len() > self.window {
                    let evicted = state.pending.remove(0);
                    counters.expired_incomplete += 1;
                    // The watermark moves so late stragglers of the
                    // evicted frame count as stale, not as new pendings.
                    state.completed = Some(
                        state
                            .completed
                            .map_or(evicted.sequence, |w| w.max(evicted.sequence)),
                    );
                    if evicted.sequence == seq {
                        // The packet that caused the eviction was its own
                        // victim (window full of newer frames).
                        return Offer::Stale;
                    }
                }
                state
                    .pending
                    .iter()
                    .position(|p| p.sequence == seq)
                    .expect("just inserted")
            }
        };

        let slot = usize::from(packet.hub);
        let pend = &mut state.pending[idx];
        if pend.slots[slot].is_some() {
            counters.duplicate_packets += 1;
            return Offer::Duplicate;
        }
        pend.slots[slot] = Some(packet);
        pend.filled += 1;
        if pend.filled < N_HUBS {
            return Offer::Merged;
        }

        // Complete: detach, count gaps against the previous completion.
        let done = state.pending.remove(idx);
        if let Some(prev) = state.completed {
            if done.sequence > prev + 1 {
                counters.sequence_gaps += u64::from(done.sequence - prev - 1);
            }
        }
        state.completed = Some(
            state
                .completed
                .map_or(done.sequence, |w| w.max(done.sequence)),
        );
        counters.frames_assembled += 1;
        let packets: Vec<HubPacket> = done.slots.into_iter().map(|s| s.expect("filled")).collect();
        Offer::Complete(ChainFrame {
            chain,
            sequence: done.sequence,
            packets,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use reads_blm::hubs::split_frame;
    use reads_blm::N_BLM;

    fn packets(seq: u32) -> Vec<HubPacket> {
        let readings: Vec<f64> = (0..N_BLM).map(|j| 110_000.0 + j as f64).collect();
        let mut ps = split_frame(&readings, seq);
        for p in &mut ps {
            p.sequence = seq;
        }
        ps
    }

    #[test]
    fn in_order_packets_complete_cleanly() {
        let mut asm = FrameAssembler::new(8);
        let mut c = NetCounters::default();
        for seq in 0..3u32 {
            let ps = packets(seq);
            for (i, p) in ps.into_iter().enumerate() {
                let out = asm.offer(0, p, &mut c);
                if i == N_HUBS - 1 {
                    let Offer::Complete(cf) = out else {
                        panic!("frame should complete")
                    };
                    assert_eq!(cf.sequence, seq);
                    assert_eq!(cf.packets.len(), N_HUBS);
                } else {
                    assert_eq!(out, Offer::Merged);
                }
            }
        }
        assert_eq!(c.frames_assembled, 3);
        assert_eq!(c.anomalies(), 0);
        assert_eq!(asm.pending(), 0);
    }

    #[test]
    fn reordered_packets_within_window_still_complete() {
        let mut asm = FrameAssembler::new(8);
        let mut c = NetCounters::default();
        let mut a0 = packets(0);
        let mut a1 = packets(1);
        let b0 = packets(0);
        let mut completions = 0;
        // Chain 4: six packets of seq 1 arrive first, then all of seq 0
        // (out of order but not yet stale), then seq 1's last packet.
        let a1_last = a1.pop().unwrap();
        for p in a1 {
            assert_eq!(asm.offer(4, p, &mut c), Offer::Merged);
        }
        let a0_last = a0.pop().unwrap();
        for p in a0 {
            assert_eq!(asm.offer(4, p, &mut c), Offer::Merged);
        }
        if matches!(asm.offer(4, a0_last, &mut c), Offer::Complete(_)) {
            completions += 1;
        }
        if matches!(asm.offer(4, a1_last, &mut c), Offer::Complete(_)) {
            completions += 1;
        }
        // Another chain is unaffected.
        for p in b0 {
            if matches!(asm.offer(7, p, &mut c), Offer::Complete(_)) {
                completions += 1;
            }
        }
        assert_eq!(completions, 3);
        assert_eq!(
            c.reordered, 7,
            "all of chain 4's seq-0 packets arrived late"
        );
        assert_eq!(c.stale_drops, 0);
        assert_eq!(c.frames_assembled, 3);
        assert_eq!(c.sequence_gaps, 0);
        assert_eq!(asm.pending(), 0);
    }

    #[test]
    fn gaps_duplicates_and_eviction_are_counted() {
        let mut asm = FrameAssembler::new(2);
        let mut c = NetCounters::default();
        // Complete seq 0.
        for p in packets(0) {
            asm.offer(9, p, &mut c);
        }
        // Complete seq 5 → gap of 4.
        for p in packets(5) {
            asm.offer(9, p, &mut c);
        }
        assert_eq!(c.sequence_gaps, 4);
        // Duplicate hub within one pending frame.
        let ps = packets(6);
        let dup = ps[0].clone();
        asm.offer(9, ps[0].clone(), &mut c);
        assert_eq!(asm.offer(9, dup, &mut c), Offer::Duplicate);
        assert_eq!(c.duplicate_packets, 1);
        // Open two more sequences: window (2) overflows, seq 6 evicted.
        asm.offer(9, packets(7)[0].clone(), &mut c);
        asm.offer(9, packets(8)[0].clone(), &mut c);
        assert_eq!(c.expired_incomplete, 1);
        // Stragglers of the evicted frame are stale now.
        assert_eq!(asm.offer(9, ps[1].clone(), &mut c), Offer::Stale);
        assert!(c.stale_drops >= 1);
    }
}
