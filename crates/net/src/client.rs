//! Gateway clients: a thin blocking connection wrapper plus the
//! closed/open-loop load generators used by the loopback tests and the
//! `netserve_throughput` bench.

use crate::reactor::is_would_block;
use crate::wire::{encode_msg, FrameDecoder, Msg, Role, VerdictMsg, WireError};
use reads_blm::hubs::{ChainFrame, MultiChainSource};
use std::io::{Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

/// Whether an I/O error from [`GatewayClient::recv`] was a *mid-message*
/// connection cut (the typed [`WireError::Truncated`] travels as the error
/// source). A clean close — EOF on a message boundary — returns `false`:
/// reconnect logic treats the first as an outage to resume through and the
/// second as an orderly goodbye.
#[must_use]
pub fn was_truncated(e: &std::io::Error) -> bool {
    e.get_ref()
        .and_then(|inner| inner.downcast_ref::<WireError>())
        .is_some_and(|w| *w == WireError::Truncated)
}

/// A blocking client connection to a [`HubGateway`](crate::HubGateway).
///
/// Connecting immediately sends the role handshake; after that the
/// connection is a plain message pipe — [`GatewayClient::send`] writes one
/// wire frame, [`GatewayClient::recv`] blocks (up to a timeout) for the
/// next message from the gateway.
#[derive(Debug)]
pub struct GatewayClient {
    stream: TcpStream,
    decoder: FrameDecoder,
}

impl GatewayClient {
    /// Connects and performs the `Hello` handshake for `role`.
    ///
    /// # Errors
    /// Propagates connect/configure/write failures.
    pub fn connect(addr: impl ToSocketAddrs, role: Role) -> std::io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let mut client = Self {
            stream,
            decoder: FrameDecoder::new(),
        };
        client.send(&Msg::Hello { role })?;
        Ok(client)
    }

    /// Connects *without* sending any handshake. The resilient client uses
    /// this to open the socket and then speak [`Msg::Resume`] itself.
    ///
    /// # Errors
    /// Propagates connect/configure failures.
    pub fn connect_raw(addr: impl ToSocketAddrs) -> std::io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Self {
            stream,
            decoder: FrameDecoder::new(),
        })
    }

    /// Sends one message.
    ///
    /// # Errors
    /// Propagates socket write failures.
    pub fn send(&mut self, msg: &Msg) -> std::io::Result<()> {
        self.stream.write_all(&encode_msg(msg))
    }

    /// Sends every hub packet of one chain frame (seven `HubData`
    /// messages, exactly what the seven independent hubs would emit —
    /// coalesced into one socket write, as a NIC would burst them).
    ///
    /// # Errors
    /// Propagates socket write failures.
    pub fn send_frame(&mut self, frame: &ChainFrame) -> std::io::Result<()> {
        let mut burst = Vec::new();
        for packet in &frame.packets {
            burst.extend_from_slice(&encode_msg(&Msg::HubData {
                chain: frame.chain,
                packet: packet.clone(),
            }));
        }
        self.stream.write_all(&burst)
    }

    /// Receives the next message, waiting at most `timeout`. Returns
    /// `Ok(None)` when the timeout elapses without a complete message.
    /// Malformed frames from the gateway are a hard error here: the server
    /// is ours, so corruption means a real bug.
    ///
    /// # Errors
    /// Propagates socket read failures; decode failures surface as
    /// [`std::io::ErrorKind::InvalidData`]; a closed peer as
    /// [`std::io::ErrorKind::UnexpectedEof`] — with
    /// [`WireError::Truncated`] as the typed error source when the cut
    /// landed mid-message (see [`was_truncated`]).
    pub fn recv(&mut self, timeout: Duration) -> std::io::Result<Option<Msg>> {
        let deadline = Instant::now() + timeout;
        let mut chunk = [0u8; 8 * 1024];
        loop {
            match self.decoder.next_msg() {
                Ok(Some(msg)) => return Ok(Some(msg)),
                Ok(None) => {}
                Err(e) => {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::InvalidData,
                        e.to_string(),
                    ))
                }
            }
            let now = Instant::now();
            if now >= deadline {
                return Ok(None);
            }
            self.stream.set_read_timeout(Some(deadline - now))?;
            match self.stream.read(&mut chunk) {
                Ok(0) => {
                    // EOF with a partial wire frame buffered is a
                    // mid-message cut — typed so reconnect logic can tell
                    // it from a clean close on a message boundary.
                    return Err(if self.decoder.buffered() > 0 {
                        std::io::Error::new(std::io::ErrorKind::UnexpectedEof, WireError::Truncated)
                    } else {
                        std::io::Error::new(
                            std::io::ErrorKind::UnexpectedEof,
                            "gateway closed the connection",
                        )
                    });
                }
                Ok(n) => self.decoder.push(&chunk[..n]),
                Err(e) if is_would_block(&e) => return Ok(None),
                Err(e) => return Err(e),
            }
        }
    }

    /// Binds this session to a registry tenant and waits for the
    /// gateway's [`Msg::TenantInfo`] answer — which names the tenant the
    /// session is *actually* bound to (an unknown tenant is not rebound;
    /// the reply then describes the binding the session kept). Verdicts
    /// arriving while waiting are discarded, so select before subscribing
    /// to a stream you care about.
    ///
    /// # Errors
    /// Propagates [`GatewayClient::recv`] failures; a timeout without an
    /// answer surfaces as [`std::io::ErrorKind::TimedOut`].
    pub fn select_tenant(&mut self, tenant: u32, timeout: Duration) -> std::io::Result<Msg> {
        self.send(&Msg::TenantSelect { tenant })?;
        let deadline = Instant::now() + timeout;
        loop {
            let now = Instant::now();
            if now >= deadline {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::TimedOut,
                    "no TenantInfo answer",
                ));
            }
            if let Some(info @ Msg::TenantInfo { .. }) = self.recv(deadline - now)? {
                return Ok(info);
            }
        }
    }

    /// Receives messages until a verdict arrives or `timeout` elapses,
    /// discarding acks along the way (subscriber convenience).
    ///
    /// # Errors
    /// Propagates [`GatewayClient::recv`] failures.
    pub fn recv_verdict(&mut self, timeout: Duration) -> std::io::Result<Option<VerdictMsg>> {
        let deadline = Instant::now() + timeout;
        loop {
            let now = Instant::now();
            if now >= deadline {
                return Ok(None);
            }
            match self.recv(deadline - now)? {
                Some(Msg::Verdict(v)) => return Ok(Some(v)),
                Some(_) => {}
                None => return Ok(None),
            }
        }
    }
}

/// Load-generator configuration.
#[derive(Debug, Clone)]
pub struct LoadGenConfig {
    /// Independent hub chains to synthesize.
    pub chains: usize,
    /// 3 ms ticks to send (each tick is one frame per chain).
    pub ticks: usize,
    /// Seed for the synthetic beam-loss source.
    pub seed: u64,
    /// Closed-loop window: maximum unacked frames in flight. `0` means
    /// open-loop (fire-and-forget, no ack pacing).
    pub window: usize,
}

impl Default for LoadGenConfig {
    fn default() -> Self {
        Self {
            chains: 8,
            ticks: 125,
            seed: 3,
            window: 256,
        }
    }
}

/// What the load generator observed.
#[derive(Debug, Clone)]
pub struct LoadReport {
    /// Complete chain frames pushed (7 hub packets each).
    pub frames_sent: u64,
    /// Frame acks received back.
    pub acks_received: u64,
    /// Wall-clock duration of the send loop (excludes the final ack
    /// drain).
    pub send_wall: Duration,
}

/// Drives a gateway with synthetic multi-chain traffic over one producer
/// connection. With `window > 0` the loop is **closed**: it never lets
/// more than `window` unacked frames ride, so a slow gateway throttles the
/// generator instead of overflowing it. With `window == 0` it is **open**:
/// frames go out as fast as the socket accepts them.
///
/// # Errors
/// Propagates connect/send failures and malformed gateway replies.
pub fn run_load(addr: impl ToSocketAddrs, cfg: &LoadGenConfig) -> std::io::Result<LoadReport> {
    let mut client = GatewayClient::connect(addr, Role::Producer)?;
    let mut source = MultiChainSource::new(cfg.chains, cfg.seed);
    let mut frames_sent = 0u64;
    let mut acks = 0u64;
    let started = Instant::now();
    for _ in 0..cfg.ticks {
        for frame in source.tick() {
            // Closed loop: at the window, drain acks down to half of it in
            // one burst — ack-per-frame ping-pong would cost a context
            // switch each on a busy host.
            if cfg.window > 0 && frames_sent - acks >= cfg.window as u64 {
                let refill = (cfg.window / 2).max(1) as u64;
                while frames_sent - acks > refill {
                    match client.recv(Duration::from_millis(200))? {
                        Some(Msg::FrameAck { .. }) => acks += 1,
                        Some(_) => {}
                        None => break, // window stuck — keep going, acks may lag
                    }
                }
            }
            client.send_frame(&frame)?;
            frames_sent += 1;
        }
    }
    let send_wall = started.elapsed();
    // Final drain: give stragglers a moment to arrive.
    let drain_deadline = Instant::now() + Duration::from_secs(2);
    while acks < frames_sent && Instant::now() < drain_deadline {
        match client.recv(Duration::from_millis(50))? {
            Some(Msg::FrameAck { .. }) => acks += 1,
            Some(_) => {}
            None => break,
        }
    }
    Ok(LoadReport {
        frames_sent,
        acks_received: acks,
        send_wall,
    })
}
