//! Property-based tests for the fixed-point substrate.
//!
//! These pin the semantics the quantization experiments depend on:
//! quantization error bounds, monotonicity, idempotence, wrap = two's
//! complement, and exactness of the product/accumulator path.

use proptest::prelude::*;
use reads_fixed::{Accum, Fixed, Fx, Overflow, QFormat, Quantizer, Rounding};

fn arb_format() -> impl Strategy<Value = QFormat> {
    (2u32..=24, -8i32..=16).prop_map(|(w, i)| QFormat::signed(w, i))
}

fn arb_unsigned_format() -> impl Strategy<Value = QFormat> {
    (1u32..=24, -8i32..=16).prop_map(|(w, i)| QFormat::unsigned(w, i))
}

proptest! {
    /// Saturating quantization never errs by more than one LSB for in-range
    /// inputs (truncation) or half an LSB (nearest).
    #[test]
    fn quantization_error_bounds(fmt in arb_format(), frac in -1.0f64..1.0) {
        let x = frac * fmt.max_value().min(1e12);
        if fmt.in_range(x) {
            let (t, ovf) = Fx::from_f64(x, fmt, Rounding::Truncate, Overflow::Saturate);
            prop_assert!(!ovf);
            prop_assert!(t.to_f64() <= x + 1e-12);
            prop_assert!((x - t.to_f64()).abs() < fmt.lsb() * (1.0 + 1e-9));

            let (n, _) = Fx::from_f64(x, fmt, Rounding::Nearest, Overflow::Saturate);
            prop_assert!((x - n.to_f64()).abs() <= 0.5 * fmt.lsb() * (1.0 + 1e-9));
        }
    }

    /// Quantization is idempotent: re-quantizing a representable value is a
    /// no-op for every mode combination.
    #[test]
    fn idempotent(fmt in arb_format(), raw_frac in -1.0f64..1.0,
                  nearest in any::<bool>(), saturate in any::<bool>()) {
        let raw = (raw_frac * fmt.raw_max() as f64) as i64;
        let raw = raw.clamp(fmt.raw_min(), fmt.raw_max());
        let v = Fx::from_raw(raw, fmt);
        let rounding = if nearest { Rounding::Nearest } else { Rounding::Truncate };
        let overflow = if saturate { Overflow::Saturate } else { Overflow::Wrap };
        let (w, ovf) = Fx::from_f64(v.to_f64(), fmt, rounding, overflow);
        prop_assert!(!ovf);
        prop_assert_eq!(w.raw(), raw);
    }

    /// Saturating quantization is monotone non-decreasing.
    #[test]
    fn monotone(fmt in arb_format(), a in -1e6f64..1e6, b in -1e6f64..1e6) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        let (qa, _) = Fx::from_f64(lo, fmt, Rounding::Truncate, Overflow::Saturate);
        let (qb, _) = Fx::from_f64(hi, fmt, Rounding::Truncate, Overflow::Saturate);
        prop_assert!(qa.to_f64() <= qb.to_f64());
    }

    /// Wrap semantics equal two's-complement truncation of the raw integer.
    #[test]
    fn wrap_matches_twos_complement(w in 2u32..=16, int_extra in 0i32..4, mult in -40i64..40) {
        let fmt = QFormat::signed(w, w as i32 + int_extra);
        // Choose x exactly on the format grid but possibly out of range.
        let raw_unwrapped = mult * (fmt.raw_max() / 3).max(1);
        let x = raw_unwrapped as f64 * fmt.lsb();
        let (v, _) = Fx::from_f64(x, fmt, Rounding::Truncate, Overflow::Wrap);
        // Expected: low-W-bit two's complement of raw_unwrapped.
        let modulus = 1i128 << fmt.width;
        let mut expect = (raw_unwrapped as i128).rem_euclid(modulus);
        if expect >= modulus / 2 { expect -= modulus; }
        prop_assert_eq!(v.raw() as i128, expect);
    }

    /// Saturated values always land on the extremes, and never panic, for
    /// arbitrary (even absurd) inputs.
    #[test]
    fn saturation_is_total(fmt in arb_format(), x in prop::num::f64::ANY) {
        let (v, _) = Fx::from_f64(x, fmt, Rounding::Truncate, Overflow::Saturate);
        prop_assert!(v.raw() >= fmt.raw_min());
        prop_assert!(v.raw() <= fmt.raw_max());
    }

    /// Unsigned formats never go negative and wrap stays in range.
    #[test]
    fn unsigned_range_is_respected(fmt in arb_unsigned_format(), x in -1e9f64..1e9) {
        for overflow in [Overflow::Saturate, Overflow::Wrap] {
            let (v, _) = Fx::from_f64(x, fmt, Rounding::Truncate, overflow);
            prop_assert!(v.raw() >= 0);
            prop_assert!(v.raw() <= fmt.raw_max());
        }
    }

    /// Exact product: `mul_exact` equals the float product of the quantized
    /// operands, bit-for-bit representable.
    #[test]
    fn product_exactness(a_frac in -1.0f64..1.0, b_frac in -1.0f64..1.0) {
        let af = QFormat::signed(16, 7);
        let bf = QFormat::signed(16, 2);
        let (a, _) = Fx::from_f64(a_frac * 60.0, af, Rounding::Nearest, Overflow::Saturate);
        let (b, _) = Fx::from_f64(b_frac * 1.9, bf, Rounding::Nearest, Overflow::Saturate);
        let p = a.mul_exact(&b);
        prop_assert_eq!(p.to_f64(), a.to_f64() * b.to_f64());
    }

    /// A MAC chain over the accumulator equals the float dot product of the
    /// quantized operands (exactness of the HLS accumulator model).
    #[test]
    fn accumulator_exactness(ws in prop::collection::vec(-1.0f64..1.0, 1..64),
                             xs_seed in 0u64..1000) {
        let wf = QFormat::signed(16, 2);
        let xf = QFormat::signed(16, 7);
        let mut acc = Accum::for_product(&wf, &xf);
        let mut expect = 0.0f64;
        for (i, w) in ws.iter().enumerate() {
            let x = ((xs_seed as f64 + i as f64) * 0.37).sin() * 50.0;
            let (wq, _) = Fx::from_f64(*w, wf, Rounding::Nearest, Overflow::Saturate);
            let (xq, _) = Fx::from_f64(x, xf, Rounding::Nearest, Overflow::Saturate);
            acc.mac(&wq, &xq);
            expect += wq.to_f64() * xq.to_f64();
        }
        prop_assert!((acc.to_f64() - expect).abs() < 1e-9);
    }

    /// Quantizer overflow accounting: the overflow flag fires exactly when
    /// the input is out of range.
    #[test]
    fn overflow_accounting(fmt in arb_format(), xs in prop::collection::vec(-1e4f64..1e4, 1..100)) {
        let mut q = Quantizer::new(fmt, Rounding::Truncate, Overflow::Saturate);
        let expected = xs.iter().filter(|&&x| {
            // Truncation maps x to floor(x/lsb); out-of-range after rounding.
            let scaled = (x / fmt.lsb()).floor();
            scaled < fmt.raw_min() as f64 || scaled > fmt.raw_max() as f64
        }).count() as u64;
        for &x in &xs {
            q.quantize(x);
        }
        prop_assert_eq!(q.stats().overflows, expected);
        prop_assert_eq!(q.stats().total, xs.len() as u64);
    }

    /// The const-generic typed path agrees with the dynamic path on every
    /// operation for arbitrary inputs.
    #[test]
    fn typed_matches_dynamic(a in -200.0f64..200.0, b in -200.0f64..200.0) {
        type T = Fixed<16, 7>;
        let fmt = QFormat::signed(16, 7);
        let mk = |x: f64| Fx::from_f64(x, fmt, Rounding::Truncate, Overflow::Saturate).0;
        let (ta, tb) = (T::from_f64(a), T::from_f64(b));
        let (da, db) = (mk(a), mk(b));
        prop_assert_eq!(ta.raw(), da.raw());
        prop_assert_eq!((ta * tb).to_f64(), da.to_f64() * db.to_f64());
        prop_assert_eq!((ta + tb).to_f64(), da.to_f64() + db.to_f64());
        prop_assert_eq!((ta - tb).to_f64(), da.to_f64() - db.to_f64());
        prop_assert_eq!(ta.relu().to_f64(), da.to_f64().max(0.0));
        // Ordering agrees with real ordering of the quantized values.
        prop_assert_eq!(ta < tb, da.to_f64() < db.to_f64());
    }

    /// Typed format conversion equals dynamic convert for in-range values.
    #[test]
    fn typed_convert_matches_dynamic(x in -500.0f64..500.0) {
        let t: Fixed<12, 5> = Fixed::<18, 10>::from_f64(x).convert();
        let wide = Fx::from_f64(x, QFormat::signed(18, 10), Rounding::Truncate, Overflow::Saturate).0;
        let (narrow, _) = wide.convert(QFormat::signed(12, 5), Rounding::Truncate, Overflow::Saturate);
        prop_assert_eq!(t.raw(), narrow.raw());
    }

    /// `required_int_bits_signed` yields the minimal sufficient I for every
    /// positive magnitude.
    #[test]
    fn required_int_bits_minimal(mag in 1e-6f64..1e6) {
        let i = QFormat::required_int_bits_signed(mag);
        prop_assert!(((i - 1) as f64).exp2() > mag);
        prop_assert!(((i - 2) as f64).exp2() <= mag);
    }
}
