//! Fixed-point format descriptors and conversion modes.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Maximum supported total width in bits.
///
/// 48 bits comfortably covers every format the paper sweeps (W ≤ 20) plus
/// exact double-width products (≤ 40 bits), while keeping raw values in
/// `i64` and exact f64 conversion (f64 has 53 mantissa bits).
pub const MAX_WIDTH: u32 = 48;

/// Rounding mode applied when narrowing to a format.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum Rounding {
    /// `AC_TRN`: truncate toward negative infinity (drop low bits). This is
    /// the hls4ml/`ac_fixed` default and what the paper's firmware used.
    #[default]
    Truncate,
    /// `AC_RND`: round to nearest, ties toward +∞ (add half an LSB, then
    /// truncate) — matches `ac_fixed`'s `AC_RND` semantics.
    Nearest,
}

/// Overflow mode applied when a value exceeds the format's range.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum Overflow {
    /// `AC_WRAP`: keep the low `W` bits (two's-complement wraparound). The
    /// `ac_fixed` default; the source of the paper's "abnormal point"
    /// outliers when inner layers overflow (Sec. V / Fig. 5b).
    #[default]
    Wrap,
    /// `AC_SAT`: clamp to the representable extremes.
    Saturate,
}

/// An `ac_fixed<W, I, S>`-style format: `W` total bits of which `I` are
/// integer bits (sign bit included for signed formats), leaving `W − I`
/// fractional bits. `I` may be negative (all-fraction sub-unit ranges) or
/// exceed `W` (coarse grids), exactly as in `ac_fixed`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct QFormat {
    /// Total width in bits (1 ..= [`MAX_WIDTH`]).
    pub width: u32,
    /// Integer bits (sign included when signed). May be negative or > width.
    pub int_bits: i32,
    /// Two's-complement signed when true; unsigned otherwise.
    pub signed: bool,
}

impl QFormat {
    /// Signed format `ac_fixed<W, I, true>`.
    ///
    /// # Panics
    /// Panics if `width` is 0 or exceeds [`MAX_WIDTH`], or if a signed format
    /// is narrower than 2 bits (sign plus at least one magnitude bit).
    #[must_use]
    pub fn signed(width: u32, int_bits: i32) -> Self {
        let f = Self {
            width,
            int_bits,
            signed: true,
        };
        f.validate();
        f
    }

    /// Unsigned format `ac_fixed<W, I, false>`.
    ///
    /// # Panics
    /// Panics if `width` is 0 or exceeds [`MAX_WIDTH`].
    #[must_use]
    pub fn unsigned(width: u32, int_bits: i32) -> Self {
        let f = Self {
            width,
            int_bits,
            signed: false,
        };
        f.validate();
        f
    }

    fn validate(&self) {
        assert!(
            self.width >= 1 && self.width <= MAX_WIDTH,
            "width {} out of 1..={MAX_WIDTH}",
            self.width
        );
        assert!(
            !self.signed || self.width >= 2,
            "signed format needs >= 2 bits"
        );
        // Keep |int_bits| bounded so scale arithmetic stays exact in f64.
        assert!(
            self.int_bits.abs() <= 64,
            "int_bits {} out of range",
            self.int_bits
        );
    }

    /// Fractional bits `W − I` (negative means the LSB is worth > 1).
    #[must_use]
    pub fn frac_bits(&self) -> i32 {
        self.width as i32 - self.int_bits
    }

    /// The value of one least-significant quantum, `2^−frac_bits`.
    #[must_use]
    pub fn lsb(&self) -> f64 {
        (-self.frac_bits() as f64).exp2()
    }

    /// Largest representable raw integer.
    #[must_use]
    pub fn raw_max(&self) -> i64 {
        if self.signed {
            (1i64 << (self.width - 1)) - 1
        } else {
            (1i64 << self.width) - 1
        }
    }

    /// Smallest representable raw integer.
    #[must_use]
    pub fn raw_min(&self) -> i64 {
        if self.signed {
            -(1i64 << (self.width - 1))
        } else {
            0
        }
    }

    /// Largest representable real value.
    #[must_use]
    pub fn max_value(&self) -> f64 {
        self.raw_max() as f64 * self.lsb()
    }

    /// Smallest representable real value.
    #[must_use]
    pub fn min_value(&self) -> f64 {
        self.raw_min() as f64 * self.lsb()
    }

    /// Whether `x` lies within the representable closed range.
    #[must_use]
    pub fn in_range(&self, x: f64) -> bool {
        x >= self.min_value() && x <= self.max_value()
    }

    /// Minimum number of integer bits a signed format needs so that
    /// `max_abs` does not overflow. This is the paper's layer-based rule:
    /// *"we re-evaluated the maximum absolute output value generated inside
    /// each individual layer ... using this maximum, we calculated the
    /// required number of integer bits for each layer"* (Sec. IV-D).
    ///
    /// One bit is the sign; the rest must cover `floor(log2(max_abs)) + 1`.
    /// The result may be zero or negative for magnitudes below 0.5 —
    /// `ac_fixed` allows that, and the layer-based strategy exploits it to
    /// spend more bits on fraction for small-ranged layers.
    #[must_use]
    pub fn required_int_bits_signed(max_abs: f64) -> i32 {
        if max_abs <= 0.0 {
            return 1; // degenerate: sign bit only
        }
        // Minimal I with 2^(I-1) > max_abs, computed robustly by searching
        // around log2 (log2 alone has rounding hazards at powers of two).
        let mut i = max_abs.log2().floor() as i32 + 2;
        while i > -60 && ((i - 2) as f64).exp2() > max_abs {
            i -= 1;
        }
        while ((i - 1) as f64).exp2() <= max_abs {
            i += 1;
        }
        i
    }

    /// The exact double-width product format of `self × other`
    /// (`ac_fixed` multiplication result type).
    #[must_use]
    pub fn product(&self, other: &QFormat) -> QFormat {
        let width = self.width + other.width;
        assert!(width <= MAX_WIDTH, "product width {width} > {MAX_WIDTH}");
        QFormat {
            width,
            int_bits: self.int_bits + other.int_bits,
            signed: self.signed || other.signed,
        }
    }
}

impl fmt::Display for QFormat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "ac_fixed<{}, {}, {}>",
            self.width,
            self.int_bits,
            if self.signed { "true" } else { "false" }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_formats_ranges() {
        // ac_fixed<16,7>: the paper's default uniform precision.
        let f = QFormat::signed(16, 7);
        assert_eq!(f.frac_bits(), 9);
        assert_eq!(f.lsb(), 1.0 / 512.0);
        assert_eq!(f.max_value(), 63.998046875); // 2^6 - 2^-9
        assert_eq!(f.min_value(), -64.0);

        // ac_fixed<18,10>: the over-budget uniform alternative in Table II.
        let g = QFormat::signed(18, 10);
        assert_eq!(g.frac_bits(), 8);
        assert_eq!(g.max_value(), 512.0 - 1.0 / 256.0);
        assert_eq!(g.min_value(), -512.0);
    }

    #[test]
    fn unsigned_range() {
        let f = QFormat::unsigned(8, 0);
        assert_eq!(f.min_value(), 0.0);
        assert!((f.max_value() - (1.0 - 1.0 / 256.0)).abs() < 1e-15);
    }

    #[test]
    fn negative_int_bits_subunit_grid() {
        // ac_fixed<8, -2>: all values below 1/4, fine grid.
        let f = QFormat::signed(8, -2);
        assert_eq!(f.frac_bits(), 10);
        assert!(f.max_value() < 0.25);
        assert_eq!(f.lsb(), 1.0 / 1024.0);
    }

    #[test]
    fn int_bits_beyond_width_coarse_grid() {
        // ac_fixed<4, 8>: LSB worth 16.
        let f = QFormat::signed(4, 8);
        assert_eq!(f.frac_bits(), -4);
        assert_eq!(f.lsb(), 16.0);
        assert_eq!(f.max_value(), 7.0 * 16.0);
    }

    #[test]
    fn required_int_bits_rule() {
        assert_eq!(QFormat::required_int_bits_signed(0.0), 1);
        assert_eq!(QFormat::required_int_bits_signed(0.3), 0); // 2^-1=0.5 > 0.3
        assert_eq!(QFormat::required_int_bits_signed(0.9), 1);
        assert_eq!(QFormat::required_int_bits_signed(0.1), -2); // 2^-3=0.125 > 0.1
        assert_eq!(QFormat::required_int_bits_signed(1.0), 2); // needs 2^1 > 1.0
        assert_eq!(QFormat::required_int_bits_signed(1.5), 2);
        assert_eq!(QFormat::required_int_bits_signed(2.0), 3);
        assert_eq!(QFormat::required_int_bits_signed(63.9), 7);
        assert_eq!(QFormat::required_int_bits_signed(64.0), 8);
        assert_eq!(QFormat::required_int_bits_signed(511.0), 10);
    }

    #[test]
    fn required_int_bits_is_sufficient_and_tight() {
        for &m in &[0.01, 0.7, 1.1, 3.3, 17.0, 100.0, 120_000.0] {
            let i = QFormat::required_int_bits_signed(m);
            // Sufficient: a format with that many int bits represents m.
            assert!(((i - 1) as f64).exp2() > m, "insufficient for {m}");
            // Tight: one fewer would not suffice.
            assert!(((i - 2) as f64).exp2() <= m, "not tight for {m}");
        }
    }

    #[test]
    fn product_format() {
        let a = QFormat::signed(16, 7);
        let b = QFormat::signed(16, 2);
        let p = a.product(&b);
        assert_eq!(p.width, 32);
        assert_eq!(p.int_bits, 9);
        assert!(p.signed);
    }

    #[test]
    fn display_matches_hls_syntax() {
        assert_eq!(QFormat::signed(16, 7).to_string(), "ac_fixed<16, 7, true>");
    }

    #[test]
    #[should_panic(expected = "width")]
    fn rejects_zero_width() {
        let _ = QFormat::signed(0, 0);
    }

    #[test]
    #[should_panic(expected = "signed format")]
    fn rejects_one_bit_signed() {
        let _ = QFormat::signed(1, 1);
    }
}
