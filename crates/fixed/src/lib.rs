//! `reads-fixed` — bit-exact fixed-point arithmetic in the style of the Intel
//! HLS `ac_fixed<W, I, S>` datatype used by hls4ml firmware.
//!
//! The paper's central optimization (Sec. IV-D, Table II) is *layer-based
//! post-training quantization*: every layer of the U-Net firmware computes in
//! its own `ac_fixed<16, x>` format, where `x` (the number of integer bits)
//! is chosen from the profiled maximum absolute value of that layer's output.
//! Reproducing Table II and Figs. 5a/5b therefore requires arithmetic that is
//! bit-exact with respect to the format semantics — rounding mode, overflow
//! mode, and the exact representable grid — not merely "approximately
//! quantized" floats.
//!
//! * [`QFormat`] — a `(W, I, signed)` format descriptor, `W` total bits and
//!   `I` integer bits (so `W − I` fractional bits; `I` may exceed `W` or be
//!   negative, exactly like `ac_fixed`).
//! * [`Fx`] — a value: an integer `raw` count of `2^-(W-I)` quanta.
//! * [`Rounding`] / [`Overflow`] — `AC_TRN`/`AC_RND` and `AC_WRAP`/`AC_SAT`.
//! * [`Quantizer`] — format + modes + overflow accounting. Overflow counts
//!   feed the Fig. 5b "abnormal points from inner-layer overflow" analysis.
//! * [`Accum`] — the wide multiply-accumulate register an HLS dense/conv
//!   kernel synthesizes; exact for every MAC chain in the READS models.
//! * [`Requant`] — grid-to-grid conversion folded into integer shift/clamp
//!   constants, the substrate of the lowered inference engine in
//!   `reads-hls4ml::compiled`.

#![warn(missing_docs)]

pub mod accum;
pub mod format;
pub mod quantizer;
pub mod requant;
pub mod typed;
pub mod value;

pub use accum::Accum;
pub use format::{Overflow, QFormat, Rounding};
pub use quantizer::{OverflowStats, Quantizer};
pub use requant::Requant;
pub use typed::{Fix16x7, Fix18x10, Fixed};
pub use value::Fx;
