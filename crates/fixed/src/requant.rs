//! Quanta-domain requantization.
//!
//! The firmware interpreter converts between layer grids by dequantizing to
//! `f64` and calling [`Fx::from_f64`] — exact, but it pays a float multiply,
//! an `exp2`, a `floor`, and a range check per element. A [`Requant`] folds
//! the whole conversion into integer constants at lowering time: a single
//! arithmetic shift (with a precomputed rounding addend) plus a clamp/wrap
//! against the destination's raw range. The lowered inference engine in
//! `reads-hls4ml::compiled` runs every layer-to-layer conversion through
//! these, and the result is *bit-identical* to the `f64` route whenever the
//! source value stays below 2⁵² quanta (the same exactness domain the
//! interpreter itself relies on — see `Firmware`'s module docs).

use crate::format::{Overflow, QFormat, Rounding};
use crate::value::{wrap_to_width, Fx};

/// Integer requantizer from a source dyadic grid into a destination
/// [`QFormat`], with the rounding and overflow semantics of
/// [`Fx::from_f64`] folded into precomputed constants.
///
/// Construction fixes the source grid (`src_frac_bits`), so applying it is
/// branch-light: one shift, one addend, one range check.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Requant {
    /// `src_frac_bits − dst.frac_bits()`: right-shift distance when
    /// positive, left-shift when negative (the destination grid is finer,
    /// so the conversion is exact).
    shift: i32,
    /// Rounding addend in source quanta: `2^(shift−1)` for
    /// [`Rounding::Nearest`] with a positive shift, 0 otherwise (truncation
    /// is an arithmetic shift; non-positive shifts never round).
    half: i128,
    /// Destination raw range, inclusive.
    lo: i64,
    /// Destination raw range, inclusive.
    hi: i64,
    /// Destination format (kept for wrap semantics and introspection).
    dst: QFormat,
    /// Overflow mode applied when the shifted value leaves `[lo, hi]`.
    overflow: Overflow,
}

impl Requant {
    /// Builds the requantizer from a source grid into `dst`.
    #[must_use]
    pub fn new(src_frac_bits: i32, dst: QFormat, rounding: Rounding, overflow: Overflow) -> Self {
        let shift = src_frac_bits - dst.frac_bits();
        let half = if rounding == Rounding::Nearest && shift > 0 {
            1i128 << (shift - 1)
        } else {
            0
        };
        Self {
            shift,
            half,
            lo: dst.raw_min(),
            hi: dst.raw_max(),
            dst,
            overflow,
        }
    }

    /// The destination format.
    #[must_use]
    pub fn dst_format(&self) -> QFormat {
        self.dst
    }

    /// Requantizes a raw source-grid value. Returns the destination raw
    /// value and whether the conversion overflowed the destination range —
    /// bit-identical to `Fx::from_f64(raw · 2^-src_frac_bits, dst, …)` for
    /// every `|raw| < 2⁵²` (beyond that the `f64` reference itself starts
    /// rounding; callers uphold the bound at lowering time).
    #[inline]
    #[must_use]
    pub fn apply(&self, raw: i128) -> (i64, bool) {
        let rounded: i128 = if self.shift > 0 {
            // floor((raw + half) / 2^shift): arithmetic shift floors for
            // negatives, matching AC_TRN / AC_RND exactly.
            (raw + self.half) >> self.shift
        } else {
            // The destination grid is at least as fine: exact.
            raw << (-self.shift)
        };
        let ovf = rounded < i128::from(self.lo) || rounded > i128::from(self.hi);
        let out = if ovf {
            match self.overflow {
                Overflow::Saturate => {
                    if rounded > i128::from(self.hi) {
                        self.hi
                    } else {
                        self.lo
                    }
                }
                Overflow::Wrap => wrap_to_width(rounded, self.dst),
            }
        } else {
            rounded as i64
        };
        (out, ovf)
    }

    /// [`Requant::apply`] specialised to an `i64` source raw — the form the
    /// lowered kernels feed it (their accumulators are bounded below 2⁵²
    /// quanta at lowering time). Right shifts stay entirely in `i64`
    /// arithmetic; widening conversions (`shift ≤ 0`, where the left shift
    /// could exceed 64 bits before the range check) and degenerate shift
    /// distances delegate to the `i128` path. Bit-identical to
    /// `apply(i128::from(raw))` for every `i64` input with
    /// `|raw| < 2⁶² − half`.
    #[inline(always)]
    #[must_use]
    pub fn apply_i64(&self, raw: i64) -> (i64, bool) {
        if self.shift < 1 || self.shift > 62 {
            return self.apply(i128::from(raw));
        }
        debug_assert!(raw.unsigned_abs() < (1u64 << 62) - self.half as u64);
        // half = 2^(shift-1) ≤ 2^61 fits i64; the sum stays in range for
        // every caller that upholds the exactness bound.
        let rounded = (raw + self.half as i64) >> self.shift;
        let ovf = rounded < self.lo || rounded > self.hi;
        let out = if ovf {
            match self.overflow {
                Overflow::Saturate => {
                    if rounded > self.hi {
                        self.hi
                    } else {
                        self.lo
                    }
                }
                Overflow::Wrap => wrap_to_width(i128::from(rounded), self.dst),
            }
        } else {
            rounded
        };
        (out, ovf)
    }
}

impl crate::quantizer::Quantizer {
    /// The quanta-domain requantizer from a source grid into this
    /// quantizer's format, with its rounding and overflow modes folded in —
    /// the constants a lowered (integer) inference kernel executes instead
    /// of the `f64` [`crate::quantizer::Quantizer::quantize_dequantize`]
    /// round-trip.
    #[must_use]
    pub fn requant_from(&self, src_frac_bits: i32) -> Requant {
        Requant::new(
            src_frac_bits,
            self.format(),
            self.rounding(),
            self.overflow_mode(),
        )
    }
}

/// Reference check used by tests and lowering debug assertions: the `f64`
/// route for the same conversion.
#[must_use]
pub fn requant_via_f64(
    raw: i128,
    src_frac_bits: i32,
    dst: QFormat,
    rounding: Rounding,
    overflow: Overflow,
) -> (i64, bool) {
    let x = raw as f64 * (-src_frac_bits as f64).exp2();
    let (fx, ovf) = Fx::from_f64(x, dst, rounding, overflow);
    (fx.raw(), ovf)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_modes() -> [(Rounding, Overflow); 4] {
        [
            (Rounding::Truncate, Overflow::Saturate),
            (Rounding::Truncate, Overflow::Wrap),
            (Rounding::Nearest, Overflow::Saturate),
            (Rounding::Nearest, Overflow::Wrap),
        ]
    }

    #[test]
    fn matches_f64_route_across_shifts_and_modes() {
        // Sweep source grids coarser and finer than the destination, all
        // four mode combinations, and raws straddling zero and the range
        // edges — every case must agree with Fx::from_f64 bit for bit.
        let dst = QFormat::signed(8, 3); // raw in [-128, 127], frac 5
        for src_frac in [-2i32, 0, 3, 5, 9, 14] {
            for (rounding, overflow) in all_modes() {
                let rq = Requant::new(src_frac, dst, rounding, overflow);
                for raw in -5000i128..5000 {
                    let got = rq.apply(raw);
                    let want = requant_via_f64(raw, src_frac, dst, rounding, overflow);
                    assert_eq!(
                        got, want,
                        "raw {raw} src_frac {src_frac} {rounding:?} {overflow:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn matches_f64_route_unsigned_destination() {
        let dst = QFormat::unsigned(6, 2); // raw in [0, 63]
        for (rounding, overflow) in all_modes() {
            let rq = Requant::new(7, dst, rounding, overflow);
            for raw in -600i128..600 {
                assert_eq!(
                    rq.apply(raw),
                    requant_via_f64(raw, 7, dst, rounding, overflow),
                    "raw {raw} {rounding:?} {overflow:?}"
                );
            }
        }
    }

    #[test]
    fn exact_widening_never_overflows_or_rounds() {
        // Coarse source grid into a finer, wider destination: pure shl.
        let dst = QFormat::signed(16, 7); // frac 9
        let rq = Requant::new(4, dst, Rounding::Nearest, Overflow::Wrap);
        for raw in -100i128..100 {
            let (out, ovf) = rq.apply(raw);
            assert!(!ovf);
            assert_eq!(i128::from(out), raw << 5);
        }
    }

    #[test]
    fn nearest_ties_go_up() {
        // src frac 6 -> dst frac 5: shift 1, tie at odd raws.
        let dst = QFormat::signed(16, 11);
        let rq = Requant::new(6, dst, Rounding::Nearest, Overflow::Saturate);
        assert_eq!(rq.apply(1).0, 1, "+0.5 quanta rounds up (AC_RND)");
        assert_eq!(rq.apply(-1).0, 0, "-0.5 quanta rounds toward +inf");
        assert_eq!(rq.apply(3).0, 2);
    }

    #[test]
    fn quantizer_exposes_requant() {
        let q = crate::quantizer::Quantizer::hls_default(QFormat::signed(16, 7));
        let rq = q.requant_from(20);
        assert_eq!(rq.dst_format(), QFormat::signed(16, 7));
        // 2^20 quanta at frac 20 == 1.0 == raw 512 at frac 9.
        assert_eq!(rq.apply(1 << 20), (512, false));
    }

    #[test]
    fn apply_i64_matches_apply_everywhere() {
        // The i64 fast path must be indistinguishable from the i128 route
        // across shift signs, both overflow modes, and raws spanning the
        // destination range edges — including the delegating branches.
        for dst in [
            QFormat::signed(8, 3),
            QFormat::signed(16, 7),
            QFormat::unsigned(6, 2),
            QFormat::signed(18, 10),
        ] {
            for src_frac in [-6i32, -1, 0, 1, 5, 13, 40] {
                for (rounding, overflow) in all_modes() {
                    let rq = Requant::new(src_frac, dst, rounding, overflow);
                    for raw in -70_000i64..70_000 {
                        assert_eq!(
                            rq.apply_i64(raw),
                            rq.apply(i128::from(raw)),
                            "raw {raw} src_frac {src_frac} {dst} {rounding:?} {overflow:?}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn apply_i64_exact_at_large_magnitudes() {
        // Magnitudes near the 2^52 exactness bound the lowered kernels
        // operate under — the addend plus raw must not disturb the shift.
        let dst = QFormat::signed(16, 7);
        for (rounding, overflow) in all_modes() {
            let rq = Requant::new(44, dst, rounding, overflow);
            for base in [(1i64 << 52) - 1, (1 << 51) + 12345, 987_654_321_987] {
                for raw in [base, -base, base - 1, 1 - base] {
                    assert_eq!(
                        rq.apply_i64(raw),
                        rq.apply(i128::from(raw)),
                        "raw {raw} {rounding:?} {overflow:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn wrap_matches_twos_complement() {
        let dst = QFormat::signed(16, 7); // raw range ±2^15
        let rq = Requant::new(9, dst, Rounding::Truncate, Overflow::Wrap);
        // 64.0 == raw 32768 at frac 9 wraps to -32768.
        let (out, ovf) = rq.apply(32768);
        assert!(ovf);
        assert_eq!(out, -32768);
    }
}
