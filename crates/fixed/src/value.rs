//! Fixed-point values.

use crate::format::{Overflow, QFormat, Rounding};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A fixed-point value: `raw` quanta of `2^-frac_bits` in format `fmt`.
///
/// Invariant: `fmt.raw_min() <= raw <= fmt.raw_max()` (enforced on every
/// constructor).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Fx {
    raw: i64,
    fmt: QFormat,
}

impl Fx {
    /// Zero in the given format.
    #[must_use]
    pub fn zero(fmt: QFormat) -> Self {
        Self { raw: 0, fmt }
    }

    /// From a raw quantum count.
    ///
    /// # Panics
    /// Panics if `raw` is outside the format's representable raw range.
    #[must_use]
    pub fn from_raw(raw: i64, fmt: QFormat) -> Self {
        assert!(
            raw >= fmt.raw_min() && raw <= fmt.raw_max(),
            "raw {raw} outside {fmt}"
        );
        Self { raw, fmt }
    }

    /// Quantizes a real number into `fmt` with the given modes. Returns the
    /// value and whether the input overflowed the format's range.
    ///
    /// Non-finite inputs saturate (or wrap from the clamped extreme) and are
    /// reported as overflow.
    #[must_use]
    pub fn from_f64(x: f64, fmt: QFormat, rounding: Rounding, overflow: Overflow) -> (Self, bool) {
        let scaled = x * (fmt.frac_bits() as f64).exp2();
        let rounded = match rounding {
            Rounding::Truncate => scaled.floor(),
            Rounding::Nearest => (scaled + 0.5).floor(),
        };
        let (lo, hi) = (fmt.raw_min(), fmt.raw_max());
        let overflowed = !(lo as f64..=hi as f64).contains(&rounded) || !rounded.is_finite();
        let raw = if !overflowed {
            rounded as i64
        } else {
            match overflow {
                Overflow::Saturate => {
                    if rounded.is_nan() {
                        0
                    } else if rounded > hi as f64 {
                        hi
                    } else {
                        lo
                    }
                }
                Overflow::Wrap => {
                    if !rounded.is_finite() {
                        0
                    } else {
                        wrap_to_width(rounded as i128, fmt)
                    }
                }
            }
        };
        (Self { raw, fmt }, overflowed)
    }

    /// The raw quantum count.
    #[must_use]
    pub fn raw(&self) -> i64 {
        self.raw
    }

    /// The format.
    #[must_use]
    pub fn format(&self) -> QFormat {
        self.fmt
    }

    /// Exact real value (`f64` is exact for all widths ≤ 48).
    #[must_use]
    pub fn to_f64(&self) -> f64 {
        self.raw as f64 * self.fmt.lsb()
    }

    /// Exact sum in a caller-supplied result format (values re-aligned to the
    /// result's grid; overflow handled per `overflow`). Returns the sum and
    /// whether it overflowed.
    #[must_use]
    pub fn add(
        &self,
        other: &Fx,
        fmt: QFormat,
        rounding: Rounding,
        overflow: Overflow,
    ) -> (Fx, bool) {
        let sum = self.to_f64() + other.to_f64(); // exact: both on dyadic grids within f64
        Fx::from_f64(sum, fmt, rounding, overflow)
    }

    /// Exact product in the canonical double-width product format — never
    /// rounds or overflows (mirrors `ac_fixed` multiplication).
    #[must_use]
    pub fn mul_exact(&self, other: &Fx) -> Fx {
        let fmt = self.fmt.product(&other.fmt);
        let raw = self.raw as i128 * other.raw as i128;
        debug_assert!(raw >= fmt.raw_min() as i128 && raw <= fmt.raw_max() as i128);
        Fx {
            raw: raw as i64,
            fmt,
        }
    }

    /// Re-quantizes into another format. Returns the value and whether the
    /// magnitude overflowed the destination.
    #[must_use]
    pub fn convert(&self, fmt: QFormat, rounding: Rounding, overflow: Overflow) -> (Fx, bool) {
        Fx::from_f64(self.to_f64(), fmt, rounding, overflow)
    }
}

/// Two's-complement wrap of an arbitrary integer into the format's raw range
/// (the `AC_WRAP` semantics: keep the low `W` bits).
pub(crate) fn wrap_to_width(raw: i128, fmt: QFormat) -> i64 {
    let w = fmt.width;
    let modulus: i128 = 1i128 << w;
    let mut v = raw.rem_euclid(modulus); // low W bits, non-negative
    if fmt.signed && v >= modulus / 2 {
        v -= modulus;
    }
    v as i64
}

impl fmt::Display for Fx {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} [{}]", self.to_f64(), self.fmt)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const Q16_7: QFormat = QFormat {
        width: 16,
        int_bits: 7,
        signed: true,
    };

    #[test]
    fn roundtrip_on_grid_is_exact() {
        let fmt = Q16_7;
        for raw in [-32768i64, -1, 0, 1, 511, 32767] {
            let v = Fx::from_raw(raw, fmt);
            let (back, ovf) = Fx::from_f64(v.to_f64(), fmt, Rounding::Truncate, Overflow::Saturate);
            assert!(!ovf);
            assert_eq!(back.raw(), raw);
        }
    }

    #[test]
    fn truncate_rounds_toward_neg_infinity() {
        let fmt = QFormat::signed(8, 4); // LSB = 1/16
        let (v, _) = Fx::from_f64(0.99 / 16.0, fmt, Rounding::Truncate, Overflow::Saturate);
        assert_eq!(v.raw(), 0);
        let (v, _) = Fx::from_f64(-0.01 / 16.0, fmt, Rounding::Truncate, Overflow::Saturate);
        assert_eq!(v.raw(), -1, "floor semantics for negatives");
    }

    #[test]
    fn nearest_rounds_half_up() {
        let fmt = QFormat::signed(8, 4);
        let lsb = fmt.lsb();
        let (v, _) = Fx::from_f64(0.5 * lsb, fmt, Rounding::Nearest, Overflow::Saturate);
        assert_eq!(v.raw(), 1, "tie goes toward +inf (AC_RND)");
        let (v, _) = Fx::from_f64(-0.5 * lsb, fmt, Rounding::Nearest, Overflow::Saturate);
        assert_eq!(v.raw(), 0);
        let (v, _) = Fx::from_f64(0.49 * lsb, fmt, Rounding::Nearest, Overflow::Saturate);
        assert_eq!(v.raw(), 0);
    }

    #[test]
    fn saturation_clamps() {
        let (v, ovf) = Fx::from_f64(1e9, Q16_7, Rounding::Truncate, Overflow::Saturate);
        assert!(ovf);
        assert_eq!(v.raw(), Q16_7.raw_max());
        let (v, ovf) = Fx::from_f64(-1e9, Q16_7, Rounding::Truncate, Overflow::Saturate);
        assert!(ovf);
        assert_eq!(v.raw(), Q16_7.raw_min());
    }

    #[test]
    fn wrap_is_twos_complement() {
        // 64.0 in <16,7> scales to raw 32768 = -32768 after wrap.
        let (v, ovf) = Fx::from_f64(64.0, Q16_7, Rounding::Truncate, Overflow::Wrap);
        assert!(ovf);
        assert_eq!(v.raw(), -32768);
        assert_eq!(v.to_f64(), -64.0);
        // One LSB above max wraps to min.
        let just_over = Q16_7.max_value() + Q16_7.lsb();
        let (v, _) = Fx::from_f64(just_over, Q16_7, Rounding::Truncate, Overflow::Wrap);
        assert_eq!(v.to_f64(), Q16_7.min_value());
    }

    #[test]
    fn wrap_unsigned() {
        let fmt = QFormat::unsigned(8, 8); // integers 0..=255
        let (v, ovf) = Fx::from_f64(256.0, fmt, Rounding::Truncate, Overflow::Wrap);
        assert!(ovf);
        assert_eq!(v.to_f64(), 0.0);
        let (v, _) = Fx::from_f64(-1.0, fmt, Rounding::Truncate, Overflow::Wrap);
        assert_eq!(v.to_f64(), 255.0);
    }

    #[test]
    fn non_finite_inputs_overflow_safely() {
        for x in [f64::INFINITY, f64::NEG_INFINITY, f64::NAN] {
            let (v, ovf) = Fx::from_f64(x, Q16_7, Rounding::Truncate, Overflow::Saturate);
            assert!(ovf);
            assert!(v.raw() >= Q16_7.raw_min() && v.raw() <= Q16_7.raw_max());
            let (v, ovf) = Fx::from_f64(x, Q16_7, Rounding::Truncate, Overflow::Wrap);
            assert!(ovf);
            assert!(v.raw() >= Q16_7.raw_min() && v.raw() <= Q16_7.raw_max());
        }
    }

    #[test]
    fn mul_exact_is_exact() {
        let a_fmt = QFormat::signed(16, 7);
        let b_fmt = QFormat::signed(16, 2);
        let (a, _) = Fx::from_f64(3.25, a_fmt, Rounding::Truncate, Overflow::Saturate);
        let (b, _) = Fx::from_f64(-0.625, b_fmt, Rounding::Truncate, Overflow::Saturate);
        let p = a.mul_exact(&b);
        assert_eq!(p.to_f64(), 3.25 * -0.625);
        assert_eq!(p.format().width, 32);
    }

    #[test]
    fn add_aligns_grids() {
        let coarse = QFormat::signed(8, 4); // LSB 1/16
        let fine = QFormat::signed(12, 4); // LSB 1/256
        let (a, _) = Fx::from_f64(1.0 / 16.0, coarse, Rounding::Truncate, Overflow::Saturate);
        let (b, _) = Fx::from_f64(1.0 / 256.0, fine, Rounding::Truncate, Overflow::Saturate);
        let (sum, ovf) = a.add(&b, fine, Rounding::Truncate, Overflow::Saturate);
        assert!(!ovf);
        assert_eq!(sum.to_f64(), 1.0 / 16.0 + 1.0 / 256.0);
    }

    #[test]
    fn convert_narrowing_quantizes() {
        let fine = QFormat::signed(16, 2);
        let coarse = QFormat::signed(8, 2);
        let (v, _) = Fx::from_f64(0.123456, fine, Rounding::Truncate, Overflow::Saturate);
        let (w, ovf) = v.convert(coarse, Rounding::Truncate, Overflow::Saturate);
        assert!(!ovf);
        let err = (w.to_f64() - 0.123456).abs();
        assert!(err <= coarse.lsb(), "{err} > lsb {}", coarse.lsb());
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn from_raw_validates() {
        let _ = Fx::from_raw(1 << 20, Q16_7);
    }
}
