//! Quantizers: a format bundled with conversion modes and overflow
//! accounting.
//!
//! The firmware interpreter in `reads-hls4ml` owns one [`Quantizer`] per
//! layer. The overflow counters are the observable that explains the paper's
//! Fig. 5b: *"there are still some infrequent outliers ... which may occur
//! because of inner layer overflows"* — the counter tells us exactly when
//! that happened, and `int_margin` implements the *"half of these outliers
//! could be mitigated by adding one extra bit to the integer part"*
//! mitigation.

use crate::format::{Overflow, QFormat, Rounding};
use crate::value::Fx;
use serde::{Deserialize, Serialize};

/// Running overflow/saturation accounting for one quantizer.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct OverflowStats {
    /// Total values pushed through the quantizer.
    pub total: u64,
    /// Values whose magnitude exceeded the representable range.
    pub overflows: u64,
}

impl OverflowStats {
    /// Fraction of quantizations that overflowed.
    #[must_use]
    pub fn rate(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.overflows as f64 / self.total as f64
        }
    }

    /// Merges counters (parallel reduction).
    pub fn merge(&mut self, other: &OverflowStats) {
        self.total += other.total;
        self.overflows += other.overflows;
    }
}

/// A format with conversion modes and an overflow counter.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Quantizer {
    fmt: QFormat,
    rounding: Rounding,
    overflow: Overflow,
    stats: OverflowStats,
}

impl Quantizer {
    /// New quantizer with explicit modes.
    #[must_use]
    pub fn new(fmt: QFormat, rounding: Rounding, overflow: Overflow) -> Self {
        Self {
            fmt,
            rounding,
            overflow,
            stats: OverflowStats::default(),
        }
    }

    /// hls4ml-default modes: truncate, wrap (`AC_TRN`, `AC_WRAP`).
    #[must_use]
    pub fn hls_default(fmt: QFormat) -> Self {
        Self::new(fmt, Rounding::Truncate, Overflow::Wrap)
    }

    /// The format.
    #[must_use]
    pub fn format(&self) -> QFormat {
        self.fmt
    }

    /// The rounding mode.
    #[must_use]
    pub fn rounding(&self) -> Rounding {
        self.rounding
    }

    /// The overflow mode.
    #[must_use]
    pub fn overflow_mode(&self) -> Overflow {
        self.overflow
    }

    /// Accumulated overflow statistics.
    #[must_use]
    pub fn stats(&self) -> OverflowStats {
        self.stats
    }

    /// Resets the overflow statistics.
    pub fn reset_stats(&mut self) {
        self.stats = OverflowStats::default();
    }

    /// Quantizes one real value, recording overflow.
    pub fn quantize(&mut self, x: f64) -> Fx {
        let (v, ovf) = Fx::from_f64(x, self.fmt, self.rounding, self.overflow);
        self.stats.total += 1;
        self.stats.overflows += u64::from(ovf);
        v
    }

    /// Quantizes and immediately dequantizes (the "fake-quantization" view
    /// used when evaluating accuracy against the float reference).
    pub fn quantize_dequantize(&mut self, x: f64) -> f64 {
        self.quantize(x).to_f64()
    }

    /// Quantizes a slice in place (dequantized values), recording overflows.
    pub fn quantize_slice(&mut self, xs: &mut [f64]) {
        for x in xs {
            *x = self.quantize_dequantize(*x);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_overflows() {
        let mut q = Quantizer::new(
            QFormat::signed(8, 4),
            Rounding::Truncate,
            Overflow::Saturate,
        );
        q.quantize(1.0); // fits
        q.quantize(100.0); // overflows (max < 8)
        q.quantize(-100.0); // overflows
        assert_eq!(q.stats().total, 3);
        assert_eq!(q.stats().overflows, 2);
        assert!((q.stats().rate() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn reset_clears() {
        let mut q = Quantizer::hls_default(QFormat::signed(8, 2));
        q.quantize(50.0);
        assert_eq!(q.stats().overflows, 1);
        q.reset_stats();
        assert_eq!(q.stats(), OverflowStats::default());
    }

    #[test]
    fn quantize_dequantize_error_bound() {
        let mut q = Quantizer::new(
            QFormat::signed(16, 7),
            Rounding::Nearest,
            Overflow::Saturate,
        );
        let lsb = q.format().lsb();
        for i in 0..1000 {
            let x = (i as f64) * 0.013 - 6.0; // all in range
            let y = q.quantize_dequantize(x);
            assert!((x - y).abs() <= 0.5 * lsb + 1e-15);
        }
        assert_eq!(q.stats().overflows, 0);
    }

    #[test]
    fn truncate_error_bound_is_one_lsb() {
        let mut q = Quantizer::new(
            QFormat::signed(16, 7),
            Rounding::Truncate,
            Overflow::Saturate,
        );
        let lsb = q.format().lsb();
        for i in 0..1000 {
            let x = (i as f64) * 0.017 - 8.0;
            let y = q.quantize_dequantize(x);
            assert!(y <= x + 1e-15, "truncation never rounds up");
            assert!((x - y).abs() < lsb + 1e-15);
        }
    }

    #[test]
    fn slice_quantization() {
        let mut q = Quantizer::hls_default(QFormat::signed(16, 4));
        let mut xs = vec![0.1, 0.2, 0.3];
        q.quantize_slice(&mut xs);
        assert_eq!(q.stats().total, 3);
        for (orig, new) in [0.1, 0.2, 0.3].iter().zip(&xs) {
            assert!((orig - new).abs() < q.format().lsb());
        }
    }

    #[test]
    fn merge_stats() {
        let mut a = OverflowStats {
            total: 10,
            overflows: 2,
        };
        let b = OverflowStats {
            total: 5,
            overflows: 1,
        };
        a.merge(&b);
        assert_eq!(a.total, 15);
        assert_eq!(a.overflows, 3);
        assert!((a.rate() - 0.2).abs() < 1e-12);
    }
}
