//! Wide multiply-accumulate register.
//!
//! An HLS dense/conv kernel synthesizes the dot-product accumulator wider
//! than the operand formats so that the MAC chain itself never overflows;
//! only the final write-back into the layer's output format can. [`Accum`]
//! models exactly that: an `i128` count of `2^-frac_bits` quanta, with the
//! fractional resolution of the exact product grid.

use crate::format::{Overflow, QFormat, Rounding};
use crate::value::Fx;

/// Exact accumulator over a fixed dyadic grid.
///
/// All products added must share the same fractional resolution; mixing
/// resolutions is a firmware-generation bug, so it panics in debug builds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Accum {
    raw: i128,
    frac_bits: i32,
}

impl Accum {
    /// Zero accumulator at `frac_bits` resolution.
    #[must_use]
    pub fn zero(frac_bits: i32) -> Self {
        Self { raw: 0, frac_bits }
    }

    /// Zero accumulator matching the exact product grid of `a × b`.
    #[must_use]
    pub fn for_product(a: &QFormat, b: &QFormat) -> Self {
        Self::zero(a.frac_bits() + b.frac_bits())
    }

    /// Fractional resolution of the accumulator grid.
    #[must_use]
    pub fn frac_bits(&self) -> i32 {
        self.frac_bits
    }

    /// Adds the exact product `a × b` (no rounding, no overflow).
    pub fn mac(&mut self, a: &Fx, b: &Fx) {
        let prod_frac = a.format().frac_bits() + b.format().frac_bits();
        debug_assert_eq!(
            prod_frac, self.frac_bits,
            "MAC product grid mismatches accumulator"
        );
        self.raw += a.raw() as i128 * b.raw() as i128;
    }

    /// Adds a value already on some dyadic grid (e.g. a bias), re-aligned
    /// exactly to the accumulator grid.
    ///
    /// # Panics
    /// Panics if the value's grid is finer than the accumulator's (alignment
    /// would lose bits — a firmware bug, since HLS sizes the accumulator to
    /// the finest contributing grid).
    pub fn add_value(&mut self, v: &Fx) {
        let shift = self.frac_bits - v.format().frac_bits();
        assert!(
            shift >= 0,
            "bias grid finer than accumulator ({} vs {})",
            v.format().frac_bits(),
            self.frac_bits
        );
        self.raw += (v.raw() as i128) << shift;
    }

    /// The exact accumulated real value.
    #[must_use]
    pub fn to_f64(&self) -> f64 {
        self.raw as f64 * (-self.frac_bits as f64).exp2()
    }

    /// Writes back into an output format. Returns the value and whether it
    /// overflowed — this is the write-back that produces the paper's
    /// "abnormal points" under `Overflow::Wrap`.
    #[must_use]
    pub fn write_back(&self, fmt: QFormat, rounding: Rounding, overflow: Overflow) -> (Fx, bool) {
        Fx::from_f64(self.to_f64(), fmt, rounding, overflow)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_product_matches_float() {
        let wf = QFormat::signed(16, 2);
        let xf = QFormat::signed(16, 7);
        let mut acc = Accum::for_product(&wf, &xf);
        let mut expect = 0.0;
        for i in 0..64 {
            let w = (i as f64 * 0.017) - 0.5;
            let x = (i as f64 * 0.61) - 20.0;
            let (wq, _) = Fx::from_f64(w, wf, Rounding::Nearest, Overflow::Saturate);
            let (xq, _) = Fx::from_f64(x, xf, Rounding::Nearest, Overflow::Saturate);
            acc.mac(&wq, &xq);
            expect += wq.to_f64() * xq.to_f64();
        }
        // Quantized inputs, exact accumulation: identical to float-of-quantized.
        assert!((acc.to_f64() - expect).abs() < 1e-9);
    }

    #[test]
    fn bias_alignment_exact() {
        let wf = QFormat::signed(8, 2);
        let xf = QFormat::signed(8, 2);
        let bias_fmt = QFormat::signed(8, 4);
        let mut acc = Accum::for_product(&wf, &xf);
        let (b, _) = Fx::from_f64(3.5, bias_fmt, Rounding::Truncate, Overflow::Saturate);
        acc.add_value(&b);
        assert_eq!(acc.to_f64(), 3.5);
    }

    #[test]
    fn write_back_saturates() {
        let f = QFormat::signed(8, 8);
        let mut acc = Accum::zero(0);
        let (big, _) = Fx::from_f64(100.0, f, Rounding::Truncate, Overflow::Saturate);
        for _ in 0..10 {
            acc.add_value(&big);
        }
        let out_fmt = QFormat::signed(8, 8); // max 127
        let (v, ovf) = acc.write_back(out_fmt, Rounding::Truncate, Overflow::Saturate);
        assert!(ovf);
        assert_eq!(v.to_f64(), 127.0);
        // Wrap mode gives the two's-complement alias instead.
        let (w, ovf) = acc.write_back(out_fmt, Rounding::Truncate, Overflow::Wrap);
        assert!(ovf);
        assert_eq!(w.to_f64(), 1000.0 - 4.0 * 256.0);
    }

    #[test]
    #[should_panic(expected = "finer than accumulator")]
    fn rejects_finer_bias_grid() {
        let mut acc = Accum::zero(2);
        let (b, _) = Fx::from_f64(
            0.125,
            QFormat::signed(8, 1),
            Rounding::Truncate,
            Overflow::Saturate,
        ); // frac_bits = 7 > 2
        acc.add_value(&b);
    }

    #[test]
    fn long_mac_chain_never_loses_precision() {
        // 10k MACs of the largest magnitudes in <16,7> stay exact in i128.
        let f = QFormat::signed(16, 7);
        let max = Fx::from_raw(f.raw_max(), f);
        let mut acc = Accum::for_product(&f, &f);
        for _ in 0..10_000 {
            acc.mac(&max, &max);
        }
        let expect = max.to_f64() * max.to_f64() * 10_000.0;
        assert!((acc.to_f64() - expect).abs() / expect < 1e-12);
    }
}
