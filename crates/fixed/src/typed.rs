//! Compile-time-typed fixed point: `Fixed<W, I>`.
//!
//! The dynamic [`crate::Fx`] carries its format at runtime, which is what
//! the firmware interpreter needs (layer formats are data). Handwritten
//! kernels want the opposite — the C++ firmware writes
//! `ac_fixed<16, 7, true>` as a *type* and lets the compiler check format
//! agreement. `Fixed<W, I>` is that API: width and integer bits are const
//! generics, arithmetic yields exactly-typed results, and conversions are
//! explicit. All values are signed (matching every format the READS
//! firmware uses) and use saturating construction with truncation — the
//! conservative hand-written-kernel convention.
//!
//! Equivalence with the dynamic path is pinned by property tests in
//! `tests/proptests.rs`.

use crate::format::{Overflow, QFormat, Rounding};
use crate::value::Fx;
use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, Mul, Neg, Sub};

/// A signed fixed-point value with compile-time format `ac_fixed<W, I>`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fixed<const W: u32, const I: i32> {
    raw: i64,
}

impl<const W: u32, const I: i32> Fixed<W, I> {
    /// The format as a runtime descriptor.
    #[must_use]
    pub fn format() -> QFormat {
        QFormat::signed(W, I)
    }

    /// Zero.
    #[must_use]
    pub fn zero() -> Self {
        Self { raw: 0 }
    }

    /// Largest representable value.
    #[must_use]
    pub fn max_value() -> Self {
        Self {
            raw: Self::format().raw_max(),
        }
    }

    /// Smallest representable value.
    #[must_use]
    pub fn min_value() -> Self {
        Self {
            raw: Self::format().raw_min(),
        }
    }

    /// Saturating, truncating conversion from `f64` (the hand-written
    /// kernel convention; use [`crate::Quantizer`] when you need wrap
    /// semantics or overflow accounting).
    #[must_use]
    pub fn from_f64(x: f64) -> Self {
        let (v, _) = Fx::from_f64(x, Self::format(), Rounding::Truncate, Overflow::Saturate);
        Self { raw: v.raw() }
    }

    /// From a raw quantum count.
    ///
    /// # Panics
    /// Panics if out of range.
    #[must_use]
    pub fn from_raw(raw: i64) -> Self {
        let f = Self::format();
        assert!(raw >= f.raw_min() && raw <= f.raw_max(), "raw out of range");
        Self { raw }
    }

    /// The raw quantum count.
    #[must_use]
    pub fn raw(self) -> i64 {
        self.raw
    }

    /// Exact real value.
    #[must_use]
    pub fn to_f64(self) -> f64 {
        self.raw as f64 * Self::format().lsb()
    }

    /// The dynamic view of this value.
    #[must_use]
    pub fn to_fx(self) -> Fx {
        Fx::from_raw(self.raw, Self::format())
    }

    /// Saturating, truncating conversion into another format.
    #[must_use]
    pub fn convert<const W2: u32, const I2: i32>(self) -> Fixed<W2, I2> {
        Fixed::<W2, I2>::from_f64(self.to_f64())
    }

    /// Saturating addition within the format.
    #[must_use]
    pub fn saturating_add(self, other: Self) -> Self {
        let f = Self::format();
        Self {
            raw: (self.raw + other.raw).clamp(f.raw_min(), f.raw_max()),
        }
    }

    /// `max(0, self)` — the exact fixed-point ReLU.
    #[must_use]
    pub fn relu(self) -> Self {
        Self {
            raw: self.raw.max(0),
        }
    }
}

/// Addition yields one more integer bit (no overflow possible) — the
/// `ac_fixed` result-type rule.
impl<const W: u32, const I: i32> Add for Fixed<W, I>
where
    // The compiler cannot express W+1/I+1 result generics on stable Rust
    // without generic_const_exprs; addition therefore returns the exact sum
    // as the dynamic type.
    Fx: Sized,
{
    type Output = Fx;
    fn add(self, other: Self) -> Fx {
        let wide = QFormat::signed(W + 1, I + 1);
        let (v, ovf) = Fx::from_f64(
            self.to_f64() + other.to_f64(),
            wide,
            Rounding::Truncate,
            Overflow::Saturate,
        );
        debug_assert!(!ovf, "W+1 bits always hold the sum of two W-bit values");
        v
    }
}

impl<const W: u32, const I: i32> Sub for Fixed<W, I> {
    type Output = Fx;
    fn sub(self, other: Self) -> Fx {
        let wide = QFormat::signed(W + 1, I + 1);
        let (v, ovf) = Fx::from_f64(
            self.to_f64() - other.to_f64(),
            wide,
            Rounding::Truncate,
            Overflow::Saturate,
        );
        debug_assert!(!ovf);
        v
    }
}

/// Multiplication is exact in the double-width product type (dynamic,
/// for the same const-generic reason as addition).
impl<const W: u32, const I: i32> Mul for Fixed<W, I> {
    type Output = Fx;
    fn mul(self, other: Self) -> Fx {
        self.to_fx().mul_exact(&other.to_fx())
    }
}

impl<const W: u32, const I: i32> Neg for Fixed<W, I> {
    type Output = Self;
    fn neg(self) -> Self {
        // -raw_min saturates to raw_max (two's complement asymmetry).
        let f = Self::format();
        Self {
            raw: self
                .raw
                .checked_neg()
                .map_or(f.raw_max(), |r| r.clamp(f.raw_min(), f.raw_max())),
        }
    }
}

impl<const W: u32, const I: i32> PartialOrd for Fixed<W, I> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<const W: u32, const I: i32> Ord for Fixed<W, I> {
    fn cmp(&self, other: &Self) -> Ordering {
        self.raw.cmp(&other.raw)
    }
}

impl<const W: u32, const I: i32> fmt::Display for Fixed<W, I> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} [ac_fixed<{W}, {I}>]", self.to_f64())
    }
}

/// The paper's default firmware type.
pub type Fix16x7 = Fixed<16, 7>;
/// The over-budget Table II alternative.
pub type Fix18x10 = Fixed<18, 10>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_and_bounds() {
        let x = Fix16x7::from_f64(3.1875);
        assert!((x.to_f64() - 3.1875).abs() < Fix16x7::format().lsb());
        assert_eq!(Fix16x7::from_f64(1e9), Fix16x7::max_value());
        assert_eq!(Fix16x7::from_f64(-1e9), Fix16x7::min_value());
        assert_eq!(
            Fix16x7::max_value().to_f64(),
            64.0 - Fix16x7::format().lsb()
        );
    }

    #[test]
    fn addition_never_overflows() {
        let sum = Fix16x7::max_value() + Fix16x7::max_value();
        assert_eq!(sum.to_f64(), 2.0 * Fix16x7::max_value().to_f64());
        assert_eq!(sum.format().width, 17);
        assert_eq!(sum.format().int_bits, 8);
    }

    #[test]
    fn subtraction_exact() {
        let a = Fix16x7::from_f64(10.5);
        let b = Fix16x7::from_f64(-20.25);
        assert_eq!((a - b).to_f64(), 30.75);
    }

    #[test]
    fn multiplication_exact_double_width() {
        let a = Fix16x7::from_f64(1.5);
        let b = Fix16x7::from_f64(-2.25);
        let p = a * b;
        assert_eq!(p.to_f64(), -3.375);
        assert_eq!(p.format().width, 32);
        assert_eq!(p.format().int_bits, 14);
    }

    #[test]
    fn conversion_between_formats() {
        let x = Fix18x10::from_f64(300.0);
        let y: Fix16x7 = x.convert();
        assert_eq!(y, Fix16x7::max_value(), "300 saturates in <16,7>");
        let z: Fix18x10 = Fix16x7::from_f64(12.375).convert();
        assert_eq!(z.to_f64(), 12.375);
    }

    #[test]
    fn neg_saturates_at_min() {
        let m = Fix16x7::min_value();
        assert_eq!(-m, Fix16x7::max_value());
        assert_eq!((-Fix16x7::from_f64(5.0)).to_f64(), -5.0);
    }

    #[test]
    fn relu_and_ordering() {
        let neg = Fix16x7::from_f64(-3.0);
        let pos = Fix16x7::from_f64(2.0);
        assert_eq!(neg.relu(), Fix16x7::zero());
        assert_eq!(pos.relu(), pos);
        assert!(neg < pos);
        assert!(Fix16x7::zero() <= pos);
    }

    #[test]
    fn saturating_add_stays_in_format() {
        let near_max = Fix16x7::from_f64(60.0);
        let s = near_max.saturating_add(near_max);
        assert_eq!(s, Fix16x7::max_value());
    }

    #[test]
    fn matches_dynamic_path() {
        for i in -100..100 {
            let x = i as f64 * 0.37;
            let typed = Fix16x7::from_f64(x);
            let (dynamic, _) = Fx::from_f64(
                x,
                QFormat::signed(16, 7),
                Rounding::Truncate,
                Overflow::Saturate,
            );
            assert_eq!(typed.raw(), dynamic.raw());
        }
    }
}
