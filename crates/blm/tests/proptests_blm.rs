//! Property tests of the workload domain.

use proptest::prelude::*;
use reads_blm::scenarios::Scenario;
use reads_blm::{CorrelatedStream, FrameGenerator, LossEvent, Machine, Standardizer};

proptest! {
    /// Ground-truth fractions are a valid sub-probability pair for any
    /// frame of any scenario.
    #[test]
    fn fractions_valid_everywhere(seed in 0u64..200, idx in 0u64..1000, scn in 0usize..5) {
        let gen = FrameGenerator::new(seed, Scenario::ALL[scn].workload());
        let f = gen.frame(idx);
        for j in 0..260 {
            prop_assert!((0.0..=1.0).contains(&f.frac_mi[j]));
            prop_assert!((0.0..=1.0).contains(&f.frac_rr[j]));
            prop_assert!(f.frac_mi[j] + f.frac_rr[j] <= 1.0 + 1e-12);
        }
        prop_assert!(f.readings.iter().all(|r| r.is_finite() && *r > 0.0));
    }

    /// Event contributions respect ring symmetry: a monitor d away in
    /// either direction sees the same contribution.
    #[test]
    fn event_ring_symmetry(loc in 0usize..260, d in 1usize..100,
                           amp in 1.0f64..1e5, width in 0.5f64..10.0) {
        let e = LossEvent {
            machine: Machine::MainInjector,
            location: loc as f64,
            amplitude: amp,
            width,
        };
        let left = (loc + 260 - d) % 260;
        let right = (loc + d) % 260;
        let (a, b) = (e.contribution_at(left), e.contribution_at(right));
        prop_assert!((a - b).abs() <= 1e-9 * amp, "{a} vs {b}");
        // And the peak is at the centre.
        prop_assert!(e.contribution_at(loc) >= a);
    }

    /// Standardization is exactly invertible.
    #[test]
    fn standardizer_invertible(mean in 1e3f64..1e6, std in 1.0f64..1e5,
                               x in -1e7f64..1e7) {
        let s = Standardizer { mean, std };
        let z = s.apply(x);
        let back = z * std + mean;
        prop_assert!((back - x).abs() <= 1e-6 * (1.0 + x.abs()));
    }

    /// The correlated stream never leaks episodes: the live population is
    /// bounded under any dynamics within the config's ranges.
    #[test]
    fn correlated_stream_population_bounded(seed in 0u64..50, ticks in 1usize..120) {
        let mut stream = CorrelatedStream::with_defaults(seed);
        for _ in 0..ticks {
            let f = stream.next_frame();
            prop_assert_eq!(f.readings.len(), 260);
        }
        // Births ~1/frame, lifetime ~20 frames: population far below 200.
        prop_assert!(stream.live_episodes() < 200, "{}", stream.live_episodes());
        prop_assert_eq!(stream.frames_produced(), ticks as u64);
    }
}
