//! Loss events.

use crate::N_BLM;
use serde::{Deserialize, Serialize};

/// The two machines sharing the tunnel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Machine {
    /// Main Injector (MI).
    MainInjector,
    /// Recycler Ring (RR).
    Recycler,
}

impl Machine {
    /// Short name as used in the paper's tables ("MI" / "RR").
    #[must_use]
    pub fn tag(&self) -> &'static str {
        match self {
            Machine::MainInjector => "MI",
            Machine::Recycler => "RR",
        }
    }
}

/// A localized beam-loss event: particles scraping at one tunnel location
/// shower nearby monitors with a Gaussian spatial profile.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LossEvent {
    /// Which machine lost beam.
    pub machine: Machine,
    /// Loss centre along the ring, in monitor units `[0, 260)`.
    pub location: f64,
    /// Peak amplitude in digitizer counts.
    pub amplitude: f64,
    /// Gaussian spatial sigma in monitor units.
    pub width: f64,
}

impl LossEvent {
    /// Raw (pre-coupling) contribution of this event at monitor `j`,
    /// accounting for ring periodicity (monitor 259 neighbours monitor 0).
    #[must_use]
    pub fn contribution_at(&self, j: usize) -> f64 {
        debug_assert!(j < N_BLM);
        let mut d = (j as f64 - self.location).abs();
        d = d.min(N_BLM as f64 - d); // ring distance
        self.amplitude * (-0.5 * (d / self.width).powi(2)).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contribution_peaks_at_location() {
        let e = LossEvent {
            machine: Machine::MainInjector,
            location: 100.0,
            amplitude: 500.0,
            width: 2.0,
        };
        assert!((e.contribution_at(100) - 500.0).abs() < 1e-9);
        assert!(e.contribution_at(100) > e.contribution_at(101));
        assert!(e.contribution_at(101) > e.contribution_at(104));
        assert!(e.contribution_at(120) < 1e-6);
    }

    #[test]
    fn ring_periodicity() {
        let e = LossEvent {
            machine: Machine::Recycler,
            location: 1.0,
            amplitude: 100.0,
            width: 3.0,
        };
        // Monitor 259 is 2 away around the ring, same as monitor 3.
        assert!((e.contribution_at(259) - e.contribution_at(3)).abs() < 1e-9);
    }

    #[test]
    fn machine_tags() {
        assert_eq!(Machine::MainInjector.tag(), "MI");
        assert_eq!(Machine::Recycler.tag(), "RR");
    }
}
