//! Time-correlated frame streams.
//!
//! [`crate::FrameGenerator`] draws every 3 ms frame independently — right
//! for training-set generation, wrong for the *control* story: a real loss
//! episode persists across many digitizer frames (a scraping bump lasts
//! tens of milliseconds), which is exactly why tripping the lossy machine
//! within 3 ms matters. [`CorrelatedStream`] evolves a population of loss
//! episodes over frames: births (Poisson), exponential lifetimes, AR(1)
//! amplitude breathing and slow drift in position — so consecutive frames
//! see the same episodes and the controller's trip decisions track them.

use crate::events::{LossEvent, Machine};
use crate::frame::{DeblendSample, FrameGenerator, WorkloadConfig};
use reads_sim::dist::Sample;
use reads_sim::{LogNormal, Poisson, Rng};
use serde::{Deserialize, Serialize};

/// Episode-dynamics parameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ReplayConfig {
    /// Mean episode births per frame, MI.
    pub mi_births_per_frame: f64,
    /// Mean episode births per frame, RR.
    pub rr_births_per_frame: f64,
    /// Mean episode lifetime in frames (exponential).
    pub mean_lifetime_frames: f64,
    /// AR(1) coefficient for log-amplitude breathing (0 = white, →1 =
    /// frozen).
    pub amplitude_ar1: f64,
    /// Per-frame log-amplitude innovation sigma.
    pub amplitude_sigma: f64,
    /// Per-frame positional drift sigma, monitor units.
    pub drift_sigma: f64,
}

impl Default for ReplayConfig {
    fn default() -> Self {
        Self {
            // Birth rate × lifetime ≈ the steady-state event counts of the
            // independent workload (7 MI / 14 RR).
            mi_births_per_frame: 0.35,
            rr_births_per_frame: 0.7,
            mean_lifetime_frames: 20.0,
            amplitude_ar1: 0.9,
            amplitude_sigma: 0.15,
            drift_sigma: 0.2,
        }
    }
}

/// A live loss episode.
#[derive(Debug, Clone)]
struct Episode {
    event: LossEvent,
    /// Nominal (birth) log-amplitude the AR(1) process reverts to.
    log_amp_nominal: f64,
    /// Current deviation from nominal (AR(1) state).
    log_amp_dev: f64,
    frames_left: u64,
}

/// A stateful stream of correlated frames.
#[derive(Debug, Clone)]
pub struct CorrelatedStream {
    generator: FrameGenerator,
    config: ReplayConfig,
    episodes: Vec<Episode>,
    rng: Rng,
    frame_index: u64,
}

impl CorrelatedStream {
    /// New stream over the given tunnel workload and episode dynamics.
    #[must_use]
    pub fn new(seed: u64, workload: WorkloadConfig, config: ReplayConfig) -> Self {
        Self {
            generator: FrameGenerator::new(seed, workload),
            config,
            episodes: Vec::new(),
            rng: Rng::seed_from_u64(seed ^ 0xC0_88E1),
            frame_index: 0,
        }
    }

    /// Default dynamics over the default workload.
    #[must_use]
    pub fn with_defaults(seed: u64) -> Self {
        Self::new(seed, WorkloadConfig::default(), ReplayConfig::default())
    }

    /// Number of currently live episodes.
    #[must_use]
    pub fn live_episodes(&self) -> usize {
        self.episodes.len()
    }

    /// Frames produced so far.
    #[must_use]
    pub fn frames_produced(&self) -> u64 {
        self.frame_index
    }

    fn spawn(&mut self, machine: Machine) {
        // Amplitude/width priors shared with the independent generator's
        // workload parameters.
        let cfg = self.generator.config();
        let (amp, _) = match machine {
            Machine::MainInjector => (cfg.mi_amplitude, cfg.mi_events_per_frame),
            Machine::Recycler => (cfg.rr_amplitude, cfg.rr_events_per_frame),
        };
        let amp_dist = LogNormal::from_mean_std(amp, amp * cfg.amplitude_spread);
        let amplitude = amp_dist.sample(&mut self.rng);
        let width = self.rng.range_f64(cfg.width_range.0, cfg.width_range.1);
        let lifetime = (-(1.0 - self.rng.next_f64()).ln() * self.config.mean_lifetime_frames)
            .ceil()
            .max(1.0) as u64;
        self.episodes.push(Episode {
            event: LossEvent {
                machine,
                location: self.rng.range_f64(0.0, crate::N_BLM as f64),
                amplitude,
                width,
            },
            log_amp_nominal: amplitude.ln(),
            log_amp_dev: 0.0,
            frames_left: lifetime,
        });
    }

    /// Advances one 3 ms tick and returns the frame.
    pub fn next_frame(&mut self) -> DeblendSample {
        // Births.
        for (machine, rate) in [
            (Machine::MainInjector, self.config.mi_births_per_frame),
            (Machine::Recycler, self.config.rr_births_per_frame),
        ] {
            if rate > 0.0 {
                let births = Poisson::new(rate.min(30.0)).draw(&mut self.rng);
                for _ in 0..births {
                    self.spawn(machine);
                }
            }
        }
        // Evolution + deaths.
        let ar1 = self.config.amplitude_ar1;
        let sig = self.config.amplitude_sigma;
        let drift = self.config.drift_sigma;
        let n_blm = crate::N_BLM as f64;
        for ep in &mut self.episodes {
            ep.log_amp_dev = ar1 * ep.log_amp_dev + sig * self.rng.next_gaussian();
            ep.event.amplitude = (ep.log_amp_nominal + ep.log_amp_dev).exp();
            ep.event.location =
                (ep.event.location + drift * self.rng.next_gaussian()).rem_euclid(n_blm);
            ep.frames_left -= 1;
        }
        self.episodes.retain(|e| e.frames_left > 0);

        let events: Vec<LossEvent> = self.episodes.iter().map(|e| e.event).collect();
        self.frame_index += 1;
        self.generator.render(&events, &mut self.rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn consecutive_frames_are_correlated() {
        let mut stream = CorrelatedStream::with_defaults(1);
        // Warm up to steady state.
        for _ in 0..100 {
            let _ = stream.next_frame();
        }
        let a = stream.next_frame();
        let b = stream.next_frame();
        // The independent generator's consecutive frames share no signal;
        // the correlated stream's do. Compare attribution overlap.
        let dot = |x: &[f64], y: &[f64]| -> f64 {
            let nx = x.iter().map(|v| v * v).sum::<f64>().sqrt();
            let ny = y.iter().map(|v| v * v).sum::<f64>().sqrt();
            if nx == 0.0 || ny == 0.0 {
                return 0.0;
            }
            x.iter().zip(y).map(|(a, b)| a * b).sum::<f64>() / (nx * ny)
        };
        let correlated = dot(&a.frac_rr, &b.frac_rr);
        assert!(correlated > 0.7, "consecutive-frame cosine {correlated}");

        let gen = FrameGenerator::with_defaults(1);
        let (x, y) = (gen.frame(0), gen.frame(1));
        let independent = dot(&x.frac_rr, &y.frac_rr);
        assert!(
            correlated > independent + 0.2,
            "correlated {correlated} vs independent {independent}"
        );
    }

    #[test]
    fn steady_state_population_matches_birth_death_balance() {
        let mut stream = CorrelatedStream::with_defaults(2);
        for _ in 0..200 {
            let _ = stream.next_frame();
        }
        // Expected live episodes = (births/frame) × lifetime ≈ 21.
        let mut total = 0usize;
        for _ in 0..100 {
            let _ = stream.next_frame();
            total += stream.live_episodes();
        }
        let mean = total as f64 / 100.0;
        assert!(
            (12.0..32.0).contains(&mean),
            "steady-state population {mean}"
        );
    }

    #[test]
    fn episodes_die_out_without_births() {
        let cfg = ReplayConfig {
            mi_births_per_frame: 0.0,
            rr_births_per_frame: 0.0,
            mean_lifetime_frames: 5.0,
            ..ReplayConfig::default()
        };
        let mut stream = CorrelatedStream::new(3, WorkloadConfig::default(), cfg);
        // Seed a few episodes by hand via a births-enabled warmup config is
        // not possible; instead verify the stream stays quiet.
        for _ in 0..10 {
            let f = stream.next_frame();
            let mass: f64 = f.frac_mi.iter().chain(&f.frac_rr).sum();
            assert!(mass < 1.0, "no-birth stream must stay quiet: {mass}");
        }
        assert_eq!(stream.live_episodes(), 0);
    }

    #[test]
    fn deterministic_per_seed() {
        let mut a = CorrelatedStream::with_defaults(7);
        let mut b = CorrelatedStream::with_defaults(7);
        for _ in 0..20 {
            assert_eq!(a.next_frame().readings, b.next_frame().readings);
        }
    }
}
