//! Time-correlated frame streams.
//!
//! [`crate::FrameGenerator`] draws every 3 ms frame independently — right
//! for training-set generation, wrong for the *control* story: a real loss
//! episode persists across many digitizer frames (a scraping bump lasts
//! tens of milliseconds), which is exactly why tripping the lossy machine
//! within 3 ms matters. [`CorrelatedStream`] evolves a population of loss
//! episodes over frames: births (Poisson), exponential lifetimes, AR(1)
//! amplitude breathing and slow drift in position — so consecutive frames
//! see the same episodes and the controller's trip decisions track them.

use crate::events::{LossEvent, Machine};
use crate::frame::{DeblendSample, FrameGenerator, WorkloadConfig};
use reads_sim::dist::Sample;
use reads_sim::{LogNormal, Poisson, Rng};
use serde::{Deserialize, Serialize};

/// A seeded, deterministic decalibration campaign.
///
/// Models the slow instrumental drift the paper's adaptation argument is
/// about (Sec. I): electronics warming up (a global gain creep), pedestal
/// wander (a baseline offset), individual monitors drifting out of
/// calibration (per-monitor gain errors) and abrupt recalibration steps.
/// The campaign is a *pure function* of `(campaign, frame_index, monitor)`
/// — it draws nothing from any stream RNG, so a stream with a campaign
/// attached emits bit-identical frames up to the campaign's start and a
/// campaign-free stream is bit-identical to the pre-campaign code. Targets
/// (the true attribution fractions) are never touched: drift corrupts the
/// *measurement*, not the ground truth.
///
/// All parameters are plain scalars so the struct stays `Copy` and can
/// ride inside engine configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DriftCampaign {
    /// Seed for the per-monitor decalibration pattern (hash-derived, no
    /// RNG state).
    pub seed: u64,
    /// First frame index affected.
    pub start_frame: u64,
    /// Frames over which the drift ramps linearly from zero to full
    /// strength (`0` = step to full strength at `start_frame`).
    pub ramp_frames: u64,
    /// Full-strength global gain multiplier (`1.0` = no gain drift).
    pub gain: f64,
    /// Full-strength global baseline offset, in raw counts.
    pub offset: f64,
    /// Approximate number of monitors given an individual gain error on
    /// top of the global drift (hash-selected, so roughly this many).
    pub decal_monitors: usize,
    /// Half-width of the per-monitor gain error band: a decalibrated
    /// monitor's gain is multiplied by a value in `1.0 ± decal_spread`.
    pub decal_spread: f64,
    /// Optional abrupt step: from this frame on, `step_offset` more counts
    /// are added to every reading (`u64::MAX` = never).
    pub step_frame: u64,
    /// Offset applied from `step_frame` on.
    pub step_offset: f64,
}

impl DriftCampaign {
    /// A representative campaign: a slow ~2-fitted-sigma combined
    /// gain/offset drift ramping in over `ramp_frames` frames after
    /// `start_frame`, with a dozen monitors individually decalibrated.
    #[must_use]
    pub fn demo(seed: u64, start_frame: u64, ramp_frames: u64) -> Self {
        Self {
            seed,
            start_frame,
            ramp_frames,
            gain: 1.06,
            offset: 1_500.0,
            decal_monitors: 12,
            decal_spread: 0.05,
            step_frame: u64::MAX,
            step_offset: 0.0,
        }
    }

    /// splitmix64 — the stateless hash behind the per-monitor pattern.
    fn mix(mut x: u64) -> u64 {
        x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
        x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        x ^ (x >> 31)
    }

    /// Ramp strength in `[0, 1]` at `frame`.
    #[must_use]
    pub fn strength(&self, frame: u64) -> f64 {
        if frame < self.start_frame {
            0.0
        } else if self.ramp_frames == 0 {
            1.0
        } else {
            (((frame - self.start_frame) as f64) / self.ramp_frames as f64).min(1.0)
        }
    }

    /// Full-strength gain error of one monitor (`1.0` for calibrated
    /// monitors). Deterministic in `(seed, monitor)`.
    #[must_use]
    pub fn monitor_gain(&self, monitor: usize) -> f64 {
        let h = Self::mix(self.seed ^ (monitor as u64).wrapping_mul(0xA24B_AED4_963E_E407));
        if (h % crate::N_BLM as u64) as usize >= self.decal_monitors {
            return 1.0;
        }
        // A second hash picks the error within ±decal_spread.
        let u = (Self::mix(h) >> 11) as f64 / (1u64 << 53) as f64;
        1.0 + self.decal_spread * (2.0 * u - 1.0)
    }

    /// Whether the campaign perturbs anything at `frame`.
    #[must_use]
    pub fn active(&self, frame: u64) -> bool {
        frame >= self.start_frame || frame >= self.step_frame
    }

    /// Applies the campaign in place to one frame of raw readings.
    ///
    /// A no-op (bit-identical readings) before `start_frame`.
    pub fn apply(&self, frame: u64, readings: &mut [f64]) {
        if !self.active(frame) {
            return;
        }
        let s = self.strength(frame);
        let global_gain = 1.0 + s * (self.gain - 1.0);
        let mut offset = s * self.offset;
        if frame >= self.step_frame {
            offset += self.step_offset;
        }
        for (m, r) in readings.iter_mut().enumerate() {
            let decal = 1.0 + s * (self.monitor_gain(m) - 1.0);
            *r = *r * global_gain * decal + offset;
        }
    }
}

/// Episode-dynamics parameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ReplayConfig {
    /// Mean episode births per frame, MI.
    pub mi_births_per_frame: f64,
    /// Mean episode births per frame, RR.
    pub rr_births_per_frame: f64,
    /// Mean episode lifetime in frames (exponential).
    pub mean_lifetime_frames: f64,
    /// AR(1) coefficient for log-amplitude breathing (0 = white, →1 =
    /// frozen).
    pub amplitude_ar1: f64,
    /// Per-frame log-amplitude innovation sigma.
    pub amplitude_sigma: f64,
    /// Per-frame positional drift sigma, monitor units.
    pub drift_sigma: f64,
}

impl Default for ReplayConfig {
    fn default() -> Self {
        Self {
            // Birth rate × lifetime ≈ the steady-state event counts of the
            // independent workload (7 MI / 14 RR).
            mi_births_per_frame: 0.35,
            rr_births_per_frame: 0.7,
            mean_lifetime_frames: 20.0,
            amplitude_ar1: 0.9,
            amplitude_sigma: 0.15,
            drift_sigma: 0.2,
        }
    }
}

/// A live loss episode.
#[derive(Debug, Clone)]
struct Episode {
    event: LossEvent,
    /// Nominal (birth) log-amplitude the AR(1) process reverts to.
    log_amp_nominal: f64,
    /// Current deviation from nominal (AR(1) state).
    log_amp_dev: f64,
    frames_left: u64,
}

/// A stateful stream of correlated frames.
#[derive(Debug, Clone)]
pub struct CorrelatedStream {
    generator: FrameGenerator,
    config: ReplayConfig,
    episodes: Vec<Episode>,
    rng: Rng,
    frame_index: u64,
    campaign: Option<DriftCampaign>,
}

impl CorrelatedStream {
    /// New stream over the given tunnel workload and episode dynamics.
    #[must_use]
    pub fn new(seed: u64, workload: WorkloadConfig, config: ReplayConfig) -> Self {
        Self {
            generator: FrameGenerator::new(seed, workload),
            config,
            episodes: Vec::new(),
            rng: Rng::seed_from_u64(seed ^ 0xC0_88E1),
            frame_index: 0,
            campaign: None,
        }
    }

    /// Default dynamics over the default workload.
    #[must_use]
    pub fn with_defaults(seed: u64) -> Self {
        Self::new(seed, WorkloadConfig::default(), ReplayConfig::default())
    }

    /// Attaches a decalibration campaign: every emitted frame's readings
    /// are passed through [`DriftCampaign::apply`] after rendering. The
    /// campaign draws nothing from the stream's RNG, so the frame sequence
    /// is bit-identical to the campaign-free stream before
    /// `campaign.start_frame` (and the targets are never perturbed).
    #[must_use]
    pub fn with_campaign(mut self, campaign: DriftCampaign) -> Self {
        self.campaign = Some(campaign);
        self
    }

    /// Number of currently live episodes.
    #[must_use]
    pub fn live_episodes(&self) -> usize {
        self.episodes.len()
    }

    /// Frames produced so far.
    #[must_use]
    pub fn frames_produced(&self) -> u64 {
        self.frame_index
    }

    fn spawn(&mut self, machine: Machine) {
        // Amplitude/width priors shared with the independent generator's
        // workload parameters.
        let cfg = self.generator.config();
        let (amp, _) = match machine {
            Machine::MainInjector => (cfg.mi_amplitude, cfg.mi_events_per_frame),
            Machine::Recycler => (cfg.rr_amplitude, cfg.rr_events_per_frame),
        };
        let amp_dist = LogNormal::from_mean_std(amp, amp * cfg.amplitude_spread);
        let amplitude = amp_dist.sample(&mut self.rng);
        let width = self.rng.range_f64(cfg.width_range.0, cfg.width_range.1);
        let lifetime = (-(1.0 - self.rng.next_f64()).ln() * self.config.mean_lifetime_frames)
            .ceil()
            .max(1.0) as u64;
        self.episodes.push(Episode {
            event: LossEvent {
                machine,
                location: self.rng.range_f64(0.0, crate::N_BLM as f64),
                amplitude,
                width,
            },
            log_amp_nominal: amplitude.ln(),
            log_amp_dev: 0.0,
            frames_left: lifetime,
        });
    }

    /// Advances one 3 ms tick and returns the frame.
    pub fn next_frame(&mut self) -> DeblendSample {
        // Births.
        for (machine, rate) in [
            (Machine::MainInjector, self.config.mi_births_per_frame),
            (Machine::Recycler, self.config.rr_births_per_frame),
        ] {
            if rate > 0.0 {
                let births = Poisson::new(rate.min(30.0)).draw(&mut self.rng);
                for _ in 0..births {
                    self.spawn(machine);
                }
            }
        }
        // Evolution + deaths.
        let ar1 = self.config.amplitude_ar1;
        let sig = self.config.amplitude_sigma;
        let drift = self.config.drift_sigma;
        let n_blm = crate::N_BLM as f64;
        for ep in &mut self.episodes {
            ep.log_amp_dev = ar1 * ep.log_amp_dev + sig * self.rng.next_gaussian();
            ep.event.amplitude = (ep.log_amp_nominal + ep.log_amp_dev).exp();
            ep.event.location =
                (ep.event.location + drift * self.rng.next_gaussian()).rem_euclid(n_blm);
            ep.frames_left -= 1;
        }
        self.episodes.retain(|e| e.frames_left > 0);

        let events: Vec<LossEvent> = self.episodes.iter().map(|e| e.event).collect();
        let emitted = self.frame_index;
        self.frame_index += 1;
        let mut sample = self.generator.render(&events, &mut self.rng);
        if let Some(campaign) = &self.campaign {
            campaign.apply(emitted, &mut sample.readings);
        }
        sample
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn consecutive_frames_are_correlated() {
        let mut stream = CorrelatedStream::with_defaults(1);
        // Warm up to steady state.
        for _ in 0..100 {
            let _ = stream.next_frame();
        }
        let a = stream.next_frame();
        let b = stream.next_frame();
        // The independent generator's consecutive frames share no signal;
        // the correlated stream's do. Compare attribution overlap.
        let dot = |x: &[f64], y: &[f64]| -> f64 {
            let nx = x.iter().map(|v| v * v).sum::<f64>().sqrt();
            let ny = y.iter().map(|v| v * v).sum::<f64>().sqrt();
            if nx == 0.0 || ny == 0.0 {
                return 0.0;
            }
            x.iter().zip(y).map(|(a, b)| a * b).sum::<f64>() / (nx * ny)
        };
        let correlated = dot(&a.frac_rr, &b.frac_rr);
        assert!(correlated > 0.7, "consecutive-frame cosine {correlated}");

        let gen = FrameGenerator::with_defaults(1);
        let (x, y) = (gen.frame(0), gen.frame(1));
        let independent = dot(&x.frac_rr, &y.frac_rr);
        assert!(
            correlated > independent + 0.2,
            "correlated {correlated} vs independent {independent}"
        );
    }

    #[test]
    fn steady_state_population_matches_birth_death_balance() {
        let mut stream = CorrelatedStream::with_defaults(2);
        for _ in 0..200 {
            let _ = stream.next_frame();
        }
        // Expected live episodes = (births/frame) × lifetime ≈ 21.
        let mut total = 0usize;
        for _ in 0..100 {
            let _ = stream.next_frame();
            total += stream.live_episodes();
        }
        let mean = total as f64 / 100.0;
        assert!(
            (12.0..32.0).contains(&mean),
            "steady-state population {mean}"
        );
    }

    #[test]
    fn episodes_die_out_without_births() {
        let cfg = ReplayConfig {
            mi_births_per_frame: 0.0,
            rr_births_per_frame: 0.0,
            mean_lifetime_frames: 5.0,
            ..ReplayConfig::default()
        };
        let mut stream = CorrelatedStream::new(3, WorkloadConfig::default(), cfg);
        // Seed a few episodes by hand via a births-enabled warmup config is
        // not possible; instead verify the stream stays quiet.
        for _ in 0..10 {
            let f = stream.next_frame();
            let mass: f64 = f.frac_mi.iter().chain(&f.frac_rr).sum();
            assert!(mass < 1.0, "no-birth stream must stay quiet: {mass}");
        }
        assert_eq!(stream.live_episodes(), 0);
    }

    #[test]
    fn campaign_is_noop_before_start_and_never_touches_rng() {
        let campaign = DriftCampaign::demo(5, 10, 4);
        let mut plain = CorrelatedStream::with_defaults(11);
        let mut drifted = CorrelatedStream::with_defaults(11).with_campaign(campaign);
        // Frames before start_frame — and the zero-strength ramp origin at
        // start_frame itself — are bit-identical.
        for i in 0..=10u64 {
            assert_eq!(
                plain.next_frame().readings,
                drifted.next_frame().readings,
                "frame {i} must be bit-identical up to the ramp origin"
            );
        }
        // Once active, readings diverge but targets stay the truth.
        let (a, b) = (plain.next_frame(), drifted.next_frame());
        assert_ne!(a.readings, b.readings, "campaign must perturb readings");
        assert_eq!(a.frac_mi, b.frac_mi, "targets are never perturbed");
        assert_eq!(a.frac_rr, b.frac_rr, "targets are never perturbed");
        // And the RNG streams stay in lockstep afterwards: targets keep
        // matching for the rest of the run.
        for _ in 0..20 {
            let (a, b) = (plain.next_frame(), drifted.next_frame());
            assert_eq!(a.frac_mi, b.frac_mi);
        }
    }

    #[test]
    fn campaign_ramp_and_decalibration_are_deterministic() {
        let c = DriftCampaign::demo(5, 100, 50);
        assert_eq!(c.strength(99), 0.0);
        assert_eq!(c.strength(125), 0.5);
        assert_eq!(c.strength(150), 1.0);
        assert_eq!(c.strength(10_000), 1.0);
        // Hash-selected decalibrated monitors: deterministic, roughly
        // decal_monitors of them, within the spread band.
        let gains: Vec<f64> = (0..crate::N_BLM).map(|m| c.monitor_gain(m)).collect();
        assert_eq!(
            gains,
            (0..crate::N_BLM)
                .map(|m| c.monitor_gain(m))
                .collect::<Vec<_>>()
        );
        let decal = gains.iter().filter(|&&g| g != 1.0).count();
        assert!(
            (4..=30).contains(&decal),
            "~{} monitors expected decalibrated, got {decal}",
            c.decal_monitors
        );
        for g in gains {
            assert!((g - 1.0).abs() <= c.decal_spread + 1e-12);
        }
        // Full-strength application matches the closed form.
        let mut readings = vec![1_000.0; crate::N_BLM];
        c.apply(1_000, &mut readings);
        let expected = 1_000.0 * c.gain * c.monitor_gain(0) + c.offset;
        assert!((readings[0] - expected).abs() < 1e-9);
    }

    #[test]
    fn campaign_step_change_lands_on_schedule() {
        let c = DriftCampaign {
            seed: 9,
            start_frame: u64::MAX,
            ramp_frames: 0,
            gain: 1.0,
            offset: 0.0,
            decal_monitors: 0,
            decal_spread: 0.0,
            step_frame: 50,
            step_offset: 2_000.0,
        };
        let mut before = vec![100.0; 4];
        c.apply(49, &mut before);
        assert_eq!(before, vec![100.0; 4]);
        let mut after = vec![100.0; 4];
        c.apply(50, &mut after);
        assert_eq!(after, vec![2_100.0; 4]);
    }

    #[test]
    fn deterministic_per_seed() {
        let mut a = CorrelatedStream::with_defaults(7);
        let mut b = CorrelatedStream::with_defaults(7);
        for _ in 0..20 {
            assert_eq!(a.next_frame().readings, b.next_frame().readings);
        }
    }
}
