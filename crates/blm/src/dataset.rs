//! Standardization and dataset assembly.
//!
//! The paper found that training on raw digitizer magnitudes (105k–120k)
//! through a BatchNorm layer quantizes poorly, and fixed it by
//! *standardizing the data before training* (Sec. IV-D). [`Standardizer`] is
//! that preprocessing step; it is fitted on the training frames and then
//! owned by the deployed HPS code (the pre-processing the paper runs on the
//! HPS before handing the frame to the FPGA).

use crate::frame::DeblendSample;
use reads_nn::train::Dataset;
use serde::{Deserialize, Serialize};

/// Per-dataset z-score standardizer (single global mean/std across monitors,
/// matching how an accelerator front-end would scale a homogeneous sensor
/// array).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Standardizer {
    /// Mean of the fitted readings.
    pub mean: f64,
    /// Standard deviation of the fitted readings.
    pub std: f64,
}

impl Standardizer {
    /// Fits on a set of frames.
    ///
    /// # Panics
    /// Panics on an empty set or zero variance.
    #[must_use]
    pub fn fit(frames: &[DeblendSample]) -> Self {
        assert!(!frames.is_empty(), "fit on empty frame set");
        let mut n = 0u64;
        let mut mean = 0.0f64;
        let mut m2 = 0.0f64;
        for f in frames {
            for &x in &f.readings {
                n += 1;
                let d = x - mean;
                mean += d / n as f64;
                m2 += d * (x - mean);
            }
        }
        let std = (m2 / n as f64).sqrt();
        assert!(std > 0.0, "zero-variance readings");
        Self { mean, std }
    }

    /// Standardizes one reading.
    #[inline]
    #[must_use]
    pub fn apply(&self, x: f64) -> f64 {
        (x - self.mean) / self.std
    }

    /// Standardizes a whole frame.
    #[must_use]
    pub fn apply_frame(&self, readings: &[f64]) -> Vec<f64> {
        readings.iter().map(|&x| self.apply(x)).collect()
    }
}

/// Builds the U-Net dataset: standardized 260-channel inputs, 520
/// interleaved `(MI, RR)` targets.
#[must_use]
pub fn build_unet_dataset(frames: &[DeblendSample], std: &Standardizer) -> Dataset {
    let mut d = Dataset::default();
    for f in frames {
        d.inputs.push(std.apply_frame(&f.readings));
        d.targets.push(f.target_interleaved());
    }
    d
}

/// Builds the U-Net dataset on the *raw digitizer scale* (no
/// standardization) — the paper's original "trained with a BatchNorm layer"
/// configuration (Sec. IV-D), used by the Table II collapse row.
#[must_use]
pub fn build_unet_dataset_raw(frames: &[DeblendSample]) -> Dataset {
    let mut d = Dataset::default();
    for f in frames {
        d.inputs.push(f.readings.clone());
        d.targets.push(f.target_interleaved());
    }
    d
}

/// Raw-scale MLP dataset (see [`build_unet_dataset_raw`]).
#[must_use]
pub fn build_mlp_dataset_raw(frames: &[DeblendSample]) -> Dataset {
    let mut d = Dataset::default();
    for f in frames {
        d.inputs.push(f.readings[..259].to_vec());
        let mut target = Vec::with_capacity(518);
        target.extend_from_slice(&f.frac_mi[..259]);
        target.extend_from_slice(&f.frac_rr[..259]);
        d.targets.push(target);
    }
    d
}

/// Builds the MLP dataset: the paper's MLP takes 259 inputs and emits 518
/// outputs (DESIGN.md §2) — monitor 259 is dropped, and the target is the
/// split-halves layout `[MI[0..259] | RR[0..259]]`.
#[must_use]
pub fn build_mlp_dataset(frames: &[DeblendSample], std: &Standardizer) -> Dataset {
    let mut d = Dataset::default();
    for f in frames {
        let input: Vec<f64> = f.readings[..259].iter().map(|&x| std.apply(x)).collect();
        let mut target = Vec::with_capacity(518);
        target.extend_from_slice(&f.frac_mi[..259]);
        target.extend_from_slice(&f.frac_rr[..259]);
        d.inputs.push(input);
        d.targets.push(target);
    }
    d
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::FrameGenerator;

    #[test]
    fn standardizer_centers_and_scales() {
        let g = FrameGenerator::with_defaults(1);
        let frames = g.batch(0, 50);
        let s = Standardizer::fit(&frames);
        // Re-apply to the fitted data: mean ~0, std ~1.
        let mut vals = Vec::new();
        for f in &frames {
            vals.extend(s.apply_frame(&f.readings));
        }
        let n = vals.len() as f64;
        let mean = vals.iter().sum::<f64>() / n;
        let var = vals.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n;
        assert!(mean.abs() < 1e-9, "mean {mean}");
        assert!((var - 1.0).abs() < 1e-9, "var {var}");
    }

    #[test]
    fn standardized_inputs_are_order_unity() {
        // This is the paper's point: after standardization the inputs fit
        // comfortably in a 16-bit fixed-point format.
        let g = FrameGenerator::with_defaults(2);
        let frames = g.batch(0, 100);
        let s = Standardizer::fit(&frames);
        let more = g.batch(100, 50);
        for f in &more {
            for &x in &s.apply_frame(&f.readings) {
                assert!(
                    x.abs() < 64.0,
                    "standardized reading {x} exceeds ac_fixed<16,7>"
                );
            }
        }
    }

    #[test]
    fn unet_dataset_shapes() {
        let g = FrameGenerator::with_defaults(3);
        let frames = g.batch(0, 10);
        let s = Standardizer::fit(&frames);
        let d = build_unet_dataset(&frames, &s);
        assert_eq!(d.len(), 10);
        assert_eq!(d.inputs[0].len(), 260);
        assert_eq!(d.targets[0].len(), 520);
    }

    #[test]
    fn mlp_dataset_shapes_and_layout() {
        let g = FrameGenerator::with_defaults(4);
        let frames = g.batch(0, 5);
        let s = Standardizer::fit(&frames);
        let d = build_mlp_dataset(&frames, &s);
        assert_eq!(d.inputs[0].len(), 259);
        assert_eq!(d.targets[0].len(), 518);
        assert_eq!(d.targets[0][0], frames[0].frac_mi[0]);
        assert_eq!(d.targets[0][259], frames[0].frac_rr[0]);
    }

    #[test]
    fn serde_roundtrip() {
        let s = Standardizer {
            mean: 112_000.0,
            std: 1_234.5,
        };
        let json = serde_json::to_string(&s).unwrap();
        let back: Standardizer = serde_json::from_str(&json).unwrap();
        assert_eq!(s, back);
    }
}
