//! BLM hub readout and Ethernet framing.
//!
//! The central node "receives inputs from seven BLM hubs distributed around
//! the accelerator complex" (Sec. III-A). Each hub digitizes a contiguous
//! span of monitors and ships a packet every 3 ms; the HPS reassembles the
//! 260-reading frame. The wire format here is a simple length-prefixed
//! big-endian layout with a Fletcher-16 checksum — enough to exercise real
//! encode/decode/verify code paths on the HPS side of the simulator.

use crate::N_BLM;
use serde::{Deserialize, Serialize};

/// Number of readout hubs (Sec. III-A).
pub const N_HUBS: usize = 7;

/// Magic tag leading every hub packet.
pub const HUB_MAGIC: u16 = 0xB1A5;

/// Readings are shipped as raw digitizer counts in u32.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HubPacket {
    /// Hub index `0..N_HUBS`.
    pub hub: u8,
    /// Frame sequence number (shared across hubs for one 3 ms tick).
    pub sequence: u32,
    /// Index of the first monitor in this hub's span.
    pub first_monitor: u16,
    /// Raw counts for the hub's monitors.
    pub counts: Vec<u32>,
}

/// Monitor span `[start, end)` served by hub `h` — 260 monitors split as
/// evenly as 7 hubs allow (first escapes get the extra monitor: spans of
/// 38,37,37,37,37,37,37).
#[must_use]
pub fn hub_span(h: usize) -> (usize, usize) {
    assert!(h < N_HUBS, "hub index {h}");
    let base = N_BLM / N_HUBS; // 37
    let extra = N_BLM % N_HUBS; // 1
    let start = h * base + h.min(extra);
    let len = base + usize::from(h < extra);
    (start, start + len)
}

/// Fletcher-16 checksum over a byte stream.
#[must_use]
pub fn fletcher16(data: &[u8]) -> u16 {
    let (mut a, mut b) = (0u16, 0u16);
    for &byte in data {
        a = (a + u16::from(byte)) % 255;
        b = (b + a) % 255;
    }
    (b << 8) | a
}

/// Errors while decoding a hub packet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// Buffer shorter than the fixed header.
    Truncated,
    /// Magic tag mismatch.
    BadMagic,
    /// Declared payload length inconsistent with the buffer.
    BadLength,
    /// Checksum mismatch (corrupted in flight).
    BadChecksum,
    /// Hub index out of range.
    BadHub,
}

impl HubPacket {
    /// Exact length [`HubPacket::encode`] would produce, without encoding
    /// (hot paths price Ethernet ingest per packet and must not pay an
    /// allocation for it).
    #[must_use]
    pub fn encoded_len(&self) -> usize {
        11 + 4 * self.counts.len() + 2
    }

    /// Wire-encodes the packet:
    /// `magic u16 | hub u8 | seq u32 | first u16 | n u16 | counts n×u32 | fletcher16 u16`,
    /// all big-endian.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(11 + 4 * self.counts.len() + 2);
        out.extend_from_slice(&HUB_MAGIC.to_be_bytes());
        out.push(self.hub);
        out.extend_from_slice(&self.sequence.to_be_bytes());
        out.extend_from_slice(&self.first_monitor.to_be_bytes());
        out.extend_from_slice(&(self.counts.len() as u16).to_be_bytes());
        for c in &self.counts {
            out.extend_from_slice(&c.to_be_bytes());
        }
        let ck = fletcher16(&out);
        out.extend_from_slice(&ck.to_be_bytes());
        out
    }

    /// Decodes and verifies one packet.
    pub fn decode(buf: &[u8]) -> Result<Self, DecodeError> {
        if buf.len() < 13 {
            return Err(DecodeError::Truncated);
        }
        let magic = u16::from_be_bytes([buf[0], buf[1]]);
        if magic != HUB_MAGIC {
            return Err(DecodeError::BadMagic);
        }
        let hub = buf[2];
        if usize::from(hub) >= N_HUBS {
            return Err(DecodeError::BadHub);
        }
        let sequence = u32::from_be_bytes([buf[3], buf[4], buf[5], buf[6]]);
        let first_monitor = u16::from_be_bytes([buf[7], buf[8]]);
        let n = usize::from(u16::from_be_bytes([buf[9], buf[10]]));
        let expect_len = 11 + 4 * n + 2;
        if buf.len() != expect_len {
            return Err(DecodeError::BadLength);
        }
        let body = &buf[..expect_len - 2];
        let ck = u16::from_be_bytes([buf[expect_len - 2], buf[expect_len - 1]]);
        if fletcher16(body) != ck {
            return Err(DecodeError::BadChecksum);
        }
        let counts = (0..n)
            .map(|i| {
                let o = 11 + 4 * i;
                u32::from_be_bytes([buf[o], buf[o + 1], buf[o + 2], buf[o + 3]])
            })
            .collect();
        Ok(Self {
            hub,
            sequence,
            first_monitor,
            counts,
        })
    }
}

/// Flips the given `(byte, bit)` sites in a wire buffer in place — the
/// Ethernet fault plane's in-flight corruption model. Out-of-range sites
/// are ignored; returns the number of flips applied. Any *net* change to
/// the buffer is caught by [`HubPacket::decode`]'s checksum or an earlier
/// header check — Fletcher-16 detects all single-bit errors — which is
/// exactly the property the degraded-mode ingest relies on. (A site
/// listed twice cancels itself: XOR semantics, as in hardware.)
pub fn corrupt_wire(buf: &mut [u8], sites: &[(usize, u8)]) -> usize {
    let mut applied = 0;
    for &(byte, bit) in sites {
        if byte < buf.len() && bit < 8 {
            buf[byte] ^= 1 << bit;
            applied += 1;
        }
    }
    applied
}

/// Splits a 260-reading frame into the 7 hub packets for `sequence`.
///
/// # Panics
/// Panics unless exactly [`N_BLM`] readings are provided.
#[must_use]
pub fn split_frame(readings: &[f64], sequence: u32) -> Vec<HubPacket> {
    assert_eq!(readings.len(), N_BLM);
    (0..N_HUBS)
        .map(|h| {
            let (start, end) = hub_span(h);
            HubPacket {
                hub: h as u8,
                sequence,
                first_monitor: start as u16,
                counts: readings[start..end]
                    .iter()
                    .map(|&x| x.round().clamp(0.0, f64::from(u32::MAX)) as u32)
                    .collect(),
            }
        })
        .collect()
}

/// Reassembles a frame from hub packets; all 7 hubs of the same sequence
/// must be present (any order). Returns the readings in counts.
pub fn assemble_frame(packets: &[HubPacket]) -> Result<Vec<f64>, AssembleError> {
    if packets.len() != N_HUBS {
        return Err(AssembleError::MissingHubs);
    }
    let seq = packets[0].sequence;
    let mut readings = vec![f64::NAN; N_BLM];
    let mut seen = [false; N_HUBS];
    for p in packets {
        if p.sequence != seq {
            return Err(AssembleError::MixedSequences);
        }
        let h = usize::from(p.hub);
        if seen[h] {
            return Err(AssembleError::DuplicateHub);
        }
        seen[h] = true;
        let (start, end) = hub_span(h);
        if usize::from(p.first_monitor) != start || p.counts.len() != end - start {
            return Err(AssembleError::SpanMismatch);
        }
        for (i, &c) in p.counts.iter().enumerate() {
            readings[start + i] = f64::from(c);
        }
    }
    Ok(readings)
}

/// One 3 ms tick's packets from one hub chain, tagged with the chain it
/// came from. A production central node serves several accelerator
/// sectors, each with its own seven-hub chain; the sharded inference
/// engine keys its shard assignment on `chain` so per-chain frame order
/// is preserved end to end.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChainFrame {
    /// Hub-chain (sector) index.
    pub chain: u32,
    /// Frame sequence number within the chain.
    pub sequence: u32,
    /// The chain's seven hub packets for this tick.
    pub packets: Vec<HubPacket>,
}

/// Deterministic multi-chain workload: `chains` independent synthetic
/// beam-loss streams, each backed by its own seeded
/// [`FrameGenerator`](crate::FrameGenerator), emitting one [`ChainFrame`]
/// per chain per 3 ms tick.
#[derive(Debug)]
pub struct MultiChainSource {
    gens: Vec<crate::FrameGenerator>,
    sequence: u32,
}

impl MultiChainSource {
    /// Builds `chains` generators with derived seeds (chain streams are
    /// independent but the whole source is reproducible per seed).
    ///
    /// # Panics
    /// Panics when `chains == 0`.
    #[must_use]
    pub fn new(chains: usize, seed: u64) -> Self {
        assert!(chains > 0, "a source needs at least one chain");
        let gens = (0..chains)
            .map(|c| {
                crate::FrameGenerator::with_defaults(
                    seed ^ (c as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                )
            })
            .collect();
        Self { gens, sequence: 0 }
    }

    /// Number of chains.
    #[must_use]
    pub fn chains(&self) -> usize {
        self.gens.len()
    }

    /// Next tick's sequence number (shared across chains, as in the
    /// synchronized distributed-readout deployment).
    #[must_use]
    pub fn next_sequence(&self) -> u32 {
        self.sequence
    }

    /// Emits one tick: every chain's frame, split into hub packets.
    pub fn tick(&mut self) -> Vec<ChainFrame> {
        let seq = self.sequence;
        self.sequence += 1;
        self.gens
            .iter()
            .enumerate()
            .map(|(c, gen)| {
                let sample = gen.frame(u64::from(seq));
                ChainFrame {
                    chain: c as u32,
                    sequence: seq,
                    packets: split_frame(&sample.readings, seq),
                }
            })
            .collect()
    }

    /// Emits `n` ticks, chain-interleaved in tick order.
    pub fn ticks(&mut self, n: usize) -> Vec<ChainFrame> {
        (0..n).flat_map(|_| self.tick()).collect()
    }
}

/// Frame assembly errors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AssembleError {
    /// Fewer or more than 7 packets.
    MissingHubs,
    /// Packets from different 3 ms ticks.
    MixedSequences,
    /// The same hub appeared twice.
    DuplicateHub,
    /// A packet's monitor span disagrees with the hub map.
    SpanMismatch,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_cover_all_monitors_disjointly() {
        let mut covered = vec![false; N_BLM];
        for h in 0..N_HUBS {
            let (s, e) = hub_span(h);
            for (j, slot) in covered.iter_mut().enumerate().take(e).skip(s) {
                assert!(!*slot, "monitor {j} covered twice");
                *slot = true;
            }
        }
        assert!(covered.iter().all(|&c| c));
    }

    #[test]
    fn encode_decode_roundtrip() {
        let p = HubPacket {
            hub: 3,
            sequence: 123_456,
            first_monitor: 112,
            counts: vec![111_000, 112_345, 109_999],
        };
        let bytes = p.encode();
        assert_eq!(HubPacket::decode(&bytes).unwrap(), p);
    }

    #[test]
    fn corruption_detected() {
        let p = HubPacket {
            hub: 0,
            sequence: 7,
            first_monitor: 0,
            counts: vec![1, 2, 3, 4],
        };
        let mut bytes = p.encode();
        bytes[15] ^= 0x40;
        assert_eq!(HubPacket::decode(&bytes), Err(DecodeError::BadChecksum));
    }

    #[test]
    fn corrupt_wire_flips_are_rejected_by_decode() {
        let p = HubPacket {
            hub: 2,
            sequence: 40,
            first_monitor: 75,
            counts: vec![100_000; 37],
        };
        let clean = p.encode();
        // Every single-bit flip anywhere in the packet must be rejected.
        for byte in 0..clean.len() {
            for bit in 0..8u8 {
                let mut buf = clean.clone();
                assert_eq!(corrupt_wire(&mut buf, &[(byte, bit)]), 1);
                assert!(
                    HubPacket::decode(&buf).is_err(),
                    "flip at ({byte},{bit}) slipped through"
                );
            }
        }
        // Out-of-range sites are ignored; double flips cancel.
        let mut buf = clean.clone();
        assert_eq!(corrupt_wire(&mut buf, &[(9_999, 0), (0, 8)]), 0);
        assert_eq!(corrupt_wire(&mut buf, &[(20, 3), (20, 3)]), 2);
        assert_eq!(HubPacket::decode(&buf).unwrap(), p);
    }

    #[test]
    fn truncation_and_magic_detected() {
        let p = HubPacket {
            hub: 0,
            sequence: 1,
            first_monitor: 0,
            counts: vec![5],
        };
        let bytes = p.encode();
        assert_eq!(HubPacket::decode(&bytes[..5]), Err(DecodeError::Truncated));
        let mut bad = bytes.clone();
        bad[0] = 0;
        assert_eq!(HubPacket::decode(&bad), Err(DecodeError::BadMagic));
        let mut short = bytes;
        short.pop();
        assert_eq!(HubPacket::decode(&short), Err(DecodeError::BadLength));
    }

    #[test]
    fn split_assemble_roundtrip() {
        let readings: Vec<f64> = (0..N_BLM).map(|j| 110_000.0 + j as f64).collect();
        let packets = split_frame(&readings, 99);
        assert_eq!(packets.len(), N_HUBS);
        let back = assemble_frame(&packets).unwrap();
        assert_eq!(back, readings);
    }

    #[test]
    fn assemble_rejects_mixed_sequences() {
        let readings = vec![1.0; N_BLM];
        let mut packets = split_frame(&readings, 1);
        packets[2].sequence = 2;
        assert_eq!(assemble_frame(&packets), Err(AssembleError::MixedSequences));
    }

    #[test]
    fn assemble_rejects_duplicates() {
        let readings = vec![1.0; N_BLM];
        let mut packets = split_frame(&readings, 1);
        packets[6] = packets[0].clone();
        assert_eq!(assemble_frame(&packets), Err(AssembleError::DuplicateHub));
    }

    #[test]
    fn multi_chain_source_is_deterministic_and_distinct() {
        let mut a = MultiChainSource::new(3, 77);
        let mut b = MultiChainSource::new(3, 77);
        let ta = a.ticks(2);
        let tb = b.ticks(2);
        assert_eq!(ta, tb, "same seed, same stream");
        assert_eq!(ta.len(), 6, "3 chains × 2 ticks");
        // Chains carry distinct data but a shared sequence per tick.
        assert_eq!(ta[0].sequence, ta[2].sequence);
        assert_ne!(ta[0].packets, ta[1].packets);
        // Every chain frame reassembles cleanly.
        for cf in &ta {
            assert_eq!(cf.packets.len(), N_HUBS);
            assert!(assemble_frame(&cf.packets).is_ok());
        }
        assert_eq!(a.next_sequence(), 2);
    }

    #[test]
    fn fletcher_known_value() {
        // Fletcher-16 of "abcde" is 0xC8F0.
        assert_eq!(fletcher16(b"abcde"), 0xC8F0);
    }
}
