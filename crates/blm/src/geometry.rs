//! Tunnel geometry: 260 BLMs shared by two machines.

use crate::N_BLM;
use reads_sim::Rng;
use serde::{Deserialize, Serialize};

/// The MI/RR tunnel: monitor positions and per-machine coupling gains.
///
/// At Fermilab the Recycler sits above the Main Injector in one tunnel; a
/// given BLM therefore registers losses from *both* machines, with a gain
/// that depends on its mounting position relative to each beamline. We model
/// that as a per-monitor pair of gains `(g_mi, g_rr)` drawn once per tunnel
/// instance: correlated along the ring (smooth installation variation) with
/// monitor-to-monitor scatter.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Tunnel {
    /// Coupling of each monitor to Main Injector losses.
    g_mi: Vec<f64>,
    /// Coupling of each monitor to Recycler losses.
    g_rr: Vec<f64>,
}

impl Tunnel {
    /// Builds a tunnel with seeded, smoothly varying couplings in
    /// `[0.35, 1.0]` (every monitor sees every machine, none is blind).
    #[must_use]
    pub fn new(seed: u64) -> Self {
        let mut rng = Rng::seed_from_u64(seed);
        let smooth = |rng: &mut Rng| -> Vec<f64> {
            // Sum of three ring-periodic harmonics with random phase, plus
            // per-monitor scatter, mapped into [0.35, 1.0].
            let phases: Vec<f64> = (0..3)
                .map(|_| rng.range_f64(0.0, std::f64::consts::TAU))
                .collect();
            let amps: Vec<f64> = (0..3).map(|_| rng.range_f64(0.2, 0.5)).collect();
            (0..N_BLM)
                .map(|j| {
                    let x = j as f64 / N_BLM as f64 * std::f64::consts::TAU;
                    let mut v = 0.0;
                    for (h, (p, a)) in phases.iter().zip(&amps).enumerate() {
                        v += a * ((h + 1) as f64 * x + p).sin();
                    }
                    let v = v + rng.range_f64(-0.15, 0.15);
                    // map roughly [-1.6, 1.6] -> [0.35, 1.0]
                    0.675 + v / 1.6 * 0.325
                })
                .map(|v| v.clamp(0.35, 1.0))
                .collect()
        };
        Self {
            g_mi: smooth(&mut rng),
            g_rr: smooth(&mut rng),
        }
    }

    /// Coupling of monitor `j` to the given machine.
    #[must_use]
    pub fn gain(&self, machine: crate::events::Machine, j: usize) -> f64 {
        match machine {
            crate::events::Machine::MainInjector => self.g_mi[j],
            crate::events::Machine::Recycler => self.g_rr[j],
        }
    }

    /// Number of monitors.
    #[must_use]
    pub fn n_monitors(&self) -> usize {
        N_BLM
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::Machine;

    #[test]
    fn gains_in_range_and_deterministic() {
        let t = Tunnel::new(1);
        for j in 0..N_BLM {
            for m in [Machine::MainInjector, Machine::Recycler] {
                let g = t.gain(m, j);
                assert!((0.35..=1.0).contains(&g), "gain {g}");
            }
        }
        let t2 = Tunnel::new(1);
        assert_eq!(
            t.gain(Machine::Recycler, 100),
            t2.gain(Machine::Recycler, 100)
        );
    }

    #[test]
    fn different_seeds_differ() {
        let a = Tunnel::new(1);
        let b = Tunnel::new(2);
        let diffs = (0..N_BLM)
            .filter(|&j| a.gain(Machine::MainInjector, j) != b.gain(Machine::MainInjector, j))
            .count();
        assert!(diffs > 200);
    }

    #[test]
    fn couplings_vary_smoothly() {
        // Neighbouring monitors should be correlated: mean |Δ| between
        // neighbours well below the full range.
        let t = Tunnel::new(3);
        let mean_step: f64 = (1..N_BLM)
            .map(|j| (t.gain(Machine::Recycler, j) - t.gain(Machine::Recycler, j - 1)).abs())
            .sum::<f64>()
            / (N_BLM - 1) as f64;
        assert!(mean_step < 0.15, "mean step {mean_step}");
    }
}
