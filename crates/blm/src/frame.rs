//! Frame generation: blended readings + de-blending ground truth.

use crate::events::{LossEvent, Machine};
use crate::geometry::Tunnel;
use crate::N_BLM;
use rayon::prelude::*;
use reads_sim::dist::Sample;
use reads_sim::{LogNormal, Poisson, Rng};
use serde::{Deserialize, Serialize};

/// One generated frame: what the digitizers report and what a perfect
/// de-blender would answer.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DeblendSample {
    /// Raw monitor readings in digitizer counts (baseline ≈ 105k–120k — the
    /// magnitude range the paper quotes for the original training data).
    pub readings: Vec<f64>,
    /// Ground-truth fraction of the loss at each monitor attributable to MI.
    pub frac_mi: Vec<f64>,
    /// Ground-truth fraction attributable to RR.
    pub frac_rr: Vec<f64>,
}

impl DeblendSample {
    /// Interleaved `(MI, RR)` target vector (U-Net head layout, 520 values).
    #[must_use]
    pub fn target_interleaved(&self) -> Vec<f64> {
        let mut t = Vec::with_capacity(2 * N_BLM);
        for j in 0..N_BLM {
            t.push(self.frac_mi[j]);
            t.push(self.frac_rr[j]);
        }
        t
    }
}

/// Workload parameters.
///
/// Defaults are calibrated (see `workload_statistics_match_paper` below) so
/// that the *trained model's* average outputs land near the paper's reported
/// 0.17 (MI) / 0.42 (RR): the Recycler causes both more frequent and
/// stronger losses than the Main Injector in this workload.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WorkloadConfig {
    /// Mean MI loss events per frame (Poisson).
    pub mi_events_per_frame: f64,
    /// Mean RR loss events per frame (Poisson).
    pub rr_events_per_frame: f64,
    /// Mean MI event peak amplitude in counts (lognormal).
    pub mi_amplitude: f64,
    /// Mean RR event peak amplitude in counts (lognormal).
    pub rr_amplitude: f64,
    /// Log-scale amplitude spread for both machines.
    pub amplitude_spread: f64,
    /// Spatial sigma range `[lo, hi]` in monitor units.
    pub width_range: (f64, f64),
    /// Digitizer pedestal (counts) around which baselines sit.
    pub baseline: f64,
    /// Smooth per-monitor baseline variation amplitude (counts).
    pub baseline_variation: f64,
    /// Per-reading Gaussian noise sigma (counts).
    pub noise_sigma: f64,
    /// Attribution floor (counts): loss below this at a monitor reads as
    /// "no significant source", pushing both fractions toward 0.
    pub attribution_floor: f64,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        Self {
            mi_events_per_frame: 7.0,
            rr_events_per_frame: 14.0,
            mi_amplitude: 2_400.0,
            rr_amplitude: 4_000.0,
            amplitude_spread: 0.7,
            width_range: (2.5, 5.5),
            baseline: 112_000.0,
            baseline_variation: 4_000.0,
            noise_sigma: 60.0,
            attribution_floor: 400.0,
        }
    }
}

/// Seeded generator producing [`DeblendSample`]s for a fixed tunnel.
#[derive(Debug, Clone)]
pub struct FrameGenerator {
    tunnel: Tunnel,
    config: WorkloadConfig,
    baselines: Vec<f64>,
    seed: u64,
}

impl FrameGenerator {
    /// New generator. The tunnel geometry and per-monitor baselines are
    /// fixed by `seed`; frames are then drawn per-index deterministically.
    #[must_use]
    pub fn new(seed: u64, config: WorkloadConfig) -> Self {
        let tunnel = Tunnel::new(seed);
        let mut rng = Rng::seed_from_u64(seed ^ 0xBA5E_11FE);
        let phase = rng.range_f64(0.0, std::f64::consts::TAU);
        let baselines = (0..N_BLM)
            .map(|j| {
                let x = j as f64 / N_BLM as f64 * std::f64::consts::TAU;
                config.baseline
                    + config.baseline_variation * (x * 2.0 + phase).sin()
                    + rng.range_f64(-500.0, 500.0)
            })
            .collect();
        Self {
            tunnel,
            config,
            baselines,
            seed,
        }
    }

    /// Default workload.
    #[must_use]
    pub fn with_defaults(seed: u64) -> Self {
        Self::new(seed, WorkloadConfig::default())
    }

    /// The tunnel this generator simulates.
    #[must_use]
    pub fn tunnel(&self) -> &Tunnel {
        &self.tunnel
    }

    /// The workload parameters.
    #[must_use]
    pub fn config(&self) -> &WorkloadConfig {
        &self.config
    }

    /// Draws the loss events of frame `index`.
    fn events_for(&self, rng: &mut Rng) -> Vec<LossEvent> {
        let cfg = &self.config;
        let mut events = Vec::new();
        for (machine, rate, amp) in [
            (
                Machine::MainInjector,
                cfg.mi_events_per_frame,
                cfg.mi_amplitude,
            ),
            (Machine::Recycler, cfg.rr_events_per_frame, cfg.rr_amplitude),
        ] {
            let n = Poisson::new(rate).draw(rng);
            let amp_dist = LogNormal::from_mean_std(amp, amp * cfg.amplitude_spread);
            for _ in 0..n {
                events.push(LossEvent {
                    machine,
                    location: rng.range_f64(0.0, N_BLM as f64),
                    amplitude: amp_dist.sample(rng),
                    width: rng.range_f64(cfg.width_range.0, cfg.width_range.1),
                });
            }
        }
        events
    }

    /// Generates frame `index` (any index, in any order — each frame has an
    /// independent deterministic stream).
    #[must_use]
    pub fn frame(&self, index: u64) -> DeblendSample {
        let mut rng = Rng::seed_from_u64(self.seed ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let events = self.events_for(&mut rng);
        self.render(&events, &mut rng)
    }

    /// Renders a frame from an explicit event list (shared by [`Self::frame`]
    /// and the correlated replay stream in [`crate::replay`]).
    #[must_use]
    pub fn render(&self, events: &[LossEvent], rng: &mut Rng) -> DeblendSample {
        let mut readings = self.baselines.clone();
        let mut s_mi = vec![0.0f64; N_BLM];
        let mut s_rr = vec![0.0f64; N_BLM];
        for e in events {
            // A 4-sigma window captures the event support; everything
            // outside contributes < 3e-4 of the peak.
            let lo = (e.location - 4.0 * e.width).floor() as i64;
            let hi = (e.location + 4.0 * e.width).ceil() as i64;
            for pos in lo..=hi {
                let j = pos.rem_euclid(N_BLM as i64) as usize;
                let c = e.contribution_at(j) * self.tunnel.gain(e.machine, j);
                match e.machine {
                    Machine::MainInjector => s_mi[j] += c,
                    Machine::Recycler => s_rr[j] += c,
                }
            }
        }
        let floor = self.config.attribution_floor;
        let mut frac_mi = Vec::with_capacity(N_BLM);
        let mut frac_rr = Vec::with_capacity(N_BLM);
        for j in 0..N_BLM {
            readings[j] += s_mi[j] + s_rr[j] + rng.next_gaussian() * self.config.noise_sigma;
            let denom = s_mi[j] + s_rr[j] + floor;
            frac_mi.push(s_mi[j] / denom);
            frac_rr.push(s_rr[j] / denom);
        }
        DeblendSample {
            readings,
            frac_mi,
            frac_rr,
        }
    }

    /// Generates `n` frames in parallel (deterministic by index).
    #[must_use]
    pub fn batch(&self, start_index: u64, n: usize) -> Vec<DeblendSample> {
        (0..n as u64)
            .into_par_iter()
            .map(|i| self.frame(start_index + i))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_deterministic_by_index() {
        let g = FrameGenerator::with_defaults(1);
        let a = g.frame(42);
        let b = g.frame(42);
        assert_eq!(a.readings, b.readings);
        assert_ne!(g.frame(43).readings, a.readings);
    }

    #[test]
    fn readings_on_digitizer_scale() {
        let g = FrameGenerator::with_defaults(2);
        let s = g.frame(0);
        for &r in &s.readings {
            assert!((100_000.0..200_000.0).contains(&r), "reading {r}");
        }
    }

    #[test]
    fn fractions_valid_and_complementary() {
        let g = FrameGenerator::with_defaults(3);
        for idx in 0..20 {
            let s = g.frame(idx);
            for j in 0..N_BLM {
                assert!((0.0..=1.0).contains(&s.frac_mi[j]));
                assert!((0.0..=1.0).contains(&s.frac_rr[j]));
                assert!(s.frac_mi[j] + s.frac_rr[j] <= 1.0 + 1e-12);
            }
        }
    }

    #[test]
    fn workload_statistics_match_paper() {
        // The paper reports average model outputs of ~0.17 (MI) and ~0.42
        // (RR) (Sec. V); the ground-truth label means must sit in loose
        // bands around those values for the trained model to inherit them.
        let g = FrameGenerator::with_defaults(4);
        let frames = g.batch(0, 300);
        let n = (300 * N_BLM) as f64;
        let mean_mi: f64 = frames.iter().flat_map(|s| &s.frac_mi).sum::<f64>() / n;
        let mean_rr: f64 = frames.iter().flat_map(|s| &s.frac_rr).sum::<f64>() / n;
        assert!(
            (0.10..=0.25).contains(&mean_mi),
            "mean MI fraction {mean_mi}"
        );
        assert!(
            (0.33..=0.52).contains(&mean_rr),
            "mean RR fraction {mean_rr}"
        );
        assert!(
            mean_rr > 1.8 * mean_mi,
            "RR must dominate: {mean_rr} vs {mean_mi}"
        );
    }

    #[test]
    fn batch_matches_individual_frames() {
        let g = FrameGenerator::with_defaults(5);
        let batch = g.batch(10, 8);
        for (i, s) in batch.iter().enumerate() {
            assert_eq!(s.readings, g.frame(10 + i as u64).readings);
        }
    }

    #[test]
    fn interleaved_target_layout() {
        let g = FrameGenerator::with_defaults(6);
        let s = g.frame(0);
        let t = s.target_interleaved();
        assert_eq!(t.len(), 520);
        assert_eq!(t[0], s.frac_mi[0]);
        assert_eq!(t[1], s.frac_rr[0]);
        assert_eq!(t[518], s.frac_mi[259]);
        assert_eq!(t[519], s.frac_rr[259]);
    }

    #[test]
    fn losses_are_localized() {
        // A frame's loss signal should touch a minority of monitors hard;
        // check that the top decile carries most of the attribution mass.
        let g = FrameGenerator::with_defaults(7);
        let s = g.frame(3);
        let mut total: Vec<f64> = (0..N_BLM).map(|j| s.frac_mi[j] + s.frac_rr[j]).collect();
        total.sort_by(|a, b| b.partial_cmp(a).unwrap());
        let top: f64 = total[..26].iter().sum();
        let all: f64 = total.iter().sum();
        // Uniform attribution would give the top decile exactly 0.10 of the
        // mass; the event structure concentrates it well above that.
        assert!(top / all > 0.15, "top decile share {}", top / all);
    }
}
