//! `reads-blm` — the beam-loss de-blending workload.
//!
//! The paper's central node consumes 260 Beam Loss Monitor (BLM) readings
//! every 3 ms from the joint Main Injector (MI) / Recycler Ring (RR) tunnel
//! and must attribute the loss seen by each monitor to one of the two
//! machines (the "de-blending" task; Fig. 1, Sec. I). Fermilab's sensor data
//! is not public, so this crate implements a physics-motivated synthetic
//! equivalent (DESIGN.md §1):
//!
//! * [`geometry`] — the tunnel: 260 BLMs with per-machine coupling factors
//!   (MI and RR share the tunnel at different elevations, so each monitor
//!   sees both machines with a monitor-specific gain).
//! * [`events`] — localized loss events per machine with Gaussian spatial
//!   spread along the tunnel.
//! * [`frame`] — blended, noisy monitor readings on the raw digitizer scale
//!   (baseline ≈ 105,000–120,000 counts, exactly the magnitude range the
//!   paper quotes in Sec. IV-D) plus the per-monitor de-blending ground
//!   truth.
//! * [`dataset`] — standardization (the paper's "standardize before
//!   training" fix) and conversion to `reads-nn` training datasets for both
//!   the U-Net and the MLP layouts.
//! * [`hubs`] — the 7 BLM hub readout that frames 260 readings into the
//!   Ethernet packets the central node receives (Step 0 of Fig. 2).
//! * [`acnet`] — the ACNET-bound output frame with the trip decision
//!   (Step 9 of Fig. 2).
//!
//! The generator is tuned so the *output* statistics match what the paper
//! reports for its production model: the average model output is ≈ 0.17 for
//! MI and ≈ 0.42 for RR (Sec. V) — RR is responsible for most losses, which
//! is what makes the max-abs-based quantization favour RR accuracy over MI.

#![warn(missing_docs)]

pub mod acnet;
pub mod dataset;
pub mod events;
pub mod frame;
pub mod geometry;
pub mod hubs;
pub mod replay;
pub mod scenarios;

pub use dataset::{build_mlp_dataset, build_unet_dataset, Standardizer};
pub use events::{LossEvent, Machine};
pub use frame::{DeblendSample, FrameGenerator, WorkloadConfig};
pub use geometry::Tunnel;
pub use replay::{CorrelatedStream, DriftCampaign, ReplayConfig};
pub use scenarios::Scenario;

/// Number of beam loss monitors (matches `reads_nn::models::N_BLM`).
pub const N_BLM: usize = 260;

/// The digitizer poll period: one frame every 3 ms (Sec. I).
pub const FRAME_PERIOD_MS: f64 = 3.0;
