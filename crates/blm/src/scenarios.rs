//! Named operating scenarios of the accelerator complex.
//!
//! The deployed controller sees very different beam conditions over a
//! store: quiet coasting beam, injection transients, slow-extraction spills
//! and (rarely) abort-level losses. These presets parameterize the
//! [`crate::WorkloadConfig`] generator for each regime, giving the
//! examples, tests and robustness studies realistic non-stationary inputs
//! beyond the default mixed workload the models are trained on.

use crate::frame::WorkloadConfig;
use crate::replay::DriftCampaign;
use serde::{Deserialize, Serialize};

/// A named beam condition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Scenario {
    /// The training distribution: both machines active, RR dominant.
    MixedOperations,
    /// Coasting beam: almost no losses anywhere.
    QuietStore,
    /// MI injection transient: frequent, strong, localized MI losses.
    MiInjection,
    /// RR slow-extraction spill: broad, persistent RR losses.
    RrSpill,
    /// Abort-level event: a single catastrophic loss (the condition the
    /// 3 ms trip loop exists to catch).
    AbortLevel,
}

impl Scenario {
    /// All scenarios.
    pub const ALL: [Scenario; 5] = [
        Scenario::MixedOperations,
        Scenario::QuietStore,
        Scenario::MiInjection,
        Scenario::RrSpill,
        Scenario::AbortLevel,
    ];

    /// Human-readable name.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            Scenario::MixedOperations => "mixed operations",
            Scenario::QuietStore => "quiet store",
            Scenario::MiInjection => "MI injection transient",
            Scenario::RrSpill => "RR slow-extraction spill",
            Scenario::AbortLevel => "abort-level loss",
        }
    }

    /// The workload parameters of this regime.
    #[must_use]
    pub fn workload(&self) -> WorkloadConfig {
        let base = WorkloadConfig::default();
        match self {
            Scenario::MixedOperations => base,
            Scenario::QuietStore => WorkloadConfig {
                mi_events_per_frame: 0.3,
                rr_events_per_frame: 0.5,
                mi_amplitude: 800.0,
                rr_amplitude: 900.0,
                ..base
            },
            Scenario::MiInjection => WorkloadConfig {
                mi_events_per_frame: 18.0,
                rr_events_per_frame: 3.0,
                mi_amplitude: 5_000.0,
                rr_amplitude: 1_500.0,
                width_range: (1.5, 3.0),
                ..base
            },
            Scenario::RrSpill => WorkloadConfig {
                mi_events_per_frame: 1.0,
                rr_events_per_frame: 25.0,
                rr_amplitude: 5_500.0,
                width_range: (4.0, 9.0),
                ..base
            },
            Scenario::AbortLevel => WorkloadConfig {
                mi_events_per_frame: 1.0,
                rr_events_per_frame: 2.0,
                // One event class, but enormous: tens of thousands of
                // counts over a wide stretch of the ring.
                mi_amplitude: 60_000.0,
                rr_amplitude: 2_000.0,
                amplitude_spread: 0.3,
                width_range: (8.0, 14.0),
                ..base
            },
        }
    }

    /// The decalibration campaign characteristic of this regime, for the
    /// robustness studies: how the *instrumentation* (not the beam) tends
    /// to misbehave while the regime runs. Quiet stores see slow pedestal
    /// creep, injection periods shake individual monitors out of
    /// calibration, spills warm the electronics (gain drift), and
    /// abort-level events leave a step change behind.
    #[must_use]
    pub fn drift_campaign(&self, seed: u64, start_frame: u64, ramp_frames: u64) -> DriftCampaign {
        let base = DriftCampaign::demo(seed, start_frame, ramp_frames);
        match self {
            Scenario::MixedOperations => base,
            Scenario::QuietStore => DriftCampaign {
                gain: 1.0,
                offset: 2_500.0,
                decal_monitors: 0,
                ..base
            },
            Scenario::MiInjection => DriftCampaign {
                gain: 1.01,
                offset: 300.0,
                decal_monitors: 40,
                decal_spread: 0.12,
                ..base
            },
            Scenario::RrSpill => DriftCampaign {
                gain: 1.09,
                offset: 600.0,
                decal_monitors: 8,
                ..base
            },
            Scenario::AbortLevel => DriftCampaign {
                gain: 1.0,
                offset: 0.0,
                decal_monitors: 0,
                step_frame: start_frame,
                step_offset: 4_000.0,
                ..base
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::FrameGenerator;
    use crate::N_BLM;

    fn mean_fracs(s: Scenario) -> (f64, f64) {
        let gen = FrameGenerator::new(9, s.workload());
        let frames = gen.batch(0, 120);
        let n = (120 * N_BLM) as f64;
        (
            frames.iter().flat_map(|f| &f.frac_mi).sum::<f64>() / n,
            frames.iter().flat_map(|f| &f.frac_rr).sum::<f64>() / n,
        )
    }

    #[test]
    fn quiet_store_is_quiet() {
        let (mi, rr) = mean_fracs(Scenario::QuietStore);
        assert!(mi + rr < 0.08, "quiet store attribution {mi}+{rr}");
    }

    #[test]
    fn injection_flips_dominance_to_mi() {
        let (mi, rr) = mean_fracs(Scenario::MiInjection);
        assert!(mi > 2.0 * rr, "MI must dominate injection: {mi} vs {rr}");
    }

    #[test]
    fn spill_is_rr_dominated_and_broad() {
        let (mi, rr) = mean_fracs(Scenario::RrSpill);
        assert!(rr > 5.0 * mi, "RR must dominate spill: {rr} vs {mi}");
        assert!(rr > 0.4, "spill covers much of the ring: {rr}");
    }

    #[test]
    fn abort_level_saturates_locally() {
        let gen = FrameGenerator::new(9, Scenario::AbortLevel.workload());
        let f = gen.frame(0);
        // Somewhere on the ring the loss is near-total MI attribution.
        let peak = f.frac_mi.iter().fold(0.0f64, |m, &x| m.max(x));
        assert!(peak > 0.9, "abort peak MI fraction {peak}");
        // And the readings there tower over the baseline.
        let max_reading = f.readings.iter().fold(0.0f64, |m, &x| m.max(x));
        assert!(max_reading > 140_000.0, "abort reading {max_reading}");
    }

    #[test]
    fn every_scenario_campaign_perturbs_after_start_only() {
        for s in Scenario::ALL {
            let c = s.drift_campaign(7, 20, 10);
            let mut before = vec![1_000.0; N_BLM];
            c.apply(0, &mut before);
            assert_eq!(before, vec![1_000.0; N_BLM], "{} quiet", s.name());
            let mut after = vec![1_000.0; N_BLM];
            c.apply(200, &mut after);
            assert_ne!(after, vec![1_000.0; N_BLM], "{} active", s.name());
        }
    }

    #[test]
    fn all_scenarios_generate_valid_frames() {
        for s in Scenario::ALL {
            let gen = FrameGenerator::new(3, s.workload());
            let f = gen.frame(1);
            assert_eq!(f.readings.len(), N_BLM, "{}", s.name());
            for j in 0..N_BLM {
                assert!(f.frac_mi[j] + f.frac_rr[j] <= 1.0 + 1e-12);
            }
        }
    }
}
