//! ACNET-bound output: the de-blending verdict and trip decision.
//!
//! "Based on the output, the source with higher probability will be
//! mitigated for that given time frame" (Sec. III-A): the central node sends
//! the 520 per-monitor probabilities plus a summary trip decision to the
//! facility control system (Step 9 of Fig. 2).

use crate::events::Machine;
use crate::N_BLM;
use serde::{Deserialize, Serialize};

/// Aggregate verdict for one 3 ms frame.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeblendVerdict {
    /// Frame sequence number.
    pub sequence: u32,
    /// Per-monitor MI probability (260 values).
    pub mi: Vec<f64>,
    /// Per-monitor RR probability (260 values).
    pub rr: Vec<f64>,
}

impl DeblendVerdict {
    /// Builds a verdict from the U-Net's interleaved 520-value output.
    ///
    /// # Panics
    /// Panics unless `output.len() == 520`.
    #[must_use]
    pub fn from_interleaved(sequence: u32, output: &[f64]) -> Self {
        assert_eq!(output.len(), 2 * N_BLM, "expected 520 outputs");
        let mi = output.iter().step_by(2).copied().collect();
        let rr = output.iter().skip(1).step_by(2).copied().collect();
        Self { sequence, mi, rr }
    }

    /// Builds a verdict from a split-halves output `[MI… | RR…]` covering
    /// `n = output.len()/2` monitors (the MLP layout covers 259 of the 260;
    /// uncovered monitors read as zero attribution).
    ///
    /// # Panics
    /// Panics if the output length is odd or covers more than [`N_BLM`]
    /// monitors.
    #[must_use]
    pub fn from_split_halves(sequence: u32, output: &[f64]) -> Self {
        assert_eq!(output.len() % 2, 0, "split layout needs an even length");
        let n = output.len() / 2;
        assert!(n <= N_BLM, "more monitors than the ring has");
        let mut mi = vec![0.0; N_BLM];
        let mut rr = vec![0.0; N_BLM];
        mi[..n].copy_from_slice(&output[..n]);
        rr[..n].copy_from_slice(&output[n..]);
        Self { sequence, mi, rr }
    }

    /// Total MI attribution mass over the ring.
    #[must_use]
    pub fn mi_mass(&self) -> f64 {
        self.mi.iter().sum()
    }

    /// Total RR attribution mass over the ring.
    #[must_use]
    pub fn rr_mass(&self) -> f64 {
        self.rr.iter().sum()
    }

    /// The machine to trip: the primary loss source this frame, or `None`
    /// when neither machine shows significant loss (below `threshold` total
    /// mass — no intervention on a quiet frame).
    #[must_use]
    pub fn trip_decision(&self, threshold: f64) -> Option<Machine> {
        let (mi, rr) = (self.mi_mass(), self.rr_mass());
        if mi.max(rr) < threshold {
            return None;
        }
        Some(if mi >= rr {
            Machine::MainInjector
        } else {
            Machine::Recycler
        })
    }

    /// Wire-encodes the verdict for ACNET: sequence, trip code, then the 520
    /// probabilities as u16 fixed-point (`round(p * 65535)`).
    #[must_use]
    pub fn encode(&self, threshold: f64) -> Vec<u8> {
        let mut out = Vec::with_capacity(4 + 1 + 4 * N_BLM);
        out.extend_from_slice(&self.sequence.to_be_bytes());
        out.push(match self.trip_decision(threshold) {
            None => 0,
            Some(Machine::MainInjector) => 1,
            Some(Machine::Recycler) => 2,
        });
        for j in 0..N_BLM {
            let q = |p: f64| ((p.clamp(0.0, 1.0) * 65535.0).round() as u16).to_be_bytes();
            out.extend_from_slice(&q(self.mi[j]));
            out.extend_from_slice(&q(self.rr[j]));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn verdict(mi_level: f64, rr_level: f64) -> DeblendVerdict {
        DeblendVerdict {
            sequence: 1,
            mi: vec![mi_level; N_BLM],
            rr: vec![rr_level; N_BLM],
        }
    }

    #[test]
    fn interleaved_parsing() {
        let mut out = vec![0.0; 520];
        out[0] = 0.9; // MI at monitor 0
        out[1] = 0.1; // RR at monitor 0
        out[519] = 0.7; // RR at monitor 259
        let v = DeblendVerdict::from_interleaved(5, &out);
        assert_eq!(v.mi[0], 0.9);
        assert_eq!(v.rr[0], 0.1);
        assert_eq!(v.rr[259], 0.7);
        assert_eq!(v.sequence, 5);
    }

    #[test]
    fn trip_picks_dominant_machine() {
        assert_eq!(
            verdict(0.6, 0.2).trip_decision(1.0),
            Some(Machine::MainInjector)
        );
        assert_eq!(
            verdict(0.1, 0.5).trip_decision(1.0),
            Some(Machine::Recycler)
        );
    }

    #[test]
    fn quiet_frame_no_trip() {
        assert_eq!(verdict(0.001, 0.001).trip_decision(5.0), None);
    }

    #[test]
    fn encode_layout() {
        let v = verdict(1.0, 0.0);
        let bytes = v.encode(1.0);
        assert_eq!(bytes.len(), 4 + 1 + 4 * N_BLM);
        assert_eq!(bytes[4], 1, "MI trip code");
        assert_eq!(u16::from_be_bytes([bytes[5], bytes[6]]), 65535);
        assert_eq!(u16::from_be_bytes([bytes[7], bytes[8]]), 0);
    }
}
