//! Property tests of the neural-network stack's invariants.

use proptest::prelude::*;
use reads_nn::layer::{DenseParams, Layer};
use reads_nn::{Loss, Model};
use reads_tensor::{Activation, FeatureMap, Mat};

fn tiny_model(weights: &[f64], bias: f64, act: Activation) -> Model {
    Model::new(
        weights.len(),
        1,
        vec![Layer::Dense(DenseParams {
            w: Mat::from_vec(1, weights.len(), weights.to_vec()),
            b: vec![bias],
            activation: act,
        })],
    )
}

proptest! {
    /// Forward evaluation is a pure function: identical inputs give
    /// identical outputs across repeated calls and cloned models.
    #[test]
    fn forward_is_pure(ws in prop::collection::vec(-2.0f64..2.0, 1..16),
                       xs_seed in 0u64..1000, bias in -1.0f64..1.0) {
        let m = tiny_model(&ws, bias, Activation::Sigmoid);
        let xs: Vec<f64> = (0..ws.len())
            .map(|i| (((xs_seed as usize + i) % 17) as f64) * 0.1 - 0.8)
            .collect();
        let a = m.predict(&xs);
        let b = m.clone().predict(&xs);
        prop_assert_eq!(a.clone(), b);
        prop_assert_eq!(a.clone(), m.predict(&xs));
    }

    /// A linear dense layer is actually linear: f(ax) = a·f(x) with zero
    /// bias, and f(x + y) = f(x) + f(y).
    #[test]
    fn dense_linearity(ws in prop::collection::vec(-2.0f64..2.0, 1..12),
                       scale in -3.0f64..3.0) {
        let m = tiny_model(&ws, 0.0, Activation::Linear);
        let x: Vec<f64> = (0..ws.len()).map(|i| (i as f64) * 0.3 - 1.0).collect();
        let y: Vec<f64> = (0..ws.len()).map(|i| 0.5 - (i as f64) * 0.2).collect();
        let fx = m.predict(&x)[0];
        let fy = m.predict(&y)[0];
        let scaled: Vec<f64> = x.iter().map(|v| v * scale).collect();
        prop_assert!((m.predict(&scaled)[0] - scale * fx).abs() < 1e-9);
        let summed: Vec<f64> = x.iter().zip(&y).map(|(a, b)| a + b).collect();
        prop_assert!((m.predict(&summed)[0] - (fx + fy)).abs() < 1e-9);
    }

    /// The backward pass is linear in the output gradient: doubling dy
    /// doubles every parameter gradient.
    #[test]
    fn backward_linear_in_dy(ws in prop::collection::vec(-1.0f64..1.0, 2..10),
                             k in 0.1f64..4.0) {
        let m = tiny_model(&ws, 0.1, Activation::Relu);
        let x: Vec<f64> = (0..ws.len()).map(|i| (i as f64) * 0.4 - 0.7).collect();
        let cache = m.forward_cached(&FeatureMap::from_signal(&x));
        let dy1 = FeatureMap::from_signal(&[1.0]);
        let dyk = FeatureMap::from_signal(&[k]);
        let g1 = m.backward(&cache, &dy1, false);
        let gk = m.backward(&cache, &dyk, false);
        prop_assert!((gk.l2_norm() - k * g1.l2_norm()).abs() < 1e-9 * (1.0 + k));
    }

    /// BCE loss is non-negative and zero only at a perfect prediction.
    #[test]
    fn bce_nonnegative(y in 0.001f64..0.999, t in 0.0f64..1.0) {
        let v = Loss::Bce.value(&[y], &[t]);
        prop_assert!(v >= 0.0 || v.abs() < 1e-12);
        // The minimizer over y of BCE(y, t) is y = t.
        let at_t = Loss::Bce.value(&[t.clamp(0.001, 0.999)], &[t]);
        prop_assert!(at_t <= v + 1e-9);
    }

    /// Sigmoid outputs stay in (0, 1) for any weights and inputs, so every
    /// model prediction is a valid probability.
    #[test]
    fn sigmoid_head_emits_probabilities(
        ws in prop::collection::vec(-50.0f64..50.0, 1..8),
        xs in prop::collection::vec(-50.0f64..50.0, 8)
    ) {
        let n = ws.len();
        let m = tiny_model(&ws, 0.0, Activation::Sigmoid);
        let y = m.predict(&xs[..n]);
        prop_assert!((0.0..=1.0).contains(&y[0]));
    }
}
