//! Weight initialization.

use reads_sim::Rng;
use reads_tensor::{Activation, Mat};

/// He-normal initialization (`std = sqrt(2 / fan_in)`) — the standard choice
/// ahead of ReLU layers.
#[must_use]
pub fn he_normal(rows: usize, cols: usize, fan_in: usize, rng: &mut Rng) -> Mat {
    let std = (2.0 / fan_in as f64).sqrt();
    Mat::from_fn(rows, cols, |_, _| rng.next_gaussian() * std)
}

/// Glorot/Xavier-normal initialization (`std = sqrt(2 / (fan_in+fan_out))`)
/// — used ahead of the sigmoid output stage.
#[must_use]
pub fn glorot_normal(
    rows: usize,
    cols: usize,
    fan_in: usize,
    fan_out: usize,
    rng: &mut Rng,
) -> Mat {
    let std = (2.0 / (fan_in + fan_out) as f64).sqrt();
    Mat::from_fn(rows, cols, |_, _| rng.next_gaussian() * std)
}

/// Picks the initializer matching the layer's activation.
#[must_use]
pub fn for_activation(
    activation: Activation,
    rows: usize,
    cols: usize,
    fan_in: usize,
    fan_out: usize,
    rng: &mut Rng,
) -> Mat {
    match activation {
        Activation::Relu => he_normal(rows, cols, fan_in, rng),
        _ => glorot_normal(rows, cols, fan_in, fan_out, rng),
    }
}

/// Uniform initialization on `[0, 1)` — the paper's *randomized* pre-test
/// configuration ("for the randomized U-Net model, all the parameters are
/// between 0 and 1", Sec. IV-D), used by the trained-vs-random dynamic-range
/// ablation.
#[must_use]
pub fn uniform01(rows: usize, cols: usize, rng: &mut Rng) -> Mat {
    Mat::from_fn(rows, cols, |_, _| rng.next_f64())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn he_std_matches() {
        let mut rng = Rng::seed_from_u64(1);
        let m = he_normal(200, 300, 300, &mut rng);
        let n = m.count() as f64;
        let mean = m.as_slice().iter().sum::<f64>() / n;
        let var = m.as_slice().iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n;
        let expect = 2.0 / 300.0;
        assert!(mean.abs() < 0.002, "mean {mean}");
        assert!((var - expect).abs() / expect < 0.05, "var {var}");
    }

    #[test]
    fn glorot_std_matches() {
        let mut rng = Rng::seed_from_u64(2);
        let m = glorot_normal(100, 400, 400, 100, &mut rng);
        let n = m.count() as f64;
        let var = m.as_slice().iter().map(|x| x * x).sum::<f64>() / n;
        let expect = 2.0 / 500.0;
        assert!((var - expect).abs() / expect < 0.05);
    }

    #[test]
    fn uniform01_bounds() {
        let mut rng = Rng::seed_from_u64(3);
        let m = uniform01(50, 50, &mut rng);
        assert!(m.as_slice().iter().all(|&x| (0.0..1.0).contains(&x)));
        let mean = m.as_slice().iter().sum::<f64>() / m.count() as f64;
        assert!((mean - 0.5).abs() < 0.02);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = he_normal(10, 10, 10, &mut Rng::seed_from_u64(7));
        let b = he_normal(10, 10, 10, &mut Rng::seed_from_u64(7));
        assert_eq!(a, b);
    }
}
