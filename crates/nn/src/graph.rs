//! The model graph: a layer sequence with skip references.
//!
//! The READS U-Net is a chain where two `ConcatWith` nodes reach back to
//! earlier encoder outputs — a strict superset of `Sequential`, far short of
//! a general DAG, which keeps forward/backward simple and auditable.

use crate::layer::{Layer, LayerGrad};
use reads_tensor::{Activation, FeatureMap};
use serde::{Deserialize, Serialize};

/// A model: input shape plus a layer chain (node `i` consumes node `i-1`'s
/// output; `ConcatWith { node }` additionally consumes node `node`'s output,
/// where `node` may be `usize::MAX` to reference the model input).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Model {
    input_len: usize,
    input_channels: usize,
    layers: Vec<Layer>,
}

/// All intermediate activations of one forward pass (needed by backward and
/// by the hls4ml profiling pass).
#[derive(Debug, Clone)]
pub struct ForwardCache {
    /// The model input.
    pub input: FeatureMap,
    /// Output of every node, in order.
    pub outputs: Vec<FeatureMap>,
    /// Pool argmaxes per node (empty for non-pool nodes).
    pub argmaxes: Vec<Vec<u8>>,
}

impl ForwardCache {
    /// The final output.
    #[must_use]
    pub fn output(&self) -> &FeatureMap {
        self.outputs.last().expect("model has at least one layer")
    }
}

/// Parameter gradients for every node.
#[derive(Debug, Clone)]
pub struct Gradients {
    /// One entry per node, mirroring the layer list.
    pub per_layer: Vec<LayerGrad>,
}

impl Gradients {
    /// Zero gradients shaped like `model`.
    #[must_use]
    pub fn zeros_like(model: &Model) -> Self {
        use reads_tensor::Mat;
        let per_layer = model
            .layers
            .iter()
            .map(|l| match l {
                Layer::Dense(p) | Layer::PointwiseDense(p) | Layer::Conv1d { p, .. } => {
                    LayerGrad::Dense {
                        dw: Mat::zeros(p.w.rows(), p.w.cols()),
                        db: vec![0.0; p.b.len()],
                    }
                }
                _ => LayerGrad::None,
            })
            .collect();
        Self { per_layer }
    }

    /// Accumulates another gradient set (for mini-batch averaging).
    ///
    /// # Panics
    /// Panics on structural mismatch.
    pub fn accumulate(&mut self, other: &Gradients) {
        assert_eq!(self.per_layer.len(), other.per_layer.len());
        for (a, b) in self.per_layer.iter_mut().zip(&other.per_layer) {
            match (a, b) {
                (LayerGrad::Dense { dw, db }, LayerGrad::Dense { dw: dw2, db: db2 }) => {
                    for (x, y) in dw.as_mut_slice().iter_mut().zip(dw2.as_slice()) {
                        *x += y;
                    }
                    for (x, y) in db.iter_mut().zip(db2) {
                        *x += y;
                    }
                }
                (LayerGrad::None, LayerGrad::None) => {}
                _ => panic!("gradient structure mismatch"),
            }
        }
    }

    /// Scales all gradients by `k` (1/batch for averaging).
    pub fn scale(&mut self, k: f64) {
        for g in &mut self.per_layer {
            if let LayerGrad::Dense { dw, db } = g {
                for x in dw.as_mut_slice() {
                    *x *= k;
                }
                for x in db.iter_mut() {
                    *x *= k;
                }
            }
        }
    }

    /// Global L2 norm over all parameter gradients.
    #[must_use]
    pub fn l2_norm(&self) -> f64 {
        let mut acc = 0.0;
        for g in &self.per_layer {
            if let LayerGrad::Dense { dw, db } = g {
                acc += dw.as_slice().iter().map(|x| x * x).sum::<f64>();
                acc += db.iter().map(|x| x * x).sum::<f64>();
            }
        }
        acc.sqrt()
    }
}

/// Sentinel for `ConcatWith` referencing the model input.
pub const INPUT_NODE: usize = usize::MAX;

impl Model {
    /// New model with the given input shape and layers.
    ///
    /// # Panics
    /// Panics if the chain is shape-inconsistent or a skip reference points
    /// forward.
    #[must_use]
    pub fn new(input_len: usize, input_channels: usize, layers: Vec<Layer>) -> Self {
        assert!(!layers.is_empty(), "empty model");
        let m = Self {
            input_len,
            input_channels,
            layers,
        };
        m.validate();
        m
    }

    fn validate(&self) {
        let mut shapes: Vec<(usize, usize)> = Vec::with_capacity(self.layers.len());
        for (i, l) in self.layers.iter().enumerate() {
            let input = if i == 0 {
                (self.input_len, self.input_channels)
            } else {
                shapes[i - 1]
            };
            let skip = match l {
                Layer::ConcatWith { node } => {
                    let s = if *node == INPUT_NODE {
                        (self.input_len, self.input_channels)
                    } else {
                        assert!(*node < i, "skip reference must point backward");
                        shapes[*node]
                    };
                    Some(s)
                }
                _ => None,
            };
            shapes.push(l.output_shape(input, skip));
        }
    }

    /// Input shape `(len, channels)`.
    #[must_use]
    pub fn input_shape(&self) -> (usize, usize) {
        (self.input_len, self.input_channels)
    }

    /// Output shape `(len, channels)`.
    #[must_use]
    pub fn output_shape(&self) -> (usize, usize) {
        let mut shape = (self.input_len, self.input_channels);
        let mut shapes = Vec::with_capacity(self.layers.len());
        for (i, l) in self.layers.iter().enumerate() {
            let skip = match l {
                Layer::ConcatWith { node } => Some(if *node == INPUT_NODE {
                    (self.input_len, self.input_channels)
                } else {
                    shapes[*node]
                }),
                _ => None,
            };
            shape = l.output_shape(if i == 0 { shape } else { shapes[i - 1] }, skip);
            shapes.push(shape);
        }
        shape
    }

    /// The layer chain.
    #[must_use]
    pub fn layers(&self) -> &[Layer] {
        &self.layers
    }

    /// Mutable layer access (used by the optimizer).
    pub fn layers_mut(&mut self) -> &mut [Layer] {
        &mut self.layers
    }

    /// Total trainable parameters.
    #[must_use]
    pub fn param_count(&self) -> usize {
        self.layers.iter().map(Layer::param_count).sum()
    }

    /// Total nodes (neurons/units): input positions + dense units + conv
    /// output channels, the convention behind the paper's "905 nodes" MLP
    /// figure (259 + 128 + 518).
    #[must_use]
    pub fn node_count(&self) -> usize {
        let mut n = self.input_len * self.input_channels;
        for l in &self.layers {
            n += match l {
                Layer::Dense(p) | Layer::PointwiseDense(p) => p.w.rows(),
                Layer::Conv1d { p, .. } => p.w.rows(),
                _ => 0,
            };
        }
        n
    }

    /// Forward pass over a single-channel signal (the common case: one frame
    /// of BLM readings). Returns the flattened output.
    ///
    /// # Panics
    /// Panics if the model expects a multi-channel input.
    #[must_use]
    pub fn predict(&self, signal: &[f64]) -> Vec<f64> {
        assert_eq!(self.input_channels, 1, "predict expects 1-channel input");
        assert_eq!(signal.len(), self.input_len, "input length mismatch");
        let input = FeatureMap::from_signal(signal);
        self.forward(&input).into_vec()
    }

    /// Forward pass without caching intermediates.
    #[must_use]
    pub fn forward(&self, input: &FeatureMap) -> FeatureMap {
        // Keep only outputs that a later concat will need, plus the running
        // value; for the model sizes here, caching everything is also cheap,
        // so reuse the cached path for simplicity and correctness.
        self.forward_cached(input).outputs.pop().expect("nonempty")
    }

    /// Forward pass retaining every intermediate (for backprop/profiling).
    #[must_use]
    pub fn forward_cached(&self, input: &FeatureMap) -> ForwardCache {
        let mut outputs: Vec<FeatureMap> = Vec::with_capacity(self.layers.len());
        let mut argmaxes: Vec<Vec<u8>> = Vec::with_capacity(self.layers.len());
        for (i, l) in self.layers.iter().enumerate() {
            let x = if i == 0 { input } else { &outputs[i - 1] };
            let skip = match l {
                Layer::ConcatWith { node } => Some(if *node == INPUT_NODE {
                    input
                } else {
                    &outputs[*node]
                }),
                _ => None,
            };
            let (y, am) = l.forward(x, skip);
            outputs.push(y);
            argmaxes.push(am);
        }
        ForwardCache {
            input: input.clone(),
            outputs,
            argmaxes,
        }
    }

    /// Backward pass from a gradient w.r.t. the final output.
    ///
    /// `fuse_final` marks `d_output` as being w.r.t. the final layer's
    /// *pre-activation* (the numerically exact BCE⊗sigmoid path).
    #[must_use]
    pub fn backward(
        &self,
        cache: &ForwardCache,
        d_output: &FeatureMap,
        fuse_final: bool,
    ) -> Gradients {
        let n = self.layers.len();
        // Accumulated output-gradients per node (concat writes into earlier
        // nodes, so these are accumulation buffers, not single assignments).
        let mut dys: Vec<Option<FeatureMap>> = vec![None; n];
        dys[n - 1] = Some(d_output.clone());
        let mut grads = Vec::with_capacity(n);
        grads.resize_with(n, || LayerGrad::None);

        for i in (0..n).rev() {
            let dy = dys[i].take().unwrap_or_else(|| {
                // A node whose output was never consumed downstream (cannot
                // happen in a validated chain, but keep backward total).
                let out = &cache.outputs[i];
                FeatureMap::zeros(out.len(), out.channels())
            });
            let x = if i == 0 {
                &cache.input
            } else {
                &cache.outputs[i - 1]
            };
            let y = &cache.outputs[i];
            let fused = fuse_final && i == n - 1;
            let (dx, dskip, g) = self.layers[i].backward(x, y, &dy, &cache.argmaxes[i], fused);
            grads[i] = g;
            if i > 0 {
                add_into(&mut dys[i - 1], dx);
            }
            if let (Layer::ConcatWith { node }, Some(ds)) = (&self.layers[i], dskip) {
                if *node != INPUT_NODE {
                    add_into(&mut dys[*node], ds);
                }
            }
        }
        Gradients { per_layer: grads }
    }

    /// The output activation of the final layer (None if the final layer is
    /// not dense-like) — used to decide the fused-loss path.
    #[must_use]
    pub fn final_activation(&self) -> Option<Activation> {
        match self.layers.last() {
            Some(Layer::Dense(p) | Layer::PointwiseDense(p) | Layer::Conv1d { p, .. }) => {
                Some(p.activation)
            }
            _ => None,
        }
    }
}

fn add_into(slot: &mut Option<FeatureMap>, g: FeatureMap) {
    match slot {
        None => *slot = Some(g),
        Some(acc) => {
            debug_assert_eq!(acc.len(), g.len());
            debug_assert_eq!(acc.channels(), g.channels());
            for (a, b) in acc.as_mut_slice().iter_mut().zip(g.as_slice()) {
                *a += b;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::DenseParams;
    use reads_tensor::Mat;

    fn tiny_unet_like() -> Model {
        // input (4,1) -> conv(1->2,k3) -> pool2 -> up2 -> concat(node 0) -> pointwise(3->1, sigmoid)
        Model::new(
            4,
            1,
            vec![
                Layer::Conv1d {
                    p: DenseParams {
                        w: Mat::from_vec(2, 3, vec![0.1, 0.2, 0.3, -0.1, 0.4, 0.2]),
                        b: vec![0.05, -0.05],
                        activation: Activation::Relu,
                    },
                    k: 3,
                },
                Layer::MaxPool { pool: 2 },
                Layer::UpSample { factor: 2 },
                Layer::ConcatWith { node: 0 },
                Layer::PointwiseDense(DenseParams {
                    w: Mat::from_vec(1, 4, vec![0.3, -0.2, 0.5, 0.1]),
                    b: vec![0.1],
                    activation: Activation::Sigmoid,
                }),
            ],
        )
    }

    #[test]
    fn shapes_propagate() {
        let m = tiny_unet_like();
        assert_eq!(m.output_shape(), (4, 1));
    }

    #[test]
    fn forward_deterministic_and_bounded() {
        let m = tiny_unet_like();
        let y = m.forward(&FeatureMap::from_signal(&[1.0, -0.5, 2.0, 0.3]));
        assert_eq!(y.len(), 4);
        for &v in y.as_slice() {
            assert!((0.0..=1.0).contains(&v), "sigmoid output in range");
        }
        let y2 = m.forward(&FeatureMap::from_signal(&[1.0, -0.5, 2.0, 0.3]));
        assert_eq!(y.as_slice(), y2.as_slice());
    }

    #[test]
    fn param_count_sums_layers() {
        let m = tiny_unet_like();
        assert_eq!(m.param_count(), (2 * 3 + 2) + (4 + 1));
    }

    #[test]
    #[should_panic(expected = "point backward")]
    fn forward_skip_reference_rejected() {
        let _ = Model::new(
            4,
            1,
            vec![Layer::ConcatWith { node: 3 }, Layer::MaxPool { pool: 2 }],
        );
    }

    #[test]
    fn gradients_shape_mirror() {
        let m = tiny_unet_like();
        let g = Gradients::zeros_like(&m);
        assert_eq!(g.per_layer.len(), m.layers().len());
        assert!(matches!(g.per_layer[0], LayerGrad::Dense { .. }));
        assert!(matches!(g.per_layer[1], LayerGrad::None));
    }

    #[test]
    fn accumulate_and_scale() {
        let m = tiny_unet_like();
        let cache = m.forward_cached(&FeatureMap::from_signal(&[1.0, 2.0, 3.0, 4.0]));
        let dy = FeatureMap::from_signal(&[1.0, 1.0, 1.0, 1.0]);
        let g1 = m.backward(&cache, &dy, false);
        let mut acc = Gradients::zeros_like(&m);
        acc.accumulate(&g1);
        acc.accumulate(&g1);
        acc.scale(0.5);
        // acc should equal g1
        if let (LayerGrad::Dense { dw: a, .. }, LayerGrad::Dense { dw: b, .. }) =
            (&acc.per_layer[0], &g1.per_layer[0])
        {
            for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
                assert!((x - y).abs() < 1e-12);
            }
        } else {
            panic!("expected dense grads");
        }
        assert!(acc.l2_norm() > 0.0);
    }

    /// Finite-difference gradient check across every trainable parameter of
    /// a graph exercising conv, pool, upsample, concat and pointwise-dense —
    /// the definitive correctness test for the backprop engine.
    #[test]
    fn gradcheck_full_graph() {
        let mut m = tiny_unet_like();
        let input = FeatureMap::from_signal(&[0.9, -0.4, 1.7, 0.2]);
        let target = [0.2, 0.8, 0.5, 0.1];

        // Loss: MSE (pure, unfused path exercises activation derivatives).
        let loss_of = |m: &Model| {
            let y = m.forward(&input);
            y.as_slice()
                .iter()
                .zip(&target)
                .map(|(y, t)| (y - t) * (y - t))
                .sum::<f64>()
        };

        let cache = m.forward_cached(&input);
        let y = cache.output().clone();
        let mut dy = y.clone();
        for (g, t) in dy.as_mut_slice().iter_mut().zip(&target) {
            *g = 2.0 * (*g - t);
        }
        let grads = m.backward(&cache, &dy, false);

        let eps = 1e-6;
        for li in 0..m.layers().len() {
            let (nw, nb) = match &m.layers()[li] {
                Layer::Conv1d { p, .. } | Layer::PointwiseDense(p) | Layer::Dense(p) => {
                    (p.w.count(), p.b.len())
                }
                _ => (0, 0),
            };
            for wi in 0..nw + nb {
                let analytic = match &grads.per_layer[li] {
                    LayerGrad::Dense { dw, db } => {
                        if wi < nw {
                            dw.as_slice()[wi]
                        } else {
                            db[wi - nw]
                        }
                    }
                    LayerGrad::None => continue,
                };
                let bump = |m: &mut Model, delta: f64| {
                    if let Layer::Conv1d { p, .. } | Layer::PointwiseDense(p) | Layer::Dense(p) =
                        &mut m.layers_mut()[li]
                    {
                        if wi < nw {
                            p.w.as_mut_slice()[wi] += delta;
                        } else {
                            p.b[wi - nw] += delta;
                        }
                    }
                };
                bump(&mut m, eps);
                let up = loss_of(&m);
                bump(&mut m, -2.0 * eps);
                let down = loss_of(&m);
                bump(&mut m, eps);
                let numeric = (up - down) / (2.0 * eps);
                assert!(
                    (numeric - analytic).abs() < 1e-5 * (1.0 + numeric.abs()),
                    "layer {li} param {wi}: numeric {numeric} vs analytic {analytic}"
                );
            }
        }
    }
}
