//! Keras-style model summaries.
//!
//! `model.summary()` is how the paper's Table I/III parameter counts were
//! read off the Keras models; this renders the same view for ours.

use crate::graph::Model;
use crate::layer::Layer;

/// Renders a `model.summary()`-style table: one row per layer with output
/// shape and parameter count, plus the total.
#[must_use]
pub fn summary(model: &Model) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<6}{:<26}{:<18}{:>10}",
        "#", "Layer (type)", "Output shape", "Params"
    );
    let _ = writeln!(out, "{}", "=".repeat(60));
    let (mut len, mut ch) = model.input_shape();
    let _ = writeln!(
        out,
        "{:<6}{:<26}{:<18}{:>10}",
        "-",
        "Input",
        format!("({len}, {ch})"),
        0
    );
    let mut shapes: Vec<(usize, usize)> = Vec::with_capacity(model.layers().len());
    for (i, l) in model.layers().iter().enumerate() {
        let skip = match l {
            Layer::ConcatWith { node } => Some(if *node == usize::MAX {
                model.input_shape()
            } else {
                shapes[*node]
            }),
            _ => None,
        };
        let (nl, nc) = l.output_shape((len, ch), skip);
        shapes.push((nl, nc));
        (len, ch) = (nl, nc);
        let kind = match l {
            Layer::Dense(_) => "Dense",
            Layer::PointwiseDense(_) => "Dense (per position)",
            Layer::Conv1d { k, .. } => return_conv_label(*k),
            Layer::MaxPool { .. } => "MaxPooling1D",
            Layer::UpSample { .. } => "UpSampling1D",
            Layer::ConcatWith { .. } => "Concatenate",
            Layer::BatchNorm { .. } => "BatchNormalization",
        };
        let _ = writeln!(
            out,
            "{:<6}{:<26}{:<18}{:>10}",
            i,
            kind,
            format!("({nl}, {nc})"),
            l.param_count()
        );
    }
    let _ = writeln!(out, "{}", "=".repeat(60));
    let _ = writeln!(out, "Total trainable params: {}", model.param_count());
    out
}

fn return_conv_label(k: usize) -> &'static str {
    match k {
        1 => "Conv1D (k=1)",
        3 => "Conv1D (k=3)",
        5 => "Conv1D (k=5)",
        _ => "Conv1D",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models;

    #[test]
    fn unet_summary_totals_match() {
        let m = models::reads_unet(0);
        let s = summary(&m);
        assert!(s.contains("Total trainable params: 134434"));
        assert!(s.contains("Conv1D (k=3)"));
        assert!(s.contains("Concatenate"));
        assert!(s.contains("(260, 2)"));
        // One row per layer plus input/header/footer lines.
        assert!(s.lines().count() >= m.layers().len() + 4);
    }

    #[test]
    fn mlp_summary() {
        let m = models::reads_mlp(0);
        let s = summary(&m);
        assert!(s.contains("Total trainable params: 100102"));
        assert!(s.contains("(518, 1)"));
    }
}
