//! Layers: parameters, forward, and backward rules.

use reads_tensor::ops;
use reads_tensor::{Activation, FeatureMap, Mat};
use serde::{Deserialize, Serialize};

/// Weights + bias + activation for dense-like layers (Dense, pointwise
/// Dense, Conv1D — a conv is a dense product over its im2col receptive
/// field, which is also exactly how hls4ml lowers it).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DenseParams {
    /// `out × in` weights (for Conv1D: `out_ch × (k·in_ch)`).
    pub w: Mat,
    /// Per-output bias.
    pub b: Vec<f64>,
    /// Activation applied to the output.
    pub activation: Activation,
}

impl DenseParams {
    /// Trainable parameter count.
    #[must_use]
    pub fn param_count(&self) -> usize {
        self.w.count() + self.b.len()
    }
}

/// One node of the model graph.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Layer {
    /// Fully connected over the *flattened* input.
    Dense(DenseParams),
    /// Dense applied independently at every position (`in = channels`);
    /// equivalent to a k=1 convolution. Kept distinct because hls4ml maps it
    /// to a Dense firmware kernel reused across positions (the Table III
    /// "Dense/Sigmoid Reuse Factor 260" stage).
    PointwiseDense(DenseParams),
    /// Same-padded 1-D convolution with odd kernel size `k`.
    Conv1d {
        /// Weights/bias/activation; `w` is `out_ch × (k·in_ch)`.
        p: DenseParams,
        /// Kernel size (odd).
        k: usize,
    },
    /// Max pooling with window = stride = `pool`.
    MaxPool {
        /// Window/stride.
        pool: usize,
    },
    /// Nearest-neighbour upsampling by `factor`.
    UpSample {
        /// Repetition factor.
        factor: usize,
    },
    /// Concatenates the previous node's output with the output of an earlier
    /// node (`node` is an index into the model's layer list; the U-Net skip
    /// connections).
    ConcatWith {
        /// Index of the skip source node.
        node: usize,
    },
    /// Frozen inference-mode batch normalization (per channel). Used for the
    /// paper's "trained with a BatchNorm standardization layer" ablation
    /// (Sec. IV-D); gamma/beta are counted as trainable parameters but are
    /// held frozen by this implementation (gradients pass through the affine
    /// transform).
    BatchNorm {
        /// Per-channel scale.
        gamma: Vec<f64>,
        /// Per-channel shift.
        beta: Vec<f64>,
        /// Per-channel running mean.
        mean: Vec<f64>,
        /// Per-channel running variance.
        var: Vec<f64>,
        /// Numerical floor added to the variance.
        eps: f64,
    },
}

/// Gradients for one layer (mirrors [`Layer`]'s trainable parameters).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum LayerGrad {
    /// Gradients for a dense-like layer.
    Dense {
        /// d(loss)/d(w), same shape as the layer's `w`.
        dw: Mat,
        /// d(loss)/d(b).
        db: Vec<f64>,
    },
    /// The layer has no trainable parameters (or they are frozen).
    None,
}

impl Layer {
    /// Trainable parameter count (Keras `model.summary()` convention; frozen
    /// BatchNorm contributes its gamma/beta as in Keras' "trainable" rows
    /// only when actually trained — here it is frozen, so zero).
    #[must_use]
    pub fn param_count(&self) -> usize {
        match self {
            Layer::Dense(p) | Layer::PointwiseDense(p) | Layer::Conv1d { p, .. } => p.param_count(),
            _ => 0,
        }
    }

    /// Output shape `(len, channels)` for a given input shape.
    ///
    /// `skip_shape` must be provided for [`Layer::ConcatWith`].
    #[must_use]
    pub fn output_shape(
        &self,
        input: (usize, usize),
        skip_shape: Option<(usize, usize)>,
    ) -> (usize, usize) {
        let (len, ch) = input;
        match self {
            Layer::Dense(p) => (p.w.rows(), 1),
            Layer::PointwiseDense(p) => (len, p.w.rows()),
            Layer::Conv1d { p, .. } => (len, p.w.rows()),
            Layer::MaxPool { pool } => (len / pool, ch),
            Layer::UpSample { factor } => (len * factor, ch),
            Layer::ConcatWith { .. } => {
                let (slen, sch) = skip_shape.expect("concat needs skip shape");
                assert_eq!(slen, len, "concat length mismatch");
                (len, ch + sch)
            }
            Layer::BatchNorm { .. } => (len, ch),
        }
    }

    /// Forward pass. `skip` is the concatenation source output (only for
    /// [`Layer::ConcatWith`]). Returns the output and, for pooling, the
    /// argmax offsets needed by the backward pass.
    #[must_use]
    pub fn forward(&self, input: &FeatureMap, skip: Option<&FeatureMap>) -> (FeatureMap, Vec<u8>) {
        match self {
            Layer::Dense(p) => {
                let y = ops::gemv(&p.w, input.as_slice(), &p.b);
                let mut fm = FeatureMap::from_vec(y.len(), 1, y);
                fm.map_inplace(|x| p.activation.apply(x));
                (fm, Vec::new())
            }
            Layer::PointwiseDense(p) => {
                let mut out = FeatureMap::zeros(input.len(), p.w.rows());
                for pos in 0..input.len() {
                    let y = ops::gemv(&p.w, input.position(pos), &p.b);
                    for (oc, v) in y.iter().enumerate() {
                        out.set(pos, oc, p.activation.apply(*v));
                    }
                }
                (out, Vec::new())
            }
            Layer::Conv1d { p, k } => {
                let mut out = ops::conv1d_same(input, &p.w, &p.b, *k);
                out.map_inplace(|x| p.activation.apply(x));
                (out, Vec::new())
            }
            Layer::MaxPool { pool } => {
                let (out, argmax) = ops::maxpool1d(input, *pool);
                (out, argmax)
            }
            Layer::UpSample { factor } => (ops::upsample1d(input, *factor), Vec::new()),
            Layer::ConcatWith { .. } => {
                let skip = skip.expect("concat forward needs skip output");
                (ops::concat_channels(input, skip), Vec::new())
            }
            Layer::BatchNorm {
                gamma,
                beta,
                mean,
                var,
                eps,
            } => (
                ops::batchnorm1d(input, gamma, beta, mean, var, *eps),
                Vec::new(),
            ),
        }
    }

    /// Backward pass.
    ///
    /// * `x` — this layer's input (previous node output).
    /// * `y` — this layer's output (post-activation).
    /// * `dy` — gradient of the loss w.r.t. `y` (post-activation), except
    ///   when `fused_output` is true, in which case `dy` is already the
    ///   gradient w.r.t. the *pre-activation* (the BCE⊗sigmoid fusion).
    /// * `argmax` — pooling argmax recorded by the forward pass.
    ///
    /// Returns `(dx, dskip, grads)`: gradient w.r.t. this layer's input,
    /// gradient w.r.t. the skip source (for Concat), and parameter grads.
    #[must_use]
    #[allow(clippy::needless_range_loop)] // index-coupled across w/dw/dx buffers
    pub fn backward(
        &self,
        x: &FeatureMap,
        y: &FeatureMap,
        dy: &FeatureMap,
        argmax: &[u8],
        fused_output: bool,
    ) -> (FeatureMap, Option<FeatureMap>, LayerGrad) {
        match self {
            Layer::Dense(p) => {
                let dpre = pre_activation_grad(p.activation, y, dy, fused_output);
                let mut dw = Mat::zeros(p.w.rows(), p.w.cols());
                let mut db = vec![0.0; p.b.len()];
                let xin = x.as_slice();
                let mut dx_flat = vec![0.0; xin.len()];
                for r in 0..p.w.rows() {
                    let g = dpre.as_slice()[r];
                    db[r] += g;
                    let wrow = p.w.row(r);
                    let dwrow = &mut dw.as_mut_slice()[r * xin.len()..(r + 1) * xin.len()];
                    for c in 0..xin.len() {
                        dwrow[c] += g * xin[c];
                        dx_flat[c] += g * wrow[c];
                    }
                }
                let dx = FeatureMap::from_vec(x.len(), x.channels(), dx_flat);
                (dx, None, LayerGrad::Dense { dw, db })
            }
            Layer::PointwiseDense(p) => {
                let dpre = pre_activation_grad(p.activation, y, dy, fused_output);
                let in_ch = x.channels();
                let out_ch = p.w.rows();
                let mut dw = Mat::zeros(out_ch, in_ch);
                let mut db = vec![0.0; out_ch];
                let mut dx = FeatureMap::zeros(x.len(), in_ch);
                for pos in 0..x.len() {
                    let xs = x.position(pos);
                    for oc in 0..out_ch {
                        let g = dpre.get(pos, oc);
                        db[oc] += g;
                        let wrow = p.w.row(oc);
                        for ic in 0..in_ch {
                            *dw.get_mut(oc, ic) += g * xs[ic];
                            *dx.get_mut(pos, ic) += g * wrow[ic];
                        }
                    }
                }
                (dx, None, LayerGrad::Dense { dw, db })
            }
            Layer::Conv1d { p, k } => {
                let dpre = pre_activation_grad(p.activation, y, dy, fused_output);
                let in_ch = x.channels();
                let out_ch = p.w.rows();
                let half = k / 2;
                let len = x.len();
                let mut dw = Mat::zeros(out_ch, k * in_ch);
                let mut db = vec![0.0; out_ch];
                let mut dx = FeatureMap::zeros(len, in_ch);
                for opos in 0..len {
                    for oc in 0..out_ch {
                        let g = dpre.get(opos, oc);
                        if g == 0.0 {
                            continue; // common under ReLU; skip the tap loop
                        }
                        db[oc] += g;
                        let wrow = p.w.row(oc);
                        for tap in 0..*k {
                            let ipos = opos as isize + tap as isize - half as isize;
                            if ipos < 0 || ipos >= len as isize {
                                continue;
                            }
                            let ipos = ipos as usize;
                            let xs = x.position(ipos);
                            let woff = tap * in_ch;
                            for ic in 0..in_ch {
                                *dw.get_mut(oc, woff + ic) += g * xs[ic];
                                *dx.get_mut(ipos, ic) += g * wrow[woff + ic];
                            }
                        }
                    }
                }
                (dx, None, LayerGrad::Dense { dw, db })
            }
            Layer::MaxPool { pool } => {
                let ch = x.channels();
                let mut dx = FeatureMap::zeros(x.len(), ch);
                for opos in 0..y.len() {
                    for c in 0..ch {
                        let off = argmax[opos * ch + c] as usize;
                        *dx.get_mut(opos * pool + off, c) += dy.get(opos, c);
                    }
                }
                (dx, None, LayerGrad::None)
            }
            Layer::UpSample { factor } => {
                let ch = x.channels();
                let mut dx = FeatureMap::zeros(x.len(), ch);
                for opos in 0..y.len() {
                    for c in 0..ch {
                        *dx.get_mut(opos / factor, c) += dy.get(opos, c);
                    }
                }
                (dx, None, LayerGrad::None)
            }
            Layer::ConcatWith { .. } => {
                let main_ch = x.channels();
                let skip_ch = y.channels() - main_ch;
                let mut dx = FeatureMap::zeros(x.len(), main_ch);
                let mut dskip = FeatureMap::zeros(x.len(), skip_ch);
                for pos in 0..x.len() {
                    for c in 0..main_ch {
                        dx.set(pos, c, dy.get(pos, c));
                    }
                    for c in 0..skip_ch {
                        dskip.set(pos, c, dy.get(pos, main_ch + c));
                    }
                }
                (dx, Some(dskip), LayerGrad::None)
            }
            Layer::BatchNorm {
                gamma, var, eps, ..
            } => {
                // Frozen affine: dx = dy * gamma / sqrt(var + eps).
                let ch = x.channels();
                let mut dx = FeatureMap::zeros(x.len(), ch);
                for c in 0..ch {
                    let scale = gamma[c] / (var[c] + eps).sqrt();
                    for pos in 0..x.len() {
                        dx.set(pos, c, dy.get(pos, c) * scale);
                    }
                }
                (dx, None, LayerGrad::None)
            }
        }
    }
}

/// Converts a post-activation gradient into the pre-activation gradient
/// using the activation derivative expressed via the forward output. When
/// `fused` is set, `dy` already *is* the pre-activation gradient.
fn pre_activation_grad(
    activation: Activation,
    y: &FeatureMap,
    dy: &FeatureMap,
    fused: bool,
) -> FeatureMap {
    if fused {
        return dy.clone();
    }
    let mut out = dy.clone();
    let ys = y.as_slice();
    for (g, &yv) in out.as_mut_slice().iter_mut().zip(ys) {
        *g *= activation.derivative_from_output(yv);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fm(vals: &[f64]) -> FeatureMap {
        FeatureMap::from_signal(vals)
    }

    #[test]
    fn dense_forward_applies_activation() {
        let p = DenseParams {
            w: Mat::from_vec(2, 2, vec![1., 0., 0., 1.]),
            b: vec![0.0, -10.0],
            activation: Activation::Relu,
        };
        let (y, _) = Layer::Dense(p).forward(&fm(&[3.0, 4.0]), None);
        assert_eq!(y.as_slice(), &[3.0, 0.0]);
    }

    #[test]
    fn dense_flattens_multichannel_input() {
        let p = DenseParams {
            w: Mat::from_vec(1, 4, vec![1., 2., 3., 4.]),
            b: vec![0.0],
            activation: Activation::Linear,
        };
        let input = FeatureMap::from_vec(2, 2, vec![1., 1., 1., 1.]);
        let (y, _) = Layer::Dense(p).forward(&input, None);
        assert_eq!(y.as_slice(), &[10.0]);
    }

    #[test]
    fn pointwise_dense_is_positionwise() {
        let p = DenseParams {
            w: Mat::from_vec(1, 2, vec![1.0, -1.0]),
            b: vec![0.5],
            activation: Activation::Linear,
        };
        let input = FeatureMap::from_vec(2, 2, vec![3., 1., 10., 4.]);
        let (y, _) = Layer::PointwiseDense(p).forward(&input, None);
        assert_eq!(y.as_slice(), &[2.5, 6.5]);
    }

    #[test]
    fn output_shapes() {
        let conv = Layer::Conv1d {
            p: DenseParams {
                w: Mat::zeros(8, 3 * 2),
                b: vec![0.0; 8],
                activation: Activation::Relu,
            },
            k: 3,
        };
        assert_eq!(conv.output_shape((260, 2), None), (260, 8));
        assert_eq!(
            Layer::MaxPool { pool: 2 }.output_shape((260, 8), None),
            (130, 8)
        );
        assert_eq!(
            Layer::UpSample { factor: 2 }.output_shape((65, 8), None),
            (130, 8)
        );
        assert_eq!(
            Layer::ConcatWith { node: 0 }.output_shape((130, 8), Some((130, 4))),
            (130, 12)
        );
    }

    #[test]
    fn maxpool_backward_routes_to_argmax() {
        let layer = Layer::MaxPool { pool: 2 };
        let x = fm(&[1., 5., 3., 2.]);
        let (y, argmax) = layer.forward(&x, None);
        let dy = fm(&[10., 20.]);
        let (dx, _, _) = layer.backward(&x, &y, &dy, &argmax, false);
        assert_eq!(dx.as_slice(), &[0., 10., 20., 0.]);
    }

    #[test]
    fn upsample_backward_sums_replicas() {
        let layer = Layer::UpSample { factor: 2 };
        let x = fm(&[1., 2.]);
        let (y, _) = layer.forward(&x, None);
        let dy = fm(&[1., 2., 3., 4.]);
        let (dx, _, _) = layer.backward(&x, &y, &dy, &[], false);
        assert_eq!(dx.as_slice(), &[3., 7.]);
    }

    #[test]
    fn concat_backward_splits() {
        let layer = Layer::ConcatWith { node: 0 };
        let x = FeatureMap::from_vec(2, 1, vec![1., 2.]);
        let skip = FeatureMap::from_vec(2, 2, vec![5., 6., 7., 8.]);
        let (y, _) = layer.forward(&x, Some(&skip));
        let dy = FeatureMap::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        let (dx, dskip, _) = layer.backward(&x, &y, &dy, &[], false);
        assert_eq!(dx.as_slice(), &[1., 4.]);
        assert_eq!(dskip.unwrap().as_slice(), &[2., 3., 5., 6.]);
    }

    #[test]
    fn batchnorm_backward_scales() {
        let layer = Layer::BatchNorm {
            gamma: vec![2.0],
            beta: vec![0.0],
            mean: vec![0.0],
            var: vec![3.0],
            eps: 1.0,
        };
        let x = fm(&[1.0]);
        let (y, _) = layer.forward(&x, None);
        let (dx, _, _) = layer.backward(&x, &y, &fm(&[1.0]), &[], false);
        assert_eq!(dx.as_slice(), &[1.0]); // 2 / sqrt(4) = 1
    }

    #[test]
    fn param_counts() {
        let dense = Layer::Dense(DenseParams {
            w: Mat::zeros(128, 259),
            b: vec![0.0; 128],
            activation: Activation::Relu,
        });
        assert_eq!(dense.param_count(), 259 * 128 + 128);
        assert_eq!(Layer::MaxPool { pool: 2 }.param_count(), 0);
    }
}
