//! Mini-batch training loop.
//!
//! Gradients for the examples of a batch are independent, so the batch is
//! rayon-parallel: each example produces a `Gradients`, reduced by
//! accumulation (deterministic result regardless of thread schedule, since
//! the reduction is a sum of the same terms; f64 addition reordering across
//! the reduce tree is the only nondeterminism and is controlled by reducing
//! in chunk order via `rayon::iter::ParallelIterator::reduce` over an
//! associative sum — acceptable here, and the tests pin behaviour on
//! seeded data rather than bitwise equality of training runs).

use crate::graph::{Gradients, Model};
use crate::loss::Loss;
use crate::optim::Optimizer;
use rayon::prelude::*;
use reads_sim::Rng;
use reads_tensor::FeatureMap;
use serde::{Deserialize, Serialize};

/// A supervised dataset of flat input/target rows.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Dataset {
    /// Input rows (each of the model's input length).
    pub inputs: Vec<Vec<f64>>,
    /// Target rows (each of the model's output length).
    pub targets: Vec<Vec<f64>>,
}

impl Dataset {
    /// Number of examples.
    #[must_use]
    pub fn len(&self) -> usize {
        self.inputs.len()
    }

    /// True when the dataset holds no examples.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.inputs.is_empty()
    }

    /// Splits into `(first_n, rest)` — train/validation split.
    ///
    /// # Panics
    /// Panics if `n > len`.
    #[must_use]
    pub fn split_at(&self, n: usize) -> (Dataset, Dataset) {
        assert!(n <= self.len());
        (
            Dataset {
                inputs: self.inputs[..n].to_vec(),
                targets: self.targets[..n].to_vec(),
            },
            Dataset {
                inputs: self.inputs[n..].to_vec(),
                targets: self.targets[n..].to_vec(),
            },
        )
    }
}

/// Training hyper-parameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TrainConfig {
    /// Number of passes over the training set.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Loss function.
    pub loss: Loss,
    /// Shuffle seed (examples are reshuffled every epoch).
    pub seed: u64,
    /// Clip the global gradient L2 norm to this value (None disables).
    pub grad_clip: Option<f64>,
}

impl Default for TrainConfig {
    fn default() -> Self {
        Self {
            epochs: 10,
            batch_size: 32,
            loss: Loss::Bce,
            seed: 0,
            grad_clip: Some(5.0),
        }
    }
}

/// Per-epoch training record.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TrainReport {
    /// Mean training loss per epoch.
    pub epoch_loss: Vec<f64>,
}

impl TrainReport {
    /// Final epoch's mean loss.
    #[must_use]
    pub fn final_loss(&self) -> f64 {
        *self.epoch_loss.last().expect("at least one epoch")
    }
}

/// Computes the averaged gradients and mean loss over one batch
/// (rayon-parallel across examples).
#[must_use]
pub fn batch_gradients(
    model: &Model,
    inputs: &[Vec<f64>],
    targets: &[Vec<f64>],
    loss: Loss,
) -> (Gradients, f64) {
    assert_eq!(inputs.len(), targets.len());
    assert!(!inputs.is_empty());
    let final_act = model.final_activation();
    let (grads, loss_sum) = inputs
        .par_iter()
        .zip(targets.par_iter())
        .map(|(x, t)| {
            let input = FeatureMap::from_signal(x);
            let cache = model.forward_cached(&input);
            let y = cache.output();
            let l = loss.value(y.as_slice(), t);
            let (dy, fused) = loss.gradient(y, t, final_act);
            let g = model.backward(&cache, &dy, fused);
            (g, l)
        })
        .reduce_with(|(mut ga, la), (gb, lb)| {
            ga.accumulate(&gb);
            (ga, la + lb)
        })
        .expect("nonempty batch");
    let mut grads = grads;
    grads.scale(1.0 / inputs.len() as f64);
    (grads, loss_sum / inputs.len() as f64)
}

/// Trains `model` in place. Returns the per-epoch loss history.
///
/// # Panics
/// Panics on an empty dataset or zero batch size.
pub fn train(
    model: &mut Model,
    data: &Dataset,
    config: &TrainConfig,
    optimizer: &mut dyn Optimizer,
) -> TrainReport {
    assert!(!data.is_empty(), "empty training set");
    assert!(config.batch_size > 0);
    let mut rng = Rng::seed_from_u64(config.seed);
    let mut order: Vec<usize> = (0..data.len()).collect();
    let mut epoch_loss = Vec::with_capacity(config.epochs);

    for _ in 0..config.epochs {
        rng.shuffle(&mut order);
        let mut loss_sum = 0.0;
        let mut batches = 0usize;
        for chunk in order.chunks(config.batch_size) {
            let inputs: Vec<Vec<f64>> = chunk.iter().map(|&i| data.inputs[i].clone()).collect();
            let targets: Vec<Vec<f64>> = chunk.iter().map(|&i| data.targets[i].clone()).collect();
            let (mut grads, loss) = batch_gradients(model, &inputs, &targets, config.loss);
            if let Some(clip) = config.grad_clip {
                let norm = grads.l2_norm();
                if norm > clip {
                    grads.scale(clip / norm);
                }
            }
            optimizer.step(model, &grads);
            loss_sum += loss;
            batches += 1;
        }
        epoch_loss.push(loss_sum / batches as f64);
    }
    TrainReport { epoch_loss }
}

/// Extended training: per-epoch learning-rate schedule plus early stopping
/// on a validation set. Returns the report with one entry per epoch
/// actually run.
///
/// # Panics
/// Panics on empty datasets or zero batch size.
pub fn train_with_schedule(
    model: &mut Model,
    data: &Dataset,
    validation: &Dataset,
    config: &TrainConfig,
    schedule: crate::schedule::LrSchedule,
    mut early: Option<crate::schedule::EarlyStopping>,
    optimizer: &mut dyn Optimizer,
) -> TrainReport {
    assert!(!data.is_empty() && !validation.is_empty());
    assert!(config.batch_size > 0);
    let mut rng = Rng::seed_from_u64(config.seed);
    let mut order: Vec<usize> = (0..data.len()).collect();
    let mut epoch_loss = Vec::with_capacity(config.epochs);

    for epoch in 0..config.epochs {
        optimizer.set_lr(schedule.at(epoch));
        rng.shuffle(&mut order);
        let mut loss_sum = 0.0;
        let mut batches = 0usize;
        for chunk in order.chunks(config.batch_size) {
            let inputs: Vec<Vec<f64>> = chunk.iter().map(|&i| data.inputs[i].clone()).collect();
            let targets: Vec<Vec<f64>> = chunk.iter().map(|&i| data.targets[i].clone()).collect();
            let (mut grads, loss) = batch_gradients(model, &inputs, &targets, config.loss);
            if let Some(clip) = config.grad_clip {
                let norm = grads.l2_norm();
                if norm > clip {
                    grads.scale(clip / norm);
                }
            }
            optimizer.step(model, &grads);
            loss_sum += loss;
            batches += 1;
        }
        epoch_loss.push(loss_sum / batches as f64);
        if let Some(es) = &mut early {
            let val = evaluate(model, validation, config.loss);
            if es.update(val) {
                break;
            }
        }
    }
    TrainReport { epoch_loss }
}

/// Mean loss of `model` over a dataset (no training) — validation metric.
#[must_use]
pub fn evaluate(model: &Model, data: &Dataset, loss: Loss) -> f64 {
    assert!(!data.is_empty());
    data.inputs
        .par_iter()
        .zip(data.targets.par_iter())
        .map(|(x, t)| loss.value(&model.predict(x), t))
        .sum::<f64>()
        / data.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::{DenseParams, Layer};
    use crate::optim::Adam;
    use reads_tensor::Activation;

    /// Learnable toy task: target = sigmoid-ish step of the input mean.
    fn toy_dataset(n: usize, seed: u64) -> Dataset {
        let mut rng = Rng::seed_from_u64(seed);
        let mut d = Dataset::default();
        for _ in 0..n {
            let x: Vec<f64> = (0..8).map(|_| rng.range_f64(-1.0, 1.0)).collect();
            let mean = x.iter().sum::<f64>() / 8.0;
            let t = vec![f64::from(mean > 0.0) * 0.8 + 0.1; 2];
            d.inputs.push(x);
            d.targets.push(t);
        }
        d
    }

    fn toy_model(seed: u64) -> Model {
        let mut rng = Rng::seed_from_u64(seed);
        Model::new(
            8,
            1,
            vec![
                Layer::Dense(DenseParams {
                    w: crate::init::he_normal(16, 8, 8, &mut rng),
                    b: vec![0.0; 16],
                    activation: Activation::Relu,
                }),
                Layer::Dense(DenseParams {
                    w: crate::init::glorot_normal(2, 16, 16, 2, &mut rng),
                    b: vec![0.0; 2],
                    activation: Activation::Sigmoid,
                }),
            ],
        )
    }

    #[test]
    fn training_reduces_loss() {
        let data = toy_dataset(256, 1);
        let mut model = toy_model(2);
        let before = evaluate(&model, &data, Loss::Bce);
        let mut opt = Adam::new(0.01);
        let report = train(
            &mut model,
            &data,
            &TrainConfig {
                epochs: 30,
                batch_size: 32,
                loss: Loss::Bce,
                seed: 3,
                grad_clip: Some(5.0),
            },
            &mut opt,
        );
        let after = evaluate(&model, &data, Loss::Bce);
        assert!(after < before * 0.6, "loss {before} -> {after}");
        assert_eq!(report.epoch_loss.len(), 30);
        // Loss history is broadly decreasing.
        assert!(report.final_loss() < report.epoch_loss[0]);
    }

    #[test]
    fn batch_gradients_average_matches_single_example() {
        let data = toy_dataset(4, 5);
        let model = toy_model(6);
        // Batch of the same example 4x == gradient of that example.
        let inputs = vec![data.inputs[0].clone(); 4];
        let targets = vec![data.targets[0].clone(); 4];
        let (g_batch, l_batch) = batch_gradients(&model, &inputs, &targets, Loss::Bce);
        let (g_single, l_single) = batch_gradients(&model, &inputs[..1], &targets[..1], Loss::Bce);
        assert!((l_batch - l_single).abs() < 1e-12);
        assert!((g_batch.l2_norm() - g_single.l2_norm()).abs() < 1e-9);
    }

    #[test]
    fn split_at_partitions() {
        let d = toy_dataset(10, 7);
        let (a, b) = d.split_at(7);
        assert_eq!(a.len(), 7);
        assert_eq!(b.len(), 3);
        assert_eq!(a.inputs[0], d.inputs[0]);
        assert_eq!(b.inputs[0], d.inputs[7]);
    }

    #[test]
    fn grad_clip_bounds_norm() {
        let data = toy_dataset(8, 9);
        let model = toy_model(10);
        let (mut grads, _) = batch_gradients(&model, &data.inputs, &data.targets, Loss::Bce);
        let clip = grads.l2_norm() / 2.0;
        let norm = grads.l2_norm();
        if norm > clip {
            grads.scale(clip / norm);
        }
        assert!((grads.l2_norm() - clip).abs() < 1e-9);
    }

    #[test]
    fn schedule_training_with_early_stopping() {
        use crate::schedule::{EarlyStopping, LrSchedule};
        let data = toy_dataset(192, 21);
        let (train_set, val) = data.split_at(160);
        let mut model = toy_model(22);
        let mut opt = Adam::new(0.01);
        let report = train_with_schedule(
            &mut model,
            &train_set,
            &val,
            &TrainConfig {
                epochs: 60,
                batch_size: 16,
                loss: Loss::Bce,
                seed: 23,
                grad_clip: Some(5.0),
            },
            LrSchedule::Cosine {
                initial: 0.01,
                floor: 0.0005,
                total_epochs: 60,
            },
            Some(EarlyStopping::new(3, 1e-4)),
            &mut opt,
        );
        // Early stopping must have cut the run short of the full horizon on
        // this quickly-saturating toy task.
        assert!(
            report.epoch_loss.len() < 60,
            "ran {} epochs",
            report.epoch_loss.len()
        );
        assert!(report.final_loss() < report.epoch_loss[0]);
        // The schedule actually annealed the optimizer's rate.
        assert!(opt.lr() < 0.01);
    }

    #[test]
    fn mse_training_also_works() {
        let data = toy_dataset(128, 11);
        let mut model = toy_model(12);
        let mut opt = Adam::new(0.01);
        let report = train(
            &mut model,
            &data,
            &TrainConfig {
                epochs: 15,
                batch_size: 16,
                loss: Loss::Mse,
                seed: 13,
                grad_clip: None,
            },
            &mut opt,
        );
        assert!(report.final_loss() < report.epoch_loss[0]);
    }
}
