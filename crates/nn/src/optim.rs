//! Optimizers: SGD with momentum and Adam.
//!
//! Both walk the model's layers in order and update dense-like parameters in
//! place; per-parameter optimizer state (momentum / Adam moments) is stored
//! flat, keyed by the deterministic traversal order.

use crate::graph::{Gradients, Model};
use crate::layer::{Layer, LayerGrad};

/// A first-order optimizer.
pub trait Optimizer {
    /// Applies one update step from the given gradients.
    fn step(&mut self, model: &mut Model, grads: &Gradients);

    /// Updates the learning rate (for schedules).
    fn set_lr(&mut self, lr: f64);

    /// Current learning rate.
    fn lr(&self) -> f64;
}

/// Walks `(params, grads)` pairs in deterministic order, invoking `f` with
/// (flat parameter slice, flat gradient slice, state offset).
fn visit(model: &mut Model, grads: &Gradients, mut f: impl FnMut(&mut [f64], &[f64], usize)) {
    let mut offset = 0;
    for (layer, grad) in model.layers_mut().iter_mut().zip(&grads.per_layer) {
        match (layer, grad) {
            (
                Layer::Dense(p) | Layer::PointwiseDense(p) | Layer::Conv1d { p, .. },
                LayerGrad::Dense { dw, db },
            ) => {
                f(p.w.as_mut_slice(), dw.as_slice(), offset);
                offset += dw.as_slice().len();
                f(&mut p.b, db, offset);
                offset += db.len();
            }
            (_, LayerGrad::None) => {}
            _ => panic!("gradient structure mismatches model"),
        }
    }
}

/// Stochastic gradient descent with classical momentum.
#[derive(Debug, Clone)]
pub struct Sgd {
    /// Learning rate.
    pub lr: f64,
    /// Momentum coefficient (0 disables).
    pub momentum: f64,
    velocity: Vec<f64>,
}

impl Sgd {
    /// New SGD optimizer.
    #[must_use]
    pub fn new(lr: f64, momentum: f64) -> Self {
        Self {
            lr,
            momentum,
            velocity: Vec::new(),
        }
    }
}

impl Optimizer for Sgd {
    fn set_lr(&mut self, lr: f64) {
        self.lr = lr;
    }

    fn lr(&self) -> f64 {
        self.lr
    }

    fn step(&mut self, model: &mut Model, grads: &Gradients) {
        if self.velocity.is_empty() {
            self.velocity = vec![0.0; model.param_count()];
        }
        let lr = self.lr;
        let mom = self.momentum;
        let vel = &mut self.velocity;
        visit(model, grads, |params, gs, offset| {
            for (i, (p, g)) in params.iter_mut().zip(gs).enumerate() {
                let v = &mut vel[offset + i];
                *v = mom * *v - lr * g;
                *p += *v;
            }
        });
    }
}

/// Adam (Kingma & Ba) with bias correction.
#[derive(Debug, Clone)]
pub struct Adam {
    /// Learning rate.
    pub lr: f64,
    /// First-moment decay.
    pub beta1: f64,
    /// Second-moment decay.
    pub beta2: f64,
    /// Denominator floor.
    pub eps: f64,
    t: u64,
    m: Vec<f64>,
    v: Vec<f64>,
}

impl Adam {
    /// Adam with the canonical defaults (β₁ 0.9, β₂ 0.999, ε 1e-8).
    #[must_use]
    pub fn new(lr: f64) -> Self {
        Self {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            t: 0,
            m: Vec::new(),
            v: Vec::new(),
        }
    }
}

impl Optimizer for Adam {
    fn set_lr(&mut self, lr: f64) {
        self.lr = lr;
    }

    fn lr(&self) -> f64 {
        self.lr
    }

    fn step(&mut self, model: &mut Model, grads: &Gradients) {
        if self.m.is_empty() {
            let n = model.param_count();
            self.m = vec![0.0; n];
            self.v = vec![0.0; n];
        }
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        let (lr, b1, b2, eps) = (self.lr, self.beta1, self.beta2, self.eps);
        let (m, v) = (&mut self.m, &mut self.v);
        visit(model, grads, |params, gs, offset| {
            for (i, (p, g)) in params.iter_mut().zip(gs).enumerate() {
                let mi = &mut m[offset + i];
                let vi = &mut v[offset + i];
                *mi = b1 * *mi + (1.0 - b1) * g;
                *vi = b2 * *vi + (1.0 - b2) * g * g;
                let mhat = *mi / bc1;
                let vhat = *vi / bc2;
                *p -= lr * mhat / (vhat.sqrt() + eps);
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::DenseParams;
    use reads_tensor::{Activation, FeatureMap, Mat};

    /// A 1-parameter quadratic: minimize (w*1 - 2)^2 via the dense layer.
    fn scalar_model(w0: f64) -> Model {
        Model::new(
            1,
            1,
            vec![Layer::Dense(DenseParams {
                w: Mat::from_vec(1, 1, vec![w0]),
                b: vec![0.0],
                activation: Activation::Linear,
            })],
        )
    }

    fn loss_and_grads(m: &Model) -> (f64, Gradients) {
        let input = FeatureMap::from_signal(&[1.0]);
        let cache = m.forward_cached(&input);
        let y = cache.output().as_slice()[0];
        let loss = (y - 2.0) * (y - 2.0);
        let dy = FeatureMap::from_signal(&[2.0 * (y - 2.0)]);
        (loss, m.backward(&cache, &dy, false))
    }

    fn weight(m: &Model) -> f64 {
        match &m.layers()[0] {
            Layer::Dense(p) => p.w.get(0, 0),
            _ => unreachable!(),
        }
    }

    fn output(m: &Model) -> f64 {
        m.predict(&[1.0])[0]
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        // Weight and bias share the minimum (w + b = 2); check the output.
        let mut m = scalar_model(0.0);
        let mut opt = Sgd::new(0.1, 0.0);
        for _ in 0..100 {
            let (_, g) = loss_and_grads(&m);
            opt.step(&mut m, &g);
        }
        assert!((output(&m) - 2.0).abs() < 1e-6);
    }

    #[test]
    fn momentum_accelerates() {
        let run = |mom: f64, steps: usize| {
            let mut m = scalar_model(0.0);
            let mut opt = Sgd::new(0.01, mom);
            for _ in 0..steps {
                let (_, g) = loss_and_grads(&m);
                opt.step(&mut m, &g);
            }
            (output(&m) - 2.0).abs()
        };
        assert!(run(0.9, 40) < run(0.0, 40));
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let mut m = scalar_model(10.0);
        let mut opt = Adam::new(0.2);
        for _ in 0..300 {
            let (_, g) = loss_and_grads(&m);
            opt.step(&mut m, &g);
        }
        assert!((output(&m) - 2.0).abs() < 1e-3, "y = {}", output(&m));
    }

    #[test]
    fn adam_step_magnitude_bounded_by_lr() {
        // Adam's per-step displacement is ~lr regardless of gradient scale.
        let mut m = scalar_model(1000.0);
        let mut opt = Adam::new(0.1);
        let w_before = weight(&m);
        let (_, g) = loss_and_grads(&m);
        opt.step(&mut m, &g);
        let delta = (weight(&m) - w_before).abs();
        assert!(delta < 0.11, "delta {delta}");
        assert!(delta > 0.09);
    }

    #[test]
    fn loss_decreases_under_training() {
        let mut m = scalar_model(-3.0);
        let mut opt = Adam::new(0.05);
        let (l0, _) = loss_and_grads(&m);
        for _ in 0..50 {
            let (_, g) = loss_and_grads(&m);
            opt.step(&mut m, &g);
        }
        let (l1, _) = loss_and_grads(&m);
        assert!(l1 < l0 * 0.1, "loss {l0} -> {l1}");
    }
}
