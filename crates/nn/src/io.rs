//! Versioned model checkpoints.
//!
//! Training runs, the artifact cache and the deployment pipeline all pass
//! models through disk. The envelope carries a format version and the
//! architecture fingerprint so an old or mismatched checkpoint fails loudly
//! instead of deserializing into silent nonsense.

use crate::graph::Model;
use serde::{Deserialize, Serialize};
use std::fs;
use std::io;
use std::path::Path;

/// Current checkpoint format version.
pub const CHECKPOINT_VERSION: u32 = 1;

#[derive(Debug, Serialize, Deserialize)]
struct Envelope {
    version: u32,
    param_count: usize,
    input_shape: (usize, usize),
    output_shape: (usize, usize),
    model: Model,
}

/// Errors while loading a checkpoint.
#[derive(Debug)]
pub enum CheckpointError {
    /// I/O failure.
    Io(io::Error),
    /// Not a checkpoint / corrupted JSON.
    Malformed(String),
    /// A checkpoint from a different format version.
    VersionMismatch {
        /// Version found in the file.
        found: u32,
    },
    /// The model inside does not match its own recorded fingerprint.
    FingerprintMismatch,
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint i/o: {e}"),
            CheckpointError::Malformed(e) => write!(f, "malformed checkpoint: {e}"),
            CheckpointError::VersionMismatch { found } => {
                write!(f, "checkpoint version {found} != {CHECKPOINT_VERSION}")
            }
            CheckpointError::FingerprintMismatch => {
                write!(f, "checkpoint fingerprint mismatch")
            }
        }
    }
}

impl std::error::Error for CheckpointError {}

/// Saves a model checkpoint (atomic write: temp file + rename).
///
/// # Errors
/// I/O failures.
pub fn save_checkpoint(model: &Model, path: &Path) -> Result<(), CheckpointError> {
    let envelope = Envelope {
        version: CHECKPOINT_VERSION,
        param_count: model.param_count(),
        input_shape: model.input_shape(),
        output_shape: model.output_shape(),
        model: model.clone(),
    };
    let bytes =
        serde_json::to_vec(&envelope).map_err(|e| CheckpointError::Malformed(e.to_string()))?;
    let tmp = path.with_extension("ckpt.tmp");
    fs::write(&tmp, bytes).map_err(CheckpointError::Io)?;
    fs::rename(&tmp, path).map_err(CheckpointError::Io)
}

/// Loads and validates a model checkpoint.
///
/// # Errors
/// See [`CheckpointError`].
pub fn load_checkpoint(path: &Path) -> Result<Model, CheckpointError> {
    let bytes = fs::read(path).map_err(CheckpointError::Io)?;
    let envelope: Envelope =
        serde_json::from_slice(&bytes).map_err(|e| CheckpointError::Malformed(e.to_string()))?;
    if envelope.version != CHECKPOINT_VERSION {
        return Err(CheckpointError::VersionMismatch {
            found: envelope.version,
        });
    }
    let m = envelope.model;
    if m.param_count() != envelope.param_count
        || m.input_shape() != envelope.input_shape
        || m.output_shape() != envelope.output_shape
    {
        return Err(CheckpointError::FingerprintMismatch);
    }
    Ok(m)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models;

    fn tmp_path(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("reads-nn-io-{name}-{}.ckpt", std::process::id()))
    }

    #[test]
    fn roundtrip_preserves_predictions() {
        let m = models::reads_mlp(5);
        let path = tmp_path("roundtrip");
        save_checkpoint(&m, &path).expect("save");
        let back = load_checkpoint(&path).expect("load");
        let input = vec![0.21; 259];
        assert_eq!(m.predict(&input), back.predict(&input));
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn rejects_wrong_version() {
        let m = models::reads_mlp(6);
        let path = tmp_path("version");
        save_checkpoint(&m, &path).expect("save");
        let mut text = fs::read_to_string(&path).expect("read");
        text = text.replacen("\"version\":1", "\"version\":99", 1);
        fs::write(&path, text).expect("rewrite");
        match load_checkpoint(&path) {
            Err(CheckpointError::VersionMismatch { found: 99 }) => {}
            other => panic!("expected version mismatch, got {other:?}"),
        }
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn rejects_tampered_fingerprint() {
        let m = models::reads_mlp(7);
        let path = tmp_path("fingerprint");
        save_checkpoint(&m, &path).expect("save");
        let mut text = fs::read_to_string(&path).expect("read");
        text = text.replacen("\"param_count\":100102", "\"param_count\":123", 1);
        fs::write(&path, text).expect("rewrite");
        assert!(matches!(
            load_checkpoint(&path),
            Err(CheckpointError::FingerprintMismatch)
        ));
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn missing_file_is_io_error() {
        assert!(matches!(
            load_checkpoint(Path::new("/nonexistent/reads.ckpt")),
            Err(CheckpointError::Io(_))
        ));
    }

    #[test]
    fn garbage_is_malformed() {
        let path = tmp_path("garbage");
        fs::write(&path, b"not json").expect("write");
        assert!(matches!(
            load_checkpoint(&path),
            Err(CheckpointError::Malformed(_))
        ));
        let _ = fs::remove_file(&path);
    }
}
