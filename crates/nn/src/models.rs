//! The exact paper architectures.
//!
//! The paper publishes parameter counts, not internal widths. DESIGN.md §2
//! documents the reconstruction: these builders are the *unique* (MLP) and a
//! *minimal-assumption* (U-Net) architecture matching every published count
//! exactly. Unit tests below pin the counts so refactors cannot drift.

use crate::graph::Model;
use crate::init;
use crate::layer::{DenseParams, Layer};
use reads_sim::Rng;
use reads_tensor::Activation;
use serde::{Deserialize, Serialize};

/// Number of beam loss monitors around the MI/RR complex.
pub const N_BLM: usize = 260;

/// MLP input width (the paper's 905-node / 100,102-parameter MLP uses 259 of
/// the 260 BLM channels — the unique solution to both published counts; see
/// DESIGN.md §2).
pub const MLP_INPUT: usize = 259;
/// MLP hidden width (paper Sec. III-A).
pub const MLP_HIDDEN: usize = 128;
/// MLP output width (paper Sec. III-A).
pub const MLP_OUTPUT: usize = 518;

/// U-Net encoder/decoder channel widths (reconstructed; DESIGN.md §2).
pub const UNET_C1: usize = 32;
/// Second-level channels.
pub const UNET_C2: usize = 100;
/// Bottleneck channels.
pub const UNET_C3: usize = 136;
/// Convolution kernel size.
pub const UNET_K: usize = 3;

/// Published trainable-parameter counts (Table I / Sec. III-A).
pub const UNET_PARAMS: usize = 134_434;
/// MLP parameter count.
pub const MLP_PARAMS: usize = 100_102;
/// MLP node count.
pub const MLP_NODES: usize = 905;

/// Which of the two paper models a component refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ModelSpec {
    /// The production U-Net (134,434 parameters).
    UNet,
    /// The verification/exploration MLP (100,102 parameters).
    Mlp,
}

impl ModelSpec {
    /// Human-readable name as used in the paper's tables.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            ModelSpec::UNet => "U-Net",
            ModelSpec::Mlp => "MLP",
        }
    }

    /// Published parameter count.
    #[must_use]
    pub fn param_count(&self) -> usize {
        match self {
            ModelSpec::UNet => UNET_PARAMS,
            ModelSpec::Mlp => MLP_PARAMS,
        }
    }

    /// Builds the freshly initialized model.
    #[must_use]
    pub fn build(&self, seed: u64) -> Model {
        match self {
            ModelSpec::UNet => reads_unet(seed),
            ModelSpec::Mlp => reads_mlp(seed),
        }
    }

    /// Model input width.
    #[must_use]
    pub fn input_len(&self) -> usize {
        match self {
            ModelSpec::UNet => N_BLM,
            ModelSpec::Mlp => MLP_INPUT,
        }
    }

    /// Model output width.
    #[must_use]
    pub fn output_len(&self) -> usize {
        match self {
            ModelSpec::UNet => 2 * N_BLM,
            ModelSpec::Mlp => MLP_OUTPUT,
        }
    }
}

fn conv_layer(in_ch: usize, out_ch: usize, k: usize, act: Activation, rng: &mut Rng) -> Layer {
    let fan_in = k * in_ch;
    Layer::Conv1d {
        p: DenseParams {
            w: init::for_activation(act, out_ch, fan_in, fan_in, out_ch, rng),
            b: vec![0.0; out_ch],
            activation: act,
        },
        k,
    }
}

/// The READS U-Net: 260 → (260, 2) → 520 outputs, 134,434 parameters.
///
/// ```text
/// Conv1D(1→32,k3,relu) ──────────────────────────┐ skip
///   MaxPool(2)                                    │
///   Conv1D(32→100,k3,relu) ───────────┐ skip      │
///     MaxPool(2)                      │           │
///     Conv1D(100→136,k3,relu)         │           │
///     UpSample(2) ⊕ concat ───────────┘           │
///   Conv1D(236→100,k3,relu)                       │
///   UpSample(2) ⊕ concat ─────────────────────────┘
/// Conv1D(132→32,k3,relu)
/// PointwiseDense(32→2, sigmoid)        # the "Dense/Sigmoid" stage
/// ```
#[must_use]
pub fn reads_unet(seed: u64) -> Model {
    let mut rng = Rng::seed_from_u64(seed);
    let (c1, c2, c3, k) = (UNET_C1, UNET_C2, UNET_C3, UNET_K);
    let layers = vec![
        // 0: encoder level 1 (len 260, ch 32)
        conv_layer(1, c1, k, Activation::Relu, &mut rng),
        // 1: pool -> 130
        Layer::MaxPool { pool: 2 },
        // 2: encoder level 2 (len 130, ch 100)
        conv_layer(c1, c2, k, Activation::Relu, &mut rng),
        // 3: pool -> 65
        Layer::MaxPool { pool: 2 },
        // 4: bottleneck (len 65, ch 136)
        conv_layer(c2, c3, k, Activation::Relu, &mut rng),
        // 5: upsample -> 130
        Layer::UpSample { factor: 2 },
        // 6: concat with encoder level 2 output (node 2) -> ch 236
        Layer::ConcatWith { node: 2 },
        // 7: decoder level 2 (len 130, ch 100)
        conv_layer(c3 + c2, c2, k, Activation::Relu, &mut rng),
        // 8: upsample -> 260
        Layer::UpSample { factor: 2 },
        // 9: concat with encoder level 1 output (node 0) -> ch 132
        Layer::ConcatWith { node: 0 },
        // 10: decoder level 1 (len 260, ch 32)
        conv_layer(c2 + c1, c1, k, Activation::Relu, &mut rng),
        // 11: per-position dense head 32 -> 2 with sigmoid (MI, RR)
        Layer::PointwiseDense(DenseParams {
            w: init::glorot_normal(2, c1, c1, 2, &mut rng),
            b: vec![0.0; 2],
            activation: Activation::Sigmoid,
        }),
    ];
    Model::new(N_BLM, 1, layers)
}

/// The READS MLP: 259 → Dense(128, ReLU) → Dense(518, sigmoid);
/// 100,102 parameters, 905 nodes.
#[must_use]
pub fn reads_mlp(seed: u64) -> Model {
    let mut rng = Rng::seed_from_u64(seed);
    let layers = vec![
        Layer::Dense(DenseParams {
            w: init::he_normal(MLP_HIDDEN, MLP_INPUT, MLP_INPUT, &mut rng),
            b: vec![0.0; MLP_HIDDEN],
            activation: Activation::Relu,
        }),
        Layer::Dense(DenseParams {
            w: init::glorot_normal(MLP_OUTPUT, MLP_HIDDEN, MLP_HIDDEN, MLP_OUTPUT, &mut rng),
            b: vec![0.0; MLP_OUTPUT],
            activation: Activation::Sigmoid,
        }),
    ];
    Model::new(MLP_INPUT, 1, layers)
}

/// The "trained with a BatchNorm standardization layer on raw data"
/// configuration of Sec. IV-D: the same U-Net behind a frozen input
/// BatchNorm whose running statistics absorb the raw digitizer scale
/// (magnitudes 105,000–120,000). This is the model whose 16-bit uniform
/// quantization collapses in Table II — the folded BN coefficients
/// (scale ≈ 1/σ ≈ 2·10⁻⁴) underflow the format's fractional grid and the
/// raw-scale input wraps its range.
///
/// The BatchNorm is frozen (not trained), so the trainable-parameter count
/// stays at the published 134,434.
#[must_use]
pub fn reads_unet_input_bn(seed: u64, mean: f64, var: f64) -> Model {
    let inner = reads_unet(seed);
    let mut layers = vec![Layer::BatchNorm {
        gamma: vec![1.0],
        beta: vec![0.0],
        mean: vec![mean],
        var: vec![var],
        eps: 1e-3,
    }];
    // Shift every skip reference by one to account for the prepended node.
    for l in inner.layers() {
        layers.push(match l {
            Layer::ConcatWith { node } => Layer::ConcatWith { node: node + 1 },
            other => other.clone(),
        });
    }
    Model::new(N_BLM, 1, layers)
}

/// MLP variant of [`reads_unet_input_bn`] (for the fast verification tier).
#[must_use]
pub fn reads_mlp_input_bn(seed: u64, mean: f64, var: f64) -> Model {
    let inner = reads_mlp(seed);
    let mut layers = vec![Layer::BatchNorm {
        gamma: vec![1.0],
        beta: vec![0.0],
        mean: vec![mean],
        var: vec![var],
        eps: 1e-3,
    }];
    layers.extend(inner.layers().iter().cloned());
    Model::new(MLP_INPUT, 1, layers)
}

/// A dense autoencoder over the 260 BLM channels: 260 → 64 → 16 → 64 → 260, linear reconstruction head.
///
/// This is the "other IP cores" extension of Sec. IV-D ("the U-Net IP can
/// be easily replaced by other IP cores as well, leveraging the general
/// purpose interface wrapper") — an anomaly detector in the style of the
/// LHC trigger autoencoders the paper cites (its ref. \[2\]): a frame's reconstruction
/// error flags beam conditions the training distribution never contained.
#[must_use]
pub fn reads_autoencoder(seed: u64) -> Model {
    let mut rng = Rng::seed_from_u64(seed);
    let dense = |rng: &mut Rng, n_in: usize, n_out: usize, act: Activation| {
        Layer::Dense(DenseParams {
            w: init::for_activation(act, n_out, n_in, n_in, n_out, rng),
            b: vec![0.0; n_out],
            activation: act,
        })
    };
    Model::new(
        N_BLM,
        1,
        vec![
            dense(&mut rng, N_BLM, 64, Activation::Relu),
            dense(&mut rng, 64, 16, Activation::Relu),
            dense(&mut rng, 16, 64, Activation::Relu),
            dense(&mut rng, 64, N_BLM, Activation::Linear),
        ],
    )
}

/// Reconstruction error of an autoencoder on one frame (mean squared
/// error) — the anomaly score.
#[must_use]
pub fn reconstruction_error(model: &Model, input: &[f64]) -> f64 {
    let y = model.predict(input);
    y.iter()
        .zip(input)
        .map(|(a, b)| (a - b) * (a - b))
        .sum::<f64>()
        / input.len() as f64
}

/// The randomized-parameter U-Net of the paper's pre-test phase ("all the
/// parameters are between 0 and 1", Sec. IV-D) — used by the trained-vs-
/// random dynamic-range ablation.
#[must_use]
pub fn reads_unet_randomized(seed: u64) -> Model {
    let mut model = reads_unet(seed);
    let mut rng = Rng::seed_from_u64(seed ^ 0xA5A5_A5A5);
    for layer in model.layers_mut() {
        if let Layer::Conv1d { p, .. } | Layer::PointwiseDense(p) | Layer::Dense(p) = layer {
            let (r, c) = (p.w.rows(), p.w.cols());
            p.w = init::uniform01(r, c, &mut rng);
            for b in &mut p.b {
                *b = rng.next_f64();
            }
        }
    }
    model
}

#[cfg(test)]
mod tests {
    use super::*;
    use reads_tensor::FeatureMap;

    #[test]
    fn unet_param_count_exactly_matches_paper() {
        let m = reads_unet(0);
        assert_eq!(m.param_count(), UNET_PARAMS);
    }

    #[test]
    fn mlp_param_and_node_counts_exactly_match_paper() {
        let m = reads_mlp(0);
        assert_eq!(m.param_count(), MLP_PARAMS);
        assert_eq!(m.node_count(), MLP_NODES);
    }

    #[test]
    fn unet_shapes() {
        let m = reads_unet(1);
        assert_eq!(m.input_shape(), (260, 1));
        assert_eq!(m.output_shape(), (260, 2));
    }

    #[test]
    fn mlp_shapes() {
        let m = reads_mlp(1);
        assert_eq!(m.input_shape(), (259, 1));
        assert_eq!(m.output_shape(), (518, 1));
    }

    #[test]
    fn unet_forward_produces_probabilities() {
        let m = reads_unet(2);
        let input: Vec<f64> = (0..260).map(|i| (i as f64 * 0.1).sin()).collect();
        let y = m.forward(&FeatureMap::from_signal(&input));
        assert_eq!(y.len(), 260);
        assert_eq!(y.channels(), 2);
        for &v in y.as_slice() {
            assert!((0.0..=1.0).contains(&v));
        }
    }

    #[test]
    fn different_seeds_different_weights() {
        let a = reads_mlp(1);
        let b = reads_mlp(2);
        let input: Vec<f64> = vec![0.5; 259];
        assert_ne!(a.predict(&input), b.predict(&input));
    }

    #[test]
    fn same_seed_reproducible() {
        let a = reads_unet(42);
        let b = reads_unet(42);
        assert_eq!(a, b);
    }

    #[test]
    fn randomized_unet_params_in_unit_interval() {
        let m = reads_unet_randomized(7);
        assert_eq!(m.param_count(), UNET_PARAMS);
        for layer in m.layers() {
            if let Layer::Conv1d { p, .. } | Layer::PointwiseDense(p) | Layer::Dense(p) = layer {
                assert!(p.w.as_slice().iter().all(|&w| (0.0..1.0).contains(&w)));
                assert!(p.b.iter().all(|&b| (0.0..1.0).contains(&b)));
            }
        }
    }

    #[test]
    fn autoencoder_shapes_and_score() {
        let m = reads_autoencoder(1);
        assert_eq!(m.input_shape(), (260, 1));
        assert_eq!(m.output_shape(), (260, 1));
        let x = vec![0.3; 260];
        let err = reconstruction_error(&m, &x);
        assert!(err.is_finite() && err >= 0.0);
        // An untrained AE reconstructs imperfectly.
        assert!(err > 1e-6);
    }

    #[test]
    fn input_bn_variants_keep_published_counts() {
        let u = reads_unet_input_bn(3, 112_000.0, 16_000_000.0);
        assert_eq!(u.param_count(), UNET_PARAMS, "frozen BN adds no params");
        assert_eq!(u.output_shape(), (260, 2));
        let m = reads_mlp_input_bn(3, 112_000.0, 16_000_000.0);
        assert_eq!(m.param_count(), MLP_PARAMS);
        assert_eq!(m.output_shape(), (518, 1));
    }

    #[test]
    fn input_bn_standardizes_equivalently() {
        // On raw-scale input, the BN model must behave like the plain model
        // fed standardized input.
        let mean = 112_000.0;
        let var: f64 = 16_000_000.0;
        let bn = reads_unet_input_bn(5, mean, var);
        let plain = reads_unet(5);
        let raw: Vec<f64> = (0..260).map(|j| mean + (j as f64 - 130.0) * 30.0).collect();
        let std_input: Vec<f64> = raw
            .iter()
            .map(|&x| (x - mean) / (var + 1e-3).sqrt())
            .collect();
        let y_bn = bn.predict(&raw);
        let y_plain = plain.predict(&std_input);
        for (a, b) in y_bn.iter().zip(&y_plain) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn spec_metadata_consistent() {
        assert_eq!(ModelSpec::UNet.param_count(), reads_unet(0).param_count());
        assert_eq!(ModelSpec::Mlp.param_count(), reads_mlp(0).param_count());
        assert_eq!(ModelSpec::UNet.output_len(), 520);
        assert_eq!(ModelSpec::Mlp.output_len(), 518);
    }
}
