//! Learning-rate schedules and early stopping.

use serde::{Deserialize, Serialize};

/// Per-epoch learning-rate schedule.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum LrSchedule {
    /// Fixed learning rate.
    Constant(f64),
    /// Multiply by `gamma` every `every` epochs.
    StepDecay {
        /// Initial rate.
        initial: f64,
        /// Decay factor per step.
        gamma: f64,
        /// Epochs between steps.
        every: usize,
    },
    /// Cosine annealing from `initial` to `floor` over `total_epochs`.
    Cosine {
        /// Initial rate.
        initial: f64,
        /// Final rate.
        floor: f64,
        /// Annealing horizon.
        total_epochs: usize,
    },
}

impl LrSchedule {
    /// Learning rate for epoch `e` (0-based).
    ///
    /// # Panics
    /// Panics in debug builds on non-positive rates.
    #[must_use]
    pub fn at(&self, epoch: usize) -> f64 {
        let lr = match self {
            LrSchedule::Constant(lr) => *lr,
            LrSchedule::StepDecay {
                initial,
                gamma,
                every,
            } => initial * gamma.powi((epoch / every.max(&1)) as i32),
            LrSchedule::Cosine {
                initial,
                floor,
                total_epochs,
            } => {
                let t = (epoch as f64 / (*total_epochs).max(1) as f64).min(1.0);
                floor + 0.5 * (initial - floor) * (1.0 + (std::f64::consts::PI * t).cos())
            }
        };
        debug_assert!(lr > 0.0, "non-positive learning rate");
        lr
    }
}

/// Early stopping on a validation metric (smaller is better).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EarlyStopping {
    /// Epochs without improvement tolerated before stopping.
    pub patience: usize,
    /// Minimum improvement that counts.
    pub min_delta: f64,
    best: f64,
    stale: usize,
}

impl EarlyStopping {
    /// New monitor.
    #[must_use]
    pub fn new(patience: usize, min_delta: f64) -> Self {
        Self {
            patience,
            min_delta,
            best: f64::INFINITY,
            stale: 0,
        }
    }

    /// Reports an epoch's validation metric; returns `true` when training
    /// should stop.
    pub fn update(&mut self, metric: f64) -> bool {
        if metric < self.best - self.min_delta {
            self.best = metric;
            self.stale = 0;
            false
        } else {
            self.stale += 1;
            self.stale > self.patience
        }
    }

    /// Best metric seen.
    #[must_use]
    pub fn best(&self) -> f64 {
        self.best
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_is_constant() {
        let s = LrSchedule::Constant(0.01);
        assert_eq!(s.at(0), 0.01);
        assert_eq!(s.at(99), 0.01);
    }

    #[test]
    fn step_decay_steps() {
        let s = LrSchedule::StepDecay {
            initial: 1.0,
            gamma: 0.5,
            every: 3,
        };
        assert_eq!(s.at(0), 1.0);
        assert_eq!(s.at(2), 1.0);
        assert_eq!(s.at(3), 0.5);
        assert_eq!(s.at(6), 0.25);
    }

    #[test]
    fn cosine_endpoints_and_monotone() {
        let s = LrSchedule::Cosine {
            initial: 0.1,
            floor: 0.001,
            total_epochs: 10,
        };
        assert!((s.at(0) - 0.1).abs() < 1e-12);
        assert!((s.at(10) - 0.001).abs() < 1e-12);
        assert_eq!(s.at(20), s.at(10), "clamped past horizon");
        let mut prev = s.at(0);
        for e in 1..=10 {
            let lr = s.at(e);
            assert!(lr <= prev + 1e-12);
            prev = lr;
        }
    }

    #[test]
    fn early_stopping_waits_for_patience() {
        let mut es = EarlyStopping::new(2, 0.0);
        assert!(!es.update(1.0));
        assert!(!es.update(0.9)); // improves
        assert!(!es.update(0.95)); // stale 1
        assert!(!es.update(0.95)); // stale 2
        assert!(es.update(0.95)); // stale 3 > patience
        assert_eq!(es.best(), 0.9);
    }

    #[test]
    fn min_delta_filters_noise() {
        let mut es = EarlyStopping::new(0, 0.1);
        assert!(!es.update(1.0));
        // 0.95 improves by < min_delta: counts as stale, stops immediately
        // with patience 0.
        assert!(es.update(0.95));
    }
}
