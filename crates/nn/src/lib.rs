//! `reads-nn` — the float ("Keras-equivalent") models of the paper, with
//! full backpropagation training.
//!
//! The paper starts from a *pre-trained* Keras U-Net; the quantization story
//! (Table II, Figs. 5a/5b) hinges on the dynamic ranges trained weights and
//! activations actually take ("the implementation of trained and untrained
//! models can be very different", Sec. V). Since the Fermilab training data
//! is not public, this crate implements the training stack itself — layers
//! with forward *and* backward passes, BCE/MSE losses, SGD/Adam — so the
//! models arrive at the quantization experiments genuinely trained (on the
//! synthetic de-blending workload from `reads-blm`).
//!
//! * [`graph`] — a sequential graph with skip references ([`Model`]), enough
//!   for the U-Net topology; forward, cached forward, and backward.
//! * [`layer`] — Dense / pointwise-Dense / Conv1D / MaxPool / UpSample /
//!   Concat / BatchNorm, each with its backward rule.
//! * [`loss`] — BCE (with the fused sigmoid-output gradient) and MSE.
//! * [`optim`] — SGD with momentum and Adam.
//! * [`train`] — mini-batch training loop with rayon-parallel gradient
//!   accumulation across a batch.
//! * [`models`] — the exact paper architectures: [`models::reads_unet`]
//!   (134,434 parameters) and [`models::reads_mlp`] (100,102 parameters,
//!   905 nodes).
//! * [`metrics`] — the paper's accuracy criterion (|Δ| ≤ 0.20 against the
//!   float reference) and per-machine (MI/RR) summaries.

#![warn(missing_docs)]

pub mod graph;
pub mod init;
pub mod io;
pub mod layer;
pub mod loss;
pub mod metrics;
pub mod models;
pub mod optim;
pub mod schedule;
pub mod summary;
pub mod train;

pub use graph::{ForwardCache, Gradients, Model};
pub use io::{load_checkpoint, save_checkpoint};
pub use layer::{DenseParams, Layer};
pub use loss::Loss;
pub use metrics::{accuracy_within, OutputLayout};
pub use models::{reads_mlp, reads_unet, ModelSpec};
pub use optim::{Adam, Optimizer, Sgd};
pub use schedule::{EarlyStopping, LrSchedule};
pub use summary::summary;
pub use train::{Dataset, TrainConfig, TrainReport};
