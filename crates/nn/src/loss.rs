//! Loss functions.

use reads_tensor::{Activation, FeatureMap};
use serde::{Deserialize, Serialize};

/// Training losses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Loss {
    /// Mean squared error `mean((y - t)^2)`.
    Mse,
    /// Binary cross-entropy, averaged over outputs — the natural loss for
    /// the per-monitor MI/RR probabilities. Supports soft targets in
    /// `[0, 1]` (the de-blending ground truth is a blend fraction, not a
    /// hard class).
    Bce,
}

impl Loss {
    /// Loss value for one example.
    ///
    /// # Panics
    /// Panics on length mismatch.
    #[must_use]
    pub fn value(&self, y: &[f64], t: &[f64]) -> f64 {
        assert_eq!(y.len(), t.len(), "loss: length mismatch");
        let n = y.len() as f64;
        match self {
            Loss::Mse => y.iter().zip(t).map(|(y, t)| (y - t) * (y - t)).sum::<f64>() / n,
            Loss::Bce => {
                const EPS: f64 = 1e-12;
                y.iter()
                    .zip(t)
                    .map(|(&y, &t)| {
                        let y = y.clamp(EPS, 1.0 - EPS);
                        -(t * y.ln() + (1.0 - t) * (1.0 - y).ln())
                    })
                    .sum::<f64>()
                    / n
            }
        }
    }

    /// Output-side gradient for backprop. Returns `(grad, fused)`:
    ///
    /// * For BCE when the model's final activation is sigmoid, the gradient
    ///   is computed directly w.r.t. the pre-activation as `(y − t)/n`
    ///   (`fused = true`) — exact and immune to sigmoid saturation.
    /// * Otherwise the gradient is w.r.t. the post-activation output.
    #[must_use]
    pub fn gradient(
        &self,
        y: &FeatureMap,
        t: &[f64],
        final_activation: Option<Activation>,
    ) -> (FeatureMap, bool) {
        assert_eq!(y.as_slice().len(), t.len(), "loss grad: length mismatch");
        let n = t.len() as f64;
        match self {
            Loss::Mse => {
                let mut g = y.clone();
                for (g, t) in g.as_mut_slice().iter_mut().zip(t) {
                    *g = 2.0 * (*g - t) / n;
                }
                (g, false)
            }
            Loss::Bce => {
                if final_activation == Some(Activation::Sigmoid) {
                    let mut g = y.clone();
                    for (g, t) in g.as_mut_slice().iter_mut().zip(t) {
                        *g = (*g - t) / n;
                    }
                    (g, true)
                } else {
                    const EPS: f64 = 1e-7;
                    let mut g = y.clone();
                    for (g, t) in g.as_mut_slice().iter_mut().zip(t) {
                        let yv = g.clamp(EPS, 1.0 - EPS);
                        *g = (yv - t) / (yv * (1.0 - yv)) / n;
                    }
                    (g, false)
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mse_known() {
        let v = Loss::Mse.value(&[1.0, 2.0], &[0.0, 4.0]);
        assert!((v - (1.0 + 4.0) / 2.0).abs() < 1e-15);
    }

    #[test]
    fn bce_perfect_prediction_is_zero() {
        let v = Loss::Bce.value(&[1.0, 0.0], &[1.0, 0.0]);
        assert!(v < 1e-10, "{v}");
    }

    #[test]
    fn bce_uncertain_prediction() {
        // y = 0.5 everywhere: loss = ln 2 regardless of targets in {0,1}.
        let v = Loss::Bce.value(&[0.5, 0.5], &[1.0, 0.0]);
        assert!((v - std::f64::consts::LN_2).abs() < 1e-12);
    }

    #[test]
    fn bce_handles_saturated_outputs() {
        let v = Loss::Bce.value(&[1.0], &[0.0]);
        assert!(v.is_finite());
        assert!(v > 10.0);
    }

    #[test]
    fn fused_gradient_is_y_minus_t_over_n() {
        let y = FeatureMap::from_signal(&[0.9, 0.1]);
        let (g, fused) = Loss::Bce.gradient(&y, &[1.0, 0.0], Some(Activation::Sigmoid));
        assert!(fused);
        assert!((g.as_slice()[0] - (-0.1 / 2.0)).abs() < 1e-12);
        assert!((g.as_slice()[1] - (0.1 / 2.0)).abs() < 1e-12);
    }

    #[test]
    fn unfused_bce_times_sigmoid_derivative_equals_fused() {
        // Consistency: unfused grad * y(1-y) == fused grad.
        let yv = 0.73;
        let t = 0.2;
        let y = FeatureMap::from_signal(&[yv]);
        let (gu, fused_u) = Loss::Bce.gradient(&y, &[t], Some(Activation::Relu));
        assert!(!fused_u);
        let (gf, fused_f) = Loss::Bce.gradient(&y, &[t], Some(Activation::Sigmoid));
        assert!(fused_f);
        let chained = gu.as_slice()[0] * yv * (1.0 - yv);
        assert!((chained - gf.as_slice()[0]).abs() < 1e-10);
    }

    #[test]
    fn mse_gradient_matches_finite_difference() {
        let y0 = 0.4;
        let t = [0.9];
        let h = 1e-7;
        let numeric = (Loss::Mse.value(&[y0 + h], &t) - Loss::Mse.value(&[y0 - h], &t)) / (2.0 * h);
        let y = FeatureMap::from_signal(&[y0]);
        let (g, _) = Loss::Mse.gradient(&y, &t, None);
        assert!((numeric - g.as_slice()[0]).abs() < 1e-6);
    }
}
