//! Evaluation metrics — including the paper's accuracy criterion.
//!
//! *"The accuracy of the model is measured as a percentage of the cases
//! where the quantized model output is close enough to the pretrained model
//! output ... classified as 'close enough' when the difference between the
//! two outputs is within 0.20 given the full output range is between 0 and
//! 1."* (Sec. IV-D). The MI/RR split follows the output layout: the U-Net
//! emits (260 positions × 2 channels), channel 0 = MI, channel 1 = RR.

use serde::{Deserialize, Serialize};

/// The paper's closeness tolerance.
pub const PAPER_TOLERANCE: f64 = 0.20;

/// How a flat model output vector maps to per-machine streams.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum OutputLayout {
    /// Interleaved `(MI, RR)` pairs per position — the U-Net head layout
    /// (position-major `FeatureMap` with 2 channels).
    InterleavedMiRr,
    /// First half MI, second half RR — the MLP layout.
    SplitHalves,
}

impl OutputLayout {
    /// Indices of the MI outputs.
    pub fn mi_indices(&self, total: usize) -> Vec<usize> {
        match self {
            OutputLayout::InterleavedMiRr => (0..total).step_by(2).collect(),
            OutputLayout::SplitHalves => (0..total / 2).collect(),
        }
    }

    /// Indices of the RR outputs.
    pub fn rr_indices(&self, total: usize) -> Vec<usize> {
        match self {
            OutputLayout::InterleavedMiRr => (1..total).step_by(2).collect(),
            OutputLayout::SplitHalves => (total / 2..total).collect(),
        }
    }
}

/// Fraction of outputs where `|a − b| ≤ tol` (the Table II accuracy metric).
///
/// # Panics
/// Panics on length mismatch or empty inputs.
#[must_use]
pub fn accuracy_within(a: &[f64], b: &[f64], tol: f64) -> f64 {
    assert_eq!(a.len(), b.len(), "accuracy: length mismatch");
    assert!(!a.is_empty(), "accuracy of empty outputs");
    let close = a
        .iter()
        .zip(b)
        .filter(|(x, y)| (*x - *y).abs() <= tol)
        .count();
    close as f64 / a.len() as f64
}

/// Mean absolute difference (the Fig. 5a statistic).
#[must_use]
pub fn mean_abs_diff(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len());
    assert!(!a.is_empty());
    a.iter().zip(b).map(|(x, y)| (x - y).abs()).sum::<f64>() / a.len() as f64
}

/// Count of outputs with `|a − b| > tol` — the paper's "abnormal points"
/// (Fig. 5b).
#[must_use]
pub fn outlier_count(a: &[f64], b: &[f64], tol: f64) -> usize {
    assert_eq!(a.len(), b.len());
    a.iter()
        .zip(b)
        .filter(|(x, y)| (*x - *y).abs() > tol)
        .count()
}

/// Per-machine accuracy summary over a batch of (reference, candidate)
/// output pairs.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct MachineAccuracy {
    /// Accuracy (|Δ| ≤ tol fraction) over MI outputs.
    pub mi: f64,
    /// Accuracy over RR outputs.
    pub rr: f64,
    /// Mean |Δ| over MI outputs.
    pub mi_mean_abs_diff: f64,
    /// Mean |Δ| over RR outputs.
    pub rr_mean_abs_diff: f64,
    /// Outliers (|Δ| > tol) over all outputs.
    pub outliers: usize,
    /// Total outputs compared.
    pub total_outputs: usize,
}

/// Computes the per-machine accuracy over a batch.
///
/// # Panics
/// Panics if the batch is empty or shapes mismatch.
#[must_use]
pub fn machine_accuracy(
    reference: &[Vec<f64>],
    candidate: &[Vec<f64>],
    layout: OutputLayout,
    tol: f64,
) -> MachineAccuracy {
    assert_eq!(reference.len(), candidate.len(), "batch size mismatch");
    assert!(!reference.is_empty(), "empty batch");
    let total = reference[0].len();
    let mi_idx = layout.mi_indices(total);
    let rr_idx = layout.rr_indices(total);
    let (mut mi_close, mut rr_close) = (0usize, 0usize);
    let (mut mi_sum, mut rr_sum) = (0.0f64, 0.0f64);
    let mut outliers = 0usize;
    for (r, c) in reference.iter().zip(candidate) {
        assert_eq!(r.len(), total);
        assert_eq!(c.len(), total);
        for &i in &mi_idx {
            let d = (r[i] - c[i]).abs();
            mi_sum += d;
            mi_close += usize::from(d <= tol);
            outliers += usize::from(d > tol);
        }
        for &i in &rr_idx {
            let d = (r[i] - c[i]).abs();
            rr_sum += d;
            rr_close += usize::from(d <= tol);
            outliers += usize::from(d > tol);
        }
    }
    let n = reference.len();
    MachineAccuracy {
        mi: mi_close as f64 / (mi_idx.len() * n) as f64,
        rr: rr_close as f64 / (rr_idx.len() * n) as f64,
        mi_mean_abs_diff: mi_sum / (mi_idx.len() * n) as f64,
        rr_mean_abs_diff: rr_sum / (rr_idx.len() * n) as f64,
        outliers,
        total_outputs: total * n,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accuracy_within_counts() {
        let a = [0.0, 0.5, 1.0, 0.3];
        let b = [0.1, 0.8, 1.0, 0.51];
        assert_eq!(accuracy_within(&a, &b, 0.2), 0.5); // idx 0 and 2 close
    }

    #[test]
    fn tolerance_boundary_inclusive() {
        assert_eq!(accuracy_within(&[0.0], &[0.2], 0.2), 1.0);
        assert_eq!(accuracy_within(&[0.0], &[0.2000001], 0.2), 0.0);
    }

    #[test]
    fn mean_abs_diff_known() {
        assert!((mean_abs_diff(&[0.0, 1.0], &[0.5, 0.5]) - 0.5).abs() < 1e-15);
    }

    #[test]
    fn outliers_complement_accuracy() {
        let a: Vec<f64> = (0..100).map(|i| i as f64 / 100.0).collect();
        let b: Vec<f64> = a
            .iter()
            .map(|x| x + if *x > 0.5 { 0.3 } else { 0.0 })
            .collect();
        let acc = accuracy_within(&a, &b, 0.2);
        let out = outlier_count(&a, &b, 0.2);
        assert_eq!(out, 100 - (acc * 100.0).round() as usize);
    }

    #[test]
    fn interleaved_layout_splits_channels() {
        let mi = OutputLayout::InterleavedMiRr.mi_indices(6);
        let rr = OutputLayout::InterleavedMiRr.rr_indices(6);
        assert_eq!(mi, vec![0, 2, 4]);
        assert_eq!(rr, vec![1, 3, 5]);
    }

    #[test]
    fn split_layout() {
        let mi = OutputLayout::SplitHalves.mi_indices(6);
        let rr = OutputLayout::SplitHalves.rr_indices(6);
        assert_eq!(mi, vec![0, 1, 2]);
        assert_eq!(rr, vec![3, 4, 5]);
    }

    #[test]
    fn machine_accuracy_separates_mi_rr() {
        // MI exact, RR off by 0.3 everywhere.
        let reference = vec![vec![0.2, 0.4, 0.2, 0.4]];
        let candidate = vec![vec![0.2, 0.7, 0.2, 0.7]];
        let acc = machine_accuracy(&reference, &candidate, OutputLayout::InterleavedMiRr, 0.2);
        assert_eq!(acc.mi, 1.0);
        assert_eq!(acc.rr, 0.0);
        assert_eq!(acc.outliers, 2);
        assert!((acc.rr_mean_abs_diff - 0.3).abs() < 1e-12);
        assert_eq!(acc.mi_mean_abs_diff, 0.0);
        assert_eq!(acc.total_outputs, 4);
    }
}
