//! Property tests of the conversion and scheduling invariants.

use proptest::prelude::*;
use reads_fixed::QFormat;
use reads_hls4ml::config::PrecisionStrategy;
use reads_hls4ml::latency::estimate_latency;
use reads_hls4ml::resource::estimate_resources;
use reads_hls4ml::{convert, profile_model, HlsConfig};
use reads_nn::layer::{DenseParams, Layer};
use reads_nn::Model;
use reads_tensor::{Activation, Mat};

/// A small random two-layer MLP with controllable weight scale.
fn small_model(seed: u64, scale: f64) -> Model {
    let mut rng = reads_sim::Rng::seed_from_u64(seed);
    let mut dense = |n_in: usize, n_out: usize, act: Activation| {
        Layer::Dense(DenseParams {
            w: Mat::from_fn(n_out, n_in, |_, _| rng.range_f64(-scale, scale)),
            b: vec![0.0; n_out],
            activation: act,
        })
    };
    let l0 = dense(12, 8, Activation::Relu);
    let l1 = dense(8, 4, Activation::Sigmoid);
    Model::new(12, 1, vec![l0, l1])
}

proptest! {
    /// Every quantized weight lies within its assigned format's range, for
    /// arbitrary weight scales and strategies.
    #[test]
    fn quantized_weights_in_range(seed in 0u64..500, scale in 0.01f64..50.0,
                                  width in 4u32..20) {
        let m = small_model(seed, scale);
        let inputs = vec![vec![0.3; 12], vec![-0.9; 12]];
        let profile = profile_model(&m, &inputs);
        for strategy in [
            PrecisionStrategy::LayerBased { width, int_margin: 0 },
            PrecisionStrategy::Uniform(QFormat::signed(16, 7)),
        ] {
            let fw = convert(&m, &profile, &HlsConfig::with_strategy(strategy));
            for node in &fw.nodes {
                if let Some(d) = node.dense() {
                    for &w in &d.weights {
                        prop_assert!(d.weight_fmt.in_range(w), "{w} outside {}", d.weight_fmt);
                        // And exactly on the grid.
                        let q = (w / d.weight_fmt.lsb()).round();
                        prop_assert!((w / d.weight_fmt.lsb() - q).abs() < 1e-9);
                    }
                }
            }
        }
    }

    /// Firmware outputs stay within the head's format range for arbitrary
    /// inputs (sigmoid head: within [0, 1] up to the grid).
    #[test]
    fn outputs_bounded(seed in 0u64..200, xs in prop::collection::vec(-10.0f64..10.0, 12)) {
        let m = small_model(seed, 1.0);
        let calib = vec![vec![1.0; 12], vec![-1.0; 12]];
        let profile = profile_model(&m, &calib);
        let fw = convert(&m, &profile, &HlsConfig::paper_default());
        let (y, _) = fw.infer(&xs);
        for v in y {
            prop_assert!((-0.01..=1.01).contains(&v), "sigmoid-head output {v}");
        }
    }

    /// Latency is monotone non-decreasing in the dense reuse factor, and
    /// the instantiated multiplier count is monotone non-increasing.
    #[test]
    fn reuse_monotonicity(seed in 0u64..100, r1 in 1u32..64, r2 in 64u32..2048) {
        let m = small_model(seed, 1.0);
        let inputs = vec![vec![0.5; 12]];
        let profile = profile_model(&m, &inputs);
        let build = |reuse: u32| {
            let mut cfg = HlsConfig::paper_default();
            cfg.reuse.dense = reuse;
            convert(&m, &profile, &cfg)
        };
        let (lo, hi) = (build(r1), build(r2));
        let (llo, lhi) = (estimate_latency(&lo), estimate_latency(&hi));
        prop_assert!(lhi.total_cycles >= llo.total_cycles);
        let mults = |l: &reads_hls4ml::latency::LatencyBreakdown| {
            l.nodes.iter().map(|n| n.parallel_mults).sum::<u64>()
        };
        prop_assert!(mults(&lhi) <= mults(&llo));
        // Resources follow multipliers.
        prop_assert!(estimate_resources(&hi).ip_aluts <= estimate_resources(&lo).ip_aluts);
    }

    /// More fraction bits improve firmware accuracy against the float
    /// model, up to the nonlinearity floor. Pointwise monotonicity is NOT
    /// guaranteed (a finer grid can flip a ReLU or cross a sigmoid-table
    /// bin and land a single output slightly differently), so the property
    /// is: wide formats reach the table-resolution floor, and never lose to
    /// the coarse format by more than one table bin.
    #[test]
    fn wider_reaches_the_nonlinearity_floor(
        seed in 0u64..100, xs in prop::collection::vec(-2.0f64..2.0, 12)
    ) {
        let m = small_model(seed, 0.8);
        let calib = vec![vec![2.0; 12], vec![-2.0; 12]];
        let profile = profile_model(&m, &calib);
        let err_at = |width: u32| {
            let mut cfg = HlsConfig::with_strategy(
                PrecisionStrategy::Uniform(QFormat::signed(width, 6)),
            );
            cfg.overflow = reads_fixed::Overflow::Saturate;
            let fw = convert(&m, &profile, &cfg);
            let (yq, _) = fw.infer(&xs);
            let yf = m.predict(&xs);
            yf.iter().zip(&yq).map(|(a, b)| (a - b).abs()).fold(0.0f64, f64::max)
        };
        let table_bin = 16.0 / 1024.0 * 0.25; // hls4ml sigmoid table resolution
        prop_assert!(err_at(24) <= err_at(8) + table_bin + 1e-9);
        prop_assert!(err_at(24) <= 2.0 * table_bin + 1e-9, "24-bit error above the floor");
    }
}
