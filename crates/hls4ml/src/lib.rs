//! `reads-hls4ml` — the hls4ml + Intel HLS compiler substitute.
//!
//! The paper's design flow (Fig. 4) takes a trained Keras model through
//! hls4ml into C++ firmware, synthesized by the Intel HLS compiler into an
//! IP with either the default *streaming* interface or the paper's custom
//! *memory-mapped host* interface. There is no HLS toolchain in Rust, so
//! this crate reimplements the parts of that flow the evaluation actually
//! measures (DESIGN.md §1):
//!
//! * [`config`] — the build configuration: precision strategy (uniform vs
//!   the paper's layer-based `ac_fixed<16, x>`), per-layer reuse factors
//!   (default 32, Dense/Sigmoid 260 — Table III), conversion modes, and the
//!   IP interface style.
//! * [`profile`] — the profiling pass behind layer-based precision: run the
//!   float model over calibration frames and record each layer's maximum
//!   absolute activation and weight (Sec. IV-D).
//! * [`mod@convert`] — "hls4ml": lowers a `reads-nn` float model into a
//!   [`firmware::Firmware`] graph with quantized weights and per-layer
//!   quantizers.
//! * [`firmware`] — the synthesized IP: bit-exact fixed-point inference
//!   (exact MAC accumulation, write-back rounding/overflow, sigmoid lookup
//!   table) with overflow accounting per layer.
//! * [`compiled`] — the lowered execution engine: the firmware compiled
//!   once into integer-quanta kernels (raw `i64` weights, folded
//!   shift/clamp requantizers, pre-quantized sigmoid tables) with a
//!   reusable scratch arena — bit-identical to [`firmware`], several times
//!   faster, zero allocations per frame (DESIGN.md §9).
//! * [`latency`] — the cycle model of the streaming IP (positions × II per
//!   layer, II set by reuse factor and the multiplier bandwidth budget),
//!   calibrated to the paper's 1.57 ms U-Net FPGA latency at 100 MHz.
//! * [`resource`] — the Arria 10 resource estimator (ALUTs / DSPs / M20K),
//!   calibrated to Tables II and III.
//! * [`report`] — the Table III-style build report.

#![warn(missing_docs)]

pub mod codegen;
pub mod compiled;
pub mod config;
pub mod convert;
pub mod dataflow;
pub mod device;
pub mod firmware;
pub mod latency;
pub mod profile;
pub mod report;
pub mod resource;

pub use codegen::{emit_avalon_wrapper, emit_cpp};
pub use compiled::{
    sparsify_firmware, CompiledFirmware, KernelKind, KernelMix, LayerOps, PlanConfig, Scratch,
    SimdLevel, SimdPref, SparsityPolicy,
};
pub use config::{HlsConfig, IoInterface, PrecisionStrategy, ReuseConfig};
pub use convert::convert;
pub use dataflow::{
    minimal_skip_depths, simulate as simulate_dataflow, DataflowOutcome, FifoConfig,
};
pub use device::ARRIA10_10AS066;
pub use firmware::{Firmware, InferenceStats};
pub use latency::render_loop_report;
pub use profile::{profile_model, ModelProfile};
pub use report::{precision_table, render_precision_table, BuildReport};
pub use resource::ResourceEstimate;
