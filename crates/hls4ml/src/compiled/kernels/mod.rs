//! Specialised MAC kernel families for the compiled engine.
//!
//! Every family funnels into the same `#[inline(always)]` generic bodies,
//! monomorphised over the lane count `L` (frames per pass) and — for the
//! dense family — the column width `C` (`0` = runtime width). The planner
//! picks one concrete instantiation per layer at build time and stores it
//! as a plain function pointer, so the per-frame hot path performs no
//! dispatch at all. Bit-exactness across every family rests on one fact:
//! all of them compute the *same multiset* of exact integer products per
//! output and integer addition is associative and commutative, so any
//! accumulation order (row-major scalar, SIMD lanes, CSR-skipping zeros)
//! yields the identical `i64` accumulator.

pub(crate) mod dense;
pub(crate) mod fused;
pub(crate) mod sparse;

use super::KernelKind;
use reads_fixed::Requant;
use reads_tensor::activ::SigmoidTable;

/// Fused activation + requantization stage of a dense-like kernel.
#[derive(Debug, Clone)]
pub(crate) enum CAct {
    /// Requantize the accumulator as-is.
    Linear(Requant),
    /// Clamp the accumulator at zero, then requantize.
    Relu(Requant),
    /// Index the pre-quantized sigmoid table.
    Sigmoid {
        /// `(raw, overflowed)` per table entry, quantized into the layer's
        /// output format at lowering time.
        lut: Vec<(i64, bool)>,
        /// Exact value of one accumulator quantum (a power of two), used to
        /// reproduce the interpreter's `f64` table addressing bit for bit.
        acc_lsb: f64,
    },
}

/// CSR-by-output-row storage of the exactly-zero-pruned weight matrix.
/// Indices are `u32` (the paper's layers are far below 2³² weights).
#[derive(Debug, Clone)]
pub(crate) struct Csr {
    /// `rows + 1` offsets into `idx`/`w`.
    pub row_ptr: Vec<u32>,
    /// Column index per retained weight.
    pub idx: Vec<u32>,
    /// Retained (nonzero) weights, narrowed.
    pub w: Vec<i32>,
}

/// A lowered dense-like kernel (dense / pointwise / conv im2col view) with
/// its build-time-selected MAC instantiations.
#[derive(Debug, Clone)]
pub(crate) struct CDense {
    /// Raw weights, row-major `rows × cols` (wide fallback path).
    pub w: Vec<i64>,
    /// Narrowed copy of `w`; empty when a weight or the layer's worst-case
    /// input raw exceeds `i32` (never for the paper's ≤18-bit formats).
    pub w32: Vec<i32>,
    /// Pruned structured-sparse form, present when the planner chose the
    /// sparse kernel for this layer.
    pub csr: Option<Csr>,
    /// Raw biases, pre-shifted onto the accumulator grid.
    pub b: Vec<i64>,
    pub rows: usize,
    pub cols: usize,
    /// Left shift applied to the MAC sum to reach the accumulator grid.
    pub prod_shift: u32,
    pub act: CAct,
    /// Which kernel family the planner selected.
    pub kind: KernelKind,
    /// One-frame (`L = 1`) instantiation, chosen once at build.
    pub rows1: RowsFn,
    /// Eight-frame (`L = 8`) batch-major instantiation.
    pub rows8: RowsFn,
}

impl CDense {
    /// Whether the narrow (`i32` widening MAC) path is available.
    #[inline(always)]
    pub fn narrow(&self) -> bool {
        !self.w32.is_empty()
    }
}

/// Signature every MAC instantiation shares: lane-interleaved inputs
/// (`x64` for the wide family, `x32` for narrow/sparse — the unused one is
/// empty), lane-interleaved outputs (`rows × L`), and an overflow-event
/// accumulator.
pub(crate) type RowsFn = fn(&CDense, &SigmoidTable, &[i64], &[i32], &mut [i64], &mut u64);

/// Calls the instantiation matching the driver's lane count. `L` is const,
/// so the branch folds away at monomorphisation.
#[inline(always)]
pub(crate) fn call_rows<const L: usize>(
    d: &CDense,
    sig: &SigmoidTable,
    x64: &[i64],
    x32: &[i32],
    out: &mut [i64],
    ovf: &mut u64,
) {
    debug_assert!(L == 1 || L == 8, "driver instantiates L in {{1, 8}}");
    let f = if L == 8 { d.rows8 } else { d.rows1 };
    f(d, sig, x64, x32, out, ovf);
}

/// Shift-bias-activate-requantize tail shared by every MAC family; one
/// accumulator per lane. The `i64` requant fast path is bit-identical to
/// the `i128` route for every accumulator below the exactness bound
/// (checked at lowering).
#[inline(always)]
pub(crate) fn finish_rows<const L: usize>(
    d: &CDense,
    sig: &SigmoidTable,
    acc: &[i64; L],
    r: usize,
    out: &mut [i64],
    ovf: &mut u64,
) {
    let o = &mut out[r * L..(r + 1) * L];
    match &d.act {
        CAct::Linear(rq) => {
            for (slot, &a) in o.iter_mut().zip(acc) {
                let (y, v) = rq.apply_i64((a << d.prod_shift) + d.b[r]);
                *slot = y;
                *ovf += u64::from(v);
            }
        }
        CAct::Relu(rq) => {
            for (slot, &a) in o.iter_mut().zip(acc) {
                let (y, v) = rq.apply_i64(((a << d.prod_shift) + d.b[r]).max(0));
                *slot = y;
                *ovf += u64::from(v);
            }
        }
        CAct::Sigmoid { lut, acc_lsb } => {
            for (slot, &a) in o.iter_mut().zip(acc) {
                let full = (a << d.prod_shift) + d.b[r];
                let (y, v) = lut[sig.index_of(full as f64 * *acc_lsb)];
                *slot = y;
                *ovf += u64::from(v);
            }
        }
    }
}

/// Narrows a lane-interleaved `i64` buffer into the `i32` staging area —
/// lossless for every layer the planner marked narrow (the worst-case
/// input raw fits `i32` by construction).
#[inline(always)]
pub(crate) fn stage_i32(src: &[i64], dst: &mut [i32]) {
    debug_assert_eq!(src.len(), dst.len());
    for (d, &s) in dst.iter_mut().zip(src) {
        debug_assert!(i32::try_from(s).is_ok(), "narrow layer fed wide raw");
        *d = s as i32;
    }
}
