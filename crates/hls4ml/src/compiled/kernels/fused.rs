//! Single-pass fused kernels for the U-Net's data-movement chains.
//!
//! * `conv1d → maxpool`: conv outputs stream through a `pool × out_ch`
//!   ring and are max-reduced in place — the full conv output never lands
//!   in a ping-pong buffer. A retained conv output (skip-connection
//!   source) is written to its skip slot as it streams past, and conv
//!   positions the pool drops (trailing remainder) are still *computed*
//!   so overflow statistics stay bit-identical to the unfused pipeline.
//! * `upsample → concat`: the upsample is never materialised; the concat
//!   reads main-channel raws at `pos / factor` straight from the upsample
//!   *input*.
//!
//! Both fusions reorder only *when* an element is computed, never the
//! arithmetic that computes it, so outputs and per-node statistics match
//! the unfused engine and the interpreter bit for bit.

use super::{call_rows, CDense};
use reads_fixed::Requant;
use reads_tensor::activ::SigmoidTable;

/// Computes one conv output position into `out` (`rows × L` raws).
/// Interior positions feed the im2col window as a contiguous slice of the
/// (lane-interleaved, position-major) staged input; border positions
/// gather taps into the window buffer with zero padding.
#[inline(always)]
#[allow(clippy::too_many_arguments)]
pub(crate) fn conv_at<const L: usize>(
    d: &CDense,
    sig: &SigmoidTable,
    k: usize,
    in_ch: usize,
    in_len: usize,
    x64: &[i64],
    x32: &[i32],
    win64: &mut [i64],
    win32: &mut [i32],
    pos: usize,
    out: &mut [i64],
    ovf: &mut u64,
) {
    let narrow = d.narrow();
    let half = (k / 2) as isize;
    let start = pos as isize - half;
    if start >= 0 && (start as usize) + k <= in_len {
        let at = (start as usize * in_ch) * L;
        let n = k * in_ch * L;
        if narrow {
            call_rows::<L>(d, sig, &[], &x32[at..at + n], out, ovf);
        } else {
            call_rows::<L>(d, sig, &x64[at..at + n], &[], out, ovf);
        }
    } else {
        for tap in 0..k {
            let ipos = start + tap as isize;
            let wat = tap * in_ch * L;
            let n = in_ch * L;
            if ipos < 0 || ipos >= in_len as isize {
                if narrow {
                    win32[wat..wat + n].fill(0);
                } else {
                    win64[wat..wat + n].fill(0);
                }
            } else {
                let at = (ipos as usize * in_ch) * L;
                if narrow {
                    win32[wat..wat + n].copy_from_slice(&x32[at..at + n]);
                } else {
                    win64[wat..wat + n].copy_from_slice(&x64[at..at + n]);
                }
            }
        }
        let n = k * in_ch * L;
        if narrow {
            call_rows::<L>(d, sig, &[], &win32[..n], out, ovf);
        } else {
            call_rows::<L>(d, sig, &win64[..n], &[], out, ovf);
        }
    }
}

/// Unfused conv1d over all positions.
#[inline(always)]
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_conv<const L: usize>(
    d: &CDense,
    sig: &SigmoidTable,
    k: usize,
    in_ch: usize,
    in_len: usize,
    x64: &[i64],
    x32: &[i32],
    win64: &mut [i64],
    win32: &mut [i32],
    dst: &mut [i64],
    ovf: &mut u64,
) {
    for (pos, out) in dst.chunks_exact_mut(d.rows * L).enumerate() {
        conv_at::<L>(
            d, sig, k, in_ch, in_len, x64, x32, win64, win32, pos, out, ovf,
        );
    }
}

/// Fused conv1d → maxpool single pass. `dst` receives the pooled output
/// (`(in_len / pool) × rows` positions); `conv_skip`, when present,
/// receives the full conv output for a later concat.
#[inline(always)]
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_conv_pool<const L: usize>(
    d: &CDense,
    sig: &SigmoidTable,
    k: usize,
    in_ch: usize,
    in_len: usize,
    pool: usize,
    x64: &[i64],
    x32: &[i32],
    win64: &mut [i64],
    win32: &mut [i32],
    rowtmp: &mut [i64],
    mut conv_skip: Option<&mut [i64]>,
    dst: &mut [i64],
    ovf: &mut u64,
) {
    let ch = d.rows;
    let slot_n = ch * L;
    // Conv output length equals its input length ("same" padding); every
    // position is computed — including a trailing remainder the pool
    // drops — so requant overflow counts match the unfused engine.
    for pos in 0..in_len {
        let slot = pos % pool;
        {
            let out = &mut rowtmp[slot * slot_n..(slot + 1) * slot_n];
            conv_at::<L>(
                d, sig, k, in_ch, in_len, x64, x32, win64, win32, pos, out, ovf,
            );
            if let Some(skip) = conv_skip.as_deref_mut() {
                skip[pos * slot_n..(pos + 1) * slot_n].copy_from_slice(out);
            }
        }
        if slot == pool - 1 {
            let opos = pos / pool;
            let out = &mut dst[opos * slot_n..(opos + 1) * slot_n];
            for c in 0..ch {
                for l in 0..L {
                    let mut best = i64::MIN;
                    for off in 0..pool {
                        best = best.max(rowtmp[(off * ch + c) * L + l]);
                    }
                    out[c * L + l] = best;
                }
            }
        }
    }
}

/// Concat kernel, optionally fused with a preceding upsample
/// (`up_factor > 1`): main channels are requantized from the upsample
/// *input* at `pos / up_factor`, skip channels from the retained slot.
#[inline(always)]
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_concat<const L: usize>(
    src: &[i64],
    skip: &[i64],
    out_len: usize,
    out_ch: usize,
    skip_ch: usize,
    up_factor: usize,
    rq_main: &Requant,
    rq_skip: &Requant,
    dst: &mut [i64],
    ovf: &mut u64,
) {
    let main_ch = out_ch - skip_ch;
    for pos in 0..out_len {
        let mpos = pos / up_factor;
        let out = &mut dst[pos * out_ch * L..(pos + 1) * out_ch * L];
        for c in 0..main_ch {
            for l in 0..L {
                let (y, o) = rq_main.apply_i64(src[(mpos * main_ch + c) * L + l]);
                out[c * L + l] = y;
                *ovf += u64::from(o);
            }
        }
        for c in 0..skip_ch {
            for l in 0..L {
                let (y, o) = rq_skip.apply_i64(skip[(pos * skip_ch + c) * L + l]);
                out[(main_ch + c) * L + l] = y;
                *ovf += u64::from(o);
            }
        }
    }
}
