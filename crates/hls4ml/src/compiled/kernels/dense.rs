//! Dense MAC kernels: narrow (`i32×i32→i64` widening) and wide (`i64`)
//! bodies, monomorphised over lane count `L` and column width `C`, with
//! AVX2 / AVX-512 instantiations reached through runtime feature
//! detection.
//!
//! The SIMD story is entirely a codegen story: the `#[target_feature]`
//! wrappers contain *no intrinsics* — they re-expand the same
//! `#[inline(always)]` scalar body inside a feature-enabled function, and
//! LLVM re-vectorizes it with 256-/512-bit widening multiplies. Every
//! instantiation therefore computes the same exact integer products in a
//! different order, and integer addition is associative — outputs and
//! overflow flags are bit-identical by construction (the kernel
//! conformance suite pins this on every path).

use super::{finish_rows, CDense, RowsFn};
use crate::compiled::SimdLevel;
use reads_tensor::activ::SigmoidTable;

/// Column widths with dedicated monomorphised instantiations. Covers the
/// conformance suite's 1–17 sweep plus the models' pointwise heads.
pub(crate) const MONO_WIDTHS: [usize; 19] = [
    1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16, 17, 24, 32,
];

/// Whether `cols` has a dedicated const-width instantiation.
pub(crate) fn is_mono(cols: usize) -> bool {
    MONO_WIDTHS.contains(&cols)
}

/// Narrow dense body: `rows × cols` i32 weights against `L`
/// lane-interleaved i32 inputs. `C = 0` means runtime width; a nonzero `C`
/// fixes it at compile time so the column loop fully unrolls.
#[inline(always)]
pub(crate) fn dense_body<const L: usize, const C: usize>(
    d: &CDense,
    sig: &SigmoidTable,
    _x64: &[i64],
    x: &[i32],
    out: &mut [i64],
    ovf: &mut u64,
) {
    let cols = if C == 0 { d.cols } else { C };
    debug_assert_eq!(x.len(), cols * L);
    debug_assert_eq!(out.len(), d.rows * L);
    debug_assert_eq!(d.w32.len(), d.rows * cols);
    let mut r = 0;
    // Lane passes block four output rows per sweep so each lane-column
    // load (and its sign extension) is reused fourfold with four
    // independent accumulator chains. Per-row accumulation order is
    // untouched — row blocking only interleaves independent rows, so
    // results are identical to the single-row loop below.
    if L > 1 {
        while r + 4 <= d.rows {
            let r0 = &d.w32[r * cols..(r + 1) * cols];
            let r1 = &d.w32[(r + 1) * cols..(r + 2) * cols];
            let r2 = &d.w32[(r + 2) * cols..(r + 3) * cols];
            let r3 = &d.w32[(r + 3) * cols..(r + 4) * cols];
            let mut a0 = [0i64; L];
            let mut a1 = [0i64; L];
            let mut a2 = [0i64; L];
            let mut a3 = [0i64; L];
            for c in 0..cols {
                let xs = &x[c * L..c * L + L];
                let (w0, w1) = (i64::from(r0[c]), i64::from(r1[c]));
                let (w2, w3) = (i64::from(r2[c]), i64::from(r3[c]));
                for l in 0..L {
                    a0[l] += w0 * i64::from(xs[l]);
                }
                for l in 0..L {
                    a1[l] += w1 * i64::from(xs[l]);
                }
                for l in 0..L {
                    a2[l] += w2 * i64::from(xs[l]);
                }
                for l in 0..L {
                    a3[l] += w3 * i64::from(xs[l]);
                }
            }
            finish_rows::<L>(d, sig, &a0, r, out, ovf);
            finish_rows::<L>(d, sig, &a1, r + 1, out, ovf);
            finish_rows::<L>(d, sig, &a2, r + 2, out, ovf);
            finish_rows::<L>(d, sig, &a3, r + 3, out, ovf);
            r += 4;
        }
    }
    while r < d.rows {
        let row = &d.w32[r * cols..(r + 1) * cols];
        let mut acc = [0i64; L];
        for (c, &wv) in row.iter().enumerate() {
            let wv = i64::from(wv);
            let xs = &x[c * L..(c + 1) * L];
            for (a, &xv) in acc.iter_mut().zip(xs) {
                // Exact i32×i32→i64 widening product; the lowering bound
                // check guarantees the i64 accumulator never overflows.
                *a += wv * i64::from(xv);
            }
        }
        finish_rows::<L>(d, sig, &acc, r, out, ovf);
        r += 1;
    }
}

/// Wide dense body: full `i64` products for the rare layer whose weights
/// or inputs exceed `i32`.
#[inline(always)]
pub(crate) fn wide_body<const L: usize>(
    d: &CDense,
    sig: &SigmoidTable,
    x: &[i64],
    _x32: &[i32],
    out: &mut [i64],
    ovf: &mut u64,
) {
    debug_assert_eq!(x.len(), d.cols * L);
    debug_assert_eq!(out.len(), d.rows * L);
    for r in 0..d.rows {
        let row = &d.w[r * d.cols..(r + 1) * d.cols];
        let mut acc = [0i64; L];
        for (c, &wv) in row.iter().enumerate() {
            let xs = &x[c * L..(c + 1) * L];
            for (a, &xv) in acc.iter_mut().zip(xs) {
                *a += wv * xv;
            }
        }
        finish_rows::<L>(d, sig, &acc, r, out, ovf);
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn dense_avx2<const L: usize, const C: usize>(
    d: &CDense,
    sig: &SigmoidTable,
    x64: &[i64],
    x: &[i32],
    out: &mut [i64],
    ovf: &mut u64,
) {
    dense_body::<L, C>(d, sig, x64, x, out, ovf);
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f,avx512bw,avx512dq,avx512vl")]
unsafe fn dense_avx512<const L: usize, const C: usize>(
    d: &CDense,
    sig: &SigmoidTable,
    x64: &[i64],
    x: &[i32],
    out: &mut [i64],
    ovf: &mut u64,
) {
    dense_body::<L, C>(d, sig, x64, x, out, ovf);
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn wide_avx2<const L: usize>(
    d: &CDense,
    sig: &SigmoidTable,
    x64: &[i64],
    x: &[i32],
    out: &mut [i64],
    ovf: &mut u64,
) {
    wide_body::<L>(d, sig, x64, x, out, ovf);
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f,avx512bw,avx512dq,avx512vl")]
unsafe fn wide_avx512<const L: usize>(
    d: &CDense,
    sig: &SigmoidTable,
    x64: &[i64],
    x: &[i32],
    out: &mut [i64],
    ovf: &mut u64,
) {
    wide_body::<L>(d, sig, x64, x, out, ovf);
}

fn dense_avx2_shim<const L: usize, const C: usize>(
    d: &CDense,
    sig: &SigmoidTable,
    x64: &[i64],
    x: &[i32],
    out: &mut [i64],
    ovf: &mut u64,
) {
    #[cfg(target_arch = "x86_64")]
    {
        // SAFETY: the planner stores this instantiation only after runtime
        // detection confirmed AVX2 on this CPU.
        unsafe { dense_avx2::<L, C>(d, sig, x64, x, out, ovf) }
    }
    #[cfg(not(target_arch = "x86_64"))]
    dense_body::<L, C>(d, sig, x64, x, out, ovf)
}

fn dense_avx512_shim<const L: usize, const C: usize>(
    d: &CDense,
    sig: &SigmoidTable,
    x64: &[i64],
    x: &[i32],
    out: &mut [i64],
    ovf: &mut u64,
) {
    #[cfg(target_arch = "x86_64")]
    {
        // SAFETY: stored only after runtime detection confirmed
        // AVX-512 F/BW/DQ/VL on this CPU.
        unsafe { dense_avx512::<L, C>(d, sig, x64, x, out, ovf) }
    }
    #[cfg(not(target_arch = "x86_64"))]
    dense_body::<L, C>(d, sig, x64, x, out, ovf)
}

fn wide_avx2_shim<const L: usize>(
    d: &CDense,
    sig: &SigmoidTable,
    x64: &[i64],
    x: &[i32],
    out: &mut [i64],
    ovf: &mut u64,
) {
    #[cfg(target_arch = "x86_64")]
    {
        // SAFETY: stored only after runtime detection confirmed AVX2.
        unsafe { wide_avx2::<L>(d, sig, x64, x, out, ovf) }
    }
    #[cfg(not(target_arch = "x86_64"))]
    wide_body::<L>(d, sig, x64, x, out, ovf)
}

fn wide_avx512_shim<const L: usize>(
    d: &CDense,
    sig: &SigmoidTable,
    x64: &[i64],
    x: &[i32],
    out: &mut [i64],
    ovf: &mut u64,
) {
    #[cfg(target_arch = "x86_64")]
    {
        // SAFETY: stored only after runtime detection confirmed
        // AVX-512 F/BW/DQ/VL.
        unsafe { wide_avx512::<L>(d, sig, x64, x, out, ovf) }
    }
    #[cfg(not(target_arch = "x86_64"))]
    wide_body::<L>(d, sig, x64, x, out, ovf)
}

/// The `(L = 1, L = 8)` instantiation pair for one const width at one
/// SIMD level.
fn pair_for<const C: usize>(simd: SimdLevel) -> (RowsFn, RowsFn) {
    match simd {
        SimdLevel::Scalar => (dense_body::<1, C>, dense_body::<8, C>),
        SimdLevel::Avx2 => (dense_avx2_shim::<1, C>, dense_avx2_shim::<8, C>),
        SimdLevel::Avx512 => (dense_avx512_shim::<1, C>, dense_avx512_shim::<8, C>),
    }
}

/// Build-time dispatch: maps a layer's column width and the resolved SIMD
/// level to its `(L = 1, L = 8)` narrow instantiations. Called once per
/// layer at lowering — never on the frame path.
pub(crate) fn pair(cols: usize, simd: SimdLevel) -> (RowsFn, RowsFn) {
    match cols {
        1 => pair_for::<1>(simd),
        2 => pair_for::<2>(simd),
        3 => pair_for::<3>(simd),
        4 => pair_for::<4>(simd),
        5 => pair_for::<5>(simd),
        6 => pair_for::<6>(simd),
        7 => pair_for::<7>(simd),
        8 => pair_for::<8>(simd),
        9 => pair_for::<9>(simd),
        10 => pair_for::<10>(simd),
        11 => pair_for::<11>(simd),
        12 => pair_for::<12>(simd),
        13 => pair_for::<13>(simd),
        14 => pair_for::<14>(simd),
        15 => pair_for::<15>(simd),
        16 => pair_for::<16>(simd),
        17 => pair_for::<17>(simd),
        24 => pair_for::<24>(simd),
        32 => pair_for::<32>(simd),
        _ => pair_for::<0>(simd),
    }
}

/// Build-time dispatch for the wide (`i64`) fallback family.
pub(crate) fn wide_pair(simd: SimdLevel) -> (RowsFn, RowsFn) {
    match simd {
        SimdLevel::Scalar => (wide_body::<1>, wide_body::<8>),
        SimdLevel::Avx2 => (wide_avx2_shim::<1>, wide_avx2_shim::<8>),
        SimdLevel::Avx512 => (wide_avx512_shim::<1>, wide_avx512_shim::<8>),
    }
}
