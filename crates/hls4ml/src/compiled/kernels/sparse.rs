//! Structured-sparse (CSR-by-output-row) MAC kernels.
//!
//! The planner prunes weights that are *exactly zero after quantization*
//! (raw `0` on the weight grid). A zero raw contributes an exactly-zero
//! product to the exact integer accumulator, so skipping it leaves the sum
//! — and therefore the requantized output and its overflow flag — bit
//! identical to the dense kernel and the interpreter. This is the same
//! invariant hls4ml exploits when it schedules no multiplier for a zero
//! weight.

use super::{finish_rows, CDense, RowsFn};
use crate::compiled::SimdLevel;
use reads_tensor::activ::SigmoidTable;

/// CSR body over `L` lane-interleaved frames: per retained weight, one
/// broadcast load amortised across all `L` lanes (the lane gather
/// `x[c·L .. c·L+L]` is contiguous, so the lane loop vectorizes even
/// though columns are visited sparsely).
#[inline(always)]
pub(crate) fn sparse_body<const L: usize>(
    d: &CDense,
    sig: &SigmoidTable,
    _x64: &[i64],
    x: &[i32],
    out: &mut [i64],
    ovf: &mut u64,
) {
    let csr = d.csr.as_ref().expect("sparse kernel without CSR plan");
    debug_assert_eq!(x.len(), d.cols * L);
    debug_assert_eq!(out.len(), d.rows * L);
    debug_assert_eq!(csr.row_ptr.len(), d.rows + 1);
    for r in 0..d.rows {
        let lo = csr.row_ptr[r] as usize;
        let hi = csr.row_ptr[r + 1] as usize;
        let mut acc = [0i64; L];
        for (&c, &wv) in csr.idx[lo..hi].iter().zip(&csr.w[lo..hi]) {
            let wv = i64::from(wv);
            let xs = &x[c as usize * L..(c as usize + 1) * L];
            for (a, &xv) in acc.iter_mut().zip(xs) {
                *a += wv * i64::from(xv);
            }
        }
        finish_rows::<L>(d, sig, &acc, r, out, ovf);
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn sparse_avx2<const L: usize>(
    d: &CDense,
    sig: &SigmoidTable,
    x64: &[i64],
    x: &[i32],
    out: &mut [i64],
    ovf: &mut u64,
) {
    sparse_body::<L>(d, sig, x64, x, out, ovf);
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f,avx512bw,avx512dq,avx512vl")]
unsafe fn sparse_avx512<const L: usize>(
    d: &CDense,
    sig: &SigmoidTable,
    x64: &[i64],
    x: &[i32],
    out: &mut [i64],
    ovf: &mut u64,
) {
    sparse_body::<L>(d, sig, x64, x, out, ovf);
}

fn sparse_avx2_shim<const L: usize>(
    d: &CDense,
    sig: &SigmoidTable,
    x64: &[i64],
    x: &[i32],
    out: &mut [i64],
    ovf: &mut u64,
) {
    #[cfg(target_arch = "x86_64")]
    {
        // SAFETY: stored by the planner only after runtime detection
        // confirmed AVX2 on this CPU.
        unsafe { sparse_avx2::<L>(d, sig, x64, x, out, ovf) }
    }
    #[cfg(not(target_arch = "x86_64"))]
    sparse_body::<L>(d, sig, x64, x, out, ovf)
}

fn sparse_avx512_shim<const L: usize>(
    d: &CDense,
    sig: &SigmoidTable,
    x64: &[i64],
    x: &[i32],
    out: &mut [i64],
    ovf: &mut u64,
) {
    #[cfg(target_arch = "x86_64")]
    {
        // SAFETY: stored only after runtime detection confirmed
        // AVX-512 F/BW/DQ/VL on this CPU.
        unsafe { sparse_avx512::<L>(d, sig, x64, x, out, ovf) }
    }
    #[cfg(not(target_arch = "x86_64"))]
    sparse_body::<L>(d, sig, x64, x, out, ovf)
}

/// Build-time dispatch for the sparse family.
pub(crate) fn pair(simd: SimdLevel) -> (RowsFn, RowsFn) {
    match simd {
        SimdLevel::Scalar => (sparse_body::<1>, sparse_body::<8>),
        SimdLevel::Avx2 => (sparse_avx2_shim::<1>, sparse_avx2_shim::<8>),
        SimdLevel::Avx512 => (sparse_avx512_shim::<1>, sparse_avx512_shim::<8>),
    }
}
