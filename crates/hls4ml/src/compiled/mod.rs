//! The lowered inference engine: integer-quanta kernels compiled once from
//! a [`Firmware`], specialised per layer by a build-time planner.
//!
//! The interpreter in [`crate::firmware`] executes every frame the way the
//! *converter* reasons: on-grid `f64` values, a `quantize_dequantize`
//! round-trip per element (float multiply, `exp2`, `floor`, range check),
//! and fresh buffers per layer. [`CompiledFirmware`] lowers the model once
//! and executes whole frames in the integer-quanta domain instead — the
//! same move hls4ml makes when it turns a Keras graph into fixed-point
//! firmware:
//!
//! * weights and biases are pre-converted to raw `i64` quanta on their
//!   `QFormat` grids, biases pre-aligned to the accumulator grid;
//! * every layer-to-layer conversion is folded into a [`Requant`] — one
//!   shift, one precomputed rounding addend, one clamp — instead of the
//!   `f64` round-trip, and the whole-`i64` requant fast path replaces the
//!   `i128` route wherever the lowering bound proves it exact;
//! * each dense-like layer gets a **specialised MAC kernel** chosen once
//!   by the planner ([`PlanConfig`]): weights that are exactly zero after
//!   quantization are pruned into a CSR-by-output-row sparse kernel when
//!   the measured density warrants it, common column widths are
//!   monomorphised over const generics so their loops fully unroll, and
//!   AVX2 / AVX-512 instantiations are selected by runtime feature
//!   detection — all stored as plain function pointers, so the per-frame
//!   path performs no dispatch;
//! * frames execute **batch-major**: up to [`LANES`] frames travel
//!   together through every layer in a lane-interleaved layout, so one
//!   weight load feeds eight MACs and `batch > 1` *amortises* weight
//!   traffic instead of regressing;
//! * `conv1d → maxpool` and `upsample → concat` chains are fused into
//!   single-pass kernels over the scratch arena — the intermediate tensor
//!   is never materialised;
//! * the sigmoid table is pre-quantized into each consuming layer's output
//!   format at lowering time, so the hot path is a table index plus a load;
//! * all working memory lives in a caller-held [`Scratch`] arena, sized at
//!   lowering time — steady-state [`CompiledFirmware::infer_into`] and
//!   [`CompiledFirmware::infer_batch_into`] perform **zero heap
//!   allocations per frame**.
//!
//! # Why bit-exactness is preserved
//!
//! Every value the interpreter touches is dyadic: `raw · 2^-frac` for an
//! integer `raw` on a known grid. Its `f64` arithmetic is *exact* as long
//! as every intermediate stays below 2⁵² quanta on the common grid (f64
//! holds 53 mantissa bits; one bit of headroom covers the `+0.5` rounding
//! addend). Lowering computes, per layer, a worst-case accumulator bound
//! from the weight raws and the producer format's raw range, and panics if
//! the bound leaves that domain — so wherever a `CompiledFirmware` exists
//! at all, its integer arithmetic and the interpreter's `f64` arithmetic
//! are the *same function*. Every planner choice preserves that function:
//!
//! * **sparsity** prunes only weights whose raw is exactly `0`; a zero raw
//!   contributes an exactly-zero product, and integer addition is
//!   associative and commutative, so skipping it leaves the accumulator
//!   unchanged (the interpreter's `f64` product of a zero weight can be
//!   `-0.0`, but `-0.0` never survives a quantization boundary — it
//!   quantizes to raw `0` and indexes the sigmoid table identically);
//! * **SIMD and batch lanes** only reassociate the same exact integer
//!   products;
//! * **fusion** reorders *when* elements are computed, never the
//!   arithmetic; positions a pool drops are still computed so overflow
//!   statistics match.
//!
//! Outputs and overflow counts therefore match the interpreter bit for
//! bit on every path — pinned by the kernel conformance suite, the
//! sparse differential proptest, and the golden vectors. DESIGN.md §9 and
//! §13 have the full argument.

mod kernels;
mod planner;

use crate::firmware::{Firmware, FwNode, InferenceStats};
use kernels::{call_rows, fused, stage_i32, CDense};
use reads_fixed::{Fx, Overflow, OverflowStats, QFormat, Requant, Rounding};
use reads_tensor::activ::SigmoidTable;
use serde::{Deserialize, Serialize};

/// Largest accumulator magnitude (in quanta) for which the interpreter's
/// `f64` arithmetic is still exact — the domain in which lowering is valid.
const EXACT_BOUND: i128 = 1 << 52;

/// Frames per batch-major lane pass. The driver is monomorphised for lane
/// counts 1 and `LANES`; batches execute in groups of `LANES` with a
/// one-frame remainder loop.
pub(crate) const LANES: usize = 8;

/// Per-node work counts, recorded at lowering time — the substrate the
/// resource and latency estimators can read instead of re-deriving shapes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LayerOps {
    /// Multiply-accumulate operations per frame (0 for pure data movement).
    pub macs: u64,
    /// Output elements produced per frame.
    pub elements: u64,
}

/// SIMD instruction-set level a plan's MAC kernels are instantiated for.
/// Purely a codegen choice — every level computes bit-identical results.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum SimdLevel {
    /// Portable scalar bodies (LLVM may still autovectorize for the
    /// baseline target).
    #[default]
    Scalar,
    /// 256-bit AVX2 instantiations.
    Avx2,
    /// 512-bit AVX-512 (F/BW/DQ/VL) instantiations.
    Avx512,
}

/// Requested SIMD ceiling for a plan. The request is a *cap*, not a
/// promise: it is clamped to what runtime detection finds on this CPU.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum SimdPref {
    /// Use the best level the CPU supports.
    #[default]
    Auto,
    /// Force the portable scalar instantiations.
    Scalar,
    /// Cap at AVX2 even if AVX-512 is available.
    Avx2,
    /// Allow up to AVX-512.
    Avx512,
}

/// How the planner decides between sparse and dense MAC kernels.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum SparsityPolicy {
    /// Choose per layer by measured post-quantization density against
    /// [`PlanConfig::density_threshold`].
    #[default]
    Auto,
    /// Always lower the dense kernel.
    ForceDense,
    /// Always lower the CSR kernel (useful for conformance testing).
    ForceSparse,
}

/// Which kernel family the planner selected for a node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum KernelKind {
    /// Narrow dense MAC, runtime column width.
    Dense,
    /// Narrow dense MAC monomorphised over a const column width.
    DenseMono,
    /// Wide (`i64`) dense fallback.
    DenseWide,
    /// CSR-by-output-row sparse MAC over exactly-zero-pruned weights.
    Sparse,
    /// Pure data movement / elementwise (pool, upsample, concat,
    /// batch-norm).
    Data,
}

/// Summary of the planner's choices for one compiled firmware — surfaced
/// on the operator console so a fleet shows *which* kernels it is running.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct KernelMix {
    /// Nodes on the runtime-width narrow dense kernel.
    pub dense: u32,
    /// Nodes on a const-width monomorphised dense kernel.
    pub mono: u32,
    /// Nodes on the wide (`i64`) fallback kernel.
    pub wide: u32,
    /// Nodes on the CSR sparse kernel.
    pub sparse: u32,
    /// Fusion sites (`conv→pool`, `upsample→concat`) collapsed into
    /// single-pass kernels.
    pub fused: u32,
    /// Pure data-movement nodes.
    pub data: u32,
    /// SIMD level every MAC instantiation was selected for.
    pub simd: SimdLevel,
}

/// Build-time planning knobs for [`CompiledFirmware::lower_with`]. Every
/// setting changes speed only — outputs, statistics, and the content
/// digest are invariant across all plans (pinned by the conformance
/// suite).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlanConfig {
    /// SIMD ceiling (clamped to runtime detection).
    pub simd: SimdPref,
    /// Sparse-vs-dense kernel policy.
    pub sparsity: SparsityPolicy,
    /// Density at or below which [`SparsityPolicy::Auto`] picks the sparse
    /// kernel.
    pub density_threshold: f64,
    /// Fuse `conv1d→maxpool` and `upsample→concat` chains.
    pub fuse: bool,
}

impl Default for PlanConfig {
    fn default() -> Self {
        Self {
            simd: SimdPref::Auto,
            sparsity: SparsityPolicy::Auto,
            density_threshold: 0.5,
            fuse: true,
        }
    }
}

/// One lowered execution step (one node, or a fused pair of nodes).
#[derive(Debug, Clone)]
enum StepKernel {
    Dense(CDense),
    Pointwise(CDense),
    Conv {
        d: CDense,
        k: usize,
        in_ch: usize,
    },
    /// Fused `conv1d → maxpool`: conv rows stream through a ring and are
    /// max-reduced in place; `conv_skip` retains the full conv output when
    /// a later concat needs it.
    ConvPool {
        d: CDense,
        k: usize,
        in_ch: usize,
        pool: usize,
        conv_skip: Option<usize>,
    },
    MaxPool {
        pool: usize,
    },
    UpSample {
        factor: usize,
    },
    /// Concat, optionally fused with the preceding upsample
    /// (`up_factor > 1` reads main channels from the upsample *input*).
    Concat {
        slot: usize,
        skip_ch: usize,
        rq_main: Requant,
        rq_skip: Requant,
        up_factor: usize,
    },
    BatchNorm {
        scale: Vec<i64>,
        shift: Vec<i64>,
        prod_shift: u32,
        rq: Requant,
    },
}

#[derive(Debug, Clone)]
struct Step {
    kernel: StepKernel,
    /// Node index whose statistics slot this step reports into (fused
    /// steps report on their primary quantizing node; the partner node's
    /// slot stays zero, matching the interpreter).
    node: usize,
    /// Quantization events per lane this step contributes to `node`.
    counted: u64,
    out_len: usize,
    out_ch: usize,
    /// When set, a copy of this step's output raws is retained in
    /// `Scratch::skips[slot]` for a later concat.
    retain_slot: Option<usize>,
}

/// Reusable working memory for the compiled engine: lane-interleaved
/// ping-pong layer buffers, retained skip-connection buffers, conv window
/// and fusion ring staging, narrow (`i32`) input staging, the dequantized
/// output frames, and the statistics block — everything a batch touches,
/// sized once by [`CompiledFirmware::scratch`].
#[derive(Debug, Clone)]
pub struct Scratch {
    a: Vec<i64>,
    b: Vec<i64>,
    /// Conv border-window staging, wide path.
    win64: Vec<i64>,
    /// Conv border-window staging, narrow path.
    win32: Vec<i32>,
    /// Narrowed layer-input staging for the `i32` widening-MAC kernels.
    x32: Vec<i32>,
    /// `pool × channels` ring for the fused conv→pool kernel.
    rowtmp: Vec<i64>,
    skips: Vec<Vec<i64>>,
    out: Vec<f64>,
    stats: InferenceStats,
}

impl Scratch {
    fn reset_stats(&mut self) {
        self.stats.input = OverflowStats::default();
        for s in &mut self.stats.per_node {
            *s = OverflowStats::default();
        }
    }
}

/// A [`Firmware`] lowered into planner-specialised integer-quanta kernels.
///
/// Construct with [`CompiledFirmware::lower`] (default plan) or
/// [`CompiledFirmware::lower_with`]; execute with
/// [`CompiledFirmware::infer_into`] /
/// [`CompiledFirmware::infer_batch_into`] (allocation-free) or the
/// convenience wrappers [`CompiledFirmware::infer`] /
/// [`CompiledFirmware::infer_batch`] (which allocate only for their
/// returned values). Outputs and [`InferenceStats`] are bit-identical to
/// the interpreter's on every plan.
#[derive(Debug, Clone)]
pub struct CompiledFirmware {
    input_fmt: QFormat,
    input_rounding: Rounding,
    input_overflow: Overflow,
    steps: Vec<Step>,
    /// Source node count (fused steps cover two nodes each).
    n_nodes: usize,
    sigmoid: SigmoidTable,
    input_len: usize,
    input_channels: usize,
    output_len: usize,
    /// Quantum value of the final node's grid (dequantizes the output).
    out_lsb: f64,
    digest: u64,
    max_elems: usize,
    max_window: usize,
    max_fuse_tmp: usize,
    skip_sizes: Vec<usize>,
    layer_ops: Vec<LayerOps>,
    /// Per-node kernel family the planner selected.
    kinds: Vec<KernelKind>,
    mix: KernelMix,
}

impl CompiledFirmware {
    /// Lowers a converted firmware with the default plan (auto SIMD, auto
    /// sparsity, fusion on).
    ///
    /// # Panics
    /// Panics if a parameter is off-grid or a layer's worst-case
    /// accumulator leaves the `f64`-exactness domain (in which case the
    /// interpreter's own arithmetic would be inexact and no bit-identical
    /// lowering exists). Neither occurs for firmware produced by
    /// [`crate::convert`] with the paper's precision strategies.
    #[must_use]
    pub fn lower(fw: &Firmware) -> Self {
        Self::lower_with(fw, &PlanConfig::default())
    }

    /// Lowers with an explicit [`PlanConfig`]. All plans compute the same
    /// function; the config only selects which kernels compute it.
    ///
    /// # Panics
    /// As [`CompiledFirmware::lower`].
    #[must_use]
    pub fn lower_with(fw: &Firmware, cfg: &PlanConfig) -> Self {
        planner::lower_with(fw, cfg)
    }

    /// Builds a [`Scratch`] arena sized for this firmware. Reuse one per
    /// thread; frames executed through it never allocate.
    #[must_use]
    pub fn scratch(&self) -> Scratch {
        Scratch {
            a: vec![0; self.max_elems * LANES],
            b: vec![0; self.max_elems * LANES],
            win64: vec![0; self.max_window * LANES],
            win32: vec![0; self.max_window * LANES],
            x32: vec![0; self.max_elems * LANES],
            rowtmp: vec![0; self.max_fuse_tmp * LANES],
            skips: self
                .skip_sizes
                .iter()
                .map(|&n| vec![0; n * LANES])
                .collect(),
            out: vec![0.0; self.output_len * LANES],
            stats: InferenceStats {
                input: OverflowStats::default(),
                per_node: vec![OverflowStats::default(); self.n_nodes],
            },
        }
    }

    /// Executes `L` frames through every step in the lane-interleaved
    /// layout (element `e` of lane `l` lives at `buf[e*L + l]`), and
    /// *accumulates* statistics into the scratch block. The caller resets
    /// stats once per logical batch.
    fn run_lanes<const L: usize>(&self, frames: &[&[f64]], scratch: &mut Scratch) {
        debug_assert_eq!(frames.len(), L);
        let Scratch {
            a,
            b,
            win64,
            win32,
            x32,
            rowtmp,
            skips,
            out,
            stats,
        } = scratch;

        // Input quantization: the only stage that consumes arbitrary
        // floats, so it pays the full from_f64 conversion per element.
        let n_in = self.input_len * self.input_channels;
        let mut ovf = 0u64;
        for e in 0..n_in {
            for (l, f) in frames.iter().enumerate() {
                let (fx, o) = Fx::from_f64(
                    f[e],
                    self.input_fmt,
                    self.input_rounding,
                    self.input_overflow,
                );
                a[e * L + l] = fx.raw();
                ovf += u64::from(o);
            }
        }
        stats.input.total += (n_in * L) as u64;
        stats.input.overflows += ovf;

        let mut cur_elems = n_in;
        let mut cur_len = self.input_len;
        for step in &self.steps {
            let out_elems = step.out_len * step.out_ch;
            let mut ovf = 0u64;
            {
                let (src, dst) = (&a[..cur_elems * L], &mut b[..out_elems * L]);
                match &step.kernel {
                    StepKernel::Dense(d) => {
                        if d.narrow() {
                            let x32 = &mut x32[..cur_elems * L];
                            stage_i32(src, x32);
                            call_rows::<L>(d, &self.sigmoid, &[], x32, dst, &mut ovf);
                        } else {
                            call_rows::<L>(d, &self.sigmoid, src, &[], dst, &mut ovf);
                        }
                    }
                    StepKernel::Pointwise(d) => {
                        if d.narrow() {
                            let x32 = &mut x32[..cur_elems * L];
                            stage_i32(src, x32);
                            for (xs, o) in x32
                                .chunks_exact(d.cols * L)
                                .zip(dst.chunks_exact_mut(d.rows * L))
                            {
                                call_rows::<L>(d, &self.sigmoid, &[], xs, o, &mut ovf);
                            }
                        } else {
                            for (xs, o) in src
                                .chunks_exact(d.cols * L)
                                .zip(dst.chunks_exact_mut(d.rows * L))
                            {
                                call_rows::<L>(d, &self.sigmoid, xs, &[], o, &mut ovf);
                            }
                        }
                    }
                    StepKernel::Conv { d, k, in_ch } => {
                        if d.narrow() {
                            stage_i32(src, &mut x32[..cur_elems * L]);
                            fused::run_conv::<L>(
                                d,
                                &self.sigmoid,
                                *k,
                                *in_ch,
                                cur_len,
                                &[],
                                &x32[..cur_elems * L],
                                win64,
                                win32,
                                dst,
                                &mut ovf,
                            );
                        } else {
                            fused::run_conv::<L>(
                                d,
                                &self.sigmoid,
                                *k,
                                *in_ch,
                                cur_len,
                                src,
                                &[],
                                win64,
                                win32,
                                dst,
                                &mut ovf,
                            );
                        }
                    }
                    StepKernel::ConvPool {
                        d,
                        k,
                        in_ch,
                        pool,
                        conv_skip,
                    } => {
                        let skip = conv_skip.map(|s| skips[s].as_mut_slice());
                        if d.narrow() {
                            stage_i32(src, &mut x32[..cur_elems * L]);
                            fused::run_conv_pool::<L>(
                                d,
                                &self.sigmoid,
                                *k,
                                *in_ch,
                                cur_len,
                                *pool,
                                &[],
                                &x32[..cur_elems * L],
                                win64,
                                win32,
                                rowtmp,
                                skip,
                                dst,
                                &mut ovf,
                            );
                        } else {
                            fused::run_conv_pool::<L>(
                                d,
                                &self.sigmoid,
                                *k,
                                *in_ch,
                                cur_len,
                                *pool,
                                src,
                                &[],
                                win64,
                                win32,
                                rowtmp,
                                skip,
                                dst,
                                &mut ovf,
                            );
                        }
                    }
                    StepKernel::MaxPool { pool } => {
                        // Monotone raw→value map: the integer argmax is the
                        // f64 argmax. No quantization, no stats.
                        let ch = step.out_ch;
                        for (opos, o) in dst.chunks_exact_mut(ch * L).enumerate() {
                            for c in 0..ch {
                                for l in 0..L {
                                    let mut best = i64::MIN;
                                    for off in 0..*pool {
                                        best =
                                            best.max(src[((opos * pool + off) * ch + c) * L + l]);
                                    }
                                    o[c * L + l] = best;
                                }
                            }
                        }
                    }
                    StepKernel::UpSample { factor } => {
                        let ch = step.out_ch;
                        for (pos, xs) in src.chunks_exact(ch * L).enumerate() {
                            for rep in 0..*factor {
                                let at = (pos * factor + rep) * ch * L;
                                dst[at..at + ch * L].copy_from_slice(xs);
                            }
                        }
                    }
                    StepKernel::Concat {
                        slot,
                        skip_ch,
                        rq_main,
                        rq_skip,
                        up_factor,
                    } => {
                        fused::run_concat::<L>(
                            src,
                            &skips[*slot],
                            step.out_len,
                            step.out_ch,
                            *skip_ch,
                            *up_factor,
                            rq_main,
                            rq_skip,
                            dst,
                            &mut ovf,
                        );
                    }
                    StepKernel::BatchNorm {
                        scale,
                        shift,
                        prod_shift,
                        rq,
                    } => {
                        let ch = step.out_ch;
                        for (xs, o) in src.chunks_exact(ch * L).zip(dst.chunks_exact_mut(ch * L)) {
                            for c in 0..ch {
                                for l in 0..L {
                                    let acc = ((xs[c * L + l] * scale[c]) << prod_shift) + shift[c];
                                    let (y, ov) = rq.apply_i64(acc);
                                    o[c * L + l] = y;
                                    ovf += u64::from(ov);
                                }
                            }
                        }
                    }
                }
            }
            stats.per_node[step.node].total += step.counted * L as u64;
            stats.per_node[step.node].overflows += ovf;
            if let Some(slot) = step.retain_slot {
                skips[slot][..out_elems * L].copy_from_slice(&b[..out_elems * L]);
            }
            std::mem::swap(a, b);
            cur_elems = out_elems;
            cur_len = step.out_len;
        }

        // Dequantize planar: lane l's frame occupies out[l*ol .. (l+1)*ol].
        let ol = self.output_len;
        for l in 0..L {
            for j in 0..ol {
                out[l * ol + j] = a[j * L + l] as f64 * self.out_lsb;
            }
        }
    }

    /// Runs one frame entirely inside `scratch` — the zero-allocation hot
    /// path. Returns the dequantized outputs and this frame's statistics,
    /// both living in the scratch arena. Bit-identical to
    /// [`Firmware::infer`].
    ///
    /// # Panics
    /// Panics if the input length mismatches or `scratch` was built for a
    /// different firmware.
    pub fn infer_into<'s>(
        &self,
        input: &[f64],
        scratch: &'s mut Scratch,
    ) -> (&'s [f64], &'s InferenceStats) {
        assert_eq!(
            input.len(),
            self.input_elems(),
            "compiled firmware input length"
        );
        assert_eq!(
            scratch.stats.per_node.len(),
            self.n_nodes,
            "scratch built for a different firmware"
        );
        scratch.reset_stats();
        self.run_lanes::<1>(&[input], scratch);
        (&scratch.out[..self.output_len], &scratch.stats)
    }

    /// Batch inference through the lane-interleaved batch-major path:
    /// frames execute in groups of [`LANES`] (one weight load feeding
    /// every lane) with a one-frame remainder loop, entirely inside
    /// `scratch` — zero allocations. Dequantized frames land
    /// back-to-back in `out`; the returned statistics are the batch
    /// merge, bit-identical to running the frames sequentially through
    /// [`Firmware::infer_batch`].
    ///
    /// # Panics
    /// Panics if a frame length mismatches, `out` is not
    /// `frames.len() * output_len` long, or `scratch` was built for a
    /// different firmware.
    pub fn infer_batch_into<'s>(
        &self,
        frames: &[&[f64]],
        scratch: &'s mut Scratch,
        out: &mut [f64],
    ) -> &'s InferenceStats {
        let ol = self.output_len;
        assert_eq!(out.len(), frames.len() * ol, "batch output buffer length");
        for f in frames {
            assert_eq!(
                f.len(),
                self.input_elems(),
                "compiled firmware input length"
            );
        }
        assert_eq!(
            scratch.stats.per_node.len(),
            self.n_nodes,
            "scratch built for a different firmware"
        );
        scratch.reset_stats();
        let mut done = 0;
        while frames.len() - done >= LANES {
            self.run_lanes::<LANES>(&frames[done..done + LANES], scratch);
            out[done * ol..(done + LANES) * ol].copy_from_slice(&scratch.out[..LANES * ol]);
            done += LANES;
        }
        for f in &frames[done..] {
            self.run_lanes::<1>(std::slice::from_ref(f), scratch);
            out[done * ol..(done + 1) * ol].copy_from_slice(&scratch.out[..ol]);
            done += 1;
        }
        &scratch.stats
    }

    /// Runs one frame with a throwaway scratch — convenience for tests and
    /// cold paths; the hot path is [`CompiledFirmware::infer_into`].
    ///
    /// # Panics
    /// Panics if the input length mismatches.
    #[must_use]
    pub fn infer(&self, input: &[f64]) -> (Vec<f64>, InferenceStats) {
        let mut scratch = self.scratch();
        let (y, stats) = self.infer_into(input, &mut scratch);
        (y.to_vec(), stats.clone())
    }

    /// Batch inference through one throwaway scratch, merging statistics —
    /// bit-identical to [`Firmware::infer_batch`]. Allocates only for the
    /// returned frames.
    ///
    /// # Panics
    /// Panics if any input length mismatches.
    #[must_use]
    pub fn infer_batch(&self, inputs: &[Vec<f64>]) -> (Vec<Vec<f64>>, InferenceStats) {
        let mut scratch = self.scratch();
        let refs: Vec<&[f64]> = inputs.iter().map(Vec::as_slice).collect();
        let mut flat = vec![0.0; inputs.len() * self.output_len];
        let stats = self
            .infer_batch_into(&refs, &mut scratch, &mut flat)
            .clone();
        let outs = flat
            .chunks_exact(self.output_len.max(1))
            .map(<[f64]>::to_vec)
            .collect();
        (outs, stats)
    }

    /// The source firmware's content digest (see
    /// [`Firmware::content_digest`]) — lowering is content-preserving on
    /// *every* plan, so the digest pins this engine's outputs regardless
    /// of kernel selection.
    #[must_use]
    pub fn content_digest(&self) -> u64 {
        self.digest
    }

    /// Flattened input length.
    #[must_use]
    pub fn input_elems(&self) -> usize {
        self.input_len * self.input_channels
    }

    /// Flattened output length.
    #[must_use]
    pub fn output_len(&self) -> usize {
        self.output_len
    }

    /// Per-node work counts recorded at lowering time.
    #[must_use]
    pub fn layer_ops(&self) -> &[LayerOps] {
        &self.layer_ops
    }

    /// Total MACs per frame across all nodes.
    #[must_use]
    pub fn total_macs(&self) -> u64 {
        self.layer_ops.iter().map(|o| o.macs).sum()
    }

    /// The planner's kernel selection summary for this firmware.
    #[must_use]
    pub fn kernel_mix(&self) -> KernelMix {
        self.mix
    }

    /// Kernel family chosen for each source node.
    #[must_use]
    pub fn layer_kinds(&self) -> &[KernelKind] {
        &self.kinds
    }

    /// SIMD level every MAC kernel in this plan was instantiated for.
    #[must_use]
    pub fn simd_level(&self) -> SimdLevel {
        self.mix.simd
    }
}

/// Prunes a firmware's MAC weights to a target `density`, deterministic in
/// `seed`: each Dense / PointwiseDense / Conv1d weight is kept with
/// probability `density` and otherwise set to exactly `0.0` (on every
/// grid). Models the exact-zero structure hls4ml pruning produces, for
/// the sparse kernel's differential and golden suites. The result is a
/// *different* model (different digest); the bit-exactness contract ties
/// its compiled plans to its own interpreter.
#[must_use]
pub fn sparsify_firmware(fw: &Firmware, density: f64, seed: u64) -> Firmware {
    let mut out = fw.clone();
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 11) as f64 / (1u64 << 53) as f64
    };
    for node in &mut out.nodes {
        let d = match node {
            FwNode::Dense(d) | FwNode::PointwiseDense(d) | FwNode::Conv1d { d, .. } => d,
            _ => continue,
        };
        for w in &mut d.weights {
            if next() >= density {
                *w = 0.0;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::HlsConfig;
    use crate::firmware::InferenceStats;
    use crate::{convert, profile_model};
    use reads_nn::models;

    fn synth_frame(n: usize, seed: u64) -> Vec<f64> {
        // Same synthesis as the golden-vector suite: deterministic, mixes
        // smooth structure with pseudo-random jitter and outliers.
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        (0..n)
            .map(|i| {
                let t = i as f64 / n as f64;
                let smooth = (t * 12.57).sin() * 1.5 + (t * 40.0).cos() * 0.4;
                let jitter = next() * 2.0 - 1.0;
                let spike = if next() > 0.97 { next() * 30.0 } else { 0.0 };
                smooth + jitter + spike
            })
            .collect()
    }

    fn build(model: &reads_nn::Model, seed: u64) -> Firmware {
        let (len, ch) = model.input_shape();
        let n = len * ch;
        let frames: Vec<Vec<f64>> = (0..3).map(|i| synth_frame(n, seed + i)).collect();
        let profile = profile_model(model, &frames);
        convert(model, &profile, &HlsConfig::paper_default())
    }

    fn assert_identical(fw: &Firmware, cf: &CompiledFirmware, frame: &[f64]) {
        let (want, want_stats) = fw.infer(frame);
        let (got, got_stats) = cf.infer(frame);
        assert_eq!(want.len(), got.len());
        for (i, (w, g)) in want.iter().zip(&got).enumerate() {
            assert_eq!(w.to_bits(), g.to_bits(), "output {i}: {w} vs {g}");
        }
        assert_eq!(want_stats, got_stats, "stats diverge");
    }

    #[test]
    fn mlp_matches_interpreter_bit_for_bit() {
        let fw = build(&models::reads_mlp(11), 5);
        let cf = CompiledFirmware::lower(&fw);
        for s in 0..4 {
            assert_identical(
                &fw,
                &cf,
                &synth_frame(fw.input_len * fw.input_channels, 100 + s),
            );
        }
    }

    #[test]
    fn unet_matches_interpreter_bit_for_bit() {
        let fw = build(&models::reads_unet(11), 9);
        let cf = CompiledFirmware::lower(&fw);
        for s in 0..3 {
            assert_identical(
                &fw,
                &cf,
                &synth_frame(fw.input_len * fw.input_channels, 400 + s),
            );
        }
    }

    #[test]
    fn overflowing_frames_count_identically() {
        // Amplified inputs force input and inner-layer overflows; the
        // compiled engine must reproduce every count — including for
        // conv positions the fused pool discards.
        let fw = build(&models::reads_unet(3), 21);
        let cf = CompiledFirmware::lower(&fw);
        let frame: Vec<f64> = synth_frame(fw.input_len * fw.input_channels, 77)
            .into_iter()
            .map(|v| v * 900.0)
            .collect();
        let (_, stats) = fw.infer(&frame);
        assert!(stats.total_overflows() > 0, "test frame must overflow");
        assert_identical(&fw, &cf, &frame);
    }

    #[test]
    fn batch_matches_interpreter() {
        let fw = build(&models::reads_mlp(2), 31);
        let cf = CompiledFirmware::lower(&fw);
        let inputs: Vec<Vec<f64>> = (0..5)
            .map(|s| synth_frame(fw.input_len * fw.input_channels, 900 + s))
            .collect();
        let (want, want_stats) = fw.infer_batch(&inputs);
        let (got, got_stats) = cf.infer_batch(&inputs);
        assert_eq!(want, got);
        assert_eq!(want_stats, got_stats);
    }

    #[test]
    fn batch_crossing_lane_boundary_matches() {
        // 11 frames: one full 8-lane pass plus a 3-frame remainder — the
        // batch-major path and the remainder loop must agree with the
        // sequential interpreter on outputs and merged stats.
        for (fw, label) in [
            (build(&models::reads_mlp(6), 41), "mlp"),
            (build(&models::reads_unet(6), 42), "unet"),
        ] {
            let cf = CompiledFirmware::lower(&fw);
            let inputs: Vec<Vec<f64>> = (0..11)
                .map(|s| synth_frame(fw.input_len * fw.input_channels, 700 + s))
                .collect();
            let (want, want_stats) = fw.infer_batch(&inputs);
            let (got, got_stats) = cf.infer_batch(&inputs);
            assert_eq!(want, got, "{label} batch outputs diverge");
            assert_eq!(want_stats, got_stats, "{label} batch stats diverge");
        }
    }

    #[test]
    fn scratch_reuse_is_stateless() {
        let fw = build(&models::reads_mlp(7), 1);
        let cf = CompiledFirmware::lower(&fw);
        let a = synth_frame(fw.input_len * fw.input_channels, 10);
        let b = synth_frame(fw.input_len * fw.input_channels, 11);
        let mut scratch = cf.scratch();
        let first_a: (Vec<f64>, InferenceStats) = {
            let (y, s) = cf.infer_into(&a, &mut scratch);
            (y.to_vec(), s.clone())
        };
        let _ = cf.infer_into(&b, &mut scratch);
        let again_a: (Vec<f64>, InferenceStats) = {
            let (y, s) = cf.infer_into(&a, &mut scratch);
            (y.to_vec(), s.clone())
        };
        assert_eq!(
            first_a, again_a,
            "scratch must carry no state across frames"
        );
    }

    #[test]
    fn digest_is_preserved_from_source() {
        let fw = build(&models::reads_mlp(4), 2);
        assert_eq!(
            CompiledFirmware::lower(&fw).content_digest(),
            fw.content_digest()
        );
    }

    #[test]
    fn digest_is_invariant_across_plans() {
        let fw = build(&models::reads_mlp(9), 14);
        for sparsity in [
            SparsityPolicy::Auto,
            SparsityPolicy::ForceDense,
            SparsityPolicy::ForceSparse,
        ] {
            for simd in [SimdPref::Scalar, SimdPref::Auto] {
                let cf = CompiledFirmware::lower_with(
                    &fw,
                    &PlanConfig {
                        simd,
                        sparsity,
                        ..PlanConfig::default()
                    },
                );
                assert_eq!(cf.content_digest(), fw.content_digest());
            }
        }
    }

    #[test]
    fn sparse_firmware_matches_its_interpreter() {
        let fw = sparsify_firmware(&build(&models::reads_mlp(5), 13), 0.35, 99);
        let cf = CompiledFirmware::lower(&fw);
        assert!(
            cf.kernel_mix().sparse > 0,
            "a 35%-dense MLP must select sparse kernels, got {:?}",
            cf.kernel_mix()
        );
        for s in 0..3 {
            assert_identical(
                &fw,
                &cf,
                &synth_frame(fw.input_len * fw.input_channels, 550 + s),
            );
        }
    }

    #[test]
    fn every_plan_computes_the_same_function() {
        // The full forced matrix: SIMD cap × sparsity policy × fusion.
        // Kernel selection must be unobservable in outputs and stats.
        let fw = build(&models::reads_unet(4), 8);
        let frame = synth_frame(fw.input_len * fw.input_channels, 55);
        let (want, want_stats) = fw.infer(&frame);
        for simd in [
            SimdPref::Scalar,
            SimdPref::Avx2,
            SimdPref::Avx512,
            SimdPref::Auto,
        ] {
            for sparsity in [
                SparsityPolicy::Auto,
                SparsityPolicy::ForceDense,
                SparsityPolicy::ForceSparse,
            ] {
                for fuse in [false, true] {
                    let cfg = PlanConfig {
                        simd,
                        sparsity,
                        fuse,
                        ..PlanConfig::default()
                    };
                    let cf = CompiledFirmware::lower_with(&fw, &cfg);
                    let (got, got_stats) = cf.infer(&frame);
                    for (i, (w, g)) in want.iter().zip(&got).enumerate() {
                        assert_eq!(
                            w.to_bits(),
                            g.to_bits(),
                            "output {i} diverges under {cfg:?}"
                        );
                    }
                    assert_eq!(want_stats, got_stats, "stats diverge under {cfg:?}");
                }
            }
        }
    }

    #[test]
    fn kernel_mix_reports_fusion_and_families() {
        let fw = build(&models::reads_unet(5), 12);
        let cf = CompiledFirmware::lower(&fw);
        let mix = cf.kernel_mix();
        // reads_unet: conv→pool twice and upsample→concat twice.
        assert_eq!(mix.fused, 4, "unexpected fusion count: {mix:?}");
        assert_eq!(mix.data, 6, "pools + upsamples + concats: {mix:?}");
        assert!(mix.mono >= 1, "k=3 single-channel conv is mono: {mix:?}");
        assert_eq!(
            (mix.dense + mix.mono + mix.wide + mix.sparse + mix.data) as usize,
            fw.nodes.len(),
            "every node carries a kernel kind"
        );
        let unfused = CompiledFirmware::lower_with(
            &fw,
            &PlanConfig {
                fuse: false,
                ..PlanConfig::default()
            },
        );
        assert_eq!(unfused.kernel_mix().fused, 0);
    }

    #[test]
    fn layer_ops_cover_every_node() {
        let fw = build(&models::reads_unet(5), 3);
        let cf = CompiledFirmware::lower(&fw);
        assert_eq!(cf.layer_ops().len(), fw.nodes.len());
        assert!(cf.total_macs() > 1_000_000, "U-Net is MAC-heavy");
        // Dense-like nodes carry MACs; pool/upsample are pure data movement.
        for (ops, node) in cf.layer_ops().iter().zip(&fw.nodes) {
            match node {
                FwNode::MaxPool { .. } | FwNode::UpSample { .. } => assert_eq!(ops.macs, 0),
                FwNode::ConcatWith { .. } => assert_eq!(ops.macs, 0),
                _ => assert!(ops.macs > 0),
            }
            assert!(ops.elements > 0);
        }
    }

    #[test]
    fn shapes_and_lengths_agree() {
        let fw = build(&models::reads_unet(6), 4);
        let cf = CompiledFirmware::lower(&fw);
        assert_eq!(cf.input_elems(), fw.input_len * fw.input_channels);
        assert_eq!(cf.output_len(), fw.output_len());
    }
}
