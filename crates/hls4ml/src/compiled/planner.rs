//! The build-time kernel planner: lowers a [`Firmware`] into integer
//! quanta and chooses one specialised kernel instantiation per layer.
//!
//! Planning happens exactly once, at [`CompiledFirmware::lower_with`]
//! time:
//!
//! * **Sparsity** — weights that are exactly zero post-quantization are
//!   counted; when the measured density falls at or below
//!   [`PlanConfig::density_threshold`] the layer is lowered to the CSR
//!   kernel, otherwise to the dense kernel (the prune-only-exact-zeros
//!   invariant keeps both bit-identical, so the choice is purely a
//!   performance decision).
//! * **Monomorphisation** — layers whose column width has a dedicated
//!   const-generic instantiation get it; the rest use the runtime-width
//!   body. The selected `(L = 1, L = 8)` function pointers are stored on
//!   the layer — dispatch happens here, never per frame.
//! * **SIMD** — the highest instruction set both the CPU (runtime
//!   detection) and [`PlanConfig::simd`] allow is chosen for every MAC
//!   function pointer.
//! * **Fusion** — `conv1d → maxpool` and `upsample → concat` chains are
//!   collapsed into single-pass steps (skipped when the intermediate is a
//!   retained skip-connection source that must be materialised anyway).
//!
//! None of these choices is observable in outputs, statistics, or the
//! content digest — only in speed. The kernel conformance suite and the
//! sparse differential proptest enforce that.

use super::kernels::{dense, sparse, CAct, CDense, Csr};
use super::{
    CompiledFirmware, KernelKind, KernelMix, LayerOps, PlanConfig, SimdLevel, SimdPref,
    SparsityPolicy, Step, StepKernel, EXACT_BOUND,
};
use crate::firmware::{Firmware, FwActivation, FwDense, FwNode};
use reads_fixed::{Fx, Overflow, QFormat, Rounding};
use reads_tensor::activ::SigmoidTable;

/// Runtime detection of the best available SIMD level; always
/// [`SimdLevel::Scalar`] off x86-64.
pub(super) fn detect_level() -> SimdLevel {
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx512f")
            && std::arch::is_x86_feature_detected!("avx512bw")
            && std::arch::is_x86_feature_detected!("avx512dq")
            && std::arch::is_x86_feature_detected!("avx512vl")
        {
            return SimdLevel::Avx512;
        }
        if std::arch::is_x86_feature_detected!("avx2") {
            return SimdLevel::Avx2;
        }
    }
    SimdLevel::Scalar
}

/// Resolves a preference against what the CPU actually supports: the
/// preference is a *cap*, never a promise — forcing AVX-512 on a machine
/// without it degrades to the best detected level.
pub(super) fn resolve_simd(pref: SimdPref) -> SimdLevel {
    let detected = detect_level();
    match pref {
        SimdPref::Auto => detected,
        SimdPref::Scalar => SimdLevel::Scalar,
        SimdPref::Avx2 => detected.min(SimdLevel::Avx2),
        SimdPref::Avx512 => detected.min(SimdLevel::Avx512),
    }
}

/// Raw value exactly on `fmt`'s grid (weights/biases/coefficients are
/// stored on-grid by the converter; anything else is a lowering bug).
fn on_grid_raw(v: f64, fmt: QFormat) -> i64 {
    let (fx, ovf) = Fx::from_f64(v, fmt, Rounding::Truncate, Overflow::Saturate);
    assert!(
        !ovf && fx.to_f64() == v,
        "parameter {v} is not on the {fmt} grid"
    );
    fx.raw()
}

/// Largest raw magnitude any value of `fmt` can carry (wrap and saturate
/// both keep raws inside the format's range).
fn fmt_raw_bound(fmt: QFormat) -> i64 {
    fmt.raw_max()
        .max(fmt.raw_min().checked_neg().expect("width <= 48"))
}

/// Coarsest dyadic grid (fractional bits) on which every value in `vals`
/// has an exact integer raw — recovers the coefficient grid for folded
/// batch-norm parameters, which do not carry their format.
fn dyadic_frac(vals: &[f64]) -> i32 {
    let mut frac = -64i32;
    loop {
        let ok = vals.iter().all(|&v| {
            let scaled = v * f64::from(frac).exp2();
            scaled.fract() == 0.0 && scaled.abs() < EXACT_BOUND as f64
        });
        if ok {
            return frac;
        }
        frac += 1;
        assert!(frac <= 128, "coefficients not on a dyadic grid");
    }
}

/// Builds the CSR form of a narrowed weight matrix over its exact-zero
/// structure.
fn build_csr(w32: &[i32], rows: usize, cols: usize) -> Csr {
    let mut row_ptr = Vec::with_capacity(rows + 1);
    let mut idx = Vec::new();
    let mut w = Vec::new();
    row_ptr.push(0u32);
    for r in 0..rows {
        for (c, &v) in w32[r * cols..(r + 1) * cols].iter().enumerate() {
            if v != 0 {
                idx.push(u32::try_from(c).expect("layer width fits u32"));
                w.push(v);
            }
        }
        row_ptr.push(u32::try_from(idx.len()).expect("weight count fits u32"));
    }
    Csr { row_ptr, idx, w }
}

/// Lowers one dense-like kernel given the input grid and raw bound, and
/// plans its MAC instantiation (sparse vs dense, mono vs generic width,
/// SIMD level).
fn lower_dense(
    d: &FwDense,
    in_grid: i32,
    in_bound: i64,
    sigmoid: &SigmoidTable,
    cfg: &PlanConfig,
    simd: SimdLevel,
) -> CDense {
    let frac_w = d.weight_fmt.frac_bits();
    let prod_shift = u32::try_from((-in_grid).max(0)).expect("bounded int_bits");
    let bias_shift = u32::try_from(in_grid.max(0)).expect("bounded int_bits");
    let acc_frac = frac_w + in_grid.max(0);

    let w: Vec<i64> = d
        .weights
        .iter()
        .map(|&v| on_grid_raw(v, d.weight_fmt))
        .collect();
    let b: Vec<i128> = d
        .bias
        .iter()
        .map(|&v| {
            i128::from(on_grid_raw(v, d.weight_fmt))
                .checked_mul(1i128 << bias_shift)
                .expect("bias leaves the f64-exactness domain")
        })
        .collect();

    // Worst-case accumulator per row: Σ|w|·max|x| (shifted to the
    // accumulator grid) plus the aligned bias. Every partial sum of the
    // interpreter's f64 accumulation is bounded by this; below EXACT_BOUND
    // both routes compute the identical value. The sparse kernel's partial
    // sums visit a subset of the same non-negative terms, so the dense
    // bound covers it too.
    for r in 0..d.rows {
        let mac: i128 = w[r * d.cols..(r + 1) * d.cols]
            .iter()
            .map(|&wr| i128::from(wr.unsigned_abs()) * i128::from(in_bound))
            .sum();
        let bound = mac
            .checked_mul(1i128 << prod_shift)
            .and_then(|m| m.checked_add(b[r].abs()))
            .unwrap_or(i128::MAX);
        assert!(
            bound < EXACT_BOUND,
            "row {r} accumulator bound {bound} leaves the f64-exactness \
             domain; the interpreter itself would be inexact here"
        );
    }

    let act = match d.activation {
        FwActivation::Linear => CAct::Linear(d.out_quant.requant_from(acc_frac)),
        FwActivation::Relu => CAct::Relu(d.out_quant.requant_from(acc_frac)),
        FwActivation::SigmoidTable => {
            let out_fmt = d.out_quant.format();
            let lut = sigmoid
                .values()
                .iter()
                .map(|&y| {
                    let (fx, ovf) = Fx::from_f64(
                        y,
                        out_fmt,
                        d.out_quant.rounding(),
                        d.out_quant.overflow_mode(),
                    );
                    (fx.raw(), ovf)
                })
                .collect();
            CAct::Sigmoid {
                lut,
                acc_lsb: f64::from(-acc_frac).exp2(),
            }
        }
    };

    // Narrow path guard: every product the kernel forms is w·x with
    // |x| ≤ in_bound, so if both operands fit in i32 the widening multiply
    // computes the identical i64 product.
    let narrow = in_bound <= i64::from(i32::MAX) && w.iter().all(|&v| i32::try_from(v).is_ok());
    let w32: Vec<i32> = if narrow {
        w.iter().map(|&v| v as i32).collect()
    } else {
        Vec::new()
    };

    let nnz = w.iter().filter(|&&v| v != 0).count();
    let density = nnz as f64 / (d.rows * d.cols).max(1) as f64;
    let want_sparse = match cfg.sparsity {
        SparsityPolicy::ForceDense => false,
        SparsityPolicy::ForceSparse => true,
        SparsityPolicy::Auto => density <= cfg.density_threshold,
    };

    let (csr, kind) = if narrow && want_sparse {
        (Some(build_csr(&w32, d.rows, d.cols)), KernelKind::Sparse)
    } else if narrow && dense::is_mono(d.cols) {
        (None, KernelKind::DenseMono)
    } else if narrow {
        (None, KernelKind::Dense)
    } else {
        (None, KernelKind::DenseWide)
    };

    let (rows1, rows8) = match kind {
        // CSR pays off only on lane passes, where each retained weight is
        // amortised over 8 frames; single-frame passes lose the columnar
        // vectorisation a dense row gives, so a sparse layer keeps the
        // dense body as its L = 1 kernel. Both compute the identical sum —
        // pruned weights are exactly zero.
        KernelKind::Sparse => (dense::pair(d.cols, simd).0, sparse::pair(simd).1),
        KernelKind::DenseWide => dense::wide_pair(simd),
        _ => dense::pair(d.cols, simd),
    };

    CDense {
        w,
        w32,
        csr,
        b: b.into_iter()
            .map(|v| i64::try_from(v).expect("bias within exactness bound"))
            .collect(),
        rows: d.rows,
        cols: d.cols,
        prod_shift,
        act,
        kind,
        rows1,
        rows8,
    }
}

/// Full lowering + planning pass. See [`CompiledFirmware::lower_with`].
pub(super) fn lower_with(fw: &Firmware, cfg: &PlanConfig) -> CompiledFirmware {
    let simd = resolve_simd(cfg.simd);
    let input_fmt = fw.input_quant.format();

    // Which node outputs must be retained for later concats, and where.
    let mut retain: Vec<Option<usize>> = vec![None; fw.nodes.len()];
    let mut skip_sizes = Vec::new();
    for node in &fw.nodes {
        if let FwNode::ConcatWith { node: src, .. } = node {
            if retain[*src].is_none() {
                retain[*src] = Some(skip_sizes.len());
                let (len, ch) = fw.shapes[*src];
                skip_sizes.push(len * ch);
            }
        }
    }

    // Walk the chain, tracking each value stream's grid (fractional bits)
    // and worst-case raw magnitude, fusing adjacent pairs where legal.
    let mut grids: Vec<i32> = Vec::with_capacity(fw.nodes.len());
    let mut steps = Vec::new();
    let mut layer_ops = Vec::with_capacity(fw.nodes.len());
    let mut kinds = Vec::with_capacity(fw.nodes.len());
    let mut cur_grid = input_fmt.frac_bits();
    let mut cur_bound = fmt_raw_bound(input_fmt);
    let mut max_elems = fw.input_len * fw.input_channels;
    let mut max_window = 0usize;
    let mut max_fuse_tmp = 0usize;
    let mut fused_sites = 0u32;

    let mut i = 0;
    while i < fw.nodes.len() {
        let (in_len, in_ch) = if i == 0 {
            (fw.input_len, fw.input_channels)
        } else {
            fw.shapes[i - 1]
        };
        let (out_len, out_ch) = fw.shapes[i];
        let out_elems = out_len * out_ch;
        max_elems = max_elems.max(out_elems);
        match &fw.nodes[i] {
            FwNode::Dense(d) => {
                let c = lower_dense(d, cur_grid, cur_bound, &fw.sigmoid, cfg, simd);
                cur_grid = d.out_quant.format().frac_bits();
                cur_bound = fmt_raw_bound(d.out_quant.format());
                grids.push(cur_grid);
                kinds.push(c.kind);
                layer_ops.push(LayerOps {
                    macs: (d.rows * d.cols) as u64,
                    elements: out_elems as u64,
                });
                steps.push(Step {
                    kernel: StepKernel::Dense(c),
                    node: i,
                    counted: out_elems as u64,
                    out_len,
                    out_ch,
                    retain_slot: retain[i],
                });
                i += 1;
            }
            FwNode::PointwiseDense(d) => {
                let c = lower_dense(d, cur_grid, cur_bound, &fw.sigmoid, cfg, simd);
                cur_grid = d.out_quant.format().frac_bits();
                cur_bound = fmt_raw_bound(d.out_quant.format());
                grids.push(cur_grid);
                kinds.push(c.kind);
                layer_ops.push(LayerOps {
                    macs: (in_len * d.rows * d.cols) as u64,
                    elements: out_elems as u64,
                });
                steps.push(Step {
                    kernel: StepKernel::Pointwise(c),
                    node: i,
                    counted: out_elems as u64,
                    out_len,
                    out_ch,
                    retain_slot: retain[i],
                });
                i += 1;
            }
            FwNode::Conv1d { d, k } => {
                let c = lower_dense(d, cur_grid, cur_bound, &fw.sigmoid, cfg, simd);
                cur_grid = d.out_quant.format().frac_bits();
                cur_bound = fmt_raw_bound(d.out_quant.format());
                grids.push(cur_grid);
                kinds.push(c.kind);
                max_window = max_window.max(k * in_ch);
                layer_ops.push(LayerOps {
                    macs: (out_len * d.rows * d.cols) as u64,
                    elements: out_elems as u64,
                });
                let fuse_pool =
                    cfg.fuse && matches!(fw.nodes.get(i + 1), Some(FwNode::MaxPool { .. }));
                if fuse_pool {
                    let FwNode::MaxPool { pool } = &fw.nodes[i + 1] else {
                        unreachable!("guarded by matches! above")
                    };
                    let (p_len, p_ch) = fw.shapes[i + 1];
                    max_elems = max_elems.max(p_len * p_ch);
                    max_fuse_tmp = max_fuse_tmp.max(pool * d.rows);
                    fused_sites += 1;
                    // Pool passes grid and bound through untouched.
                    grids.push(cur_grid);
                    kinds.push(KernelKind::Data);
                    layer_ops.push(LayerOps {
                        macs: 0,
                        elements: (p_len * p_ch) as u64,
                    });
                    steps.push(Step {
                        kernel: StepKernel::ConvPool {
                            d: c,
                            k: *k,
                            in_ch,
                            pool: *pool,
                            conv_skip: retain[i],
                        },
                        node: i,
                        counted: out_elems as u64,
                        out_len: p_len,
                        out_ch: p_ch,
                        retain_slot: retain[i + 1],
                    });
                    i += 2;
                } else {
                    steps.push(Step {
                        kernel: StepKernel::Conv { d: c, k: *k, in_ch },
                        node: i,
                        counted: out_elems as u64,
                        out_len,
                        out_ch,
                        retain_slot: retain[i],
                    });
                    i += 1;
                }
            }
            FwNode::MaxPool { pool } => {
                // Grid and bound pass through untouched.
                grids.push(cur_grid);
                kinds.push(KernelKind::Data);
                layer_ops.push(LayerOps {
                    macs: 0,
                    elements: out_elems as u64,
                });
                steps.push(Step {
                    kernel: StepKernel::MaxPool { pool: *pool },
                    node: i,
                    counted: 0,
                    out_len,
                    out_ch,
                    retain_slot: retain[i],
                });
                i += 1;
            }
            FwNode::UpSample { factor } => {
                grids.push(cur_grid);
                kinds.push(KernelKind::Data);
                layer_ops.push(LayerOps {
                    macs: 0,
                    elements: out_elems as u64,
                });
                // Fusable only when the upsample output itself is not a
                // retained skip source (then it must be materialised).
                let fuse_concat = cfg.fuse
                    && retain[i].is_none()
                    && matches!(fw.nodes.get(i + 1), Some(FwNode::ConcatWith { .. }));
                if fuse_concat {
                    let FwNode::ConcatWith {
                        node: src,
                        out_quant,
                    } = &fw.nodes[i + 1]
                    else {
                        unreachable!("guarded by matches! above")
                    };
                    let (c_len, c_ch) = fw.shapes[i + 1];
                    max_elems = max_elems.max(c_len * c_ch);
                    fused_sites += 1;
                    let rq_main = out_quant.requant_from(cur_grid);
                    let rq_skip = out_quant.requant_from(grids[*src]);
                    cur_grid = out_quant.format().frac_bits();
                    cur_bound = fmt_raw_bound(out_quant.format());
                    grids.push(cur_grid);
                    kinds.push(KernelKind::Data);
                    layer_ops.push(LayerOps {
                        macs: 0,
                        elements: (c_len * c_ch) as u64,
                    });
                    steps.push(Step {
                        kernel: StepKernel::Concat {
                            slot: retain[*src].expect("skip source retained"),
                            skip_ch: fw.shapes[*src].1,
                            rq_main,
                            rq_skip,
                            up_factor: *factor,
                        },
                        node: i + 1,
                        counted: (c_len * c_ch) as u64,
                        out_len: c_len,
                        out_ch: c_ch,
                        retain_slot: retain[i + 1],
                    });
                    i += 2;
                } else {
                    steps.push(Step {
                        kernel: StepKernel::UpSample { factor: *factor },
                        node: i,
                        counted: 0,
                        out_len,
                        out_ch,
                        retain_slot: retain[i],
                    });
                    i += 1;
                }
            }
            FwNode::ConcatWith {
                node: src,
                out_quant,
            } => {
                let rq_main = out_quant.requant_from(cur_grid);
                let rq_skip = out_quant.requant_from(grids[*src]);
                cur_grid = out_quant.format().frac_bits();
                cur_bound = fmt_raw_bound(out_quant.format());
                grids.push(cur_grid);
                kinds.push(KernelKind::Data);
                layer_ops.push(LayerOps {
                    macs: 0,
                    elements: out_elems as u64,
                });
                steps.push(Step {
                    kernel: StepKernel::Concat {
                        slot: retain[*src].expect("skip source retained"),
                        skip_ch: fw.shapes[*src].1,
                        rq_main,
                        rq_skip,
                        up_factor: 1,
                    },
                    node: i,
                    counted: out_elems as u64,
                    out_len,
                    out_ch,
                    retain_slot: retain[i],
                });
                i += 1;
            }
            FwNode::BatchNorm {
                scale,
                shift,
                out_quant,
            } => {
                // The folded coefficients are on a weight grid but do not
                // carry their format; recover the coarsest dyadic grid
                // that represents all of them exactly.
                let coeff_frac =
                    dyadic_frac(&scale.iter().chain(shift).copied().collect::<Vec<f64>>());
                let prod_shift = u32::try_from((-cur_grid).max(0)).expect("bounded");
                let shift_shift = u32::try_from(cur_grid.max(0)).expect("bounded");
                let acc_frac = coeff_frac + cur_grid.max(0);
                let to_raw = |v: f64| {
                    let scaled = v * f64::from(coeff_frac).exp2();
                    debug_assert_eq!(scaled.fract(), 0.0);
                    scaled as i64
                };
                let scale_raw: Vec<i64> = scale.iter().map(|&v| to_raw(v)).collect();
                let shift_raw: Vec<i64> = shift
                    .iter()
                    .map(|&v| {
                        i128::from(to_raw(v))
                            .checked_mul(1i128 << shift_shift)
                            .and_then(|s| i64::try_from(s).ok())
                            .expect("shift leaves the f64-exactness domain")
                    })
                    .collect();
                for (s, t) in scale_raw.iter().zip(&shift_raw) {
                    let bound = (i128::from(s.unsigned_abs()) * i128::from(cur_bound))
                        .checked_mul(1i128 << prod_shift)
                        .and_then(|m| m.checked_add(i128::from(t.unsigned_abs())))
                        .unwrap_or(i128::MAX);
                    assert!(
                        bound < EXACT_BOUND,
                        "batchnorm accumulator bound {bound} leaves the \
                         f64-exactness domain"
                    );
                }
                let rq = out_quant.requant_from(acc_frac);
                cur_grid = out_quant.format().frac_bits();
                cur_bound = fmt_raw_bound(out_quant.format());
                grids.push(cur_grid);
                kinds.push(KernelKind::Data);
                layer_ops.push(LayerOps {
                    macs: out_elems as u64,
                    elements: out_elems as u64,
                });
                steps.push(Step {
                    kernel: StepKernel::BatchNorm {
                        scale: scale_raw,
                        shift: shift_raw,
                        prod_shift,
                        rq,
                    },
                    node: i,
                    counted: out_elems as u64,
                    out_len,
                    out_ch,
                    retain_slot: retain[i],
                });
                i += 1;
            }
        }
    }

    let mut mix = KernelMix {
        simd,
        fused: fused_sites,
        ..KernelMix::default()
    };
    for k in &kinds {
        match k {
            KernelKind::Dense => mix.dense += 1,
            KernelKind::DenseMono => mix.mono += 1,
            KernelKind::DenseWide => mix.wide += 1,
            KernelKind::Sparse => mix.sparse += 1,
            KernelKind::Data => mix.data += 1,
        }
    }

    CompiledFirmware {
        input_fmt,
        input_rounding: fw.input_quant.rounding(),
        input_overflow: fw.input_quant.overflow_mode(),
        steps,
        n_nodes: fw.nodes.len(),
        sigmoid: fw.sigmoid.clone(),
        input_len: fw.input_len,
        input_channels: fw.input_channels,
        output_len: fw.output_len(),
        out_lsb: f64::from(-cur_grid).exp2(),
        digest: fw.content_digest(),
        max_elems,
        max_window,
        max_fuse_tmp,
        skip_sizes,
        layer_ops,
        kinds,
        mix,
    }
}
