//! The profiling pass behind layer-based precision.
//!
//! "We re-evaluated the maximum absolute output value generated inside each
//! individual layer of the model. Using this maximum, we calculated the
//! required number of integer bits for each layer and adjusted each layer's
//! precision individually." (Sec. IV-D)

use rayon::prelude::*;
use reads_nn::layer::Layer;
use reads_nn::Model;
use reads_tensor::FeatureMap;
use serde::{Deserialize, Serialize};

/// Per-node dynamic-range profile.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ModelProfile {
    /// Maximum |activation| observed at each node's output, over all
    /// calibration frames.
    pub activation_max: Vec<f64>,
    /// Maximum |weight| per node (0 for parameterless nodes).
    pub weight_max: Vec<f64>,
    /// Maximum |input| observed.
    pub input_max: f64,
    /// Number of calibration frames used.
    pub frames: usize,
}

/// Profiles a model over calibration inputs (rayon-parallel across frames).
///
/// # Panics
/// Panics if `inputs` is empty.
#[must_use]
pub fn profile_model(model: &Model, inputs: &[Vec<f64>]) -> ModelProfile {
    assert!(!inputs.is_empty(), "profiling needs calibration frames");
    let n_nodes = model.layers().len();

    let (act_max, in_max) = inputs
        .par_iter()
        .map(|x| {
            let input = FeatureMap::from_signal(x);
            let cache = model.forward_cached(&input);
            let maxes: Vec<f64> = cache.outputs.iter().map(FeatureMap::max_abs).collect();
            (maxes, input.max_abs())
        })
        .reduce(
            || (vec![0.0; n_nodes], 0.0),
            |(mut a, ia), (b, ib)| {
                for (x, y) in a.iter_mut().zip(&b) {
                    *x = x.max(*y);
                }
                (a, ia.max(ib))
            },
        );

    let weight_max = model
        .layers()
        .iter()
        .map(|l| match l {
            Layer::Dense(p) | Layer::PointwiseDense(p) | Layer::Conv1d { p, .. } => {
                p.w.max_abs()
                    .max(p.b.iter().fold(0.0f64, |m, &b| m.max(b.abs())))
            }
            _ => 0.0,
        })
        .collect();

    ModelProfile {
        activation_max: act_max,
        weight_max,
        input_max: in_max,
        frames: inputs.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use reads_nn::layer::DenseParams;
    use reads_tensor::{Activation, Mat};

    fn probe_model() -> Model {
        // Two layers with known gains: |out1| <= 3*|in|, |out2| <= 2*|out1|.
        Model::new(
            2,
            1,
            vec![
                Layer::Dense(DenseParams {
                    w: Mat::from_vec(2, 2, vec![3.0, 0.0, 0.0, 1.0]),
                    b: vec![0.0, 0.0],
                    activation: Activation::Linear,
                }),
                Layer::Dense(DenseParams {
                    w: Mat::from_vec(1, 2, vec![2.0, 0.0]),
                    b: vec![0.5],
                    activation: Activation::Linear,
                }),
            ],
        )
    }

    #[test]
    fn records_layer_maxima() {
        let m = probe_model();
        let p = profile_model(&m, &[vec![1.0, -4.0], vec![-2.0, 0.5]]);
        // Node 0 outputs: [3, -4] and [-6, 0.5] -> max 6.
        assert_eq!(p.activation_max[0], 6.0);
        // Node 1: 2*3+0.5 = 6.5 and 2*-6+0.5 = -11.5 -> 11.5.
        assert_eq!(p.activation_max[1], 11.5);
        assert_eq!(p.input_max, 4.0);
        assert_eq!(p.frames, 2);
    }

    #[test]
    fn records_weight_maxima_including_bias() {
        let m = probe_model();
        let p = profile_model(&m, &[vec![0.0, 0.0]]);
        assert_eq!(p.weight_max[0], 3.0);
        assert_eq!(p.weight_max[1], 2.0); // bias 0.5 < weight 2.0
    }

    #[test]
    fn more_frames_never_shrink_maxima() {
        let m = probe_model();
        let small = profile_model(&m, &[vec![1.0, 1.0]]);
        let big = profile_model(&m, &[vec![1.0, 1.0], vec![5.0, -5.0]]);
        for (a, b) in small.activation_max.iter().zip(&big.activation_max) {
            assert!(b >= a);
        }
    }

    #[test]
    #[should_panic(expected = "calibration frames")]
    fn empty_calibration_rejected() {
        let _ = profile_model(&probe_model(), &[]);
    }
}
