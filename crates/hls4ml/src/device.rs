//! The target device: Intel Arria 10 SX 660 (10AS066), the FPGA+HPS SoC on
//! the Achilles board the paper deploys on.
//!
//! The capacity figures are chosen so the paper's Table III absolute
//! utilization rows reproduce its own percentages:
//! 223,674 ALMs → 89 %, 25,275,808 block-memory bits → 58 %,
//! 1,818 M20K → 85 %, 273 DSP → 16 %.

use serde::{Deserialize, Serialize};

/// FPGA device capacity table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Device {
    /// Marketing name.
    pub name: &'static str,
    /// Adaptive logic modules.
    pub alms: u64,
    /// ALUTs (2 per ALM on Arria 10).
    pub aluts: u64,
    /// M20K block count.
    pub m20k_blocks: u64,
    /// Total block memory bits (M20K × 20,480).
    pub m20k_bits: u64,
    /// Variable-precision DSP blocks.
    pub dsps: u64,
    /// Fractional + I/O PLLs.
    pub plls: u64,
    /// User I/O pins.
    pub pins: u64,
}

/// The Achilles Arria 10 SoC device (10AS066N3F40E2SG).
pub const ARRIA10_10AS066: Device = Device {
    name: "Arria 10 SX 660 (10AS066)",
    alms: 251_680,
    aluts: 503_360,
    m20k_blocks: 2_131,
    m20k_bits: 2_131 * 20_480,
    dsps: 1_687,
    plls: 64,
    pins: 596,
};

impl Device {
    /// Percentage of a capacity used (`used / cap × 100`).
    #[must_use]
    pub fn pct(used: u64, cap: u64) -> f64 {
        used as f64 / cap as f64 * 100.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Table III consistency: the paper's absolute numbers against this
    /// device table give the paper's own percentages.
    #[test]
    fn table3_percentages_reproduce() {
        let d = ARRIA10_10AS066;
        assert!((Device::pct(223_674, d.alms) - 89.0).abs() < 1.0);
        assert!((Device::pct(25_275_808, d.m20k_bits) - 58.0).abs() < 1.0);
        assert!((Device::pct(1_818, d.m20k_blocks) - 85.0).abs() < 0.5);
        assert!((Device::pct(273, d.dsps) - 16.0).abs() < 0.5);
        assert!((Device::pct(3, d.plls) - 5.0).abs() < 0.5);
        assert!((Device::pct(221, d.pins) - 37.0).abs() < 0.5);
    }

    #[test]
    fn bits_consistent_with_blocks() {
        let d = ARRIA10_10AS066;
        assert_eq!(d.m20k_bits, d.m20k_blocks * 20_480);
        assert_eq!(d.aluts, d.alms * 2);
    }
}
