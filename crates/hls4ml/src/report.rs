//! Build reports — the Table III "Model Summary" view of a firmware build.

use crate::config::PrecisionStrategy;
use crate::device::{Device, ARRIA10_10AS066};
use crate::firmware::Firmware;
use crate::latency::{estimate_latency, LatencyBreakdown};
use crate::resource::{estimate_resources_with, ResourceEstimate};
use serde::Serialize;
use std::fmt;

/// A complete build summary.
#[derive(Debug, Clone, Serialize)]
pub struct BuildReport {
    /// Quantized parameter count.
    pub params: usize,
    /// Strategy label ("Layer-based", "Uniform ...").
    pub strategy: String,
    /// Default (conv) reuse factor.
    pub default_reuse: u32,
    /// Dense/sigmoid reuse factor.
    pub dense_reuse: u32,
    /// Latency breakdown.
    pub latency: LatencyBreakdown,
    /// Resource estimate.
    pub resources: ResourceEstimate,
    /// Weights saturated at conversion time.
    pub saturated_weights: u64,
}

impl BuildReport {
    /// Builds the report for a firmware.
    #[must_use]
    pub fn new(fw: &Firmware) -> Self {
        let latency = estimate_latency(fw);
        let resources = estimate_resources_with(fw, &latency);
        Self {
            params: fw.param_count(),
            strategy: fw.config.strategy.label(),
            default_reuse: fw.config.reuse.conv,
            dense_reuse: fw.config.reuse.dense,
            latency,
            resources,
            saturated_weights: fw
                .nodes
                .iter()
                .filter_map(crate::firmware::FwNode::dense)
                .map(|d| d.saturated_weights)
                .sum(),
        }
    }

    /// FPGA latency in milliseconds at 100 MHz.
    #[must_use]
    pub fn fpga_latency_ms(&self) -> f64 {
        self.latency.duration().as_millis_f64()
    }

    /// The default precision label for uniform strategies, or the layer
    /// notation for layer-based.
    #[must_use]
    pub fn precision_label(strategy: &PrecisionStrategy) -> String {
        strategy.label()
    }
}

/// One row of the per-layer precision table (the `x` annotations of the
/// paper's Fig. 2).
#[derive(Debug, Clone, Serialize)]
pub struct LayerPrecisionRow {
    /// Node index.
    pub node: usize,
    /// Layer kind tag.
    pub kind: &'static str,
    /// Output shape `(positions, channels)`.
    pub shape: (usize, usize),
    /// Weight format (None for parameterless nodes).
    pub weight_format: Option<String>,
    /// Result format, i.e. `ac_fixed<W, x>` with this layer's `x`.
    pub result_format: Option<String>,
    /// The layer's `x` (result integer bits), when it has a quantizer.
    pub x: Option<i32>,
}

/// The per-layer precision assignment of a firmware build — reproduces the
/// layer annotations of the paper's Fig. 2 ("each layer is annotated with
/// its resource-aware custom layer-based precision (parameter x)").
#[must_use]
pub fn precision_table(fw: &Firmware) -> Vec<LayerPrecisionRow> {
    use crate::firmware::FwNode;
    fw.nodes
        .iter()
        .enumerate()
        .map(|(i, node)| {
            let kind = match node {
                FwNode::Dense(_) => "Dense",
                FwNode::PointwiseDense(_) => "Dense (per position)",
                FwNode::Conv1d { .. } => "Conv1D",
                FwNode::MaxPool { .. } => "MaxPooling1D",
                FwNode::UpSample { .. } => "UpSampling1D",
                FwNode::ConcatWith { .. } => "Concatenate",
                FwNode::BatchNorm { .. } => "BatchNormalization",
            };
            let (wf, rf) = match node {
                FwNode::Dense(d) | FwNode::PointwiseDense(d) | FwNode::Conv1d { d, .. } => {
                    (Some(d.weight_fmt.to_string()), Some(d.out_quant.format()))
                }
                FwNode::ConcatWith { out_quant, .. } | FwNode::BatchNorm { out_quant, .. } => {
                    (None, Some(out_quant.format()))
                }
                _ => (None, None),
            };
            LayerPrecisionRow {
                node: i,
                kind,
                shape: fw.shapes[i],
                weight_format: wf,
                result_format: rf.map(|f| f.to_string()),
                x: rf.map(|f| f.int_bits),
            }
        })
        .collect()
}

/// Renders the precision table as text (the Fig. 2 view).
#[must_use]
pub fn render_precision_table(fw: &Firmware) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:>4}  {:<22} {:>12}  {:<22} {:<22} {:>3}",
        "node", "layer", "shape", "weights", "result", "x"
    );
    let _ = writeln!(out, "input quantizer: {}", fw.input_quant.format());
    for r in precision_table(fw) {
        let _ = writeln!(
            out,
            "{:>4}  {:<22} {:>5}x{:<6}  {:<22} {:<22} {:>3}",
            r.node,
            r.kind,
            r.shape.0,
            r.shape.1,
            r.weight_format.as_deref().unwrap_or("-"),
            r.result_format.as_deref().unwrap_or("-"),
            r.x.map_or("-".to_string(), |x| x.to_string()),
        );
    }
    out
}

impl fmt::Display for BuildReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let d = ARRIA10_10AS066;
        let r = &self.resources;
        writeln!(f, "Model Summary (cf. paper Table III)")?;
        writeln!(f, "  Trainable Parameters        {}", self.params)?;
        writeln!(f, "  Precision Strategy          {}", self.strategy)?;
        writeln!(f, "  Default Reuse Factor        {}", self.default_reuse)?;
        writeln!(f, "  Dense/Sigmoid Reuse Factor  {}", self.dense_reuse)?;
        writeln!(
            f,
            "  FPGA U-Net Latency          {:.2} ms ({} cycles @ 100 MHz)",
            self.fpga_latency_ms(),
            self.latency.total_cycles
        )?;
        writeln!(
            f,
            "  Logic Utilization (ALMs)    {} ({:.0}%)",
            r.system_alms,
            Device::pct(r.system_alms, d.alms)
        )?;
        writeln!(f, "  Total Registers             {}", r.registers)?;
        writeln!(
            f,
            "  Total Pins                  {} ({:.0}%)",
            r.pins,
            Device::pct(r.pins, d.pins)
        )?;
        writeln!(
            f,
            "  Total Block Memory Bits     {} ({:.0}%)",
            r.bram_bits,
            Device::pct(r.bram_bits, d.m20k_bits)
        )?;
        writeln!(
            f,
            "  Total RAM Blocks            {} ({:.0}%)",
            r.bram_blocks,
            Device::pct(r.bram_blocks, d.m20k_blocks)
        )?;
        writeln!(
            f,
            "  Total DSP Blocks            {} ({:.0}%)",
            r.dsps,
            Device::pct(r.dsps, d.dsps)
        )?;
        writeln!(
            f,
            "  Total PLLs                  {} ({:.0}%)",
            r.plls,
            Device::pct(r.plls, d.plls)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::HlsConfig;
    use crate::convert::convert;
    use crate::profile::profile_model;
    use reads_nn::models;

    #[test]
    fn precision_table_reproduces_fig2_annotations() {
        let m = models::reads_unet(1);
        let inputs = vec![(0..260)
            .map(|j| (j as f64 * 0.1).sin())
            .collect::<Vec<f64>>()];
        let p = profile_model(&m, &inputs);
        let fw = convert(&m, &p, &HlsConfig::paper_default());
        let table = precision_table(&fw);
        assert_eq!(table.len(), 12);
        // Every dense-like layer carries both formats and an x.
        let dense_rows: Vec<_> = table.iter().filter(|r| r.weight_format.is_some()).collect();
        assert_eq!(dense_rows.len(), 6, "5 convs + 1 head");
        for r in &dense_rows {
            assert!(r
                .result_format
                .as_deref()
                .unwrap()
                .starts_with("ac_fixed<16,"));
            let x = r.x.expect("x");
            assert!((-16..=16).contains(&x));
        }
        // The sigmoid head's result fits in [0,1]: x must be small.
        let head = table.last().expect("head");
        assert!(head.x.expect("head x") <= 2);
        // Rendered view contains the layer names of Fig. 2.
        let text = render_precision_table(&fw);
        assert!(text.contains("Conv1D"));
        assert!(text.contains("Concatenate"));
        assert!(text.contains("MaxPooling1D"));
        assert!(text.contains("UpSampling1D"));
    }

    #[test]
    fn report_for_paper_unet() {
        let m = models::reads_unet(1);
        let inputs = vec![(0..260)
            .map(|j| (j as f64 * 0.1).sin())
            .collect::<Vec<f64>>()];
        let p = profile_model(&m, &inputs);
        let fw = convert(&m, &p, &HlsConfig::paper_default());
        let rep = BuildReport::new(&fw);
        assert_eq!(rep.params, 134_434);
        assert_eq!(rep.default_reuse, 32);
        assert_eq!(rep.dense_reuse, 260);
        let text = rep.to_string();
        assert!(text.contains("134434"));
        assert!(text.contains("Layer-based"));
        assert!(text.contains("Reuse"));
    }
}
