//! The cycle model of the streaming IP.
//!
//! hls4ml synthesizes each layer as a pipelined kernel; a conv/pointwise
//! layer streams positions with an initiation interval (II) equal to its
//! reuse factor, unless the layer's multiplier demand exceeds what the
//! weight-memory bandwidth can feed, in which case the II inflates:
//!
//! `II = max(reuse, ceil(mults_per_position / MULT_BANDWIDTH))`
//!
//! The bandwidth bound models the dual-ported M20K weight banks available
//! per kernel; `MULT_BANDWIDTH = 224` is calibrated so the paper's final
//! U-Net configuration (reuse 32 conv / 260 dense-sigmoid) lands at its
//! measured 1.57 ms @ 100 MHz (our model: ~1.54 ms, −2 %; see
//! EXPERIMENTS.md). The same constant reproduces the MLP's sub-0.1 ms
//! FPGA latency.

use crate::config::IoInterface;
use crate::firmware::{Firmware, FwNode};
use reads_sim::SimDuration;
use serde::Serialize;

/// Parallel multipliers a single layer kernel can feed per cycle
/// (weight-BRAM port bandwidth; calibrated — see module docs).
pub const MULT_BANDWIDTH: u64 = 224;

/// Cycles per Avalon-MM word transfer by the IP's host interface.
pub const MM_RW_CYCLES: u64 = 4;

/// Per-layer latency contribution.
#[derive(Debug, Clone, Serialize)]
pub struct NodeLatency {
    /// Node index.
    pub node: usize,
    /// Short kind tag ("conv1d", "dense", ...).
    pub kind: &'static str,
    /// Initiation interval (cycles between positions), 1 for shape ops.
    pub ii: u64,
    /// Parallel multipliers instantiated (0 for shape ops).
    pub parallel_mults: u64,
    /// Total cycles attributed to this node.
    pub cycles: u64,
}

/// Full latency breakdown for one frame.
#[derive(Debug, Clone, Serialize)]
pub struct LatencyBreakdown {
    /// Per-node contributions.
    pub nodes: Vec<NodeLatency>,
    /// Host-interface transfer cycles (0 for the streaming interface — the
    /// system-level feeder pays that cost instead).
    pub io_cycles: u64,
    /// Total cycles for one frame.
    pub total_cycles: u64,
}

impl LatencyBreakdown {
    /// Wall-clock duration at the 100 MHz fabric clock.
    #[must_use]
    pub fn duration(&self) -> SimDuration {
        SimDuration::from_cycles(self.total_cycles)
    }
}

fn pipeline_depth(fan_in: usize) -> u64 {
    (fan_in.max(1) as f64).log2().ceil() as u64 + 8
}

/// Estimates the IP's frame latency under its configuration.
#[must_use]
pub fn estimate_latency(fw: &Firmware) -> LatencyBreakdown {
    let reuse = &fw.config.reuse;
    let mut nodes = Vec::with_capacity(fw.nodes.len());
    let mut total = 0u64;

    for (i, node) in fw.nodes.iter().enumerate() {
        let (in_pos, _) = if i == 0 {
            (fw.input_len, fw.input_channels)
        } else {
            fw.shapes[i - 1]
        };
        let (out_pos, _) = fw.shapes[i];
        let nl = match node {
            FwNode::Dense(d) => {
                let r = u64::from(reuse.for_node(i, true));
                let mults = (d.rows * d.cols) as u64;
                let ii = r.max(mults.div_ceil(MULT_BANDWIDTH));
                NodeLatency {
                    node: i,
                    kind: "dense",
                    ii,
                    parallel_mults: mults.div_ceil(ii),
                    cycles: ii + pipeline_depth(d.cols),
                }
            }
            FwNode::PointwiseDense(d) => {
                let r = u64::from(reuse.for_node(i, true));
                let mults_pp = (d.rows * d.cols) as u64;
                let ii = r.max(mults_pp.div_ceil(MULT_BANDWIDTH));
                NodeLatency {
                    node: i,
                    kind: "pointwise-dense",
                    ii,
                    parallel_mults: mults_pp.div_ceil(ii).max(1),
                    cycles: out_pos as u64 * ii + pipeline_depth(d.cols),
                }
            }
            FwNode::Conv1d { d, .. } => {
                let r = u64::from(reuse.for_node(i, false));
                let mults_pp = (d.rows * d.cols) as u64;
                let ii = r.max(mults_pp.div_ceil(MULT_BANDWIDTH));
                NodeLatency {
                    node: i,
                    kind: "conv1d",
                    ii,
                    parallel_mults: mults_pp.div_ceil(ii).max(1),
                    cycles: out_pos as u64 * ii + pipeline_depth(d.cols),
                }
            }
            FwNode::MaxPool { .. } => NodeLatency {
                node: i,
                kind: "maxpool",
                ii: 1,
                parallel_mults: 0,
                cycles: in_pos.max(out_pos) as u64 + 4,
            },
            FwNode::UpSample { .. } => NodeLatency {
                node: i,
                kind: "upsample",
                ii: 1,
                parallel_mults: 0,
                cycles: in_pos.max(out_pos) as u64 + 4,
            },
            FwNode::ConcatWith { .. } => NodeLatency {
                node: i,
                kind: "concat",
                ii: 1,
                parallel_mults: 0,
                cycles: out_pos as u64 + 4,
            },
            FwNode::BatchNorm { .. } => NodeLatency {
                node: i,
                kind: "batchnorm",
                ii: 1,
                parallel_mults: 0,
                cycles: out_pos as u64 + 4,
            },
        };
        total += nl.cycles;
        nodes.push(nl);
    }

    let io_cycles = match fw.config.io {
        IoInterface::MemoryMappedHost => {
            let n_in = (fw.input_len * fw.input_channels) as u64;
            let n_out = fw.output_len() as u64;
            (n_in + n_out) * MM_RW_CYCLES
        }
        IoInterface::Streaming => 0,
    };
    total += io_cycles;

    LatencyBreakdown {
        nodes,
        io_cycles,
        total_cycles: total,
    }
}

/// Renders an Intel-HLS-compiler-style loop analysis report: one row per
/// layer kernel with its initiation interval, trip count, instantiated
/// multipliers and cycle contribution — the view `i++` designers read in
/// `report.html` to find the latency-dominant loop.
#[must_use]
pub fn render_loop_report(fw: &Firmware) -> String {
    use std::fmt::Write as _;
    let lat = estimate_latency(fw);
    let mut out = String::new();
    let _ = writeln!(out, "Loop analysis (cf. Intel HLS compiler report)");
    let _ = writeln!(
        out,
        "{:>4}  {:<18} {:>8} {:>6} {:>10} {:>12} {:>8}",
        "node", "kernel", "trips", "II", "mults", "cycles", "share"
    );
    for nl in &lat.nodes {
        let (pos, _) = fw.shapes[nl.node];
        let _ = writeln!(
            out,
            "{:>4}  {:<18} {:>8} {:>6} {:>10} {:>12} {:>7.1}%",
            nl.node,
            nl.kind,
            pos,
            nl.ii,
            nl.parallel_mults,
            nl.cycles,
            nl.cycles as f64 / lat.total_cycles as f64 * 100.0
        );
    }
    let _ = writeln!(
        out,
        "      {:<18} {:>8} {:>6} {:>10} {:>12} {:>7.1}%",
        "host interface",
        "-",
        "-",
        "-",
        lat.io_cycles,
        lat.io_cycles as f64 / lat.total_cycles as f64 * 100.0
    );
    let _ = writeln!(
        out,
        "total: {} cycles = {} @ 100 MHz",
        lat.total_cycles,
        lat.duration()
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{HlsConfig, IoInterface, PrecisionStrategy};
    use crate::convert::convert;
    use crate::profile::profile_model;
    use reads_fixed::QFormat;
    use reads_nn::models;

    fn unet_firmware() -> Firmware {
        let m = models::reads_unet(1);
        let inputs = vec![(0..260)
            .map(|j| (j as f64 * 0.1).sin())
            .collect::<Vec<f64>>()];
        let p = profile_model(&m, &inputs);
        convert(&m, &p, &HlsConfig::paper_default())
    }

    fn mlp_firmware() -> Firmware {
        let m = models::reads_mlp(1);
        let inputs = vec![vec![0.1; 259]];
        let p = profile_model(&m, &inputs);
        convert(&m, &p, &HlsConfig::paper_default())
    }

    /// Calibration pin: the paper's U-Net FPGA latency is 1.57 ms; the model
    /// must land within ±10 %.
    #[test]
    fn unet_latency_matches_paper() {
        let lat = estimate_latency(&unet_firmware());
        let ms = lat.duration().as_millis_f64();
        assert!(
            (1.41..=1.73).contains(&ms),
            "U-Net FPGA latency {ms} ms vs paper 1.57 ms"
        );
    }

    /// The MLP is far smaller: well under 0.15 ms of FPGA time, consistent
    /// with the paper's 0.31 ms *system* latency (overhead-dominated).
    #[test]
    fn mlp_latency_is_small() {
        let lat = estimate_latency(&mlp_firmware());
        let ms = lat.duration().as_millis_f64();
        assert!(ms < 0.15, "MLP FPGA latency {ms} ms");
    }

    #[test]
    fn heavier_reuse_is_slower() {
        let m = models::reads_unet(1);
        let inputs = vec![(0..260)
            .map(|j| (j as f64 * 0.1).sin())
            .collect::<Vec<f64>>()];
        let p = profile_model(&m, &inputs);
        let mut slow_cfg = HlsConfig::paper_default();
        slow_cfg.reuse.conv = 512;
        let fast = convert(&m, &p, &HlsConfig::paper_default());
        let slow = convert(&m, &p, &slow_cfg);
        assert!(
            estimate_latency(&slow).total_cycles > estimate_latency(&fast).total_cycles * 2,
            "reuse 512 must be much slower than 32"
        );
    }

    #[test]
    fn higher_reuse_uses_fewer_multipliers() {
        let m = models::reads_mlp(1);
        let inputs = vec![vec![0.1; 259]];
        let p = profile_model(&m, &inputs);
        let lat_of = |dense_reuse: u32| {
            let mut cfg = HlsConfig::paper_default();
            cfg.reuse.dense = dense_reuse;
            estimate_latency(&convert(&m, &p, &cfg))
        };
        let lo = lat_of(64);
        let hi = lat_of(1024);
        let mults = |l: &LatencyBreakdown| l.nodes.iter().map(|n| n.parallel_mults).sum::<u64>();
        assert!(mults(&hi) < mults(&lo));
        assert!(hi.total_cycles > lo.total_cycles);
    }

    #[test]
    fn streaming_interface_has_no_io_cycles() {
        let m = models::reads_mlp(2);
        let inputs = vec![vec![0.1; 259]];
        let p = profile_model(&m, &inputs);
        let mut cfg = HlsConfig::paper_default();
        cfg.io = IoInterface::Streaming;
        let fw = convert(&m, &p, &cfg);
        let lat = estimate_latency(&fw);
        assert_eq!(lat.io_cycles, 0);
        let mm = convert(&m, &p, &HlsConfig::paper_default());
        assert_eq!(estimate_latency(&mm).io_cycles, (259 + 518) * MM_RW_CYCLES);
    }

    #[test]
    fn latency_independent_of_precision_strategy() {
        // Table II varies precision only; the cycle count is reuse-driven.
        let m = models::reads_unet(2);
        let inputs = vec![(0..260)
            .map(|j| (j as f64 * 0.2).cos())
            .collect::<Vec<f64>>()];
        let p = profile_model(&m, &inputs);
        let a = estimate_latency(&convert(&m, &p, &HlsConfig::paper_default()));
        let b = estimate_latency(&convert(
            &m,
            &p,
            &HlsConfig::with_strategy(PrecisionStrategy::Uniform(QFormat::signed(18, 10))),
        ));
        assert_eq!(a.total_cycles, b.total_cycles);
    }

    #[test]
    fn loop_report_names_the_dominant_kernel() {
        let fw = unet_firmware();
        let report = render_loop_report(&fw);
        // The Dense/Sigmoid head (II = 260 over 260 positions) dominates.
        assert!(report.contains("pointwise-dense"));
        assert!(report.contains("total:"));
        assert!(report.contains("host interface"));
        // Shares sum to ~100%.
        let shares: f64 = report
            .lines()
            .filter_map(|l| l.trim_end().strip_suffix('%'))
            .filter_map(|l| l.split_whitespace().last())
            .filter_map(|v| v.parse::<f64>().ok())
            .sum();
        assert!((shares - 100.0).abs() < 2.0, "shares sum to {shares}");
    }

    #[test]
    fn breakdown_sums_to_total() {
        let lat = estimate_latency(&unet_firmware());
        let sum: u64 = lat.nodes.iter().map(|n| n.cycles).sum();
        assert_eq!(sum + lat.io_cycles, lat.total_cycles);
    }
}
