//! Build configuration for the firmware conversion.

use reads_fixed::{Overflow, QFormat, Rounding};
use serde::{Deserialize, Serialize};

/// Precision strategy (Table II rows).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PrecisionStrategy {
    /// One `ac_fixed<W, I>` format for every weight and activation.
    Uniform(QFormat),
    /// The paper's layer-based `ac_fixed<W, x>`: the total width is fixed,
    /// the integer bits of every layer's activations and weights are derived
    /// from the profiling pass (Sec. IV-D).
    LayerBased {
        /// Total bit width for all formats.
        width: u32,
        /// Extra integer bits added on top of the profiled requirement —
        /// the paper's Fig. 5b mitigation ("half of these outliers could be
        /// mitigated by adding one extra bit to the integer part").
        int_margin: i32,
    },
}

impl PrecisionStrategy {
    /// The paper's three Table II rows.
    #[must_use]
    pub fn table2_rows() -> [PrecisionStrategy; 3] {
        [
            PrecisionStrategy::Uniform(QFormat::signed(18, 10)),
            PrecisionStrategy::Uniform(QFormat::signed(16, 7)),
            PrecisionStrategy::LayerBased {
                width: 16,
                int_margin: 0,
            },
        ]
    }

    /// Human-readable label matching the Table II row names.
    #[must_use]
    pub fn label(&self) -> String {
        match self {
            PrecisionStrategy::Uniform(f) => {
                format!("Uniform Precision ac_fixed<{}, {}>", f.width, f.int_bits)
            }
            PrecisionStrategy::LayerBased { width, int_margin } => {
                if *int_margin == 0 {
                    format!("Layer-based Precision ac_fixed<{width}, x>")
                } else {
                    format!("Layer-based Precision ac_fixed<{width}, x+{int_margin}>")
                }
            }
        }
    }
}

/// IP interface style (Sec. IV-B).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum IoInterface {
    /// hls4ml's default: the IP passively consumes an input stream (needs an
    /// external DMA/stream feeder).
    Streaming,
    /// The paper's modification: an Avalon memory-mapped *host* interface —
    /// the IP actively reads its inputs from and writes its outputs to the
    /// on-chip buffer RAMs.
    MemoryMappedHost,
}

/// Per-layer reuse factors.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReuseConfig {
    /// Reuse factor for convolutional layers (Table III "Default Reuse
    /// Factor": 32).
    pub conv: u32,
    /// Reuse factor for dense and sigmoid stages (Table III "Dense/Sigmoid
    /// Reuse Factor": 260).
    pub dense: u32,
    /// Explicit per-node overrides `(node index, reuse)` applied last — the
    /// knob the co-design loop turns (Sec. IV-D).
    pub overrides: Vec<(usize, u32)>,
}

impl Default for ReuseConfig {
    fn default() -> Self {
        Self {
            conv: 32,
            dense: 260,
            overrides: Vec::new(),
        }
    }
}

impl ReuseConfig {
    /// Effective reuse factor for a node.
    #[must_use]
    pub fn for_node(&self, node: usize, is_dense: bool) -> u32 {
        let base = if is_dense { self.dense } else { self.conv };
        self.overrides
            .iter()
            .rev()
            .find(|(n, _)| *n == node)
            .map_or(base, |(_, r)| *r)
    }
}

/// The full build configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HlsConfig {
    /// Precision strategy.
    pub strategy: PrecisionStrategy,
    /// Reuse factors.
    pub reuse: ReuseConfig,
    /// Rounding mode for all quantizers (hls4ml default: truncate).
    pub rounding: Rounding,
    /// Overflow mode for all quantizers (hls4ml default: wrap — the source
    /// of the paper's outliers).
    pub overflow: Overflow,
    /// Interface style.
    pub io: IoInterface,
    /// Sigmoid lookup-table entries (hls4ml default 1024).
    pub sigmoid_table_entries: usize,
    /// Sigmoid table half-range (hls4ml default 8.0).
    pub sigmoid_table_range: f64,
}

impl HlsConfig {
    /// The paper's production configuration: layer-based 16-bit precision,
    /// truncate/wrap, reuse 32 / 260, memory-mapped host interface.
    #[must_use]
    pub fn paper_default() -> Self {
        Self {
            strategy: PrecisionStrategy::LayerBased {
                width: 16,
                int_margin: 0,
            },
            reuse: ReuseConfig::default(),
            rounding: Rounding::Truncate,
            overflow: Overflow::Wrap,
            io: IoInterface::MemoryMappedHost,
            sigmoid_table_entries: 1024,
            sigmoid_table_range: 8.0,
        }
    }

    /// Same configuration with a different precision strategy (Table II and
    /// Fig. 5a/5b sweeps).
    #[must_use]
    pub fn with_strategy(strategy: PrecisionStrategy) -> Self {
        Self {
            strategy,
            ..Self::paper_default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_match_table2() {
        let rows = PrecisionStrategy::table2_rows();
        assert_eq!(rows[0].label(), "Uniform Precision ac_fixed<18, 10>");
        assert_eq!(rows[1].label(), "Uniform Precision ac_fixed<16, 7>");
        assert_eq!(rows[2].label(), "Layer-based Precision ac_fixed<16, x>");
    }

    #[test]
    fn reuse_defaults_and_overrides() {
        let mut r = ReuseConfig::default();
        assert_eq!(r.for_node(3, false), 32);
        assert_eq!(r.for_node(11, true), 260);
        r.overrides.push((3, 64));
        r.overrides.push((3, 96)); // later override wins
        assert_eq!(r.for_node(3, false), 96);
        assert_eq!(r.for_node(4, false), 32);
    }

    #[test]
    fn paper_default_modes() {
        let c = HlsConfig::paper_default();
        assert_eq!(c.rounding, Rounding::Truncate);
        assert_eq!(c.overflow, Overflow::Wrap);
        assert_eq!(c.io, IoInterface::MemoryMappedHost);
        assert!(matches!(
            c.strategy,
            PrecisionStrategy::LayerBased {
                width: 16,
                int_margin: 0
            }
        ));
    }
}
