//! Model → firmware conversion ("hls4ml").
//!
//! Assigns per-layer weight and result formats according to the precision
//! strategy, quantizes the trained parameters, folds batch normalization
//! into a per-channel affine, and wires the node chain with quantizers.

use crate::config::{HlsConfig, PrecisionStrategy};
use crate::firmware::{Firmware, FwActivation, FwDense, FwNode};
use crate::profile::ModelProfile;
use reads_fixed::{Fx, QFormat, Quantizer};
use reads_nn::layer::{DenseParams, Layer};
use reads_nn::Model;
use reads_tensor::activ::SigmoidTable;
use reads_tensor::Activation;

/// Bounds for layer-based integer-bit assignment: at least one bit below
/// the sign, at most all bits integer (mirrors practical `ac_fixed` use).
fn clamp_int_bits(i: i32, width: u32) -> i32 {
    i.clamp(-(width as i32) + 2, width as i32)
}

impl PrecisionStrategy {
    /// Weight format for a node with the given profiled weight magnitude.
    #[must_use]
    pub fn weight_format(&self, weight_max: f64) -> QFormat {
        match self {
            PrecisionStrategy::Uniform(f) => *f,
            PrecisionStrategy::LayerBased { width, .. } => {
                let i = QFormat::required_int_bits_signed(weight_max);
                QFormat::signed(*width, clamp_int_bits(i, *width))
            }
        }
    }

    /// Result (activation) format for a node with the given profiled
    /// activation magnitude.
    #[must_use]
    pub fn result_format(&self, act_max: f64) -> QFormat {
        match self {
            PrecisionStrategy::Uniform(f) => *f,
            PrecisionStrategy::LayerBased { width, int_margin } => {
                let i = QFormat::required_int_bits_signed(act_max) + int_margin;
                QFormat::signed(*width, clamp_int_bits(i, *width))
            }
        }
    }
}

fn fw_activation(a: Activation) -> FwActivation {
    match a {
        Activation::Linear => FwActivation::Linear,
        Activation::Relu => FwActivation::Relu,
        Activation::Sigmoid => FwActivation::SigmoidTable,
    }
}

/// Quantizes a dense-like layer's parameters into firmware form.
fn convert_dense(
    p: &DenseParams,
    weight_fmt: QFormat,
    out_quant: Quantizer,
    config: &HlsConfig,
) -> FwDense {
    let mut saturated = 0u64;
    let mut quantize_param = |v: f64| -> f64 {
        // Weights use saturating conversion regardless of the runtime
        // overflow mode: hls4ml clips out-of-range constants at codegen
        // time (a wrapped constant would be nonsense).
        let (fx, ovf) = Fx::from_f64(
            v,
            weight_fmt,
            config.rounding,
            reads_fixed::Overflow::Saturate,
        );
        saturated += u64::from(ovf);
        fx.to_f64()
    };
    let weights: Vec<f64> = p.w.as_slice().iter().map(|&v| quantize_param(v)).collect();
    let bias: Vec<f64> = p.b.iter().map(|&v| quantize_param(v)).collect();
    FwDense {
        weights,
        bias,
        rows: p.w.rows(),
        cols: p.w.cols(),
        weight_fmt,
        out_quant,
        activation: fw_activation(p.activation),
        saturated_weights: saturated,
    }
}

/// Converts a trained float model into firmware under `config`, using the
/// dynamic ranges in `profile` (from [`crate::profile_model`] over
/// calibration data).
///
/// # Panics
/// Panics if the profile's node count mismatches the model.
#[must_use]
pub fn convert(model: &Model, profile: &ModelProfile, config: &HlsConfig) -> Firmware {
    assert_eq!(
        profile.activation_max.len(),
        model.layers().len(),
        "profile/model mismatch"
    );
    let mk_quant = |fmt: QFormat| Quantizer::new(fmt, config.rounding, config.overflow);

    let (input_len, input_channels) = model.input_shape();
    let input_fmt = config.strategy.result_format(profile.input_max);

    let mut nodes = Vec::with_capacity(model.layers().len());
    let mut shapes: Vec<(usize, usize)> = Vec::with_capacity(model.layers().len());
    for (i, layer) in model.layers().iter().enumerate() {
        let in_shape = if i == 0 {
            (input_len, input_channels)
        } else {
            shapes[i - 1]
        };
        let skip_shape = match layer {
            Layer::ConcatWith { node } => Some(shapes[*node]),
            _ => None,
        };
        shapes.push(layer.output_shape(in_shape, skip_shape));

        let act_max = profile.activation_max[i];
        let node = match layer {
            Layer::Dense(p) => FwNode::Dense(convert_dense(
                p,
                config.strategy.weight_format(profile.weight_max[i]),
                mk_quant(config.strategy.result_format(act_max)),
                config,
            )),
            Layer::PointwiseDense(p) => FwNode::PointwiseDense(convert_dense(
                p,
                config.strategy.weight_format(profile.weight_max[i]),
                mk_quant(config.strategy.result_format(act_max)),
                config,
            )),
            Layer::Conv1d { p, k } => FwNode::Conv1d {
                d: convert_dense(
                    p,
                    config.strategy.weight_format(profile.weight_max[i]),
                    mk_quant(config.strategy.result_format(act_max)),
                    config,
                ),
                k: *k,
            },
            Layer::MaxPool { pool } => FwNode::MaxPool { pool: *pool },
            Layer::UpSample { factor } => FwNode::UpSample { factor: *factor },
            Layer::ConcatWith { node } => FwNode::ConcatWith {
                node: *node,
                out_quant: mk_quant(config.strategy.result_format(act_max)),
            },
            Layer::BatchNorm {
                gamma,
                beta,
                mean,
                var,
                eps,
            } => {
                // Fold into y = scale·x + shift, then quantize coefficients
                // like weights.
                let wfmt = {
                    let max_coeff = gamma
                        .iter()
                        .zip(var)
                        .map(|(g, v)| (g / (v + eps).sqrt()).abs())
                        .chain(
                            beta.iter()
                                .zip(mean.iter().zip(gamma.iter().zip(var)))
                                .map(|(b, (m, (g, v)))| (b - m * g / (v + eps).sqrt()).abs()),
                        )
                        .fold(0.0f64, f64::max);
                    config.strategy.weight_format(max_coeff)
                };
                let quantize_coeff = |v: f64| {
                    Fx::from_f64(v, wfmt, config.rounding, reads_fixed::Overflow::Saturate)
                        .0
                        .to_f64()
                };
                let scale: Vec<f64> = gamma
                    .iter()
                    .zip(var)
                    .map(|(g, v)| quantize_coeff(g / (v + eps).sqrt()))
                    .collect();
                let shift: Vec<f64> = beta
                    .iter()
                    .zip(mean.iter().zip(gamma.iter().zip(var)))
                    .map(|(b, (m, (g, v)))| quantize_coeff(b - m * g / (v + eps).sqrt()))
                    .collect();
                FwNode::BatchNorm {
                    scale,
                    shift,
                    out_quant: mk_quant(config.strategy.result_format(act_max)),
                }
            }
        };
        nodes.push(node);
    }

    Firmware {
        input_quant: mk_quant(input_fmt),
        nodes,
        sigmoid: SigmoidTable::new(config.sigmoid_table_entries, config.sigmoid_table_range),
        config: config.clone(),
        input_len,
        input_channels,
        shapes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::profile_model;
    use reads_nn::models;

    fn unet_and_profile() -> (Model, ModelProfile) {
        let m = models::reads_unet(3);
        let inputs: Vec<Vec<f64>> = (0..4)
            .map(|f| {
                (0..260)
                    .map(|j| ((j as f64 + f as f64 * 31.0) * 0.07).sin() * 2.0)
                    .collect()
            })
            .collect();
        let p = profile_model(&m, &inputs);
        (m, p)
    }

    #[test]
    fn uniform_strategy_applies_one_format() {
        let (m, p) = unet_and_profile();
        let cfg = HlsConfig::with_strategy(PrecisionStrategy::Uniform(QFormat::signed(16, 7)));
        let fw = convert(&m, &p, &cfg);
        for node in &fw.nodes {
            if let Some(d) = node.dense() {
                assert_eq!(d.weight_fmt, QFormat::signed(16, 7));
                assert_eq!(d.out_quant.format(), QFormat::signed(16, 7));
            }
        }
        assert_eq!(fw.input_quant.format(), QFormat::signed(16, 7));
    }

    #[test]
    fn layer_based_assigns_tight_formats() {
        let (m, p) = unet_and_profile();
        let cfg = HlsConfig::paper_default();
        let fw = convert(&m, &p, &cfg);
        for (i, node) in fw.nodes.iter().enumerate() {
            if let Some(d) = node.dense() {
                assert_eq!(d.weight_fmt.width, 16);
                // The assigned integer bits must cover the profiled range.
                let need = QFormat::required_int_bits_signed(p.weight_max[i]);
                assert!(d.weight_fmt.int_bits >= need.min(16));
                let need_act = QFormat::required_int_bits_signed(p.activation_max[i]);
                assert!(d.out_quant.format().int_bits >= need_act.min(16));
            }
        }
    }

    #[test]
    fn int_margin_adds_bits() {
        let (m, p) = unet_and_profile();
        let base = convert(&m, &p, &HlsConfig::paper_default());
        let margin = convert(
            &m,
            &p,
            &HlsConfig::with_strategy(PrecisionStrategy::LayerBased {
                width: 16,
                int_margin: 1,
            }),
        );
        for (a, b) in base.nodes.iter().zip(&margin.nodes) {
            if let (Some(da), Some(db)) = (a.dense(), b.dense()) {
                assert_eq!(
                    db.out_quant.format().int_bits,
                    da.out_quant.format().int_bits + 1
                );
                // Weight formats are unaffected by the margin.
                assert_eq!(da.weight_fmt, db.weight_fmt);
            }
        }
    }

    #[test]
    fn converted_param_count_matches_model() {
        let (m, p) = unet_and_profile();
        let fw = convert(&m, &p, &HlsConfig::paper_default());
        assert_eq!(fw.param_count(), m.param_count());
        assert_eq!(fw.output_len(), 520);
    }

    #[test]
    fn quantized_weights_lie_on_their_grid() {
        let (m, p) = unet_and_profile();
        let fw = convert(&m, &p, &HlsConfig::paper_default());
        for node in &fw.nodes {
            if let Some(d) = node.dense() {
                let lsb = d.weight_fmt.lsb();
                for &w in &d.weights {
                    let q = (w / lsb).round();
                    assert!((w / lsb - q).abs() < 1e-9, "weight {w} off grid lsb {lsb}");
                }
            }
        }
    }

    #[test]
    fn firmware_tracks_float_model_closely_at_16_bits() {
        let (m, p) = unet_and_profile();
        let fw = convert(&m, &p, &HlsConfig::paper_default());
        let input: Vec<f64> = (0..260).map(|j| ((j as f64) * 0.07).sin() * 2.0).collect();
        let yf = m.predict(&input);
        let (yq, stats) = fw.infer(&input);
        assert_eq!(
            stats.total_overflows(),
            0,
            "profiled formats must not overflow on calibration data"
        );
        let max_err = yf
            .iter()
            .zip(&yq)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f64, f64::max);
        assert!(max_err < 0.05, "max output error {max_err}");
    }

    #[test]
    fn mlp_converts_too() {
        let m = models::reads_mlp(4);
        let inputs = vec![vec![0.3; 259], vec![-0.8; 259]];
        let p = profile_model(&m, &inputs);
        let fw = convert(&m, &p, &HlsConfig::paper_default());
        assert_eq!(fw.output_len(), 518);
        let (y, _) = fw.infer(&inputs[0]);
        assert_eq!(y.len(), 518);
        for v in y {
            assert!((0.0..=1.0 + 1e-9).contains(&v));
        }
    }
}
