//! The lowered inference engine: integer-quanta kernels compiled once from
//! a [`Firmware`].
//!
//! The interpreter in [`crate::firmware`] executes every frame the way the
//! *converter* reasons: on-grid `f64` values, a `quantize_dequantize`
//! round-trip per element (float multiply, `exp2`, `floor`, range check),
//! and fresh buffers per layer. [`CompiledFirmware`] lowers the model once
//! and executes the whole frame in the integer-quanta domain instead — the
//! same move hls4ml makes when it turns a Keras graph into fixed-point
//! firmware:
//!
//! * weights and biases are pre-converted to raw `i64` quanta on their
//!   `QFormat` grids, biases pre-aligned to the accumulator grid;
//! * every layer-to-layer conversion is folded into a [`Requant`] — one
//!   shift, one precomputed rounding addend, one clamp — instead of the
//!   `f64` round-trip;
//! * dense / pointwise / conv1d kernels fuse quantize → integer MAC →
//!   activation → requantize; the MAC runs in `i64`, which the compiler can
//!   reassociate and vectorize (the serial `f64` addition chain in the
//!   interpreter cannot be);
//! * the sigmoid table is pre-quantized into each consuming layer's output
//!   format at lowering time, so the hot path is a table index plus a load;
//! * all working memory lives in a caller-held [`Scratch`] arena (ping-pong
//!   layer buffers, retained skip-connection buffers, the conv im2col
//!   window, output and statistics storage), all sized at lowering time —
//!   steady-state [`CompiledFirmware::infer_into`] performs **zero heap
//!   allocations per frame**.
//!
//! # Why bit-exactness is preserved
//!
//! Every value the interpreter touches is dyadic: `raw · 2^-frac` for an
//! integer `raw` on a known grid. Its `f64` arithmetic is *exact* as long
//! as every intermediate stays below 2⁵² quanta on the common grid (f64
//! holds 53 mantissa bits; one bit of headroom covers the `+0.5` rounding
//! addend). Lowering computes, per layer, a worst-case accumulator bound
//! from the weight raws and the producer format's raw range, and panics if
//! the bound leaves that domain — so wherever a `CompiledFirmware` exists
//! at all, its integer arithmetic and the interpreter's `f64` arithmetic
//! are the *same function*, and outputs and overflow counts match bit for
//! bit. The golden-vector conformance suite and a differential proptest
//! assert this. DESIGN.md §9 has the full argument.

use crate::firmware::{Firmware, FwActivation, FwDense, FwNode, InferenceStats};
use reads_fixed::{Fx, Overflow, OverflowStats, QFormat, Requant, Rounding};
use reads_tensor::activ::SigmoidTable;

/// Largest accumulator magnitude (in quanta) for which the interpreter's
/// `f64` arithmetic is still exact — the domain in which lowering is valid.
const EXACT_BOUND: i128 = 1 << 52;

/// Per-node work counts, recorded at lowering time — the substrate the
/// resource and latency estimators can read instead of re-deriving shapes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LayerOps {
    /// Multiply-accumulate operations per frame (0 for pure data movement).
    pub macs: u64,
    /// Output elements produced per frame.
    pub elements: u64,
}

/// Fused activation + requantization stage of a dense-like kernel.
#[derive(Debug, Clone)]
enum CAct {
    /// Requantize the accumulator as-is.
    Linear(Requant),
    /// Clamp the accumulator at zero, then requantize.
    Relu(Requant),
    /// Index the pre-quantized sigmoid table.
    Sigmoid {
        /// `(raw, overflowed)` per table entry, quantized into the layer's
        /// output format at lowering time.
        lut: Vec<(i64, bool)>,
        /// Exact value of one accumulator quantum (a power of two), used to
        /// reproduce the interpreter's `f64` table addressing bit for bit.
        acc_lsb: f64,
    },
}

/// A lowered dense-like kernel (dense / pointwise / conv im2col view).
#[derive(Debug, Clone)]
struct CDense {
    /// Raw weights, row-major `rows × cols`.
    w: Vec<i64>,
    /// Narrowed copy of `w`, present when every weight *and* the layer's
    /// worst-case input raw fit in `i32` (always true for the paper's ≤18-bit
    /// formats). Enables the exact `i32×i32→i64` widening MAC, which
    /// vectorizes far better than the general `i64` product.
    w32: Option<Vec<i32>>,
    /// Raw biases, pre-shifted onto the accumulator grid.
    b: Vec<i64>,
    rows: usize,
    cols: usize,
    /// Left shift applied to the MAC sum to reach the accumulator grid
    /// (nonzero only when the input grid is coarser than 1, i.e. negative
    /// fractional bits).
    prod_shift: u32,
    act: CAct,
}

/// One lowered node.
#[derive(Debug, Clone)]
enum CKernel {
    Dense(CDense),
    Pointwise(CDense),
    Conv1d {
        d: CDense,
        k: usize,
        in_ch: usize,
    },
    MaxPool {
        pool: usize,
    },
    UpSample {
        factor: usize,
    },
    Concat {
        /// Retained-buffer slot holding the skip source's raws.
        slot: usize,
        skip_ch: usize,
        /// Requantizer for the main (previous-node) channels.
        rq_main: Requant,
        /// Requantizer for the skip channels (they live on the skip source's
        /// grid, which generally differs from the main input's).
        rq_skip: Requant,
    },
    BatchNorm {
        /// Raw per-channel scales on the coefficient grid.
        scale: Vec<i64>,
        /// Raw per-channel shifts, pre-aligned to the accumulator grid.
        shift: Vec<i64>,
        prod_shift: u32,
        rq: Requant,
    },
}

#[derive(Debug, Clone)]
struct CNode {
    kernel: CKernel,
    out_len: usize,
    out_ch: usize,
    /// When set, a copy of this node's output raws is retained in
    /// `Scratch::skips[slot]` for a later concat.
    retain_slot: Option<usize>,
}

/// Reusable working memory for [`CompiledFirmware::infer_into`]: two
/// ping-pong layer buffers, retained skip-connection buffers, the conv
/// im2col window, the dequantized output frame, and the statistics block —
/// everything a frame touches, sized once by [`CompiledFirmware::scratch`].
#[derive(Debug, Clone)]
pub struct Scratch {
    a: Vec<i64>,
    b: Vec<i64>,
    window: Vec<i64>,
    /// Narrowed input staging for the `i32` widening-MAC fast path.
    x32: Vec<i32>,
    skips: Vec<Vec<i64>>,
    out: Vec<f64>,
    stats: InferenceStats,
}

/// A [`Firmware`] lowered into integer-quanta kernels.
///
/// Construct with [`CompiledFirmware::lower`]; execute with
/// [`CompiledFirmware::infer_into`] (allocation-free) or the convenience
/// wrappers [`CompiledFirmware::infer`] / [`CompiledFirmware::infer_batch`]
/// (which allocate only for their returned values). Outputs and
/// [`InferenceStats`] are bit-identical to the interpreter's.
#[derive(Debug, Clone)]
pub struct CompiledFirmware {
    input_fmt: QFormat,
    input_rounding: Rounding,
    input_overflow: Overflow,
    nodes: Vec<CNode>,
    sigmoid: SigmoidTable,
    input_len: usize,
    input_channels: usize,
    output_len: usize,
    /// Quantum value of the final node's grid (dequantizes the output).
    out_lsb: f64,
    digest: u64,
    max_elems: usize,
    max_window: usize,
    skip_sizes: Vec<usize>,
    layer_ops: Vec<LayerOps>,
    /// Runtime-detected: dispatch the narrow MAC through the AVX2
    /// instantiation. Purely a codegen choice — results are bit-identical.
    simd_avx2: bool,
}

/// Raw value exactly on `fmt`'s grid (weights/biases/coefficients are
/// stored on-grid by the converter; anything else is a lowering bug).
fn on_grid_raw(v: f64, fmt: QFormat) -> i64 {
    let (fx, ovf) = Fx::from_f64(v, fmt, Rounding::Truncate, Overflow::Saturate);
    assert!(
        !ovf && fx.to_f64() == v,
        "parameter {v} is not on the {fmt} grid"
    );
    fx.raw()
}

/// Largest raw magnitude any value of `fmt` can carry (wrap and saturate
/// both keep raws inside the format's range).
fn fmt_raw_bound(fmt: QFormat) -> i64 {
    fmt.raw_max()
        .max(fmt.raw_min().checked_neg().expect("width <= 48"))
}

/// Coarsest dyadic grid (fractional bits) on which every value in `vals`
/// has an exact integer raw — recovers the coefficient grid for folded
/// batch-norm parameters, which do not carry their format.
fn dyadic_frac(vals: &[f64]) -> i32 {
    let mut frac = -64i32;
    loop {
        let ok = vals.iter().all(|&v| {
            let scaled = v * f64::from(frac).exp2();
            scaled.fract() == 0.0 && scaled.abs() < EXACT_BOUND as f64
        });
        if ok {
            return frac;
        }
        frac += 1;
        assert!(frac <= 128, "coefficients not on a dyadic grid");
    }
}

/// Lowers one dense-like kernel given the input grid and raw bound.
/// Returns the kernel and the raw bound of its output (= the output
/// format's range).
/// Runtime check for the AVX2 kernel instantiation; always false off x86-64.
fn detect_avx2() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        std::arch::is_x86_feature_detected!("avx2")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

fn lower_dense(d: &FwDense, in_grid: i32, in_bound: i64, sigmoid: &SigmoidTable) -> CDense {
    let frac_w = d.weight_fmt.frac_bits();
    let prod_shift = u32::try_from((-in_grid).max(0)).expect("bounded int_bits");
    let bias_shift = u32::try_from(in_grid.max(0)).expect("bounded int_bits");
    let acc_frac = frac_w + in_grid.max(0);

    let w: Vec<i64> = d
        .weights
        .iter()
        .map(|&v| on_grid_raw(v, d.weight_fmt))
        .collect();
    let b: Vec<i128> = d
        .bias
        .iter()
        .map(|&v| {
            i128::from(on_grid_raw(v, d.weight_fmt))
                .checked_mul(1i128 << bias_shift)
                .expect("bias leaves the f64-exactness domain")
        })
        .collect();

    // Worst-case accumulator per row: Σ|w|·max|x| (shifted to the
    // accumulator grid) plus the aligned bias. Every partial sum of the
    // interpreter's f64 accumulation is bounded by this; below EXACT_BOUND
    // both routes compute the identical value.
    for r in 0..d.rows {
        let mac: i128 = w[r * d.cols..(r + 1) * d.cols]
            .iter()
            .map(|&wr| i128::from(wr.unsigned_abs()) * i128::from(in_bound))
            .sum();
        let bound = mac
            .checked_mul(1i128 << prod_shift)
            .and_then(|m| m.checked_add(b[r].abs()))
            .unwrap_or(i128::MAX);
        assert!(
            bound < EXACT_BOUND,
            "row {r} accumulator bound {bound} leaves the f64-exactness \
             domain; the interpreter itself would be inexact here"
        );
    }

    let act = match d.activation {
        FwActivation::Linear => CAct::Linear(d.out_quant.requant_from(acc_frac)),
        FwActivation::Relu => CAct::Relu(d.out_quant.requant_from(acc_frac)),
        FwActivation::SigmoidTable => {
            let out_fmt = d.out_quant.format();
            let lut = sigmoid
                .values()
                .iter()
                .map(|&y| {
                    let (fx, ovf) = Fx::from_f64(
                        y,
                        out_fmt,
                        d.out_quant.rounding(),
                        d.out_quant.overflow_mode(),
                    );
                    (fx.raw(), ovf)
                })
                .collect();
            CAct::Sigmoid {
                lut,
                acc_lsb: f64::from(-acc_frac).exp2(),
            }
        }
    };

    // Narrow path guard: every product the kernel forms is w·x with
    // |x| ≤ in_bound, so if both operands fit in i32 the widening multiply
    // computes the identical i64 product.
    let w32 = (in_bound <= i64::from(i32::MAX) && w.iter().all(|&v| i32::try_from(v).is_ok()))
        .then(|| w.iter().map(|&v| v as i32).collect());

    CDense {
        w,
        w32,
        b: b.into_iter()
            .map(|v| i64::try_from(v).expect("bias within exactness bound"))
            .collect(),
        rows: d.rows,
        cols: d.cols,
        prod_shift,
        act,
    }
}

/// Executes one lowered dense-like kernel over one input vector, writing
/// `d.rows` outputs and counting quantization events.
#[inline]
fn dense_rows(
    d: &CDense,
    sigmoid: &SigmoidTable,
    avx2: bool,
    xs: &[i64],
    x32: &mut [i32],
    out: &mut [i64],
    ovf: &mut u64,
) {
    debug_assert_eq!(xs.len(), d.cols);
    debug_assert_eq!(out.len(), d.rows);
    if let Some(w32) = &d.w32 {
        // Narrow fast path: operands fit i32 (guaranteed at lowering), so
        // each product is an exact i32×i32→i64 widening multiply — the
        // form LLVM vectorizes well.
        let x32 = &mut x32[..d.cols];
        for (s, &x) in x32.iter_mut().zip(xs) {
            *s = x as i32;
        }
        #[cfg(target_arch = "x86_64")]
        if avx2 {
            // SAFETY: `avx2` is set by `CompiledFirmware::lower` only after
            // runtime detection confirmed the feature on this CPU.
            unsafe { rows_w32_avx2(d, w32, sigmoid, x32, out, ovf) };
            return;
        }
        #[cfg(not(target_arch = "x86_64"))]
        let _ = avx2;
        rows_w32(d, w32, sigmoid, x32, out, ovf);
    } else {
        for (r, slot) in out.iter_mut().enumerate() {
            let row = &d.w[r * d.cols..(r + 1) * d.cols];
            // i64 MAC: associative, so LLVM may reorder/vectorize — the
            // bound check at lowering guarantees no intermediate overflow.
            let mac: i64 = row.iter().zip(xs).map(|(&w, &x)| w * x).sum();
            let (y, o) = finish_row(d, sigmoid, mac, r);
            *slot = y;
            *ovf += u64::from(o);
        }
    }
}

/// Row loop of the narrow path. `inline(always)` so the AVX2 wrapper below
/// picks up this exact body and LLVM revectorizes it with 256-bit widening
/// multiplies; the baseline instantiation keeps portable codegen.
#[inline(always)]
fn rows_w32(
    d: &CDense,
    w32: &[i32],
    sigmoid: &SigmoidTable,
    x32: &[i32],
    out: &mut [i64],
    ovf: &mut u64,
) {
    for (r, slot) in out.iter_mut().enumerate() {
        let row = &w32[r * d.cols..(r + 1) * d.cols];
        let mac: i64 = row
            .iter()
            .zip(x32)
            .map(|(&w, &x)| i64::from(w) * i64::from(x))
            .sum();
        let (y, o) = finish_row(d, sigmoid, mac, r);
        *slot = y;
        *ovf += u64::from(o);
    }
}

/// AVX2 instantiation of [`rows_w32`], reached only through runtime feature
/// detection. Bit-identical to the baseline: the vector lanes compute the
/// same exact integer products, and integer addition is associative.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn rows_w32_avx2(
    d: &CDense,
    w32: &[i32],
    sigmoid: &SigmoidTable,
    x32: &[i32],
    out: &mut [i64],
    ovf: &mut u64,
) {
    rows_w32(d, w32, sigmoid, x32, out, ovf);
}

/// Shift-bias-activate-requantize tail shared by both MAC paths.
#[inline(always)]
fn finish_row(d: &CDense, sigmoid: &SigmoidTable, mac: i64, r: usize) -> (i64, bool) {
    let acc = (mac << d.prod_shift) + d.b[r];
    match &d.act {
        CAct::Linear(rq) => rq.apply(i128::from(acc)),
        CAct::Relu(rq) => rq.apply(i128::from(acc.max(0))),
        CAct::Sigmoid { lut, acc_lsb } => lut[sigmoid.index_of(acc as f64 * acc_lsb)],
    }
}

impl CompiledFirmware {
    /// Lowers a converted firmware into integer-quanta kernels.
    ///
    /// # Panics
    /// Panics if a parameter is off-grid or a layer's worst-case
    /// accumulator leaves the `f64`-exactness domain (in which case the
    /// interpreter's own arithmetic would be inexact and no bit-identical
    /// lowering exists). Neither occurs for firmware produced by
    /// [`crate::convert`] with the paper's precision strategies.
    #[must_use]
    pub fn lower(fw: &Firmware) -> Self {
        let input_fmt = fw.input_quant.format();

        // Which node outputs must be retained for later concats, and where.
        let mut retain: Vec<Option<usize>> = vec![None; fw.nodes.len()];
        let mut skip_sizes = Vec::new();
        for node in &fw.nodes {
            if let FwNode::ConcatWith { node: src, .. } = node {
                if retain[*src].is_none() {
                    retain[*src] = Some(skip_sizes.len());
                    let (len, ch) = fw.shapes[*src];
                    skip_sizes.push(len * ch);
                }
            }
        }

        // Walk the chain, tracking each value stream's grid (fractional
        // bits) and worst-case raw magnitude.
        let mut grids: Vec<i32> = Vec::with_capacity(fw.nodes.len());
        let mut nodes = Vec::with_capacity(fw.nodes.len());
        let mut layer_ops = Vec::with_capacity(fw.nodes.len());
        let mut cur_grid = input_fmt.frac_bits();
        let mut cur_bound = fmt_raw_bound(input_fmt);
        let mut max_elems = fw.input_len * fw.input_channels;
        let mut max_window = 0usize;

        for (i, node) in fw.nodes.iter().enumerate() {
            let (in_len, in_ch) = if i == 0 {
                (fw.input_len, fw.input_channels)
            } else {
                fw.shapes[i - 1]
            };
            let (out_len, out_ch) = fw.shapes[i];
            let out_elems = (out_len * out_ch) as u64;
            let (kernel, ops) = match node {
                FwNode::Dense(d) => {
                    let c = lower_dense(d, cur_grid, cur_bound, &fw.sigmoid);
                    cur_grid = d.out_quant.format().frac_bits();
                    cur_bound = fmt_raw_bound(d.out_quant.format());
                    let macs = (d.rows * d.cols) as u64;
                    (
                        CKernel::Dense(c),
                        LayerOps {
                            macs,
                            elements: out_elems,
                        },
                    )
                }
                FwNode::PointwiseDense(d) => {
                    let c = lower_dense(d, cur_grid, cur_bound, &fw.sigmoid);
                    cur_grid = d.out_quant.format().frac_bits();
                    cur_bound = fmt_raw_bound(d.out_quant.format());
                    let macs = (in_len * d.rows * d.cols) as u64;
                    (
                        CKernel::Pointwise(c),
                        LayerOps {
                            macs,
                            elements: out_elems,
                        },
                    )
                }
                FwNode::Conv1d { d, k } => {
                    let c = lower_dense(d, cur_grid, cur_bound, &fw.sigmoid);
                    cur_grid = d.out_quant.format().frac_bits();
                    cur_bound = fmt_raw_bound(d.out_quant.format());
                    max_window = max_window.max(k * in_ch);
                    let macs = (out_len * d.rows * d.cols) as u64;
                    (
                        CKernel::Conv1d { d: c, k: *k, in_ch },
                        LayerOps {
                            macs,
                            elements: out_elems,
                        },
                    )
                }
                FwNode::MaxPool { pool } => (
                    // Grid and bound pass through untouched.
                    CKernel::MaxPool { pool: *pool },
                    LayerOps {
                        macs: 0,
                        elements: out_elems,
                    },
                ),
                FwNode::UpSample { factor } => (
                    CKernel::UpSample { factor: *factor },
                    LayerOps {
                        macs: 0,
                        elements: out_elems,
                    },
                ),
                FwNode::ConcatWith {
                    node: src,
                    out_quant,
                } => {
                    let rq_main = out_quant.requant_from(cur_grid);
                    let rq_skip = out_quant.requant_from(grids[*src]);
                    cur_grid = out_quant.format().frac_bits();
                    cur_bound = fmt_raw_bound(out_quant.format());
                    (
                        CKernel::Concat {
                            slot: retain[*src].expect("skip source retained"),
                            skip_ch: fw.shapes[*src].1,
                            rq_main,
                            rq_skip,
                        },
                        LayerOps {
                            macs: 0,
                            elements: out_elems,
                        },
                    )
                }
                FwNode::BatchNorm {
                    scale,
                    shift,
                    out_quant,
                } => {
                    // The folded coefficients are on a weight grid but do
                    // not carry their format; recover the coarsest dyadic
                    // grid that represents all of them exactly.
                    let coeff_frac =
                        dyadic_frac(&scale.iter().chain(shift).copied().collect::<Vec<f64>>());
                    let prod_shift = u32::try_from((-cur_grid).max(0)).expect("bounded");
                    let shift_shift = u32::try_from(cur_grid.max(0)).expect("bounded");
                    let acc_frac = coeff_frac + cur_grid.max(0);
                    let to_raw = |v: f64| {
                        let scaled = v * f64::from(coeff_frac).exp2();
                        debug_assert_eq!(scaled.fract(), 0.0);
                        scaled as i64
                    };
                    let scale_raw: Vec<i64> = scale.iter().map(|&v| to_raw(v)).collect();
                    let shift_raw: Vec<i64> = shift
                        .iter()
                        .map(|&v| {
                            i128::from(to_raw(v))
                                .checked_mul(1i128 << shift_shift)
                                .and_then(|s| i64::try_from(s).ok())
                                .expect("shift leaves the f64-exactness domain")
                        })
                        .collect();
                    for (s, t) in scale_raw.iter().zip(&shift_raw) {
                        let bound = (i128::from(s.unsigned_abs()) * i128::from(cur_bound))
                            .checked_mul(1i128 << prod_shift)
                            .and_then(|m| m.checked_add(i128::from(t.unsigned_abs())))
                            .unwrap_or(i128::MAX);
                        assert!(
                            bound < EXACT_BOUND,
                            "batchnorm accumulator bound {bound} leaves the \
                             f64-exactness domain"
                        );
                    }
                    let rq = out_quant.requant_from(acc_frac);
                    cur_grid = out_quant.format().frac_bits();
                    cur_bound = fmt_raw_bound(out_quant.format());
                    (
                        CKernel::BatchNorm {
                            scale: scale_raw,
                            shift: shift_raw,
                            prod_shift,
                            rq,
                        },
                        LayerOps {
                            macs: out_elems,
                            elements: out_elems,
                        },
                    )
                }
            };
            grids.push(cur_grid);
            max_elems = max_elems.max(out_len * out_ch);
            layer_ops.push(ops);
            nodes.push(CNode {
                kernel,
                out_len,
                out_ch,
                retain_slot: retain[i],
            });
        }

        Self {
            input_fmt,
            input_rounding: fw.input_quant.rounding(),
            input_overflow: fw.input_quant.overflow_mode(),
            nodes,
            sigmoid: fw.sigmoid.clone(),
            input_len: fw.input_len,
            input_channels: fw.input_channels,
            output_len: fw.output_len(),
            out_lsb: f64::from(-cur_grid).exp2(),
            digest: fw.content_digest(),
            max_elems,
            max_window,
            skip_sizes,
            layer_ops,
            simd_avx2: detect_avx2(),
        }
    }

    /// Builds a [`Scratch`] arena sized for this firmware. Reuse one per
    /// thread; frames executed through it never allocate.
    #[must_use]
    pub fn scratch(&self) -> Scratch {
        Scratch {
            a: vec![0; self.max_elems],
            b: vec![0; self.max_elems],
            window: vec![0; self.max_window],
            x32: vec![0; self.max_elems.max(self.max_window)],
            skips: self.skip_sizes.iter().map(|&n| vec![0; n]).collect(),
            out: vec![0.0; self.output_len],
            stats: InferenceStats {
                input: OverflowStats::default(),
                per_node: vec![OverflowStats::default(); self.nodes.len()],
            },
        }
    }

    /// Runs one frame entirely inside `scratch` — the zero-allocation hot
    /// path. Returns the dequantized outputs and this frame's statistics,
    /// both living in the scratch arena. Bit-identical to
    /// [`Firmware::infer`].
    ///
    /// # Panics
    /// Panics if the input length mismatches or `scratch` was built for a
    /// different firmware.
    pub fn infer_into<'s>(
        &self,
        input: &[f64],
        scratch: &'s mut Scratch,
    ) -> (&'s [f64], &'s InferenceStats) {
        let n_in = self.input_len * self.input_channels;
        assert_eq!(input.len(), n_in, "compiled firmware input length");
        assert_eq!(
            scratch.stats.per_node.len(),
            self.nodes.len(),
            "scratch built for a different firmware"
        );

        scratch.stats.input = OverflowStats::default();
        for s in &mut scratch.stats.per_node {
            *s = OverflowStats::default();
        }

        // Input quantization: the only stage that consumes arbitrary
        // floats, so it pays the full from_f64 conversion per element.
        let mut ovf = 0u64;
        for (slot, &v) in scratch.a[..n_in].iter_mut().zip(input) {
            let (fx, o) = Fx::from_f64(v, self.input_fmt, self.input_rounding, self.input_overflow);
            *slot = fx.raw();
            ovf += u64::from(o);
        }
        scratch.stats.input = OverflowStats {
            total: n_in as u64,
            overflows: ovf,
        };

        let mut cur_elems = n_in;
        let mut cur_len = self.input_len;
        for (i, node) in self.nodes.iter().enumerate() {
            let out_elems = node.out_len * node.out_ch;
            let mut ovf = 0u64;
            let mut counted = out_elems as u64;
            {
                let (src, dst) = (&scratch.a[..cur_elems], &mut scratch.b[..out_elems]);
                match &node.kernel {
                    CKernel::Dense(d) => {
                        let x32 = &mut scratch.x32;
                        dense_rows(d, &self.sigmoid, self.simd_avx2, src, x32, dst, &mut ovf);
                    }
                    CKernel::Pointwise(d) => {
                        let x32 = &mut scratch.x32;
                        for (xs, out) in src.chunks_exact(d.cols).zip(dst.chunks_exact_mut(d.rows))
                        {
                            dense_rows(d, &self.sigmoid, self.simd_avx2, xs, x32, out, &mut ovf);
                        }
                    }
                    CKernel::Conv1d { d, k, in_ch } => {
                        let window = &mut scratch.window[..k * in_ch];
                        let x32 = &mut scratch.x32;
                        let half = (k / 2) as isize;
                        for (pos, out) in dst.chunks_exact_mut(d.rows).enumerate() {
                            let start = pos as isize - half;
                            // Interior positions: the im2col window (taps
                            // contiguous, channels innermost) is exactly a
                            // contiguous slice of the position-major input —
                            // feed it directly, no copy.
                            if start >= 0 && start as usize + k <= cur_len {
                                let at = start as usize * in_ch;
                                let xs = &src[at..at + k * in_ch];
                                dense_rows(
                                    d,
                                    &self.sigmoid,
                                    self.simd_avx2,
                                    xs,
                                    x32,
                                    out,
                                    &mut ovf,
                                );
                            } else {
                                for tap in 0..*k {
                                    let ipos = start + tap as isize;
                                    let wslot = &mut window[tap * in_ch..(tap + 1) * in_ch];
                                    if ipos < 0 || ipos >= cur_len as isize {
                                        wslot.fill(0);
                                    } else {
                                        let at = ipos as usize * in_ch;
                                        wslot.copy_from_slice(&src[at..at + in_ch]);
                                    }
                                }
                                dense_rows(
                                    d,
                                    &self.sigmoid,
                                    self.simd_avx2,
                                    window,
                                    x32,
                                    out,
                                    &mut ovf,
                                );
                            }
                        }
                    }
                    CKernel::MaxPool { pool } => {
                        // Monotone raw→value map: the integer argmax is the
                        // f64 argmax. No quantization, no stats.
                        counted = 0;
                        let ch = node.out_ch;
                        for (opos, out) in dst.chunks_exact_mut(ch).enumerate() {
                            for (c, slot) in out.iter_mut().enumerate() {
                                let mut best = i64::MIN;
                                for off in 0..*pool {
                                    let v = src[(opos * pool + off) * ch + c];
                                    if v > best {
                                        best = v;
                                    }
                                }
                                *slot = best;
                            }
                        }
                    }
                    CKernel::UpSample { factor } => {
                        counted = 0;
                        let ch = node.out_ch;
                        for (pos, xs) in src.chunks_exact(ch).enumerate() {
                            for rep in 0..*factor {
                                let at = (pos * factor + rep) * ch;
                                dst[at..at + ch].copy_from_slice(xs);
                            }
                        }
                    }
                    CKernel::Concat {
                        slot,
                        skip_ch,
                        rq_main,
                        rq_skip,
                    } => {
                        let skip = &scratch.skips[*slot];
                        let main_ch = node.out_ch - skip_ch;
                        for (pos, out) in dst.chunks_exact_mut(node.out_ch).enumerate() {
                            for (c, o) in out[..main_ch].iter_mut().enumerate() {
                                let (y, ov) = rq_main.apply(i128::from(src[pos * main_ch + c]));
                                *o = y;
                                ovf += u64::from(ov);
                            }
                            for (c, o) in out[main_ch..].iter_mut().enumerate() {
                                let (y, ov) = rq_skip.apply(i128::from(skip[pos * skip_ch + c]));
                                *o = y;
                                ovf += u64::from(ov);
                            }
                        }
                    }
                    CKernel::BatchNorm {
                        scale,
                        shift,
                        prod_shift,
                        rq,
                    } => {
                        let ch = node.out_ch;
                        for (xs, out) in src.chunks_exact(ch).zip(dst.chunks_exact_mut(ch)) {
                            for (c, (x, o)) in xs.iter().zip(out.iter_mut()).enumerate() {
                                let acc = ((x * scale[c]) << prod_shift) + shift[c];
                                let (y, ov) = rq.apply(i128::from(acc));
                                *o = y;
                                ovf += u64::from(ov);
                            }
                        }
                    }
                }
            }
            scratch.stats.per_node[i] = OverflowStats {
                total: counted,
                overflows: ovf,
            };
            if let Some(slot) = node.retain_slot {
                scratch.skips[slot].copy_from_slice(&scratch.b[..out_elems]);
            }
            std::mem::swap(&mut scratch.a, &mut scratch.b);
            cur_elems = out_elems;
            cur_len = node.out_len;
        }

        for (o, &raw) in scratch.out.iter_mut().zip(&scratch.a[..cur_elems]) {
            *o = raw as f64 * self.out_lsb;
        }
        (&scratch.out, &scratch.stats)
    }

    /// Runs one frame with a throwaway scratch — convenience for tests and
    /// cold paths; the hot path is [`CompiledFirmware::infer_into`].
    ///
    /// # Panics
    /// Panics if the input length mismatches.
    #[must_use]
    pub fn infer(&self, input: &[f64]) -> (Vec<f64>, InferenceStats) {
        let mut scratch = self.scratch();
        let (y, stats) = self.infer_into(input, &mut scratch);
        (y.to_vec(), stats.clone())
    }

    /// Batch inference through one reused scratch, merging statistics —
    /// bit-identical to [`Firmware::infer_batch`]. Allocates only for the
    /// returned frames.
    ///
    /// # Panics
    /// Panics if any input length mismatches.
    #[must_use]
    pub fn infer_batch(&self, inputs: &[Vec<f64>]) -> (Vec<Vec<f64>>, InferenceStats) {
        let mut scratch = self.scratch();
        let mut merged = InferenceStats::default();
        let mut outs = Vec::with_capacity(inputs.len());
        for x in inputs {
            let (y, stats) = self.infer_into(x, &mut scratch);
            merged.merge(stats);
            outs.push(y.to_vec());
        }
        (outs, merged)
    }

    /// The source firmware's content digest (see
    /// [`Firmware::content_digest`]) — lowering is content-preserving, so
    /// the digest pins this engine's outputs too.
    #[must_use]
    pub fn content_digest(&self) -> u64 {
        self.digest
    }

    /// Flattened input length.
    #[must_use]
    pub fn input_elems(&self) -> usize {
        self.input_len * self.input_channels
    }

    /// Flattened output length.
    #[must_use]
    pub fn output_len(&self) -> usize {
        self.output_len
    }

    /// Per-node work counts recorded at lowering time.
    #[must_use]
    pub fn layer_ops(&self) -> &[LayerOps] {
        &self.layer_ops
    }

    /// Total MACs per frame across all nodes.
    #[must_use]
    pub fn total_macs(&self) -> u64 {
        self.layer_ops.iter().map(|o| o.macs).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::HlsConfig;
    use crate::firmware::InferenceStats;
    use crate::{convert, profile_model};
    use reads_nn::models;

    fn synth_frame(n: usize, seed: u64) -> Vec<f64> {
        // Same synthesis as the golden-vector suite: deterministic, mixes
        // smooth structure with pseudo-random jitter and outliers.
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        (0..n)
            .map(|i| {
                let t = i as f64 / n as f64;
                let smooth = (t * 12.57).sin() * 1.5 + (t * 40.0).cos() * 0.4;
                let jitter = next() * 2.0 - 1.0;
                let spike = if next() > 0.97 { next() * 30.0 } else { 0.0 };
                smooth + jitter + spike
            })
            .collect()
    }

    fn build(model: &reads_nn::Model, seed: u64) -> Firmware {
        let (len, ch) = model.input_shape();
        let n = len * ch;
        let frames: Vec<Vec<f64>> = (0..3).map(|i| synth_frame(n, seed + i)).collect();
        let profile = profile_model(model, &frames);
        convert(model, &profile, &HlsConfig::paper_default())
    }

    fn assert_identical(fw: &Firmware, cf: &CompiledFirmware, frame: &[f64]) {
        let (want, want_stats) = fw.infer(frame);
        let (got, got_stats) = cf.infer(frame);
        assert_eq!(want.len(), got.len());
        for (i, (w, g)) in want.iter().zip(&got).enumerate() {
            assert_eq!(w.to_bits(), g.to_bits(), "output {i}: {w} vs {g}");
        }
        assert_eq!(want_stats, got_stats, "stats diverge");
    }

    #[test]
    fn mlp_matches_interpreter_bit_for_bit() {
        let fw = build(&models::reads_mlp(11), 5);
        let cf = CompiledFirmware::lower(&fw);
        for s in 0..4 {
            assert_identical(
                &fw,
                &cf,
                &synth_frame(fw.input_len * fw.input_channels, 100 + s),
            );
        }
    }

    #[test]
    fn unet_matches_interpreter_bit_for_bit() {
        let fw = build(&models::reads_unet(11), 9);
        let cf = CompiledFirmware::lower(&fw);
        for s in 0..3 {
            assert_identical(
                &fw,
                &cf,
                &synth_frame(fw.input_len * fw.input_channels, 400 + s),
            );
        }
    }

    #[test]
    fn overflowing_frames_count_identically() {
        // Amplified inputs force input and inner-layer overflows; the
        // compiled engine must reproduce every count.
        let fw = build(&models::reads_unet(3), 21);
        let cf = CompiledFirmware::lower(&fw);
        let frame: Vec<f64> = synth_frame(fw.input_len * fw.input_channels, 77)
            .into_iter()
            .map(|v| v * 900.0)
            .collect();
        let (_, stats) = fw.infer(&frame);
        assert!(stats.total_overflows() > 0, "test frame must overflow");
        assert_identical(&fw, &cf, &frame);
    }

    #[test]
    fn batch_matches_interpreter() {
        let fw = build(&models::reads_mlp(2), 31);
        let cf = CompiledFirmware::lower(&fw);
        let inputs: Vec<Vec<f64>> = (0..5)
            .map(|s| synth_frame(fw.input_len * fw.input_channels, 900 + s))
            .collect();
        let (want, want_stats) = fw.infer_batch(&inputs);
        let (got, got_stats) = cf.infer_batch(&inputs);
        assert_eq!(want, got);
        assert_eq!(want_stats, got_stats);
    }

    #[test]
    fn scratch_reuse_is_stateless() {
        let fw = build(&models::reads_mlp(7), 1);
        let cf = CompiledFirmware::lower(&fw);
        let a = synth_frame(fw.input_len * fw.input_channels, 10);
        let b = synth_frame(fw.input_len * fw.input_channels, 11);
        let mut scratch = cf.scratch();
        let first_a: (Vec<f64>, InferenceStats) = {
            let (y, s) = cf.infer_into(&a, &mut scratch);
            (y.to_vec(), s.clone())
        };
        let _ = cf.infer_into(&b, &mut scratch);
        let again_a: (Vec<f64>, InferenceStats) = {
            let (y, s) = cf.infer_into(&a, &mut scratch);
            (y.to_vec(), s.clone())
        };
        assert_eq!(
            first_a, again_a,
            "scratch must carry no state across frames"
        );
    }

    #[test]
    fn digest_is_preserved_from_source() {
        let fw = build(&models::reads_mlp(4), 2);
        assert_eq!(
            CompiledFirmware::lower(&fw).content_digest(),
            fw.content_digest()
        );
    }

    #[test]
    fn layer_ops_cover_every_node() {
        let fw = build(&models::reads_unet(5), 3);
        let cf = CompiledFirmware::lower(&fw);
        assert_eq!(cf.layer_ops().len(), fw.nodes.len());
        assert!(cf.total_macs() > 1_000_000, "U-Net is MAC-heavy");
        // Dense-like nodes carry MACs; pool/upsample are pure data movement.
        for (ops, node) in cf.layer_ops().iter().zip(&fw.nodes) {
            match node {
                FwNode::MaxPool { .. } | FwNode::UpSample { .. } => assert_eq!(ops.macs, 0),
                FwNode::ConcatWith { .. } => assert_eq!(ops.macs, 0),
                _ => assert!(ops.macs > 0),
            }
            assert!(ops.elements > 0);
        }
    }

    #[test]
    fn shapes_and_lengths_agree() {
        let fw = build(&models::reads_unet(6), 4);
        let cf = CompiledFirmware::lower(&fw);
        assert_eq!(cf.input_elems(), fw.input_len * fw.input_channels);
        assert_eq!(cf.output_len(), fw.output_len());
    }
}
